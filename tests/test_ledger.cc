/**
 * @file
 * Tests for the bench-run ledger and regression gate (obs/ledger.h):
 * JSONL append/read round-trips (including escaped newlines, UTF-8
 * hostnames and 2^53-boundary integers), corrupt-line tolerance, run
 * context stamping, config-hash sensitivity, and the IQR gate math the
 * CI regression job relies on — in particular that a 2x slowdown trips
 * the gate while baseline-level noise does not.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/ledger.h"

namespace fs = std::filesystem;

namespace laser::obs {
namespace {

/** Fresh ledger path under the system temp dir; removes leftovers. */
fs::path
freshLedger(const char *name)
{
    const fs::path path = fs::temp_directory_path() / name;
    std::error_code ec;
    fs::remove(path, ec);
    return path;
}

// ---------------------------------------------------------------------
// Append / read round-trip
// ---------------------------------------------------------------------

TEST(Ledger, AppendReadRoundTripPreservesOrderAndValues)
{
    const fs::path path = freshLedger("laser_ledger_roundtrip.jsonl");
    for (int i = 0; i < 3; ++i) {
        Json rec = Json::object();
        rec.set("bench", Json(std::string("bench_") + char('a' + i)));
        rec.set("wall_seconds", Json(0.5 + i));
        ASSERT_TRUE(appendLedgerRecord(path.string(), rec));
    }

    const LedgerReadResult got = readLedger(path.string());
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_EQ(got.corruptLines, 0u);
    ASSERT_EQ(got.records.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        const Json *wall = got.records[i].find("wall_seconds");
        ASSERT_NE(wall, nullptr);
        EXPECT_DOUBLE_EQ(wall->asNumber(), 0.5 + i);
    }
    fs::remove(path);
}

TEST(Ledger, RecordsAreOneCompactLineEach)
{
    // Strings with embedded newlines must not break the one-record-
    // per-line invariant: the dumper escapes them.
    const fs::path path = freshLedger("laser_ledger_lines.jsonl");
    Json rec = Json::object();
    rec.set("bench", Json(std::string("multi\nline \"name\"")));
    rec.set("hostname", Json(std::string("b\xC3\xBC\x63her-host"))); // UTF-8
    ASSERT_TRUE(appendLedgerRecord(path.string(), rec));

    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, 1u);

    const LedgerReadResult got = readLedger(path.string());
    ASSERT_EQ(got.records.size(), 1u);
    EXPECT_EQ(got.records[0].find("bench")->asString(),
              "multi\nline \"name\"");
    EXPECT_EQ(got.records[0].find("hostname")->asString(),
              "b\xC3\xBC\x63her-host");
    fs::remove(path);
}

TEST(Ledger, BoundaryIntegersSurviveTheRoundTrip)
{
    // 2^53 is the largest integer the JSON layer prints exactly.
    const fs::path path = freshLedger("laser_ledger_ints.jsonl");
    Json rec = Json::object();
    rec.set("unix_time", Json(std::uint64_t(9007199254740992ull)));
    ASSERT_TRUE(appendLedgerRecord(path.string(), rec));

    const LedgerReadResult got = readLedger(path.string());
    ASSERT_EQ(got.records.size(), 1u);
    EXPECT_EQ(got.records[0].find("unix_time")->asNumber(),
              9007199254740992.0);
    fs::remove(path);
}

TEST(Ledger, SkipsAndCountsCorruptLines)
{
    const fs::path path = freshLedger("laser_ledger_corrupt.jsonl");
    {
        std::ofstream out(path);
        out << "{\"bench\":\"ok1\"}\n"
            << "{\"bench\":\"torn wri\n" // torn write
            << "   \n"                   // blank: skipped, not corrupt
            << "not json at all\n"
            << "{\"bench\":\"ok2\"}\n";
    }
    const LedgerReadResult got = readLedger(path.string());
    ASSERT_TRUE(got.ok);
    EXPECT_EQ(got.corruptLines, 2u);
    ASSERT_EQ(got.records.size(), 2u);
    EXPECT_EQ(got.records[0].find("bench")->asString(), "ok1");
    EXPECT_EQ(got.records[1].find("bench")->asString(), "ok2");
    fs::remove(path);
}

TEST(Ledger, ReadOfMissingFileReportsError)
{
    const LedgerReadResult got =
        readLedger("/nonexistent/laser/ledger.jsonl");
    EXPECT_FALSE(got.ok);
    EXPECT_FALSE(got.error.empty());
    EXPECT_TRUE(got.records.empty());
}

TEST(Ledger, AppendToUnopenablePathFails)
{
    // A path whose parent is a regular file cannot be created — the
    // reliable way to force an open failure when tests run as root.
    const fs::path file = freshLedger("laser_ledger_notdir");
    std::ofstream(file) << "plain file\n";
    Json rec = Json::object();
    EXPECT_FALSE(
        appendLedgerRecord((file / "sub.jsonl").string(), rec));
    fs::remove(file);
}

// ---------------------------------------------------------------------
// Run context
// ---------------------------------------------------------------------

TEST(Ledger, RunContextIsFullyPopulated)
{
    const RunContext ctx = currentRunContext();
    EXPECT_FALSE(ctx.gitSha.empty());
    EXPECT_FALSE(ctx.hostname.empty());
    EXPECT_GT(ctx.unixTime, 1577836800); // after 2020-01-01
    ASSERT_EQ(ctx.configHash.size(), 16u);
    for (char c : ctx.configHash)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << ctx.configHash;
}

TEST(Ledger, ConfigHashTracksBehaviorKnobsNotTelemetryPaths)
{
    const std::string before = currentRunContext().configHash;

    // A behavior-affecting LASER_* knob changes the fingerprint...
    ASSERT_EQ(setenv("LASER_TEST_KNOB", "42", 1), 0);
    const std::string withKnob = currentRunContext().configHash;
    EXPECT_NE(withKnob, before);

    // ...but telemetry destinations are excluded, so pointing the
    // ledger somewhere else keeps runs comparable.
    ASSERT_EQ(setenv("LASER_LEDGER", "/tmp/elsewhere.jsonl", 1), 0);
    EXPECT_EQ(currentRunContext().configHash, withKnob);

    unsetenv("LASER_LEDGER");
    unsetenv("LASER_TEST_KNOB");
    EXPECT_EQ(currentRunContext().configHash, before);
}

TEST(Ledger, ProcessCpuSecondsIsNonNegativeAndMonotonic)
{
    const double a = processCpuSeconds();
    EXPECT_GE(a, 0.0);
    // Burn a little CPU; the counter must not go backwards.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000000; ++i)
        sink = sink + i * 1e-9;
    EXPECT_GE(processCpuSeconds(), a);
}

// ---------------------------------------------------------------------
// Gate math
// ---------------------------------------------------------------------

TEST(Gate, EmptyBaselinePassesVacuously)
{
    const GateResult r = evaluateGate({}, 123.0);
    EXPECT_FALSE(r.regressed);
    EXPECT_EQ(r.baselineRuns, 0u);
    EXPECT_DOUBLE_EQ(r.candidate, 123.0);
}

TEST(Gate, QuietBaselineUsesRelativeFloor)
{
    // Identical baseline samples: IQR is 0, so the tolerance is the
    // relative floor — median + 35%.
    const std::vector<double> base = {1.0, 1.0, 1.0, 1.0};
    EXPECT_FALSE(evaluateGate(base, 1.30).regressed);
    const GateResult r = evaluateGate(base, 1.40);
    EXPECT_TRUE(r.regressed);
    EXPECT_DOUBLE_EQ(r.baselineMedian, 1.0);
    EXPECT_DOUBLE_EQ(r.baselineIqr, 0.0);
    EXPECT_DOUBLE_EQ(r.threshold, 1.35);
}

TEST(Gate, TwoXSlowdownAlwaysTripsAQuietGate)
{
    // The CI acceptance scenario in unit form: realistic jittery
    // sub-second baseline, candidate at 2x the median.
    const std::vector<double> base = {0.98, 1.03, 1.0, 0.99, 1.02,
                                      1.01, 0.97, 1.0};
    const GateResult noise = evaluateGate(base, 1.04);
    EXPECT_FALSE(noise.regressed) << "baseline-level noise must pass";
    const GateResult slow = evaluateGate(base, 2.0);
    EXPECT_TRUE(slow.regressed) << "2x the median must regress";
}

TEST(Gate, NoisyBaselineWidensTheTolerance)
{
    // IQR term dominates: sorted {1,2,3,4} -> median 2.5, IQR 1.5,
    // threshold 2.5 + 3 * 1.5 = 7.
    const std::vector<double> base = {3.0, 1.0, 4.0, 2.0};
    const GateResult r = evaluateGate(base, 6.9);
    EXPECT_FALSE(r.regressed);
    EXPECT_DOUBLE_EQ(r.baselineMedian, 2.5);
    EXPECT_DOUBLE_EQ(r.baselineIqr, 1.5);
    EXPECT_DOUBLE_EQ(r.threshold, 7.0);
    EXPECT_TRUE(evaluateGate(base, 7.1).regressed);
}

TEST(Gate, AbsoluteFloorShieldsSubMillisecondMetrics)
{
    // A 40x blowup on a 1ms metric is still inside the absolute floor:
    // scheduler jitter at this scale is not a regression.
    const std::vector<double> base = {0.001, 0.001, 0.001, 0.001};
    const GateResult r = evaluateGate(base, 0.04);
    EXPECT_FALSE(r.regressed);
    EXPECT_DOUBLE_EQ(r.threshold, 0.051);
}

TEST(Gate, OnlyTheTrailingWindowCounts)
{
    // 12 slow ancient runs followed by 8 fast recent ones: the window
    // must keep only the recent era, so a candidate at the old speed
    // regresses instead of hiding behind stale history.
    std::vector<double> base(12, 10.0);
    base.insert(base.end(), 8, 1.0);
    const GateResult r = evaluateGate(base, 10.0);
    EXPECT_EQ(r.baselineRuns, 8u);
    EXPECT_DOUBLE_EQ(r.baselineMedian, 1.0);
    EXPECT_TRUE(r.regressed);

    GateConfig all;
    all.window = 0; // 0 = unlimited
    EXPECT_FALSE(evaluateGate(base, 10.0, all).regressed);
}

TEST(Gate, ConfigKnobsAreHonored)
{
    GateConfig cfg;
    cfg.iqrMult = 1.0;
    cfg.relFloor = 0.0;
    cfg.absFloor = 0.0;
    const std::vector<double> base = {1.0, 2.0, 3.0, 4.0};
    // tolerance = 1 * IQR = 1.5; threshold = 4.0 exactly at median+IQR
    const GateResult r = evaluateGate(base, 4.1, cfg);
    EXPECT_TRUE(r.regressed);
    EXPECT_DOUBLE_EQ(r.threshold, 4.0);
    EXPECT_FALSE(evaluateGate(base, 3.9, cfg).regressed);
}

// ---------------------------------------------------------------------
// Gated metric extraction
// ---------------------------------------------------------------------

TEST(Gate, GatedMetricsPicksDurationsOnly)
{
    Json rec = Json::object();
    rec.set("bench", Json(std::string("b")));
    rec.set("wall_seconds", Json(1.5));
    Json run = Json::object();
    run.set("git_sha", Json(std::string("abc")));
    run.set("cpu_seconds", Json(2.5));
    rec.set("run", std::move(run));
    Json results = Json::object();
    results.set("detect_seconds", Json(0.25));
    results.set("records", Json(1000));       // not a duration
    results.set("label", Json(std::string("x"))); // not numeric
    results.set("replay_seconds", Json(0.75));
    rec.set("results", std::move(results));

    const auto metrics = gatedMetrics(rec);
    ASSERT_EQ(metrics.size(), 4u);
    EXPECT_EQ(metrics[0].first, "wall_seconds");
    EXPECT_DOUBLE_EQ(metrics[0].second, 1.5);
    EXPECT_EQ(metrics[1].first, "cpu_seconds");
    EXPECT_DOUBLE_EQ(metrics[1].second, 2.5);
    EXPECT_EQ(metrics[2].first, "results.detect_seconds");
    EXPECT_DOUBLE_EQ(metrics[2].second, 0.25);
    EXPECT_EQ(metrics[3].first, "results.replay_seconds");
    EXPECT_DOUBLE_EQ(metrics[3].second, 0.75);
}

TEST(Gate, GatedMetricsToleratesSchemaV1Records)
{
    // v1 records have no "run" object; only wall_seconds qualifies.
    Json rec = Json::object();
    rec.set("bench", Json(std::string("old")));
    rec.set("wall_seconds", Json(3.0));
    const auto metrics = gatedMetrics(rec);
    ASSERT_EQ(metrics.size(), 1u);
    EXPECT_EQ(metrics[0].first, "wall_seconds");
}

} // namespace
} // namespace laser::obs
