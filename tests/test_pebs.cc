/**
 * @file
 * Unit tests for the PEBS monitor: SAV sampling, record imprecision
 * distributions (the Figure 3 error model), buffering/interrupts and
 * cost accounting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "mem/address_space.h"
#include "pebs/monitor.h"
#include "sim/hitm.h"
#include "sim/timing.h"

namespace laser::pebs {
namespace {

using namespace laser::isa;

/** A program with a few hundred instructions to give PCs room to skid. */
isa::Program
mediumProgram()
{
    Asm a("pebsprog");
    for (int i = 0; i < 100; ++i) {
        a.at(i + 1);
        a.load(R1, R2, 0, 8);
        a.store(R2, 8, R1, 8);
        a.addi(R3, R3, 1);
    }
    a.halt();
    return a.finalize();
}

struct Fixture
{
    isa::Program prog = mediumProgram();
    mem::AddressSpace space{prog, 4};
    sim::TimingModel timing{};

    sim::HitmEvent
    event(std::uint32_t pc_index, std::uint64_t addr, bool load) const
    {
        sim::HitmEvent ev;
        ev.core = 0;
        ev.pcIndex = pc_index;
        ev.vaddr = addr;
        ev.accessSize = 8;
        ev.isLoadUop = load;
        ev.isStore = !load;
        ev.cycle = 1000;
        return ev;
    }
};

TEST(Pebs, SavSamplesEveryNth)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 19;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 19 * 100; ++i)
        mon.onHitm(f.event(3, 0x1000000, true));
    mon.finish();
    EXPECT_EQ(mon.stats().hitmEvents, 1900u);
    EXPECT_EQ(mon.stats().samples, 100u);
    EXPECT_EQ(mon.records().size(), 100u);
}

TEST(Pebs, SavZeroDisablesMonitoring)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 0;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(mon.onHitm(f.event(3, 0x1000000, true)), 0u);
    mon.finish();
    EXPECT_TRUE(mon.records().empty());
    EXPECT_EQ(mon.stats().samples, 0u);
}

TEST(Pebs, SavOneSamplesEverything)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 500; ++i)
        mon.onHitm(f.event(3, 0x1000000, true));
    mon.finish();
    EXPECT_EQ(mon.records().size(), 500u);
}

TEST(Pebs, LoadRecordsMatchFigure3Accuracy)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.keepGroundTruth = true;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);

    const std::uint32_t true_pc_index = 30;
    const std::uint64_t true_addr = 0x1000040;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mon.onHitm(f.event(true_pc_index, true_addr, true));
    mon.finish();

    int addr_ok = 0, pc_exact = 0, pc_adjacent = 0;
    for (const PebsRecord &r : mon.records()) {
        if (r.dataAddr == true_addr)
            ++addr_ok;
        const std::int64_t idx = f.space.pcToIndex(r.pc);
        if (idx == true_pc_index)
            ++pc_exact;
        if (idx >= 0 && std::abs(idx - std::int64_t(true_pc_index)) <= 1)
            ++pc_adjacent;
    }
    // Figure 3 RW averages: ~75% addresses, ~40% exact PCs, ~70%
    // exact+adjacent PCs.
    EXPECT_NEAR(double(addr_ok) / n, 0.75, 0.03);
    EXPECT_NEAR(double(pc_exact) / n, 0.42, 0.03);
    EXPECT_NEAR(double(pc_adjacent) / n, 0.72, 0.03);
}

TEST(Pebs, StoreRecordsAreImprecise)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.keepGroundTruth = true;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);

    const std::uint32_t true_pc_index = 31;
    const std::uint64_t true_addr = 0x1000040;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mon.onHitm(f.event(true_pc_index, true_addr, false));
    mon.finish();

    int addr_ok = 0, pc_adjacent = 0, pc_in_binary = 0;
    for (const PebsRecord &r : mon.records()) {
        if (r.dataAddr == true_addr)
            ++addr_ok;
        const std::int64_t idx = f.space.pcToIndex(r.pc);
        if (idx >= 0)
            ++pc_in_binary;
        if (idx >= 0 && std::abs(idx - std::int64_t(true_pc_index)) <= 1)
            ++pc_adjacent;
    }
    // WW records: data addresses mostly wrong, adjacent PCs ~34%, but
    // >99% of wrong PCs still land in the binary.
    EXPECT_LT(double(addr_ok) / n, 0.15);
    EXPECT_NEAR(double(pc_adjacent) / n, 0.34, 0.04);
    EXPECT_GT(double(pc_in_binary) / n, 0.97);
}

TEST(Pebs, WrongAddressesAreMostlyUnmapped)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.keepGroundTruth = true;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    const std::uint64_t true_addr = 0x1000040;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mon.onHitm(f.event(10, true_addr, false));
    mon.finish();

    int wrong = 0, unmapped = 0, stack = 0, kernel = 0;
    for (const PebsRecord &r : mon.records()) {
        if (r.dataAddr == true_addr)
            continue;
        ++wrong;
        const auto kind = f.space.classify(r.dataAddr);
        if (kind == mem::RegionKind::Unmapped)
            ++unmapped;
        else if (kind == mem::RegionKind::Stack)
            ++stack;
        else if (kind == mem::RegionKind::Kernel)
            ++kernel;
    }
    ASSERT_GT(wrong, 0);
    // "95% of incorrect data addresses are from unmapped parts of the
    // address space, with the remainder split between the stack and the
    // kernel" (Section 3.1).
    EXPECT_NEAR(double(unmapped) / wrong, 0.95, 0.02);
    EXPECT_GT(stack, 0);
    EXPECT_GT(kernel, 0);
}

TEST(Pebs, BufferFullRaisesInterrupt)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.bufferCapacity = 8;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 33; ++i)
        mon.onHitm(f.event(3, 0x1000000, true));
    EXPECT_EQ(mon.stats().interrupts, 4u);  // 32 records drained
    EXPECT_EQ(mon.records().size(), 32u);
    mon.finish();                           // residual record
    EXPECT_EQ(mon.records().size(), 33u);
    EXPECT_GT(mon.stats().driverCycles, 0u);
}

TEST(Pebs, CostsChargedPerSampleAndInterrupt)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.bufferCapacity = 4;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i)
        total += mon.onHitm(f.event(3, 0x1000000, true));
    // 4 assists + one PMI with per-record copy costs.
    const std::uint64_t expected =
        4ull * f.timing.pebsAssist + f.timing.pmiCost +
        4ull * f.timing.driverPerRecord;
    EXPECT_EQ(total, expected);
    EXPECT_EQ(mon.stats().appCycles, expected);
}

TEST(Pebs, ChargeCostsOffMakesMonitoringFree)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 1;
    cfg.chargeCosts = false;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(mon.onHitm(f.event(3, 0x1000000, true)), 0u);
    EXPECT_EQ(mon.stats().appCycles, 0u);
}

TEST(Pebs, GroundTruthAlignsWithRecords)
{
    Fixture f;
    PebsConfig cfg;
    cfg.sav = 3;
    cfg.keepGroundTruth = true;
    PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
    for (int i = 0; i < 90; ++i)
        mon.onHitm(f.event(7, 0x1000040, true));
    mon.finish();
    ASSERT_EQ(mon.records().size(), mon.truths().size());
    for (const RecordTruth &t : mon.truths()) {
        EXPECT_EQ(t.truePc, f.space.indexToPc(7));
        EXPECT_EQ(t.trueAddr, 0x1000040u);
        EXPECT_TRUE(t.isLoadUop);
    }
}

TEST(Pebs, DeterministicForSameSeed)
{
    Fixture f;
    auto run = [&] {
        PebsConfig cfg;
        cfg.sav = 1;
        cfg.seed = 777;
        PebsMonitor mon(f.space, f.prog.size(), f.timing, cfg);
        for (int i = 0; i < 100; ++i)
            mon.onHitm(f.event(3, 0x1000000, i % 2 == 0));
        mon.finish();
        return mon.records();
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].dataAddr, b[i].dataAddr);
    }
}

} // namespace
} // namespace laser::pebs
