/**
 * @file
 * Tests for the workload suite: registry integrity, program validity,
 * determinism, and — most importantly — that each kernel reproduces the
 * sharing structure the paper describes (parameterized over all 35
 * workloads where applicable).
 */

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "workloads/workload.h"

namespace laser::workloads {
namespace {

sim::MachineStats
runBuild(WorkloadBuild build, sim::MachineConfig mc = {})
{
    sim::Machine machine(std::move(build.program), mc);
    build.applyTo(machine);
    return machine.run();
}

TEST(Registry, HasThirtyFiveConfigurations)
{
    EXPECT_EQ(allWorkloads().size(), 35u); // Table 1 rows
}

TEST(Registry, NamesAreUniqueAndFindable)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads()) {
        EXPECT_TRUE(names.insert(w.info.name).second)
            << "duplicate " << w.info.name;
        EXPECT_EQ(findWorkload(w.info.name), &w);
    }
    EXPECT_EQ(findWorkload("no_such_benchmark"), nullptr);
}

TEST(Registry, NineBuggyWorkloads)
{
    EXPECT_EQ(buggyWorkloads().size(), 9u); // Table 2 rows
}

TEST(Registry, SuitesCovered)
{
    int phoenix = 0, parsec = 0, splash = 0;
    for (const auto &w : allWorkloads()) {
        phoenix += w.info.suite == Suite::Phoenix;
        parsec += w.info.suite == Suite::Parsec;
        splash += w.info.suite == Suite::Splash2x;
    }
    EXPECT_EQ(phoenix, 9);  // includes histogram twice
    EXPECT_EQ(parsec, 13);
    EXPECT_EQ(splash, 13);
}

/** Parameterized over every workload. */
class EveryWorkload : public ::testing::TestWithParam<std::size_t>
{
  protected:
    const WorkloadDef &def() const { return allWorkloads()[GetParam()]; }
};

TEST_P(EveryWorkload, ProgramValidates)
{
    WorkloadBuild build = def().build(BuildOptions{});
    EXPECT_EQ(build.program.validate(), "") << def().info.name;
    EXPECT_GT(build.program.size(), 10u);
}

TEST_P(EveryWorkload, RunsToCompletion)
{
    sim::MachineStats stats = runBuild(def().build(BuildOptions{}));
    EXPECT_FALSE(stats.truncated) << def().info.name;
    EXPECT_GT(stats.instructions, 1000u);
    // Compressed-kernel budget: every run finishes within 16M cycles.
    EXPECT_LT(stats.cycles, 16'000'000u) << def().info.name;
}

TEST_P(EveryWorkload, DeterministicAcrossRuns)
{
    sim::MachineStats a = runBuild(def().build(BuildOptions{}));
    sim::MachineStats b = runBuild(def().build(BuildOptions{}));
    EXPECT_EQ(a.cycles, b.cycles) << def().info.name;
    EXPECT_EQ(a.hitmTotal(), b.hitmTotal());
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST_P(EveryWorkload, BuggyWorkloadsGenerateContention)
{
    if (def().info.bugs.empty())
        GTEST_SKIP() << "no known bug";
    sim::MachineStats stats = runBuild(def().build(BuildOptions{}));
    EXPECT_GT(stats.hitmTotal(), 300u) << def().info.name;
}

TEST_P(EveryWorkload, ManualFixReducesHitms)
{
    if (!def().info.hasManualFix)
        GTEST_SKIP() << "no manual fix variant";
    BuildOptions fixed_opt;
    fixed_opt.manualFix = true;
    sim::MachineStats native = runBuild(def().build(BuildOptions{}));
    sim::MachineStats fixed = runBuild(def().build(fixed_opt));
    // Every fix reduces HITMs (padding fixes eliminate them; dedup's
    // lock-free queue trades lock HITMs for peek traffic but wins on
    // runtime, checked in Dedup.LockFreeFixReducesSyncAndHitms).
    EXPECT_LT(fixed.hitmTotal(), native.hitmTotal() * 4 / 5)
        << def().info.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkload,
    ::testing::Range<std::size_t>(0, allWorkloads().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string name = allWorkloads()[info.param].info.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Workload-specific structure checks
// ---------------------------------------------------------------------

TEST(LinearRegression, FigureTwoLayout)
{
    // The unaligned lreg_args array straddles lines (Figure 2): intense
    // false sharing natively, none when the fix aligns the array.
    const auto *w = findWorkload("linear_regression");
    sim::MachineStats native = runBuild(w->build(BuildOptions{}));
    BuildOptions fixed;
    fixed.manualFix = true;
    sim::MachineStats aligned = runBuild(w->build(fixed));
    EXPECT_GT(native.hitmTotal(), 3000u);
    EXPECT_EQ(aligned.hitmTotal(), 0u);
    // The paper's dramatic manual-fix speedup (Figure 11: 16.9x on the
    // contention phase; our whole-kernel speedup is several-fold).
    EXPECT_GT(double(native.cycles) / double(aligned.cycles), 2.0);
}

TEST(Histogram, FalseSharingIsInputDependent)
{
    // Same binary; only the input changes (Section 7.4.1).
    sim::MachineStats def_input =
        runBuild(findWorkload("histogram")->build(BuildOptions{}));
    sim::MachineStats alt_input =
        runBuild(findWorkload("histogram'")->build(BuildOptions{}));
    EXPECT_EQ(def_input.hitmTotal(), 0u);
    EXPECT_GT(alt_input.hitmTotal(), 5000u);
}

TEST(LuNcb, LaserHeapShiftReducesFalseSharing)
{
    // The +48-byte attach shift realigns half the chunk boundaries
    // (Section 7.4.2's "coincidental change in memory layout").
    const auto *w = findWorkload("lu_ncb");
    sim::MachineStats native = runBuild(w->build(BuildOptions{}));
    BuildOptions shifted_opt;
    shifted_opt.heapPerturbation = 48;
    sim::MachineConfig mc;
    mc.heapPerturbation = 48;
    sim::MachineStats shifted = runBuild(w->build(shifted_opt), mc);
    // The +48 shift aligns half the chunk boundaries; the measurable
    // effect is a solid HITM reduction (and a faster run under LASER).
    EXPECT_LT(shifted.hitmTotal(), native.hitmTotal() * 9 / 10);
}

TEST(LuNcb, ManualFixBeatsLayoutLuck)
{
    // The residual HITMs of the fixed variant come from barriers and
    // pivot-row reads (genuine communication, not the bug).
    const auto *w = findWorkload("lu_ncb");
    sim::MachineStats native = runBuild(w->build(BuildOptions{}));
    BuildOptions fixed;
    fixed.manualFix = true;
    sim::MachineStats aligned = runBuild(w->build(fixed));
    EXPECT_LT(aligned.hitmTotal(), native.hitmTotal() / 2);
}

TEST(Dedup, PipelineProcessesAllItems)
{
    // The pipeline must terminate (sentinels propagate) and its queue
    // locks must contend (the Section 7.4.2 true-sharing find).
    sim::MachineStats stats =
        runBuild(findWorkload("dedup")->build(BuildOptions{}));
    EXPECT_FALSE(stats.truncated);
    EXPECT_GT(stats.syncOps, 500u);
    EXPECT_GT(stats.hitmTotal(), 1000u);
}

TEST(Dedup, LockFreeFixReducesSyncAndHitms)
{
    const auto *w = findWorkload("dedup");
    sim::MachineStats naive = runBuild(w->build(BuildOptions{}));
    BuildOptions fixed;
    fixed.manualFix = true;
    sim::MachineStats lockfree = runBuild(w->build(fixed));
    EXPECT_LT(lockfree.hitmTotal(), naive.hitmTotal());
    EXPECT_LT(lockfree.cycles, naive.cycles);
}

TEST(WaterNsquared, SyncHeavy)
{
    // The Sheriff comparison hinges on water_nsquared's sync density.
    sim::MachineStats stats =
        runBuild(findWorkload("water_nsquared")->build(BuildOptions{}));
    EXPECT_GT(stats.syncOps, 5000u);
}

TEST(Scale, SmallerInputsRunFaster)
{
    const auto *w = findWorkload("histogram");
    BuildOptions small;
    small.scale = 0.25;
    sim::MachineStats full = runBuild(w->build(BuildOptions{}));
    sim::MachineStats quarter = runBuild(w->build(small));
    EXPECT_LT(quarter.cycles, full.cycles / 2);
}

TEST(SheriffCompat, MatrixMatchesTable1)
{
    // Spot-check the compatibility matrix against Table 1.
    EXPECT_EQ(findWorkload("dedup")->info.sheriff,
              SheriffCompat::Incompatible);
    EXPECT_EQ(findWorkload("freqmine")->info.sheriff,
              SheriffCompat::Incompatible); // OpenMP
    EXPECT_EQ(findWorkload("kmeans")->info.sheriff,
              SheriffCompat::Crash);
    EXPECT_EQ(findWorkload("lu_cb")->info.sheriff,
              SheriffCompat::WorksSmallInput);
    EXPECT_EQ(findWorkload("linear_regression")->info.sheriff,
              SheriffCompat::Works);
    EXPECT_EQ(findWorkload("reverse_index")->info.sheriffDetectsBug,
              true);
    EXPECT_EQ(findWorkload("linear_regression")->info.sheriffDetectsBug,
              false);
}

} // namespace
} // namespace laser::workloads
