/**
 * @file
 * Tests for the LSRT v3 columnar layer: per-column codec round-trips
 * and strict rejection, block-index bomb bounds, seek-window decode
 * equivalence, streaming-replay memory bounds, legacy (v1/v2) parse
 * compatibility, cache migration, and the gc-vs-disk-hit race paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/sweep_runner.h"
#include "detect/types.h"
#include "trace/cache.h"
#include "trace/capture.h"
#include "trace/columnar.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"
#include "trace/source.h"
#include "trace/trace.h"
#include "trace/trace_file.h"

namespace laser::trace {
namespace {

namespace fs = std::filesystem;
namespace col = columnar;

/** Deterministic pseudo-random values (xorshift; no global seed). */
std::uint64_t
nextRand(std::uint64_t *state)
{
    std::uint64_t x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return *state = x;
}

TraceMeta
syntheticMeta()
{
    TraceMeta meta;
    meta.workload = "kmeans";
    meta.scheme = "laser-detect";
    meta.pebs.sav = 19;
    meta.stats.cycles = 500000;
    meta.runtimeCycles = 500000;
    meta.mapsText = "00400000-00410000 r-xp 00000000 00:00 1  /app\n";
    return meta;
}

/** @p n records with clustered addresses and non-decreasing cycles. */
std::vector<pebs::PebsRecord>
syntheticRecords(std::size_t n)
{
    std::vector<pebs::PebsRecord> recs;
    recs.reserve(n);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    std::uint64_t cycle = 1000;
    for (std::size_t i = 0; i < n; ++i) {
        pebs::PebsRecord r;
        r.pc = 0x400000 + (nextRand(&rng) % 64) * 4;
        // Two address clusters, like a heap region + a stack region.
        r.dataAddr = (i % 3 == 0)
                         ? 0xffff'8000'0000'0000ull + nextRand(&rng) % 4096
                         : 0x1000000 + (nextRand(&rng) % 512) * 8;
        r.core = static_cast<int>(nextRand(&rng) % 4);
        cycle += nextRand(&rng) % 97; // occasionally zero: equal cycles
        r.cycle = cycle;
        recs.push_back(r);
    }
    return recs;
}

// ---------------------------------------------------------------------
// Codec units
// ---------------------------------------------------------------------

std::vector<std::vector<std::uint64_t>>
codecCorpus()
{
    std::vector<std::vector<std::uint64_t>> corpus;
    corpus.push_back({});                      // empty
    corpus.push_back({42});                    // single value
    corpus.push_back(std::vector<std::uint64_t>(300, 7)); // constant
    std::vector<std::uint64_t> strided;        // constant stride
    for (std::uint64_t i = 0; i < 500; ++i)
        strided.push_back(1000 + i * 64);
    corpus.push_back(strided);
    std::vector<std::uint64_t> outlier = strided; // stride + one spike
    outlier[250] = 0xffff'ffff'ffff'0000ull;
    corpus.push_back(outlier);
    std::vector<std::uint64_t> random;         // high entropy
    std::uint64_t rng = 0xdeadbeefcafef00dull;
    for (int i = 0; i < 400; ++i)
        random.push_back(nextRand(&rng));
    corpus.push_back(random);
    std::vector<std::uint64_t> clustered;      // two tight clusters
    for (int i = 0; i < 300; ++i)
        clustered.push_back((i % 2 ? 0xffff'8000'0000'0000ull : 0x10000) +
                            nextRand(&rng) % 256);
    corpus.push_back(clustered);
    return corpus;
}

TEST(ColumnCodec, EveryCodecRoundTripsEveryShape)
{
    for (const auto &vals : codecCorpus()) {
        for (std::uint8_t k = 0; k < col::kCodecCount; ++k) {
            const auto codec = static_cast<col::ColumnCodec>(k);
            std::vector<std::uint8_t> bytes;
            col::encodeColumn(codec, vals, &bytes);
            std::vector<std::uint64_t> decoded;
            ASSERT_TRUE(col::decodeColumn(codec, bytes.data(),
                                          bytes.size(), vals.size(),
                                          &decoded))
                << col::codecName(codec) << " over " << vals.size()
                << " values";
            EXPECT_EQ(decoded, vals) << col::codecName(codec);
        }
    }
}

TEST(ColumnCodec, RejectsTruncationAndTrailingBytes)
{
    const auto corpus = codecCorpus();
    const std::vector<std::uint64_t> &vals = corpus.back();
    for (std::uint8_t k = 0; k < col::kCodecCount; ++k) {
        const auto codec = static_cast<col::ColumnCodec>(k);
        std::vector<std::uint8_t> bytes;
        col::encodeColumn(codec, vals, &bytes);
        std::vector<std::uint64_t> decoded;
        for (std::size_t cut = 0; cut < bytes.size(); ++cut)
            EXPECT_FALSE(col::decodeColumn(codec, bytes.data(), cut,
                                           vals.size(), &decoded))
                << col::codecName(codec) << " accepted a " << cut
                << "-byte prefix";
        std::vector<std::uint8_t> padded = bytes;
        padded.push_back(0x00);
        EXPECT_FALSE(col::decodeColumn(codec, padded.data(),
                                       padded.size(), vals.size(),
                                       &decoded))
            << col::codecName(codec) << " accepted a trailing byte";
    }
}

TEST(ColumnCodec, ChooserIsDeterministicAndMinimal)
{
    for (const auto &vals : codecCorpus()) {
        std::vector<std::uint8_t> a, b;
        const col::ColumnCodec ca = col::chooseCodec(vals, &a);
        const col::ColumnCodec cb = col::chooseCodec(vals, &b);
        EXPECT_EQ(ca, cb);
        EXPECT_EQ(a, b);
        for (std::uint8_t k = 0; k < col::kCodecCount; ++k) {
            std::vector<std::uint8_t> other;
            col::encodeColumn(static_cast<col::ColumnCodec>(k), vals,
                              &other);
            EXPECT_LE(a.size(), other.size())
                << "chooser picked " << col::codecName(ca)
                << " but " << col::codecName(col::ColumnCodec(k))
                << " is smaller";
        }
    }
}

TEST(BlockIndex, RejectsRecordCountBombs)
{
    col::BlockIndex index;
    index.records = col::kMaxBlockRecords + 1;
    index.blobOffset = 100;
    index.metaChecksum = 7;
    col::BlockInfo b;
    b.records = col::kMaxBlockRecords + 1; // over the bound
    b.firstCycle = 10;
    b.lastCycle = 20;
    b.columnBytes[col::kColPc] = 4; // far smaller than records claims
    index.blocks.push_back(b);

    std::vector<std::uint8_t> bytes;
    index.encode(&bytes);
    col::BlockIndex decoded;
    std::string err;
    EXPECT_FALSE(decoded.decode(bytes.data(), bytes.size(), &err));
    EXPECT_NE(err.find("max"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Seekable file: window decode, corruption, read volume
// ---------------------------------------------------------------------

/** A multi-block v3 image (small blocks force many index entries). */
std::vector<std::uint8_t>
multiBlockImage(const std::vector<pebs::PebsRecord> &recs,
                std::size_t block_records = 256)
{
    TraceWriter writer(syntheticMeta(), block_records);
    writer.appendAll(recs);
    return writer.finalize();
}

std::vector<pebs::PebsRecord>
drainAll(std::unique_ptr<RecordCursor> cur)
{
    struct Collect : analysis::RecordSink
    {
        std::vector<pebs::PebsRecord> recs;
        void onRecord(const pebs::PebsRecord &r) override
        {
            recs.push_back(r);
        }
    } sink;
    cur->drain(sink);
    EXPECT_EQ(cur->status(), TraceStatus::Ok);
    return sink.recs;
}

bool
recordsEqual(const std::vector<pebs::PebsRecord> &a,
             const std::vector<pebs::PebsRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].pc != b[i].pc || a[i].dataAddr != b[i].dataAddr ||
            a[i].core != b[i].core || a[i].cycle != b[i].cycle)
            return false;
    return true;
}

TEST(TraceFileSeek, WindowDecodeMatchesFullDecodeSlice)
{
    const std::vector<pebs::PebsRecord> recs = syntheticRecords(5000);
    TraceFile file;
    ASSERT_EQ(file.openBytes(multiBlockImage(recs)), TraceStatus::Ok)
        << file.error();
    ASSERT_GT(file.index().blocks.size(), 10u);
    EXPECT_EQ(file.recordCount(), recs.size());

    const std::uint64_t lo = recs.front().cycle;
    const std::uint64_t hi = recs.back().cycle + 1;
    const std::uint64_t span = hi - lo;
    for (const auto &[begin, end] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {0, UINT64_MAX},                       // everything
             {lo + span / 4, lo + span / 2},        // interior window
             {lo, lo + 1},                          // first cycle only
             {hi - 1, hi},                          // last cycle only
             {hi + 100, hi + 200},                  // past the end
             {lo + span / 3, lo + span / 3},        // empty window
         }) {
        std::vector<pebs::PebsRecord> expected;
        for (const pebs::PebsRecord &r : recs)
            if (r.cycle >= begin && r.cycle < end)
                expected.push_back(r);
        const auto got = drainAll(file.cursorForCycles(begin, end));
        EXPECT_TRUE(recordsEqual(got, expected))
            << "window [" << begin << ", " << end << ") yielded "
            << got.size() << " records, expected " << expected.size();
    }

    // Record-range cursors are exact slices too.
    for (const auto &[first, end] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {0, recs.size()}, {100, 101}, {1000, 4000},
             {recs.size() - 1, recs.size()}, {5000, 9000}}) {
        const auto got = drainAll(file.cursorForRecords(first, end));
        const std::size_t b = std::min<std::size_t>(first, recs.size());
        const std::size_t e = std::min<std::size_t>(end, recs.size());
        EXPECT_TRUE(recordsEqual(
            got, {recs.begin() + b, recs.begin() + e}))
            << "records [" << first << ", " << end << ")";
    }
}

TEST(TraceFileSeek, ReadAllMatchesFullReader)
{
    const std::vector<pebs::PebsRecord> recs = syntheticRecords(2000);
    const std::vector<std::uint8_t> image = multiBlockImage(recs);

    TraceReader reader;
    ASSERT_EQ(reader.parse(image), TraceStatus::Ok) << reader.error();

    TraceFile file;
    ASSERT_EQ(file.openBytes(image), TraceStatus::Ok) << file.error();
    Trace via_seek;
    ASSERT_EQ(file.readAll(&via_seek), TraceStatus::Ok);
    EXPECT_TRUE(recordsEqual(via_seek.records, reader.trace().records));
    EXPECT_EQ(via_seek.meta.workload, reader.trace().meta.workload);
}

TEST(TraceFileSeek, CorruptBlockIsLatchedAsTypedCursorError)
{
    const std::vector<pebs::PebsRecord> recs = syntheticRecords(3000);
    std::vector<std::uint8_t> image = multiBlockImage(recs);

    // The last 8 payload bytes hold the index offset; the byte just
    // before the index is the last record-blob byte.
    std::uint64_t index_offset = 0;
    const std::size_t off_pos = image.size() - 16;
    for (int i = 0; i < 8; ++i)
        index_offset |= std::uint64_t(image[off_pos + i]) << (8 * i);
    image[kTraceHeaderSize + index_offset - 1] ^= 0x20;

    // Opening still succeeds: blocks are not decoded up front.
    TraceFile file;
    ASSERT_EQ(file.openBytes(image), TraceStatus::Ok) << file.error();

    auto cur = file.cursor();
    pebs::PebsRecord rec;
    while (cur->next(&rec)) {
    }
    EXPECT_EQ(cur->status(), TraceStatus::Corrupt);

    // The full reader rejects the same image outright.
    TraceReader reader;
    EXPECT_EQ(reader.parse(image), TraceStatus::Corrupt);
}

TEST(TraceFileSeek, CorruptIndexAndTruncationAreTypedAtOpen)
{
    const std::vector<pebs::PebsRecord> recs = syntheticRecords(1500);
    const std::vector<std::uint8_t> pristine = multiBlockImage(recs);

    // Flip a byte inside the serialized index: checksum mismatch.
    std::uint64_t index_offset = 0;
    const std::size_t off_pos = pristine.size() - 16;
    for (int i = 0; i < 8; ++i)
        index_offset |= std::uint64_t(pristine[off_pos + i]) << (8 * i);
    std::vector<std::uint8_t> bad_index = pristine;
    bad_index[kTraceHeaderSize + index_offset + 2] ^= 0x01;
    TraceFile file;
    EXPECT_EQ(file.openBytes(bad_index), TraceStatus::Corrupt);
    EXPECT_FALSE(file.error().empty());

    // An index offset pointing outside the payload is Corrupt, not UB.
    std::vector<std::uint8_t> bad_offset = pristine;
    for (int i = 0; i < 8; ++i)
        bad_offset[off_pos + i] = 0xff;
    EXPECT_EQ(file.openBytes(bad_offset), TraceStatus::Corrupt);

    // Truncations at every boundary remain typed.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{12}, std::size_t{27},
          pristine.size() / 2, pristine.size() - 1}) {
        std::vector<std::uint8_t> short_image(
            pristine.begin(), pristine.begin() + cut);
        EXPECT_EQ(file.openBytes(std::move(short_image)),
                  TraceStatus::Truncated)
            << "prefix of " << cut << " bytes";
    }
}

// ---------------------------------------------------------------------
// Streaming replay memory: O(block x shards), not O(trace)
// ---------------------------------------------------------------------

TEST(StreamingReplay, PeakBufferedRecordsIsBlockBound)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    ASSERT_NE(kmeans, nullptr);
    const Trace captured = captureTrace(*kmeans);
    ASSERT_FALSE(captured.records.empty());

    // Tile the capture into a stream far larger than the block bound a
    // materializing replay would have to hold wholesale.
    constexpr std::size_t kBlock = 256;
    constexpr int kShards = 4;
    Trace big;
    big.meta = captured.meta;
    const std::uint64_t stride = captured.records.back().cycle + 1;
    while (big.records.size() < 50 * kBlock * kShards) {
        const std::uint64_t c =
            std::uint64_t(big.records.size() / captured.records.size());
        for (pebs::PebsRecord r : captured.records) {
            r.cycle += stride * c;
            big.records.push_back(r);
        }
    }

    const std::string path =
        (fs::temp_directory_path() / "laser_codec_memcap.ltrace")
            .string();
    {
        TraceWriter writer(big.meta, kBlock);
        writer.appendAll(big.records);
        ASSERT_EQ(writer.writeFile(path), TraceStatus::Ok);
    }
    TraceFile file;
    ASSERT_EQ(file.open(path), TraceStatus::Ok) << file.error();
    TraceReplayer env(file.meta(), file);
    ASSERT_TRUE(env.ok()) << env.error();

    resetBufferedRecordsPeak();
    ParallelReplayer::Options opt;
    opt.shards = kShards;
    ParallelReplayer parallel(env, opt);
    EXPECT_EQ(parallel.state().totalRecords, big.records.size());

    const std::size_t peak = bufferedRecordsPeak();
    EXPECT_GT(peak, 0u);
    // One decoded block per shard cursor, with 2x slack for block
    // handoff; a materializing path would hold all records at once.
    EXPECT_LE(peak, 2 * kBlock * kShards)
        << "streaming replay buffered " << peak << " of "
        << big.records.size() << " records";
    EXPECT_LT(peak, big.records.size() / 10);

    // The streamed digest still produces the serial in-memory report.
    detect::DetectorConfig cfg;
    cfg.sav = big.meta.pebs.sav;
    TraceReplayer mem_env(big);
    ASSERT_TRUE(mem_env.ok());
    EXPECT_TRUE(detect::reportsIdentical(mem_env.replay(cfg),
                                         parallel.replay(cfg)));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Legacy compatibility and migration
// ---------------------------------------------------------------------

TEST(LegacyTrace, V1AndV2StillParse)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    ASSERT_NE(kmeans, nullptr);
    const Trace captured = captureTrace(*kmeans);

    for (const std::uint32_t version : {1u, 2u}) {
        const std::vector<std::uint8_t> legacy =
            encodeLegacyTrace(captured, version);
        TraceReader reader;
        ASSERT_EQ(reader.parse(legacy), TraceStatus::Ok)
            << "v" << version << ": " << reader.error();
        EXPECT_EQ(reader.version(), version);
        EXPECT_TRUE(recordsEqual(reader.trace().records,
                                 captured.records))
            << "v" << version;
        EXPECT_EQ(reader.trace().meta.workload, captured.meta.workload);

        // The seekable reader has no index to seek: typed BadVersion
        // pointing at the migration path, not a parse attempt.
        TraceFile file;
        EXPECT_EQ(file.openBytes(legacy), TraceStatus::BadVersion);
        EXPECT_NE(file.error().find("migrate"), std::string::npos);
    }
}

TEST(LegacyTrace, MigrateUpgradesAndRekeysCacheFiles)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    const Trace captured = captureTrace(*kmeans);

    const fs::path dir =
        fs::temp_directory_path() / "laser_codec_migrate";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // A sweep-cache file named by its old (v2-scoped) config hash.
    const std::uint64_t old_hash = configHashForVersion(captured.meta, 2);
    char old_name[32];
    std::snprintf(old_name, sizeof old_name, "%016llx%s",
                  (unsigned long long)old_hash, kTraceExtension);
    const fs::path old_path = dir / old_name;
    {
        const std::vector<std::uint8_t> legacy =
            encodeLegacyTrace(captured, 2);
        std::ofstream out(old_path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(legacy.data()),
                  std::streamsize(legacy.size()));
    }

    const MigrateFileResult result =
        migrateTraceFile(old_path.string());
    ASSERT_EQ(result.status, TraceStatus::Ok) << result.error;
    EXPECT_TRUE(result.upgraded);
    EXPECT_FALSE(fs::exists(old_path)) << "old key not removed";

    char new_name[32];
    std::snprintf(new_name, sizeof new_name, "%016llx%s",
                  (unsigned long long)configHash(captured.meta),
                  kTraceExtension);
    EXPECT_EQ(fs::path(result.newPath).filename().string(), new_name);

    // The migrated file is current-version and replays bit-identically.
    TraceReader reader;
    ASSERT_EQ(reader.readFile(result.newPath), TraceStatus::Ok)
        << reader.error();
    EXPECT_EQ(reader.version(), kTraceVersion);
    EXPECT_TRUE(recordsEqual(reader.trace().records, captured.records));
    TraceReplayer before(captured);
    TraceReplayer after(reader.trace());
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_TRUE(detect::reportsIdentical(before.replayAtThreshold(1000),
                                         after.replayAtThreshold(1000)));

    // Migrating a current file is a no-op.
    const MigrateFileResult again =
        migrateTraceFile(result.newPath);
    EXPECT_EQ(again.status, TraceStatus::Ok);
    EXPECT_FALSE(again.upgraded);

    // And the directory-level sweep reports what happened.
    const CacheMigrateResult cache = migrateTraceCache(dir.string());
    EXPECT_EQ(cache.scanned, 1u);
    EXPECT_EQ(cache.alreadyCurrent, 1u);
    EXPECT_EQ(cache.failed, 0u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Cache gc vs concurrent use: spared and vanished entries
// ---------------------------------------------------------------------

fs::path
writeCacheTrace(const fs::path &dir, const std::string &stem,
                fs::file_time_type mtime)
{
    Trace t;
    t.meta = syntheticMeta();
    t.records = syntheticRecords(50);
    const fs::path path = dir / (stem + kTraceExtension);
    EXPECT_EQ(writeTraceFile(t, path.string()), TraceStatus::Ok);
    fs::last_write_time(path, mtime);
    return path;
}

TEST(TraceCacheGc, ToleratesFilesVanishingAfterListing)
{
    const fs::path dir = fs::temp_directory_path() / "laser_gc_vanish";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto now = fs::file_time_type::clock::now();
    const fs::path oldest =
        writeCacheTrace(dir, "a", now - std::chrono::hours(3));
    writeCacheTrace(dir, "b", now - std::chrono::hours(2));
    writeCacheTrace(dir, "c", now - std::chrono::hours(1));

    // A concurrent gc (or cache wipe) deletes the LRU victim between
    // this gc's listing and its deletion pass.
    const std::vector<CacheEntry> entries = listTraceCache(dir.string());
    ASSERT_EQ(entries.size(), 3u);
    fs::remove(oldest);

    const CacheGcResult gc = gcTraceCacheFrom(entries, 0);
    EXPECT_EQ(gc.vanished, 1u);
    EXPECT_EQ(gc.evicted, 2u);
    EXPECT_EQ(gc.bytesAfter, 0u);
    fs::remove_all(dir);
}

TEST(TraceCacheGc, SparesEntriesTouchedByConcurrentDiskHits)
{
    const fs::path dir = fs::temp_directory_path() / "laser_gc_spare";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto now = fs::file_time_type::clock::now();
    const fs::path oldest =
        writeCacheTrace(dir, "victim", now - std::chrono::hours(3));
    const fs::path newer =
        writeCacheTrace(dir, "keeper", now - std::chrono::hours(1));

    const std::vector<CacheEntry> entries = listTraceCache(dir.string());
    ASSERT_EQ(entries.size(), 2u);
    ASSERT_EQ(fs::path(entries[0].path).filename(), oldest.filename());

    // A sweep's disk hit refreshes the victim's mtime after the
    // listing: it is no longer the LRU victim and must be spared, even
    // though the stale listing nominates it first.
    fs::last_write_time(oldest, now);

    // Budget admits exactly one file: without the mtime re-check the
    // just-used victim would be deleted.
    const CacheGcResult gc =
        gcTraceCacheFrom(entries, entries[1].bytes);
    EXPECT_EQ(gc.spared, 1u);
    EXPECT_TRUE(fs::exists(oldest)) << "just-used entry was evicted";
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_FALSE(fs::exists(newer));
    fs::remove_all(dir);
}

TEST(TraceCacheGc, ListingsReportHeaderVersions)
{
    const fs::path dir = fs::temp_directory_path() / "laser_gc_ver";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto now = fs::file_time_type::clock::now();
    writeCacheTrace(dir, "current", now);
    {
        Trace t;
        t.meta = syntheticMeta();
        t.records = syntheticRecords(10);
        const std::vector<std::uint8_t> legacy = encodeLegacyTrace(t, 2);
        std::ofstream out(dir / ("legacy" + std::string(kTraceExtension)),
                          std::ios::binary);
        out.write(reinterpret_cast<const char *>(legacy.data()),
                  std::streamsize(legacy.size()));
    }

    std::uint32_t versions[2] = {};
    for (const CacheEntry &entry : listTraceCache(dir.string())) {
        EXPECT_EQ(entry.status, TraceStatus::Ok) << entry.path;
        const std::string stem = fs::path(entry.path).stem().string();
        versions[stem == "legacy" ? 0 : 1] = entry.version;
    }
    EXPECT_EQ(versions[0], 2u);
    EXPECT_EQ(versions[1], kTraceVersion);
    fs::remove_all(dir);
}

} // namespace
} // namespace laser::trace
