/**
 * @file
 * Unit tests for the ISA module: assembler label resolution, program
 * validation, source locations, segments, the runtime library and
 * load/store-set decoding.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/decode.h"
#include "isa/program.h"
#include "isa/types.h"

namespace laser::isa {
namespace {

TEST(Assembler, EmitsInstructionsInOrder)
{
    Asm a("prog");
    EXPECT_EQ(a.movi(R1, 5), 0u);
    EXPECT_EQ(a.addi(R1, R1, 1), 1u);
    EXPECT_EQ(a.halt(), 2u);
    Program p = a.finalize();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.code[0].op, Op::MovImm);
    EXPECT_EQ(p.code[1].op, Op::AddImm);
    EXPECT_EQ(p.code[2].op, Op::Halt);
}

TEST(Assembler, ResolvesForwardLabels)
{
    Asm a("prog");
    Asm::Label skip = a.newLabel();
    a.movi(R1, 1);
    a.jmp(skip);
    a.movi(R1, 2); // skipped
    a.bind(skip);
    a.halt();
    Program p = a.finalize();
    EXPECT_EQ(p.code[1].op, Op::Jmp);
    EXPECT_EQ(p.code[1].target, 3);
}

TEST(Assembler, ResolvesBackwardLabels)
{
    Asm a("prog");
    a.movi(R1, 10);
    Asm::Label loop = a.here();
    a.subi(R1, R1, 1);
    a.bne(R1, R0, loop);
    a.halt();
    Program p = a.finalize();
    EXPECT_EQ(p.code[2].target, 1);
}

TEST(Assembler, TracksSourceLocations)
{
    Asm a("prog", "kernel.c");
    a.at(42).movi(R1, 0);
    a.at(43).halt();
    Program p = a.finalize();
    EXPECT_EQ(p.locString(0), "kernel.c:42");
    EXPECT_EQ(p.locString(1), "kernel.c:43");
}

TEST(Assembler, MultipleSourceFiles)
{
    Asm a("prog", "main.c");
    a.at(1).movi(R1, 0);
    a.file("helper.c").at(7).movi(R2, 0);
    a.file("main.c").at(2).halt();
    Program p = a.finalize();
    EXPECT_EQ(p.locString(0), "main.c:1");
    EXPECT_EQ(p.locString(1), "helper.c:7");
    EXPECT_EQ(p.locString(2), "main.c:2");
}

TEST(Assembler, LibraryCallCreatesLibrarySegment)
{
    Asm a("prog");
    a.movi(R12, 0x1000);
    a.callLib(LibFn::SpinLock);
    a.callLib(LibFn::Unlock);
    a.halt();
    Program p = a.finalize();

    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_FALSE(p.segments[0].isLibrary);
    EXPECT_TRUE(p.segments[1].isLibrary);
    EXPECT_EQ(p.segments[0].begin, 0u);
    EXPECT_EQ(p.segments[1].begin, p.segments[0].end);
    EXPECT_EQ(p.segments[1].end, p.size());

    // Call sites target the library segment.
    EXPECT_EQ(p.code[1].op, Op::Call);
    EXPECT_GE(p.code[1].target,
              static_cast<std::int32_t>(p.segments[1].begin));
    // The spin-lock CAS is marked as a lock acquire.
    bool found_acquire = false;
    for (std::uint32_t i = p.segments[1].begin; i < p.segments[1].end; ++i) {
        if (p.code[i].op == Op::Cas &&
                p.code[i].sync == SyncKind::LockAcquire) {
            found_acquire = true;
        }
    }
    EXPECT_TRUE(found_acquire);
}

TEST(Assembler, LibraryRoutineEmittedOncePerProgram)
{
    Asm a("prog");
    a.movi(R12, 0x1000);
    a.callLib(LibFn::TtsLock);
    a.callLib(LibFn::TtsLock);
    a.halt();
    Program p = a.finalize();
    // Both call sites share one routine body.
    EXPECT_EQ(p.code[1].target, p.code[2].target);
}

TEST(Assembler, NoLibraryCallsMeansSingleSegment)
{
    Asm a("prog");
    a.halt();
    Program p = a.finalize();
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_FALSE(p.segments[0].isLibrary);
}

TEST(Program, ValidateAcceptsWellFormed)
{
    Asm a("prog");
    Asm::Label l = a.newLabel();
    a.movi(R1, 3);
    a.bind(l);
    a.subi(R1, R1, 1);
    a.bne(R1, R0, l);
    a.halt();
    Program p = a.finalize();
    EXPECT_EQ(p.validate(), "");
}

TEST(Program, ValidateRejectsBadTarget)
{
    Asm a("prog");
    a.movi(R1, 0);
    a.halt();
    Program p = a.finalize();
    p.code[0].op = Op::Jmp;
    p.code[0].target = 99;
    EXPECT_NE(p.validate(), "");
}

TEST(Program, ValidateRejectsBadAccessSize)
{
    Asm a("prog");
    a.load(R1, R2, 0, 8);
    a.halt();
    Program p = a.finalize();
    p.code[0].size = 3;
    EXPECT_NE(p.validate(), "");
}

TEST(Program, DisassembleMentionsOperands)
{
    Asm a("prog");
    a.at(5).load(R1, R2, 16, 4);
    a.store(R3, -8, R4, 8);
    a.halt();
    Program p = a.finalize();
    EXPECT_NE(p.disassemble(0).find("load4 r1, [r2+16]"), std::string::npos);
    EXPECT_NE(p.disassemble(0).find("main.c:5"), std::string::npos);
    EXPECT_NE(p.disassemble(1).find("[r3-8]"), std::string::npos);
    EXPECT_NE(p.disassembleAll().find("segment prog"), std::string::npos);
}

TEST(Program, SegmentOfFindsContainingSegment)
{
    Asm a("prog");
    a.movi(R12, 0x1000);
    a.callLib(LibFn::Unlock);
    a.halt();
    Program p = a.finalize();
    EXPECT_EQ(p.segmentOf(0)->name, "prog");
    EXPECT_TRUE(p.segmentOf(p.segments[1].begin)->isLibrary);
    EXPECT_EQ(p.segmentOf(static_cast<std::uint32_t>(p.size())), nullptr);
}

TEST(OpPredicates, ClassifyMemoryOps)
{
    EXPECT_TRUE(opReadsMemory(Op::Load));
    EXPECT_FALSE(opWritesMemory(Op::Load));
    EXPECT_TRUE(opWritesMemory(Op::Store));
    EXPECT_FALSE(opReadsMemory(Op::Store));
    // RMW and atomics are both loads and stores (Section 4.3).
    for (Op op : {Op::AddMem, Op::Cas, Op::FetchAdd}) {
        EXPECT_TRUE(opReadsMemory(op));
        EXPECT_TRUE(opWritesMemory(op));
    }
    EXPECT_TRUE(opIsFence(Op::Fence));
    EXPECT_TRUE(opIsFence(Op::Cas));
    EXPECT_FALSE(opIsFence(Op::Store));
    EXPECT_TRUE(opIsCondBranch(Op::Beq));
    EXPECT_FALSE(opIsCondBranch(Op::Jmp));
    EXPECT_TRUE(opIsBranch(Op::Jmp));
}

TEST(Decode, LoadStoreSetsCountAndClassify)
{
    Asm a("prog");
    a.load(R1, R2, 0, 4);   // load set
    a.store(R2, 0, R1, 8);  // store set
    a.addmem(R2, 8, R1, 4); // both sets
    a.movi(R3, 7);          // neither
    a.halt();
    Program p = a.finalize();
    LoadStoreSets sets(p);

    EXPECT_EQ(sets.loadCount(), 2u);
    EXPECT_EQ(sets.storeCount(), 2u);

    EXPECT_TRUE(sets.lookup(0).isLoad);
    EXPECT_FALSE(sets.lookup(0).isStore);
    EXPECT_EQ(sets.lookup(0).size, 4);

    EXPECT_TRUE(sets.lookup(1).isStore);
    EXPECT_FALSE(sets.lookup(1).isLoad);

    EXPECT_TRUE(sets.lookup(2).isLoad);
    EXPECT_TRUE(sets.lookup(2).isStore);

    EXPECT_FALSE(sets.lookup(3).isLoad);
    EXPECT_FALSE(sets.lookup(3).isStore);
    EXPECT_EQ(sets.lookup(999).size, 0);
}

} // namespace
} // namespace laser::isa
