/**
 * @file
 * Tests for the trace capture/replay subsystem and the parallel sweep
 * runner: byte-exact round-trips, strict rejection of malformed files,
 * replay fidelity against the in-process pipeline, and cache-hit
 * behaviour (a repeated sweep performs zero machine runs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/experiment.h"
#include "core/sweep_runner.h"
#include "obs/metrics.h"
#include "trace/cache.h"
#include "trace/capture.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace laser::trace {
namespace {

namespace fs = std::filesystem;

/** Synthetic trace exercising negative deltas and large values. */
Trace
syntheticTrace()
{
    Trace t;
    t.meta.workload = "kmeans";
    t.meta.scheme = "laser-detect";
    t.meta.build.heapPerturbation = 48;
    t.meta.pebs.sav = 19;
    t.meta.stats.cycles = 123456;
    t.meta.stats.hitmLoads = 77;
    t.meta.stats.threadCycles = {100, 200, 300, 400};
    t.meta.stats.threadInstructions = {10, 20, 30, 40};
    t.meta.runtimeCycles = 123456;
    t.meta.mapsText = "00400000-00410000 r-xp 00000000 00:00 1  /app/kmeans\n";

    pebs::PebsRecord r;
    r.pc = 0x400100;
    r.dataAddr = 0x1000040;
    r.core = 2;
    r.cycle = 5000;
    t.records.push_back(r);
    r.pc = 0x400080;                      // negative pc delta
    r.dataAddr = 0xffff'8000'0000'0100ULL; // huge positive addr delta
    r.core = 0;
    r.cycle = 5000;                       // equal cycles are allowed
    t.records.push_back(r);
    r.pc = 0x400084;
    r.dataAddr = 0x70000010;              // negative addr delta
    r.core = 3;
    r.cycle = 90000;
    t.records.push_back(r);
    return t;
}

std::vector<std::uint8_t>
encode(const Trace &t)
{
    TraceWriter writer(t.meta);
    writer.appendAll(t.records);
    return writer.finalize();
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.meta.workload, b.meta.workload);
    EXPECT_EQ(a.meta.scheme, b.meta.scheme);
    EXPECT_EQ(a.meta.build.heapPerturbation, b.meta.build.heapPerturbation);
    EXPECT_EQ(a.meta.build.numThreads, b.meta.build.numThreads);
    EXPECT_EQ(a.meta.build.inputSeed, b.meta.build.inputSeed);
    EXPECT_EQ(a.meta.build.scale, b.meta.build.scale);
    EXPECT_EQ(a.meta.machine.seed, b.meta.machine.seed);
    EXPECT_EQ(a.meta.pebs.sav, b.meta.pebs.sav);
    EXPECT_EQ(a.meta.stats.cycles, b.meta.stats.cycles);
    EXPECT_EQ(a.meta.stats.hitmLoads, b.meta.stats.hitmLoads);
    EXPECT_EQ(a.meta.stats.threadCycles, b.meta.stats.threadCycles);
    EXPECT_EQ(a.meta.stats.threadInstructions,
              b.meta.stats.threadInstructions);
    EXPECT_EQ(a.meta.runtimeCycles, b.meta.runtimeCycles);
    EXPECT_EQ(a.meta.mapsText, b.meta.mapsText);
    EXPECT_EQ(configHash(a.meta), configHash(b.meta));
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].pc, b.records[i].pc) << i;
        EXPECT_EQ(a.records[i].dataAddr, b.records[i].dataAddr) << i;
        EXPECT_EQ(a.records[i].core, b.records[i].core) << i;
        EXPECT_EQ(a.records[i].cycle, b.records[i].cycle) << i;
    }
}

TEST(TraceFormat, RoundTripByteExact)
{
    const Trace original = syntheticTrace();
    const std::vector<std::uint8_t> bytes = encode(original);

    TraceReader reader;
    ASSERT_EQ(reader.parse(bytes), TraceStatus::Ok) << reader.error();
    expectTracesEqual(original, reader.trace());

    // Re-encoding the parsed trace reproduces the identical file image.
    EXPECT_EQ(encode(reader.trace()), bytes);
}

TEST(TraceFormat, CapturedRunRoundTripsThroughFile)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    ASSERT_NE(kmeans, nullptr);
    const Trace captured = captureTrace(*kmeans);
    EXPECT_FALSE(captured.records.empty());
    EXPECT_GT(captured.meta.runtimeCycles, 0u);
    EXPECT_FALSE(captured.meta.mapsText.empty());

    const std::string path =
        (fs::temp_directory_path() / "laser_test_roundtrip.ltrace")
            .string();
    ASSERT_EQ(writeTraceFile(captured, path), TraceStatus::Ok);

    TraceReader reader;
    ASSERT_EQ(reader.readFile(path), TraceStatus::Ok) << reader.error();
    expectTracesEqual(captured, reader.trace());
    EXPECT_EQ(encode(reader.trace()), encode(captured));
    std::remove(path.c_str());
}

TEST(TraceFormat, RejectsBadMagic)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes[0] = 'X';
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadMagic);
    EXPECT_FALSE(reader.error().empty());
}

TEST(TraceFormat, RejectsVersionMismatch)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes[4] = static_cast<std::uint8_t>(kTraceVersion + 1);
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadVersion);
}

TEST(TraceFormat, RejectsForeignEndianness)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    std::swap(bytes[8], bytes[11]); // byte-swapped endianness marker
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadEndianness);
}

TEST(TraceFormat, RejectsEveryTruncation)
{
    const std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    TraceReader reader;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const TraceStatus status = reader.parse(bytes.data(), cut);
        EXPECT_EQ(status, TraceStatus::Truncated)
            << "prefix of " << cut << " bytes parsed as "
            << traceStatusName(status);
    }
}

TEST(TraceFormat, RejectsPayloadCorruption)
{
    const std::vector<std::uint8_t> pristine = encode(syntheticTrace());
    // Flip one bit in every payload byte in turn: the checksum (or, for
    // the header's stored hash, the hash crosscheck) must catch each.
    TraceReader reader;
    for (std::size_t i = 28; i + 8 < pristine.size(); i += 7) {
        std::vector<std::uint8_t> bytes = pristine;
        bytes[i] ^= 0x40;
        EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt)
            << "flipped payload byte " << i;
    }
    // Corrupting the trailer checksum itself is also detected.
    std::vector<std::uint8_t> bytes = pristine;
    bytes.back() ^= 0x01;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
    // As is corrupting the stored config hash in the header.
    bytes = pristine;
    bytes[12] ^= 0x01;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
}

TEST(TraceFormat, RejectsNonMonotonicCycles)
{
    // Sharding splits streams into contiguous time windows, so the
    // canonical stream must be non-decreasing in cycle; a decreasing
    // step is a typed error, not a silently accepted stream.
    Trace t = syntheticTrace();
    t.records[2].cycle = t.records[1].cycle - 1;
    TraceReader reader;
    EXPECT_EQ(reader.parse(encode(t)), TraceStatus::NonMonotonic);
    EXPECT_NE(reader.error().find("precedes"), std::string::npos);

    // The writer refuses to persist such a stream in the first place
    // (finalize() still encodes it, so the reader path above is
    // testable).
    TraceWriter writer(t.meta);
    writer.appendAll(t.records);
    EXPECT_FALSE(writer.monotonic());
    EXPECT_EQ(writer.writeFile(
                  (fs::temp_directory_path() / "laser_nonmono.ltrace")
                      .string()),
              TraceStatus::NonMonotonic);

    // Equal adjacent cycles (records[0] and records[1]) stay accepted.
    EXPECT_EQ(reader.parse(encode(syntheticTrace())), TraceStatus::Ok);
}

TEST(TraceFormat, RejectsTrailingGarbage)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes.push_back(0xAA);
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
}

TEST(TraceFormat, ReportsIoErrorForMissingFile)
{
    TraceReader reader;
    EXPECT_EQ(reader.readFile("/nonexistent/laser.ltrace"),
              TraceStatus::IoError);
}

TEST(TraceFormat, ConfigHashDependsOnConfigOnly)
{
    Trace a = syntheticTrace();
    Trace b = syntheticTrace();
    b.meta.stats.cycles += 1;     // results do not affect the key
    b.meta.runtimeCycles += 1;
    EXPECT_EQ(configHash(a.meta), configHash(b.meta));
    b.meta.pebs.sav = 7;          // config does
    EXPECT_NE(configHash(a.meta), configHash(b.meta));
    Trace c = syntheticTrace();
    c.meta.machine.seed ^= 1;
    EXPECT_NE(configHash(a.meta), configHash(c.meta));
}

TEST(TraceFormat, RoundTripsProtocolAndGeometry)
{
    // v4 config tail: coherence protocol, cache geometry and the
    // Dragon-specific costs survive a write/parse cycle.
    Trace t = syntheticTrace();
    t.meta.machine.protocol = sim::ProtocolKind::Dragon;
    t.meta.machine.geometry.lineBytes = 128;
    t.meta.machine.geometry.sets = 64;
    t.meta.machine.geometry.associativity = 8;
    t.meta.machine.timing.dragonHitm = 123;
    t.meta.machine.timing.dragonUpdate = 45;

    TraceReader reader;
    ASSERT_EQ(reader.parse(encode(t)), TraceStatus::Ok) << reader.error();
    const sim::MachineConfig &mc = reader.trace().meta.machine;
    EXPECT_EQ(mc.protocol, sim::ProtocolKind::Dragon);
    EXPECT_EQ(mc.geometry.lineBytes, 128u);
    EXPECT_EQ(mc.geometry.sets, 64u);
    EXPECT_EQ(mc.geometry.associativity, 8u);
    EXPECT_EQ(mc.timing.dragonHitm, 123u);
    EXPECT_EQ(mc.timing.dragonUpdate, 45u);
}

TEST(TraceFormat, ConfigHashSeparatesProtocolsAndGeometries)
{
    // Different coherence fabrics and line sizes must never collide in
    // the trace cache: each axis has to move the config hash.
    const Trace base = syntheticTrace();
    Trace dragon = syntheticTrace();
    dragon.meta.machine.protocol = sim::ProtocolKind::Dragon;
    EXPECT_NE(configHash(base.meta), configHash(dragon.meta));

    Trace narrow = syntheticTrace();
    narrow.meta.machine.geometry.lineBytes = 32;
    EXPECT_NE(configHash(base.meta), configHash(narrow.meta));
    EXPECT_NE(configHash(dragon.meta), configHash(narrow.meta));

    Trace bounded = syntheticTrace();
    bounded.meta.machine.geometry.sets = 64;
    bounded.meta.machine.geometry.associativity = 8;
    EXPECT_NE(configHash(base.meta), configHash(bounded.meta));

    Trace costs = syntheticTrace();
    costs.meta.machine.timing.dragonUpdate += 1;
    EXPECT_NE(configHash(base.meta), configHash(costs.meta));
}

TEST(TraceFormat, RejectsUnknownProtocol)
{
    // A protocol byte beyond the known enum range is a semantic error,
    // caught after the checksum passes (the writer encodes it happily).
    Trace t = syntheticTrace();
    t.meta.machine.protocol = static_cast<sim::ProtocolKind>(9);
    TraceReader reader;
    EXPECT_EQ(reader.parse(encode(t)), TraceStatus::Corrupt);
    EXPECT_NE(reader.error().find("invalid coherence protocol"),
              std::string::npos)
        << reader.error();
}

TEST(TraceFormat, RejectsInvalidLineSize)
{
    Trace t = syntheticTrace();
    t.meta.machine.geometry.lineBytes = 48; // not a power of two
    TraceReader reader;
    EXPECT_EQ(reader.parse(encode(t)), TraceStatus::Corrupt);
    EXPECT_NE(reader.error().find("invalid cache line size"),
              std::string::npos)
        << reader.error();
}

// ---------------------------------------------------------------------
// Replay fidelity: record -> replay reproduces the in-process pipeline.
// ---------------------------------------------------------------------

TEST(TraceReplay, MatchesInProcessPipeline)
{
    core::ExperimentRunner runner;
    for (const char *name :
         {"kmeans", "linear_regression", "histogram'"}) {
        const auto *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        const core::RunResult live =
            runner.run(*w, core::Scheme::LaserDetectOnly);

        // Capture with the harness defaults, push through the on-disk
        // format, and replay at the default detector configuration.
        const Trace captured = captureTrace(*w);
        TraceReader reader;
        ASSERT_EQ(reader.parse(encode(captured)), TraceStatus::Ok);
        const Trace loaded = reader.takeTrace();
        TraceReplayer replayer(loaded);
        ASSERT_TRUE(replayer.ok()) << replayer.error();
        const detect::DetectionReport replayed =
            replayer.replayAtThreshold(1000.0);

        const detect::DetectionReport &expected = live.detection;
        EXPECT_EQ(replayed.totalRecords, expected.totalRecords) << name;
        EXPECT_EQ(replayed.droppedPcFilter, expected.droppedPcFilter)
            << name;
        EXPECT_EQ(replayed.droppedStackData, expected.droppedStackData)
            << name;
        EXPECT_EQ(replayed.repairRequested, expected.repairRequested)
            << name;
        ASSERT_EQ(replayed.lines.size(), expected.lines.size()) << name;
        for (std::size_t i = 0; i < expected.lines.size(); ++i) {
            EXPECT_EQ(replayed.lines[i].location,
                      expected.lines[i].location)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].type, expected.lines[i].type)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].records,
                      expected.lines[i].records)
                << name << " line " << i;
            EXPECT_DOUBLE_EQ(replayed.lines[i].hitmRate,
                             expected.lines[i].hitmRate)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].tsEvents,
                      expected.lines[i].tsEvents)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].fsEvents,
                      expected.lines[i].fsEvents)
                << name << " line " << i;
        }
    }
}

TEST(TraceReplay, UnknownWorkloadFailsCleanly)
{
    Trace t = syntheticTrace();
    t.meta.workload = "no_such_workload";
    TraceReplayer replayer(t);
    EXPECT_FALSE(replayer.ok());
    EXPECT_NE(replayer.error().find("no_such_workload"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Sweep runner cache behaviour
// ---------------------------------------------------------------------

std::vector<const workloads::WorkloadDef *>
sweepDefs()
{
    return {workloads::findWorkload("kmeans"),
            workloads::findWorkload("linear_regression")};
}

TEST(SweepRunner, SecondSweepPerformsZeroMachineRuns)
{
    core::SweepRunner runner;
    const std::vector<double> thresholds = {500, 1000, 4000};

    const core::ThresholdSweepResult first =
        core::thresholdSweep(runner, sweepDefs(), thresholds);
    EXPECT_EQ(first.machineRuns, 2u);

    const core::ThresholdSweepResult second =
        core::thresholdSweep(runner, sweepDefs(), thresholds);
    EXPECT_EQ(second.machineRuns, 0u);
    EXPECT_GE(runner.stats().memoryCacheHits, 2u);

    ASSERT_EQ(first.rows.size(), second.rows.size());
    for (std::size_t i = 0; i < first.rows.size(); ++i) {
        EXPECT_EQ(first.rows[i].falseNegatives,
                  second.rows[i].falseNegatives);
        EXPECT_EQ(first.rows[i].falsePositives,
                  second.rows[i].falsePositives);
    }
}

TEST(SweepRunner, DiskCachePersistsAcrossRunners)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_sweep_cache_test";
    fs::remove_all(dir);
    const auto *kmeans = workloads::findWorkload("kmeans");
    CaptureOptions opt;

    {
        core::SweepRunner::Config cfg;
        cfg.cacheDir = dir.string();
        core::SweepRunner first(cfg);
        first.capture(*kmeans, opt);
        EXPECT_EQ(first.stats().machineRuns, 1u);
    }

    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    core::SweepRunner second(cfg);
    const auto trace = second.capture(*kmeans, opt);
    EXPECT_EQ(second.stats().machineRuns, 0u);
    EXPECT_EQ(second.stats().diskCacheHits, 1u);
    EXPECT_EQ(trace->meta.workload, "kmeans");
    EXPECT_FALSE(trace->records.empty());
    fs::remove_all(dir);
}

TEST(SweepRunner, ConcurrentRunnersShareOneDiskCache)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_sweep_concurrent_test";
    fs::remove_all(dir);
    const std::vector<const workloads::WorkloadDef *> defs = {
        workloads::findWorkload("kmeans"),
        workloads::findWorkload("linear_regression"),
        workloads::findWorkload("histogram'"),
    };
    const CaptureOptions opt;

    // Two independent runners race over one cache directory; atomic
    // temp-file + rename writes mean neither can observe a torn file.
    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    cfg.numWorkers = 2;
    core::SweepRunner a(cfg), b(cfg);
    std::vector<std::shared_ptr<const trace::Trace>> got_a(defs.size());
    std::vector<std::shared_ptr<const trace::Trace>> got_b(defs.size());
    std::thread ta([&] {
        for (std::size_t i = 0; i < defs.size(); ++i)
            got_a[i] = a.capture(*defs[i], opt);
    });
    std::thread tb([&] {
        for (std::size_t i = defs.size(); i-- > 0;)
            got_b[i] = b.capture(*defs[i], opt);
    });
    ta.join();
    tb.join();

    // Correct hit accounting: each runner resolved every key exactly
    // once, by simulating or by a disk hit (never a torn read).
    const core::SweepStats sa = a.stats(), sb = b.stats();
    EXPECT_EQ(sa.machineRuns + sa.diskCacheHits, defs.size());
    EXPECT_EQ(sb.machineRuns + sb.diskCacheHits, defs.size());
    EXPECT_EQ(sa.memoryCacheHits, 0u);
    EXPECT_EQ(sb.memoryCacheHits, 0u);

    for (std::size_t i = 0; i < defs.size(); ++i) {
        ASSERT_NE(got_a[i], nullptr);
        ASSERT_NE(got_b[i], nullptr);
        EXPECT_EQ(got_a[i]->meta.workload, defs[i]->info.name);
        EXPECT_EQ(got_b[i]->meta.workload, defs[i]->info.name);
        EXPECT_EQ(got_a[i]->records.size(), got_b[i]->records.size());
    }

    // Every cache file parses cleanly, and a third runner is served
    // entirely from disk.
    for (const trace::CacheEntry &entry :
         trace::listTraceCache(dir.string()))
        EXPECT_EQ(entry.status, TraceStatus::Ok) << entry.path;
    core::SweepRunner c(cfg);
    for (const auto *def : defs) {
        TraceReader reader;
        ASSERT_EQ(reader.readFile(c.cachePath(configHash(
                      makeCaptureMeta(*def, opt)))),
                  TraceStatus::Ok);
        c.capture(*def, opt);
    }
    EXPECT_EQ(c.stats().machineRuns, 0u);
    EXPECT_EQ(c.stats().diskCacheHits, defs.size());
    fs::remove_all(dir);
}

TEST(SweepRunner, UnwritableCacheDirSurfacesWriteFailures)
{
    // A cacheDir whose parent is a regular file can never be created —
    // the reliable way to force write failures when tests run as root
    // (chmod 000 is a no-op for root). The capture itself must still
    // succeed; the failure lands in trace.cache.write_failures, the
    // counter laser_trace's cache-hit summary surfaces with a warning.
    obs::setEnabled(true);
    const fs::path file =
        fs::temp_directory_path() / "laser_cache_notdir";
    fs::remove_all(file);
    std::ofstream(file) << "regular file, not a directory\n";

    obs::Counter &failures = obs::Registry::global().counter(
        "trace.cache.write_failures");
    const std::uint64_t before = failures.value();

    core::SweepRunner::Config cfg;
    cfg.cacheDir = (file / "sub").string();
    core::SweepRunner runner(cfg);
    const auto *kmeans = workloads::findWorkload("kmeans");
    const auto trace = runner.capture(*kmeans, CaptureOptions{});
    ASSERT_NE(trace, nullptr);
    EXPECT_FALSE(trace->records.empty());
    EXPECT_EQ(runner.stats().machineRuns, 1u);
    EXPECT_EQ(failures.value(), before + 1);

    // The file-backed path fails the same way but still serves the
    // freshly encoded in-memory image.
    const auto tf = runner.captureFile(*kmeans, CaptureOptions{});
    ASSERT_NE(tf, nullptr);
    EXPECT_EQ(failures.value(), before + 2);
    fs::remove_all(file);
}

TEST(TraceCache, ListsOldestFirstWithHeaderStatus)
{
    const fs::path dir = fs::temp_directory_path() / "laser_cache_ls_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // Three valid traces with controlled mtimes + one junk file.
    using clock = fs::file_time_type::clock;
    const auto now = clock::now();
    for (int i = 0; i < 3; ++i) {
        Trace t = syntheticTrace();
        t.meta.pebs.sav = 7 + i; // distinct config hashes
        const std::string path =
            (dir / ("t" + std::to_string(i) + kTraceExtension)).string();
        ASSERT_EQ(writeTraceFile(t, path), TraceStatus::Ok);
        fs::last_write_time(path, now - std::chrono::seconds(100 - i));
    }
    {
        std::ofstream junk(dir / ("bad" + std::string(kTraceExtension)),
                           std::ios::binary);
        junk << "not a trace";
    }
    std::ofstream(dir / "README.txt") << "ignored";

    const std::vector<CacheEntry> entries =
        listTraceCache(dir.string());
    ASSERT_EQ(entries.size(), 4u); // junk .ltrace listed, README not
    // Oldest first: t0, t1, t2, then the just-written junk file.
    EXPECT_NE(entries[0].path.find("t0"), std::string::npos);
    EXPECT_NE(entries[1].path.find("t1"), std::string::npos);
    EXPECT_NE(entries[2].path.find("t2"), std::string::npos);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(entries[i].status, TraceStatus::Ok);
        Trace t = syntheticTrace();
        t.meta.pebs.sav = 7 + i;
        EXPECT_EQ(entries[i].configHash, configHash(t.meta));
    }
    EXPECT_EQ(entries[3].status, TraceStatus::Truncated);
    fs::remove_all(dir);
}

TEST(TraceCache, GcEvictsLeastRecentlyUsedUntilBudgetHolds)
{
    const fs::path dir = fs::temp_directory_path() / "laser_cache_gc_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    using clock = fs::file_time_type::clock;
    const auto now = clock::now();
    std::vector<std::string> paths;
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
        Trace t = syntheticTrace();
        t.meta.pebs.sav = 20 + i;
        const std::string path =
            (dir / ("g" + std::to_string(i) + kTraceExtension)).string();
        ASSERT_EQ(writeTraceFile(t, path), TraceStatus::Ok);
        fs::last_write_time(path, now - std::chrono::seconds(1000 - i));
        paths.push_back(path);
        total += fs::file_size(path);
    }

    // A budget covering everything evicts nothing.
    CacheGcResult gc = gcTraceCache(dir.string(), total);
    EXPECT_EQ(gc.scanned, 4u);
    EXPECT_EQ(gc.evicted, 0u);
    EXPECT_EQ(gc.bytesAfter, total);

    // Shrinking the budget to roughly half evicts the oldest files
    // first and leaves the directory within budget.
    gc = gcTraceCache(dir.string(), total / 2);
    EXPECT_GT(gc.evicted, 0u);
    EXPECT_LE(gc.bytesAfter, total / 2);
    EXPECT_FALSE(fs::exists(paths[0])); // oldest went first
    EXPECT_TRUE(fs::exists(paths[3]));  // newest survives

    // Budget zero empties the cache.
    gc = gcTraceCache(dir.string(), 0);
    EXPECT_EQ(gc.bytesAfter, 0u);
    EXPECT_TRUE(listTraceCache(dir.string()).empty());
    fs::remove_all(dir);
}

TEST(TraceCache, DiskHitRefreshesMtimeForLru)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_cache_touch_test";
    fs::remove_all(dir);
    const auto *kmeans = workloads::findWorkload("kmeans");
    const CaptureOptions opt;

    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    {
        core::SweepRunner warm(cfg);
        warm.capture(*kmeans, opt);
    }
    const std::string path =
        core::SweepRunner(cfg).cachePath(
            configHash(makeCaptureMeta(*kmeans, opt)));
    // Age the file far into the past, then hit it from a fresh runner:
    // the hit must refresh mtime so LRU eviction sees it as recent.
    const auto past = fs::file_time_type::clock::now() -
                      std::chrono::hours(24);
    fs::last_write_time(path, past);
    core::SweepRunner second(cfg);
    second.capture(*kmeans, opt);
    EXPECT_EQ(second.stats().diskCacheHits, 1u);
    EXPECT_GT(fs::last_write_time(path),
              past + std::chrono::hours(1));
    fs::remove_all(dir);
}

TEST(SweepRunner, CorruptCacheFileIsResimulatedAndRepaired)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_sweep_corrupt_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto *kmeans = workloads::findWorkload("kmeans");
    const CaptureOptions opt;
    const std::uint64_t key = configHash(makeCaptureMeta(*kmeans, opt));

    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    core::SweepRunner runner(cfg);
    {
        std::ofstream poison(runner.cachePath(key), std::ios::binary);
        poison << "not a trace";
    }
    runner.capture(*kmeans, opt);
    EXPECT_EQ(runner.stats().machineRuns, 1u);
    EXPECT_EQ(runner.stats().diskCacheHits, 0u);

    // The poisoned file was overwritten with a valid trace.
    TraceReader reader;
    EXPECT_EQ(reader.readFile(runner.cachePath(key)), TraceStatus::Ok);
    fs::remove_all(dir);
}

} // namespace
} // namespace laser::trace
