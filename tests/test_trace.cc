/**
 * @file
 * Tests for the trace capture/replay subsystem and the parallel sweep
 * runner: byte-exact round-trips, strict rejection of malformed files,
 * replay fidelity against the in-process pipeline, and cache-hit
 * behaviour (a repeated sweep performs zero machine runs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/experiment.h"
#include "core/sweep_runner.h"
#include "trace/capture.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace laser::trace {
namespace {

namespace fs = std::filesystem;

/** Synthetic trace exercising negative deltas and large values. */
Trace
syntheticTrace()
{
    Trace t;
    t.meta.workload = "kmeans";
    t.meta.scheme = "laser-detect";
    t.meta.build.heapPerturbation = 48;
    t.meta.pebs.sav = 19;
    t.meta.stats.cycles = 123456;
    t.meta.stats.hitmLoads = 77;
    t.meta.stats.threadCycles = {100, 200, 300, 400};
    t.meta.stats.threadInstructions = {10, 20, 30, 40};
    t.meta.runtimeCycles = 123456;
    t.meta.mapsText = "00400000-00410000 r-xp 00000000 00:00 1  /app/kmeans\n";

    pebs::PebsRecord r;
    r.pc = 0x400100;
    r.dataAddr = 0x1000040;
    r.core = 2;
    r.cycle = 5000;
    t.records.push_back(r);
    r.pc = 0x400080;                      // negative pc delta
    r.dataAddr = 0xffff'8000'0000'0100ULL; // huge positive addr delta
    r.core = 0;
    r.cycle = 4900;                       // out-of-order cycle
    t.records.push_back(r);
    r.pc = 0x400084;
    r.dataAddr = 0x70000010;              // negative addr delta
    r.core = 3;
    r.cycle = 90000;
    t.records.push_back(r);
    return t;
}

std::vector<std::uint8_t>
encode(const Trace &t)
{
    TraceWriter writer(t.meta);
    writer.appendAll(t.records);
    return writer.finalize();
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.meta.workload, b.meta.workload);
    EXPECT_EQ(a.meta.scheme, b.meta.scheme);
    EXPECT_EQ(a.meta.build.heapPerturbation, b.meta.build.heapPerturbation);
    EXPECT_EQ(a.meta.build.numThreads, b.meta.build.numThreads);
    EXPECT_EQ(a.meta.build.inputSeed, b.meta.build.inputSeed);
    EXPECT_EQ(a.meta.build.scale, b.meta.build.scale);
    EXPECT_EQ(a.meta.machine.seed, b.meta.machine.seed);
    EXPECT_EQ(a.meta.pebs.sav, b.meta.pebs.sav);
    EXPECT_EQ(a.meta.stats.cycles, b.meta.stats.cycles);
    EXPECT_EQ(a.meta.stats.hitmLoads, b.meta.stats.hitmLoads);
    EXPECT_EQ(a.meta.stats.threadCycles, b.meta.stats.threadCycles);
    EXPECT_EQ(a.meta.stats.threadInstructions,
              b.meta.stats.threadInstructions);
    EXPECT_EQ(a.meta.runtimeCycles, b.meta.runtimeCycles);
    EXPECT_EQ(a.meta.mapsText, b.meta.mapsText);
    EXPECT_EQ(configHash(a.meta), configHash(b.meta));
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].pc, b.records[i].pc) << i;
        EXPECT_EQ(a.records[i].dataAddr, b.records[i].dataAddr) << i;
        EXPECT_EQ(a.records[i].core, b.records[i].core) << i;
        EXPECT_EQ(a.records[i].cycle, b.records[i].cycle) << i;
    }
}

TEST(TraceFormat, RoundTripByteExact)
{
    const Trace original = syntheticTrace();
    const std::vector<std::uint8_t> bytes = encode(original);

    TraceReader reader;
    ASSERT_EQ(reader.parse(bytes), TraceStatus::Ok) << reader.error();
    expectTracesEqual(original, reader.trace());

    // Re-encoding the parsed trace reproduces the identical file image.
    EXPECT_EQ(encode(reader.trace()), bytes);
}

TEST(TraceFormat, CapturedRunRoundTripsThroughFile)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    ASSERT_NE(kmeans, nullptr);
    const Trace captured = captureTrace(*kmeans);
    EXPECT_FALSE(captured.records.empty());
    EXPECT_GT(captured.meta.runtimeCycles, 0u);
    EXPECT_FALSE(captured.meta.mapsText.empty());

    const std::string path =
        (fs::temp_directory_path() / "laser_test_roundtrip.ltrace")
            .string();
    ASSERT_EQ(writeTraceFile(captured, path), TraceStatus::Ok);

    TraceReader reader;
    ASSERT_EQ(reader.readFile(path), TraceStatus::Ok) << reader.error();
    expectTracesEqual(captured, reader.trace());
    EXPECT_EQ(encode(reader.trace()), encode(captured));
    std::remove(path.c_str());
}

TEST(TraceFormat, RejectsBadMagic)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes[0] = 'X';
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadMagic);
    EXPECT_FALSE(reader.error().empty());
}

TEST(TraceFormat, RejectsVersionMismatch)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes[4] = static_cast<std::uint8_t>(kTraceVersion + 1);
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadVersion);
}

TEST(TraceFormat, RejectsForeignEndianness)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    std::swap(bytes[8], bytes[11]); // byte-swapped endianness marker
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::BadEndianness);
}

TEST(TraceFormat, RejectsEveryTruncation)
{
    const std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    TraceReader reader;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const TraceStatus status = reader.parse(bytes.data(), cut);
        EXPECT_EQ(status, TraceStatus::Truncated)
            << "prefix of " << cut << " bytes parsed as "
            << traceStatusName(status);
    }
}

TEST(TraceFormat, RejectsPayloadCorruption)
{
    const std::vector<std::uint8_t> pristine = encode(syntheticTrace());
    // Flip one bit in every payload byte in turn: the checksum (or, for
    // the header's stored hash, the hash crosscheck) must catch each.
    TraceReader reader;
    for (std::size_t i = 28; i + 8 < pristine.size(); i += 7) {
        std::vector<std::uint8_t> bytes = pristine;
        bytes[i] ^= 0x40;
        EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt)
            << "flipped payload byte " << i;
    }
    // Corrupting the trailer checksum itself is also detected.
    std::vector<std::uint8_t> bytes = pristine;
    bytes.back() ^= 0x01;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
    // As is corrupting the stored config hash in the header.
    bytes = pristine;
    bytes[12] ^= 0x01;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
}

TEST(TraceFormat, RejectsTrailingGarbage)
{
    std::vector<std::uint8_t> bytes = encode(syntheticTrace());
    bytes.push_back(0xAA);
    TraceReader reader;
    EXPECT_EQ(reader.parse(bytes), TraceStatus::Corrupt);
}

TEST(TraceFormat, ReportsIoErrorForMissingFile)
{
    TraceReader reader;
    EXPECT_EQ(reader.readFile("/nonexistent/laser.ltrace"),
              TraceStatus::IoError);
}

TEST(TraceFormat, ConfigHashDependsOnConfigOnly)
{
    Trace a = syntheticTrace();
    Trace b = syntheticTrace();
    b.meta.stats.cycles += 1;     // results do not affect the key
    b.meta.runtimeCycles += 1;
    EXPECT_EQ(configHash(a.meta), configHash(b.meta));
    b.meta.pebs.sav = 7;          // config does
    EXPECT_NE(configHash(a.meta), configHash(b.meta));
    Trace c = syntheticTrace();
    c.meta.machine.seed ^= 1;
    EXPECT_NE(configHash(a.meta), configHash(c.meta));
}

// ---------------------------------------------------------------------
// Replay fidelity: record -> replay reproduces the in-process pipeline.
// ---------------------------------------------------------------------

TEST(TraceReplay, MatchesInProcessPipeline)
{
    core::ExperimentRunner runner;
    for (const char *name :
         {"kmeans", "linear_regression", "histogram'"}) {
        const auto *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        const core::RunResult live =
            runner.run(*w, core::Scheme::LaserDetectOnly);

        // Capture with the harness defaults, push through the on-disk
        // format, and replay at the default detector configuration.
        const Trace captured = captureTrace(*w);
        TraceReader reader;
        ASSERT_EQ(reader.parse(encode(captured)), TraceStatus::Ok);
        const Trace loaded = reader.takeTrace();
        TraceReplayer replayer(loaded);
        ASSERT_TRUE(replayer.ok()) << replayer.error();
        const detect::DetectionReport replayed =
            replayer.replayAtThreshold(1000.0);

        const detect::DetectionReport &expected = live.detection;
        EXPECT_EQ(replayed.totalRecords, expected.totalRecords) << name;
        EXPECT_EQ(replayed.droppedPcFilter, expected.droppedPcFilter)
            << name;
        EXPECT_EQ(replayed.droppedStackData, expected.droppedStackData)
            << name;
        EXPECT_EQ(replayed.repairRequested, expected.repairRequested)
            << name;
        ASSERT_EQ(replayed.lines.size(), expected.lines.size()) << name;
        for (std::size_t i = 0; i < expected.lines.size(); ++i) {
            EXPECT_EQ(replayed.lines[i].location,
                      expected.lines[i].location)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].type, expected.lines[i].type)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].records,
                      expected.lines[i].records)
                << name << " line " << i;
            EXPECT_DOUBLE_EQ(replayed.lines[i].hitmRate,
                             expected.lines[i].hitmRate)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].tsEvents,
                      expected.lines[i].tsEvents)
                << name << " line " << i;
            EXPECT_EQ(replayed.lines[i].fsEvents,
                      expected.lines[i].fsEvents)
                << name << " line " << i;
        }
    }
}

TEST(TraceReplay, UnknownWorkloadFailsCleanly)
{
    Trace t = syntheticTrace();
    t.meta.workload = "no_such_workload";
    TraceReplayer replayer(t);
    EXPECT_FALSE(replayer.ok());
    EXPECT_NE(replayer.error().find("no_such_workload"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Sweep runner cache behaviour
// ---------------------------------------------------------------------

std::vector<const workloads::WorkloadDef *>
sweepDefs()
{
    return {workloads::findWorkload("kmeans"),
            workloads::findWorkload("linear_regression")};
}

TEST(SweepRunner, SecondSweepPerformsZeroMachineRuns)
{
    core::SweepRunner runner;
    const std::vector<double> thresholds = {500, 1000, 4000};

    const core::ThresholdSweepResult first =
        core::thresholdSweep(runner, sweepDefs(), thresholds);
    EXPECT_EQ(first.machineRuns, 2u);

    const core::ThresholdSweepResult second =
        core::thresholdSweep(runner, sweepDefs(), thresholds);
    EXPECT_EQ(second.machineRuns, 0u);
    EXPECT_GE(runner.stats().memoryCacheHits, 2u);

    ASSERT_EQ(first.rows.size(), second.rows.size());
    for (std::size_t i = 0; i < first.rows.size(); ++i) {
        EXPECT_EQ(first.rows[i].falseNegatives,
                  second.rows[i].falseNegatives);
        EXPECT_EQ(first.rows[i].falsePositives,
                  second.rows[i].falsePositives);
    }
}

TEST(SweepRunner, DiskCachePersistsAcrossRunners)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_sweep_cache_test";
    fs::remove_all(dir);
    const auto *kmeans = workloads::findWorkload("kmeans");
    CaptureOptions opt;

    {
        core::SweepRunner::Config cfg;
        cfg.cacheDir = dir.string();
        core::SweepRunner first(cfg);
        first.capture(*kmeans, opt);
        EXPECT_EQ(first.stats().machineRuns, 1u);
    }

    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    core::SweepRunner second(cfg);
    const auto trace = second.capture(*kmeans, opt);
    EXPECT_EQ(second.stats().machineRuns, 0u);
    EXPECT_EQ(second.stats().diskCacheHits, 1u);
    EXPECT_EQ(trace->meta.workload, "kmeans");
    EXPECT_FALSE(trace->records.empty());
    fs::remove_all(dir);
}

TEST(SweepRunner, CorruptCacheFileIsResimulatedAndRepaired)
{
    const fs::path dir =
        fs::temp_directory_path() / "laser_sweep_corrupt_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto *kmeans = workloads::findWorkload("kmeans");
    const CaptureOptions opt;
    const std::uint64_t key = configHash(makeCaptureMeta(*kmeans, opt));

    core::SweepRunner::Config cfg;
    cfg.cacheDir = dir.string();
    core::SweepRunner runner(cfg);
    {
        std::ofstream poison(runner.cachePath(key), std::ios::binary);
        poison << "not a trace";
    }
    runner.capture(*kmeans, opt);
    EXPECT_EQ(runner.stats().machineRuns, 1u);
    EXPECT_EQ(runner.stats().diskCacheHits, 0u);

    // The poisoned file was overwritten with a valid trace.
    TraceReader reader;
    EXPECT_EQ(reader.readFile(runner.cachePath(key)), TraceStatus::Ok);
    fs::remove_all(dir);
}

} // namespace
} // namespace laser::trace
