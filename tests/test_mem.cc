/**
 * @file
 * Unit tests for the mem module: sparse memory, address-space layout,
 * /proc maps rendering, and the malloc-header allocator whose layout
 * decisions drive the paper's "invisible" false sharing.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "mem/address_space.h"
#include "mem/allocator.h"
#include "mem/memory.h"

namespace laser::mem {
namespace {

isa::Program
tinyProgram(bool with_lib)
{
    isa::Asm a("tiny");
    if (with_lib) {
        a.movi(isa::R12, 0x1000);
        a.callLib(isa::LibFn::Unlock);
    }
    a.halt();
    return a.finalize();
}

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pagesTouched(), 0u);
}

TEST(Memory, LittleEndianRoundTrip)
{
    Memory m;
    m.write(0x1000, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1007, 1), 0x11u);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
}

TEST(Memory, PartialWritePreservesNeighbours)
{
    Memory m;
    m.write(0x2000, 8, 0xffffffffffffffffULL);
    m.write(0x2002, 2, 0xabcd);
    EXPECT_EQ(m.read(0x2000, 8), 0xffffffffabcdffffULL);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    const std::uint64_t addr = Memory::kPageBytes - 3;
    m.write(addr, 8, 0x0123456789abcdefULL);
    EXPECT_EQ(m.read(addr, 8), 0x0123456789abcdefULL);
    EXPECT_EQ(m.pagesTouched(), 2u);
}

TEST(Memory, FillWritesRange)
{
    Memory m;
    m.fill(0x3000, 16, 0x7f);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(m.readByte(0x3000 + i), 0x7f);
    EXPECT_EQ(m.readByte(0x3010), 0);
}

TEST(AddressSpace, ClassifiesAllRegionKinds)
{
    AddressSpace space(tinyProgram(true), 4);

    EXPECT_EQ(space.classify(Layout::kCodeBase), RegionKind::AppCode);
    EXPECT_EQ(space.classify(Layout::kGlobalsBase + 8),
              RegionKind::Globals);
    EXPECT_EQ(space.classify(Layout::kHeapBase + 100), RegionKind::Heap);
    EXPECT_EQ(space.classify(space.stackBase(2) + 64), RegionKind::Stack);
    EXPECT_EQ(space.classify(Layout::kKernelBase + 0x1000),
              RegionKind::Kernel);
    EXPECT_EQ(space.classify(0x10), RegionKind::Unmapped);
    EXPECT_EQ(space.classify(0x5000'0000), RegionKind::Unmapped);
}

TEST(AddressSpace, LibrarySegmentIsLibCode)
{
    isa::Program p = tinyProgram(true);
    AddressSpace space(p, 2);
    const std::uint64_t lib_pc = space.indexToPc(p.segments[1].begin);
    EXPECT_EQ(space.classify(lib_pc), RegionKind::LibCode);
    EXPECT_EQ(space.classify(space.indexToPc(0)), RegionKind::AppCode);
}

TEST(AddressSpace, PcIndexRoundTrip)
{
    isa::Program p = tinyProgram(true);
    AddressSpace space(p, 2);
    for (std::uint32_t i = 0; i < p.size(); ++i) {
        const std::uint64_t pc = space.indexToPc(i);
        EXPECT_EQ(space.pcToIndex(pc), static_cast<std::int64_t>(i));
    }
    EXPECT_EQ(space.pcToIndex(Layout::kCodeBase - 4), -1);
    EXPECT_EQ(space.pcToIndex(space.codeEnd()), -1);
    EXPECT_EQ(space.pcToIndex(Layout::kCodeBase + 1), -1); // misaligned
}

TEST(AddressSpace, StackRegionsPerThread)
{
    AddressSpace space(tinyProgram(false), 3);
    for (int t = 0; t < 3; ++t) {
        const Region *r = space.find(space.stackTop(t));
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->kind, RegionKind::Stack);
        EXPECT_EQ(r->tid, t);
    }
    // Guard gap between stacks is unmapped.
    EXPECT_EQ(space.classify(space.stackBase(0) + Layout::kStackSize + 8),
              RegionKind::Unmapped);
}

TEST(AddressSpace, ProcMapsHasExpectedEntries)
{
    AddressSpace space(tinyProgram(true), 2);
    const std::string maps = space.renderProcMaps();
    EXPECT_NE(maps.find("/app/tiny"), std::string::npos);
    EXPECT_NE(maps.find("/usr/lib/libpthread.so"), std::string::npos);
    EXPECT_NE(maps.find("[heap]"), std::string::npos);
    EXPECT_NE(maps.find("[stack:1000]"), std::string::npos);
    EXPECT_NE(maps.find("[stack:1001]"), std::string::npos);
    EXPECT_NE(maps.find("r-xp"), std::string::npos);
    EXPECT_NE(maps.find("rw-p"), std::string::npos);
}

TEST(Allocator, MallocReturnsSixteenAlignedWithHeader)
{
    BumpAllocator heap(0x1000000, 0x100000);
    const std::uint64_t a = heap.alloc(64);
    // First chunk: base + 16-byte header.
    EXPECT_EQ(a, 0x1000000u + BumpAllocator::kHeaderBytes);
    EXPECT_EQ(a % BumpAllocator::kMinAlign, 0u);
    const std::uint64_t b = heap.alloc(64);
    EXPECT_GE(b, a + 64 + BumpAllocator::kHeaderBytes);
}

TEST(Allocator, SixtyFourByteStructArrayStraddlesLines)
{
    // The linear_regression layout (Figure 2): a 64-byte-per-element
    // array allocated with plain malloc starts at offset 16 (mod 64), so
    // every element spans two cache lines and adjacent threads share one.
    BumpAllocator heap(0x1000000, 0x100000);
    const std::uint64_t args = heap.alloc(4 * 64);
    EXPECT_EQ(args % 64, 16u);
    const std::uint64_t elem0_line_end = (args / 64 + 1) * 64;
    EXPECT_LT(elem0_line_end, args + 64); // element 0 crosses a line
}

TEST(Allocator, AlignedAllocationFixesStraddling)
{
    BumpAllocator heap(0x1000000, 0x100000);
    const std::uint64_t args = heap.allocAligned(4 * 64, 64);
    EXPECT_EQ(args % 64, 0u);
}

TEST(Allocator, PerturbationShiftsLayout)
{
    // The LASER-attach layout shift (Section 7.4.2): +48 bytes moves a
    // plain malloc from offset 16 to offset 0 (mod 64).
    BumpAllocator native(0x1000000, 0x100000);
    BumpAllocator under_laser(0x1000000, 0x100000);
    under_laser.perturb(48);
    EXPECT_EQ(native.alloc(512) % 64, 16u);
    EXPECT_EQ(under_laser.alloc(512) % 64, 0u);
}

TEST(Allocator, ReturnsZeroWhenExhausted)
{
    BumpAllocator heap(0x1000, 128);
    EXPECT_NE(heap.alloc(32), 0u);
    EXPECT_EQ(heap.alloc(4096), 0u);
}

} // namespace
} // namespace laser::mem
