/**
 * @file
 * Tests for the laser_lint engine (src/lint/lint.h): each rule is
 * exercised in-memory and against the fixture files under
 * tests/lint_fixtures/, and a self-check asserts the shipped tree
 * lints clean (the same invariant CI's static-analysis job enforces).
 *
 * LASER_SOURCE_DIR is injected by CMake so the fixture / self-check
 * tests find the repository regardless of the build directory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace laser::lint {
namespace {

/** (line, rule) pairs of @p findings, for order-insensitive asserts. */
std::vector<std::pair<int, std::string>>
lineRules(const std::vector<Finding> &findings)
{
    std::vector<std::pair<int, std::string>> out;
    for (const Finding &f : findings)
        out.emplace_back(f.line, f.rule);
    return out;
}

std::vector<Finding>
lintFixture(const std::string &name)
{
    const std::string rel = "tests/lint_fixtures/" + name;
    SourceFile f;
    EXPECT_TRUE(loadFile(LASER_SOURCE_DIR, rel, &f))
        << "cannot read " << rel;
    return lintSource(f.path, f.content);
}

// ---------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------

TEST(LintRules, ListsAllSevenRules)
{
    std::set<std::string> names;
    for (const RuleInfo &r : rules())
        names.insert(r.name);
    EXPECT_EQ(names.size(), 7u);
    EXPECT_TRUE(isRule("unchecked-status"));
    EXPECT_TRUE(isRule("nodiscard-status"));
    EXPECT_TRUE(isRule("raw-mutex"));
    EXPECT_TRUE(isRule("raw-new-delete"));
    EXPECT_TRUE(isRule("include-guard"));
    EXPECT_TRUE(isRule("header-hygiene"));
    EXPECT_TRUE(isRule("raw-fd-close"));
    EXPECT_FALSE(isRule("no-such-rule"));
}

TEST(LintRules, FindingStrIsMachineReadable)
{
    Finding f{"src/a.cc", 12, "raw-mutex", "boom"};
    EXPECT_EQ(f.str(), "src/a.cc:12: raw-mutex: boom");
}

// ---------------------------------------------------------------------
// unchecked-status
// ---------------------------------------------------------------------

TEST(UncheckedStatus, FlagsBareCallStatements)
{
    const auto got = lineRules(lintFixture("unchecked_status.cc"));
    const std::vector<std::pair<int, std::string>> want = {
        {17, "unchecked-status"},
        {18, "unchecked-status"},
        {19, "unchecked-status"},
    };
    EXPECT_EQ(got, want);
}

TEST(UncheckedStatus, CrossFileDeclarationsParameterizeTheRule)
{
    // The declaration lives in a header, the dropped call in a .cc.
    const std::vector<SourceFile> files = {
        {"src/x/api.h",
         "#ifndef LASER_X_API_H\n#define LASER_X_API_H\n"
         "struct TraceStatus;\n"
         "[[nodiscard]] TraceStatus persist();\n"
         "#endif // LASER_X_API_H\n"},
        {"src/x/use.cc", "void f() { persist(); }\n"},
    };
    const auto findings = lintFiles(files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/x/use.cc");
    EXPECT_EQ(findings[0].rule, "unchecked-status");
    EXPECT_EQ(findings[0].line, 1);
}

TEST(UncheckedStatus, IgnoresUsedResults)
{
    const std::string src =
        "struct TraceStatus { int v; };\n"
        "TraceStatus run();\n"
        "int f() {\n"
        "    TraceStatus st = run();\n"
        "    if (run().v) { }\n"
        "    return run().v;\n"
        "}\n";
    EXPECT_TRUE(lintSource("src/a.cc", src).empty());
}

// ---------------------------------------------------------------------
// nodiscard-status
// ---------------------------------------------------------------------

TEST(NodiscardStatus, FlagsUnmarkedHeaderDeclarations)
{
    const auto got = lineRules(lintFixture("missing_nodiscard.h"));
    const std::vector<std::pair<int, std::string>> want = {
        {10, "nodiscard-status"},
        {11, "nodiscard-status"},
        {19, "nodiscard-status"},
    };
    EXPECT_EQ(got, want);
}

TEST(NodiscardStatus, OnlyAppliesToHeaders)
{
    const std::string src = "struct TraceStatus;\nTraceStatus impl();\n";
    // Same content: flagged as .h, ignored as .cc (definitions in .cc
    // inherit [[nodiscard]] from their header declaration).
    const std::string guarded =
        "#ifndef LASER_A_H\n#define LASER_A_H\n" + src +
        "#endif // LASER_A_H\n";
    EXPECT_EQ(lintSource("src/a.h", guarded).size(), 1u);
    EXPECT_TRUE(lintSource("src/a.cc", src).empty());
}

// ---------------------------------------------------------------------
// raw-mutex
// ---------------------------------------------------------------------

TEST(RawMutex, FlagsStdPrimitivesButNotSuppressedOrForeignNames)
{
    const auto got = lineRules(lintFixture("raw_mutex.cc"));
    const std::vector<std::pair<int, std::string>> want = {
        {8, "raw-mutex"},
        {9, "raw-mutex"},
        {14, "raw-mutex"}, // std::lock_guard
        {14, "raw-mutex"}, // its std::mutex template argument
    };
    EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------
// raw-new-delete
// ---------------------------------------------------------------------

TEST(RawNewDelete, FlagsExpressionsButNotDeletedMembersOrOperators)
{
    const auto got = lineRules(lintFixture("raw_new.cc"));
    const std::vector<std::pair<int, std::string>> want = {
        {16, "raw-new-delete"},
        {17, "raw-new-delete"},
    };
    EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------

TEST(IncludeGuard, FlagsWrongGuardName)
{
    const auto findings = lintFixture("bad_guard.h");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "include-guard");
    EXPECT_NE(findings[0].message.find("LASER_LINT_FIXTURES_BAD_GUARD_H"),
              std::string::npos);
}

TEST(IncludeGuard, FlagsMissingGuardAndAcceptsCanonical)
{
    EXPECT_EQ(lintSource("src/util/x.h", "int f();\n").size(), 1u);
    const std::string good =
        "#ifndef LASER_UTIL_X_H\n#define LASER_UTIL_X_H\n"
        "int f();\n"
        "#endif // LASER_UTIL_X_H\n";
    EXPECT_TRUE(lintSource("src/util/x.h", good).empty());
    // src/ is the include root (dropped); other trees keep their dir.
    const std::string bench =
        "#ifndef LASER_BENCH_COMMON_H\n#define LASER_BENCH_COMMON_H\n"
        "#endif\n";
    EXPECT_TRUE(lintSource("bench/bench_common.h", bench).empty());
}

TEST(IncludeGuard, CoversProtocolHeaders)
{
    // The coherence-protocol headers follow the canonical guard scheme;
    // a stale guard (say, copied from coherence.h) is flagged with the
    // expected name.
    const auto guarded = [](const std::string &guard) {
        return "#ifndef " + guard + "\n#define " + guard + "\n#endif // " +
               guard + "\n";
    };
    EXPECT_TRUE(lintSource("src/sim/protocol.h",
                           guarded("LASER_SIM_PROTOCOL_H"))
                    .empty());
    EXPECT_TRUE(lintSource("src/sim/protocol_mesi.h",
                           guarded("LASER_SIM_PROTOCOL_MESI_H"))
                    .empty());
    EXPECT_TRUE(lintSource("src/sim/protocol_dragon.h",
                           guarded("LASER_SIM_PROTOCOL_DRAGON_H"))
                    .empty());

    const auto findings = lintSource("src/sim/protocol.h",
                                     guarded("LASER_SIM_COHERENCE_H"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "include-guard");
    EXPECT_NE(findings[0].message.find("LASER_SIM_PROTOCOL_H"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// header-hygiene
// ---------------------------------------------------------------------

TEST(HeaderHygiene, FlagsUsingNamespaceButNotUsingDeclarations)
{
    const auto got = lineRules(lintFixture("using_namespace.h"));
    const std::vector<std::pair<int, std::string>> want = {
        {8, "header-hygiene"},
    };
    EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------
// raw-fd-close
// ---------------------------------------------------------------------

TEST(RawFdClose, FlagsBareAndGlobalQualifiedCallsInScope)
{
    // The rule is path-scoped, so lint the fixture's content under a
    // synthetic src/obs/ path (its real tests/lint_fixtures/ path is
    // outside the fd-owning trees).
    SourceFile f;
    ASSERT_TRUE(
        loadFile(LASER_SOURCE_DIR, "tests/lint_fixtures/raw_close.cc",
                 &f));
    const auto got = lineRules(lintSource("src/obs/raw_close.cc",
                                          f.content));
    const std::vector<std::pair<int, std::string>> want = {
        {18, "raw-fd-close"},
        {19, "raw-fd-close"},
        {25, "raw-fd-close"}, // `return close(fd)` is still the call
    };
    EXPECT_EQ(got, want);
}

TEST(RawFdClose, OnlyAppliesToFdOwningTrees)
{
    const std::string src = "void f(int fd) { ::close(fd); }\n";
    EXPECT_EQ(lintSource("src/obs/a.cc", src).size(), 1u);
    EXPECT_EQ(lintSource("src/util/a.cc", src).size(), 1u);
    EXPECT_EQ(lintSource("tools/a.cc", src).size(), 1u);
    EXPECT_TRUE(lintSource("src/trace/a.cc", src).empty());
    EXPECT_TRUE(lintSource("bench/a.cc", src).empty());
}

TEST(RawFdClose, ExemptsMemberCallsQualifiedCallsAndDeclarations)
{
    const std::string src =
        "struct S { void close(); static void close(int); };\n"
        "void f(S &s, S *p, int fd) {\n"
        "    s.close();\n"
        "    p->close();\n"
        "    S::close(fd);\n"
        "}\n";
    EXPECT_TRUE(lintSource("src/obs/a.cc", src).empty());
}

// ---------------------------------------------------------------------
// Lexer corner cases
// ---------------------------------------------------------------------

TEST(LintLexer, IgnoresBannedTokensInCommentsAndStrings)
{
    const std::string src =
        "// std::mutex new delete\n"
        "/* std::mutex\n   new */\n"
        "const char *a = \"std::mutex new\";\n"
        "const char *b = R\"(std::mutex delete)\";\n"
        "const char c = 'x';\n";
    EXPECT_TRUE(lintSource("src/a.cc", src).empty());
}

TEST(LintLexer, SuppressionCoversOwnLineAndNextCodeLine)
{
    const std::string src =
        "int *a = new int; // laser-lint: allow(raw-new-delete) why\n"
        "// laser-lint: allow(raw-new-delete) next-line form\n"
        "int *b = new int;\n"
        "int *c = new int;\n";
    const auto findings = lintSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintLexer, TrailingSuppressionDoesNotLeakToNextLine)
{
    const std::string src =
        "int *a = new int; // laser-lint: allow(raw-new-delete) why\n"
        "int *b = new int;\n";
    const auto findings = lintSource("src/a.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 2);
}

TEST(LintLexer, RuleFilterRestrictsOutput)
{
    const std::string src = "using namespace std;\nint *p = new int;\n";
    Options only;
    only.enabledRules = {"raw-new-delete"};
    const auto findings =
        lintSource("src/a.h", src, only); // guard violation filtered too
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "raw-new-delete");
}

// ---------------------------------------------------------------------
// Repository self-check: the shipped tree must lint clean, with the
// fixture directory excluded from collection.
// ---------------------------------------------------------------------

TEST(LintSelfCheck, CollectSkipsFixturesAndFindsKnownFiles)
{
    const auto paths = collectFiles(LASER_SOURCE_DIR);
    EXPECT_FALSE(paths.empty());
    for (const std::string &p : paths)
        EXPECT_EQ(p.find("lint_fixtures"), std::string::npos) << p;
    const auto has = [&](const char *p) {
        return std::find(paths.begin(), paths.end(), p) != paths.end();
    };
    EXPECT_TRUE(has("src/lint/lint.h"));
    EXPECT_TRUE(has("src/trace/trace.cc"));
    EXPECT_TRUE(has("tools/laser_lint.cc"));
    EXPECT_TRUE(has("tests/test_lint.cc"));
}

TEST(LintSelfCheck, ShippedTreeLintsClean)
{
    std::vector<SourceFile> files;
    for (const std::string &p : collectFiles(LASER_SOURCE_DIR)) {
        SourceFile f;
        ASSERT_TRUE(loadFile(LASER_SOURCE_DIR, p, &f)) << p;
        files.push_back(std::move(f));
    }
    const auto findings = lintFiles(files);
    for (const Finding &f : findings)
        ADD_FAILURE() << f.str();
    EXPECT_TRUE(findings.empty());
}

} // namespace
} // namespace laser::lint
