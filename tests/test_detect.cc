/**
 * @file
 * Unit tests for LASERDETECT: maps parsing/filtering, the Figure 5
 * cache-line model, pipeline filtering, line aggregation, rate
 * thresholding, TS/FS typing and the online repair trigger.
 */

#include <gtest/gtest.h>

#include "detect/cacheline_model.h"
#include "detect/detector.h"
#include "detect/maps_filter.h"
#include "isa/assembler.h"
#include "mem/address_space.h"
#include "pebs/record.h"
#include "sim/timing.h"

namespace laser::detect {
namespace {

using namespace laser::isa;

// ---------------------------------------------------------------------
// MapsFilter
// ---------------------------------------------------------------------

isa::Program
progWithLib()
{
    Asm a("demo");
    a.at(10).store(R2, 0, R3, 8); // index 0, app store
    a.at(11).load(R4, R2, 0, 8);  // index 1, app load
    a.movi(R12, 0x600040);
    a.callLib(LibFn::Unlock);
    a.halt();
    return a.finalize();
}

TEST(MapsFilter, ParsesRenderedMaps)
{
    isa::Program p = progWithLib();
    mem::AddressSpace space(p, 2);
    MapsFilter filter(space.renderProcMaps());
    EXPECT_GE(filter.entries().size(), 5u);
}

TEST(MapsFilter, ClassifiesPcs)
{
    isa::Program p = progWithLib();
    mem::AddressSpace space(p, 2);
    MapsFilter filter(space.renderProcMaps());

    EXPECT_EQ(filter.classifyPc(space.indexToPc(0)),
              PcClass::Application);
    EXPECT_EQ(filter.classifyPc(space.indexToPc(p.segments[1].begin)),
              PcClass::Library);
    EXPECT_EQ(filter.classifyPc(0x30000000), PcClass::Other);
    EXPECT_EQ(filter.classifyPc(0xffff800000001000ULL), PcClass::Other);
    // Data regions are not executable: PCs there are "other".
    EXPECT_EQ(filter.classifyPc(mem::Layout::kHeapBase + 64),
              PcClass::Other);
}

TEST(MapsFilter, ClassifiesDataAddresses)
{
    isa::Program p = progWithLib();
    mem::AddressSpace space(p, 2);
    MapsFilter filter(space.renderProcMaps());

    EXPECT_EQ(filter.classifyData(mem::Layout::kHeapBase + 64),
              DataClass::Heap);
    EXPECT_EQ(filter.classifyData(space.stackTop(0)), DataClass::Stack);
    EXPECT_EQ(filter.classifyData(space.stackTop(1)), DataClass::Stack);
    EXPECT_EQ(filter.classifyData(mem::Layout::kGlobalsBase + 8),
              DataClass::Globals);
    EXPECT_EQ(filter.classifyData(0x30000000), DataClass::Unmapped);
    EXPECT_EQ(filter.classifyData(0xffff800000001000ULL),
              DataClass::Kernel);
}

// ---------------------------------------------------------------------
// CacheLineModel (Figure 5)
// ---------------------------------------------------------------------

TEST(CacheLineModel, FirstAccessIsNone)
{
    CacheLineModel model;
    EXPECT_EQ(model.access(0x1000, 4, true), SharingOutcome::None);
    EXPECT_EQ(model.linesTracked(), 1u);
}

TEST(CacheLineModel, Figure5Example)
{
    // Figure 5: previous 2B write at the line base, incoming 4B write at
    // base+4: disjoint bytes => false sharing.
    CacheLineModel model;
    model.access(0x1000, 2, true);
    EXPECT_EQ(model.access(0x1004, 4, true),
              SharingOutcome::FalseSharing);
}

TEST(CacheLineModel, OverlapWithWriteIsTrueSharing)
{
    CacheLineModel model;
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1004, 8, false),
              SharingOutcome::TrueSharing);
}

TEST(CacheLineModel, ReadReadIsNotContention)
{
    CacheLineModel model;
    model.access(0x1000, 8, false);
    EXPECT_EQ(model.access(0x1000, 8, false), SharingOutcome::None);
    EXPECT_EQ(model.access(0x1020, 8, false), SharingOutcome::None);
}

TEST(CacheLineModel, ReadThenWriteOverlapIsTrueSharing)
{
    CacheLineModel model;
    model.access(0x1000, 8, false);
    EXPECT_EQ(model.access(0x1000, 8, true), SharingOutcome::TrueSharing);
}

TEST(CacheLineModel, DistinctLinesIndependent)
{
    CacheLineModel model;
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1040, 8, true), SharingOutcome::None);
    EXPECT_EQ(model.linesTracked(), 2u);
}

TEST(CacheLineModel, TracksLatestAccessOnly)
{
    CacheLineModel model;
    model.access(0x1000, 4, true);  // bytes 0-3
    model.access(0x1008, 4, false); // bytes 8-11 -> FS, now last
    // Incoming write to bytes 8-11 overlaps the *previous* (read) access.
    EXPECT_EQ(model.access(0x1008, 4, true), SharingOutcome::TrueSharing);
}

TEST(CacheLineModel, AccessClippedAtLineBoundary)
{
    CacheLineModel model;
    // 8B access at offset 60 clips to 4 bytes in this line.
    model.access(0x103c, 8, true);
    EXPECT_EQ(model.access(0x1000, 4, true), SharingOutcome::FalseSharing);
}

TEST(CacheLineModel, ZeroSizeAccessIsNeverContention)
{
    // Regression: a size-0 access used to produce an empty byte mask
    // that classify() reported as FalseSharing whenever a write was
    // involved — phantom FS events from degenerate records.
    CacheLineModel model;
    model.access(0x1000, 0, true);
    EXPECT_EQ(model.linesTracked(), 0u); // empty footprint: no state
    EXPECT_EQ(model.access(0x1008, 4, false), SharingOutcome::None);

    model.clear();
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1008, 0, true), SharingOutcome::None);
    EXPECT_EQ(model.access(0x1010, 0, false), SharingOutcome::None);
}

TEST(CacheLineModel, NegativeSizeAccessIsNeverContention)
{
    CacheLineModel model;
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1008, -4, true), SharingOutcome::None);
    EXPECT_EQ(CacheLineModel::byteMask(0x1008, -4), 0u);
}

TEST(CacheLineModel, ClassifyEmptyMaskIsNone)
{
    EXPECT_EQ(CacheLineModel::classify(0, true, 0xff, true),
              SharingOutcome::None);
    EXPECT_EQ(CacheLineModel::classify(0xff, true, 0, true),
              SharingOutcome::None);
    EXPECT_EQ(CacheLineModel::classify(0xff, true, 0xff00, true),
              SharingOutcome::FalseSharing);
}

TEST(CacheLineModel, NarrowLinesSeparateNeighbours)
{
    // With 32-byte lines, offsets 32 bytes apart are different lines.
    CacheLineModel model(32);
    EXPECT_EQ(model.lineBytes(), 32);
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1020, 8, true), SharingOutcome::None);
    EXPECT_EQ(model.linesTracked(), 2u);
    // ... but offsets within the same 32-byte line still contend.
    EXPECT_EQ(model.access(0x1008, 8, true), SharingOutcome::FalseSharing);
}

TEST(CacheLineModel, WideLinesJoinNeighbours)
{
    // With 128-byte lines, offsets 0 and 96 share a line; the footprint
    // is tracked at 2-byte granules so disjointness is still seen.
    CacheLineModel model(128);
    EXPECT_EQ(model.lineBytes(), 128);
    model.access(0x1000, 8, true);
    EXPECT_EQ(model.access(0x1060, 8, true), SharingOutcome::FalseSharing);
    EXPECT_EQ(model.linesTracked(), 1u);
    EXPECT_EQ(model.access(0x1060, 8, false), SharingOutcome::TrueSharing);
}

TEST(CacheLineModel, WideLineMaskGranules)
{
    // 128-byte line: bit i covers bytes [2i, 2i+2).
    EXPECT_EQ(CacheLineModel::byteMask(0x1000, 2, 128), 0x1u);
    EXPECT_EQ(CacheLineModel::byteMask(0x1000, 4, 128), 0x3u);
    EXPECT_EQ(CacheLineModel::byteMask(0x1060, 2, 128), 1ull << 48);
    // A full-line access covers all 64 granule bits.
    EXPECT_EQ(CacheLineModel::byteMask(0x1000, 128, 128), ~0ull);
    // Odd offsets round outward to their covering granules.
    EXPECT_EQ(CacheLineModel::byteMask(0x1001, 2, 128), 0x3u);
}

TEST(CacheLineModel, InvalidLineBytesFallsBackToDefault)
{
    CacheLineModel model(48); // not a power of two
    EXPECT_EQ(model.lineBytes(), CacheLineModel::kDefaultLineBytes);
    CacheLineModel huge(4096); // out of the simulated geometry range
    EXPECT_EQ(huge.lineBytes(), CacheLineModel::kDefaultLineBytes);
}

// ---------------------------------------------------------------------
// Detector pipeline
// ---------------------------------------------------------------------

struct DetectorFixture
{
    isa::Program prog = progWithLib();
    mem::AddressSpace space{prog, 2};
    sim::TimingModel timing{};

    pebs::PebsRecord
    record(std::uint32_t index, std::uint64_t addr,
           std::uint64_t cycle = 1000) const
    {
        pebs::PebsRecord r;
        r.pc = space.indexToPc(index);
        r.dataAddr = addr;
        r.core = 0;
        r.cycle = cycle;
        return r;
    }

    Detector
    makeDetector(DetectorConfig cfg = {}) const
    {
        return Detector(prog, space, space.renderProcMaps(), timing, cfg);
    }
};

TEST(Detector, DropsSpuriousPcs)
{
    DetectorFixture f;
    Detector d = f.makeDetector();
    pebs::PebsRecord junk;
    junk.pc = 0x30000000; // outside any mapping
    junk.dataAddr = 0x1000000;
    d.processRecord(junk);
    junk.pc = 0xffff800000001000ULL; // kernel
    d.processRecord(junk);
    DetectionReport rep = d.finish(1'133'333);
    EXPECT_EQ(rep.droppedPcFilter, 2u);
    EXPECT_TRUE(rep.lines.empty());
}

TEST(Detector, DropsStackDataAddresses)
{
    DetectorFixture f;
    Detector d = f.makeDetector();
    d.processRecord(f.record(0, f.space.stackTop(0)));
    DetectionReport rep = d.finish(1'133'333);
    EXPECT_EQ(rep.droppedStackData, 1u);
    EXPECT_TRUE(rep.lines.empty());
}

TEST(Detector, ReportsHotLineAboveThreshold)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    // 1000 records at one PC over ~1ms represented time: far above 1K/s.
    for (int i = 0; i < 1000; ++i)
        d.processRecord(f.record(0, 0x1000000 + (i % 2) * 8));
    DetectionReport rep = d.finish(1'133'333);
    ASSERT_EQ(rep.lines.size(), 1u);
    EXPECT_EQ(rep.lines[0].location, "main.c:10");
    EXPECT_FALSE(rep.lines[0].library);
    EXPECT_EQ(rep.lines[0].records, 1000u);
    EXPECT_GE(rep.lines[0].hitmRate, cfg.rateThreshold);
}

TEST(Detector, RateThresholdFiltersColdLines)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    // 3.4e9 cycles = 1000 represented seconds at compression 1000; three
    // records => 0.003/s, far below any threshold.
    Detector d = f.makeDetector(cfg);
    for (int i = 0; i < 3; ++i)
        d.processRecord(f.record(0, 0x1000000));
    DetectionReport rep = d.finish(1'133'333'333ULL);
    EXPECT_TRUE(rep.lines.empty());
}

TEST(Detector, ClassifiesFalseSharing)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    // Alternating disjoint 8-byte halves of one line, written via the
    // store at index 0.
    for (int i = 0; i < 2000; ++i)
        d.processRecord(f.record(0, 0x1000000 + (i % 2) * 32));
    DetectionReport rep = d.finish(1'133'333);
    ASSERT_FALSE(rep.lines.empty());
    EXPECT_EQ(rep.lines[0].type, ContentionType::FalseSharing);
    EXPECT_GT(rep.lines[0].fsEvents, rep.lines[0].tsEvents);
}

TEST(Detector, ClassifiesTrueSharing)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    for (int i = 0; i < 2000; ++i)
        d.processRecord(f.record(0, 0x1000000)); // same word every time
    DetectionReport rep = d.finish(1'133'333);
    ASSERT_FALSE(rep.lines.empty());
    EXPECT_EQ(rep.lines[0].type, ContentionType::TrueSharing);
}

TEST(Detector, NoisyAddressesYieldUnknownType)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    // Unique garbage addresses: no line ever sees two accesses, so
    // nothing classifies (the linear_regression -O3 situation).
    for (int i = 0; i < 2000; ++i)
        d.processRecord(f.record(0, 0x20000000 + i * 4096));
    DetectionReport rep = d.finish(1'133'333);
    ASSERT_FALSE(rep.lines.empty());
    EXPECT_EQ(rep.lines[0].type, ContentionType::Unknown);
}

TEST(Detector, AggregatesAdjacentPcsToSameLine)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    // Records at index 0 and (skidded) index 1 belong to lines 10/11.
    for (int i = 0; i < 2400; ++i) {
        d.processRecord(f.record(0, 0x1000000));
        d.processRecord(f.record(1, 0x1000000));
    }
    DetectionReport rep = d.finish(1'133'333);
    EXPECT_NE(rep.findLine("main.c:10"), nullptr);
    EXPECT_NE(rep.findLine("main.c:11"), nullptr);
}

TEST(Detector, RepairTriggersOnFalseSharingStorm)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 19;
    cfg.rateCheckInterval = 100'000;
    Detector d = f.makeDetector(cfg);
    // Heavy FS: disjoint halves, cycles advancing so rates compute.
    for (int i = 0; i < 5000 && !d.repairRequested(); ++i)
        d.processRecord(f.record(0, 0x1000000 + (i % 2) * 32,
                                 1000 + 400ull * i));
    DetectionReport rep = d.finish(1'700'000);
    EXPECT_TRUE(rep.repairRequested);
    ASSERT_FALSE(rep.repairPcs.empty());
    EXPECT_EQ(rep.repairPcs[0], 0u); // the store instruction
    EXPECT_GT(rep.repairTriggerCycle, 0u);
}

TEST(Detector, RepairNotTriggeredByTrueSharing)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 19;
    cfg.rateCheckInterval = 100'000;
    Detector d = f.makeDetector(cfg);
    for (int i = 0; i < 5000; ++i)
        d.processRecord(f.record(0, 0x1000000, 1000 + 400ull * i));
    DetectionReport rep = d.finish(1'700'000);
    EXPECT_FALSE(rep.repairRequested);
}

TEST(Detector, RepairNotTriggeredBelowRate)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 19;
    cfg.rateCheckInterval = 100'000;
    Detector d = f.makeDetector(cfg);
    // Sparse FS records: far apart in time.
    for (int i = 0; i < 200; ++i)
        d.processRecord(f.record(0, 0x1000000 + (i % 2) * 32,
                                 1000 + 10'000'000ull * i));
    DetectionReport rep = d.finish(700'000'000ULL);
    EXPECT_FALSE(rep.repairRequested);
}

TEST(Detector, DetectorCyclesScaleWithRecords)
{
    DetectorFixture f;
    DetectorConfig cfg;
    Detector d = f.makeDetector(cfg);
    for (int i = 0; i < 100; ++i)
        d.processRecord(f.record(0, 0x1000000));
    DetectionReport rep = d.finish(1'133'333);
    EXPECT_EQ(rep.detectorCycles, 100ull * f.timing.detectorPerRecord);
}

TEST(Detector, LibraryLinesFlagged)
{
    DetectorFixture f;
    DetectorConfig cfg;
    cfg.sav = 1;
    Detector d = f.makeDetector(cfg);
    const std::uint32_t lib_index = f.prog.segments[1].begin;
    for (int i = 0; i < 1000; ++i)
        d.processRecord(f.record(lib_index, 0x1000000));
    DetectionReport rep = d.finish(1'133'333);
    ASSERT_FALSE(rep.lines.empty());
    EXPECT_TRUE(rep.lines[0].library);
    EXPECT_NE(rep.lines[0].location.find("libpthread.c"),
              std::string::npos);
}

} // namespace
} // namespace laser::detect
