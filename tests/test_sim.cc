/**
 * @file
 * Unit and property tests for the simulator: MESI outcomes and invariants,
 * interpreter semantics, HITM generation, SSB behaviour and TSO
 * visibility, and machine determinism.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/coherence.h"
#include "sim/machine.h"
#include "sim/ssb.h"
#include "util/rng.h"

namespace laser::sim {
namespace {

using isa::Asm;
using isa::LibFn;
using isa::Op;
using namespace laser::isa; // register names

// ---------------------------------------------------------------------
// CoherenceDirectory
// ---------------------------------------------------------------------

TEST(Coherence, FirstTouchIsMemMiss)
{
    CoherenceDirectory dir(4);
    EXPECT_EQ(dir.access(0, 0x1000, false, true), AccessOutcome::MemMiss);
    EXPECT_EQ(dir.access(1, 0x2000, true, false), AccessOutcome::MemMiss);
}

TEST(Coherence, RepeatAccessHits)
{
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, false, true);
    EXPECT_EQ(dir.access(0, 0x1000, false, true), AccessOutcome::L1Hit);
    // E -> M silently on local write.
    EXPECT_EQ(dir.access(0, 0x1000, true, false), AccessOutcome::L1Hit);
    EXPECT_EQ(dir.access(0, 0x1000, true, false), AccessOutcome::L1Hit);
}

TEST(Coherence, RemoteReadOfModifiedIsHitmLoad)
{
    // Figure 1a: remote write then local read.
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, true, false);
    EXPECT_EQ(dir.access(1, 0x1000, false, true), AccessOutcome::HitmLoad);
    // After the HITM both cores share the line.
    EXPECT_EQ(dir.access(0, 0x1000, false, true), AccessOutcome::L1Hit);
    EXPECT_EQ(dir.access(1, 0x1000, false, true), AccessOutcome::L1Hit);
}

TEST(Coherence, RemoteWriteOfModifiedIsHitmStore)
{
    // Figure 1c: remote write then local write (pure store).
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, true, false);
    EXPECT_EQ(dir.access(1, 0x1000, true, false), AccessOutcome::HitmStore);
}

TEST(Coherence, RmwOfRemoteModifiedIsHitmLoad)
{
    // An RMW contains a load uop, so its HITM is load-class and PEBS
    // reports it precisely (Section 3.1).
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, true, false);
    EXPECT_EQ(dir.access(1, 0x1000, true, true), AccessOutcome::HitmLoad);
}

TEST(Coherence, ReadSharedThenWriteIsUpgrade)
{
    // Figure 1b: remote read then local write.
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, false, true);
    dir.access(1, 0x1000, false, true);
    EXPECT_EQ(dir.access(0, 0x1000, true, false), AccessOutcome::Upgrade);
    // The other core lost its copy; its next read is a HITM.
    EXPECT_EQ(dir.access(1, 0x1000, false, true), AccessOutcome::HitmLoad);
}

TEST(Coherence, WriteToRemoteCleanIsRfoNotHitm)
{
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, false, true); // E in core 0
    EXPECT_EQ(dir.access(1, 0x1000, true, false), AccessOutcome::RfoShared);
}

TEST(Coherence, ReadReadSharingNeverHitms)
{
    CoherenceDirectory dir(4);
    for (int c = 0; c < 4; ++c) {
        const auto out = dir.access(c, 0x4000, false, true);
        EXPECT_NE(out, AccessOutcome::HitmLoad);
        EXPECT_NE(out, AccessOutcome::HitmStore);
    }
}

TEST(Coherence, DistinctLinesAreIndependent)
{
    CoherenceDirectory dir(4);
    dir.access(0, 0x1000, true, false);
    EXPECT_EQ(dir.access(1, 0x1040, true, false), AccessOutcome::MemMiss);
    EXPECT_EQ(dir.lineOf(0x1000), dir.lineOf(0x103f));
    EXPECT_NE(dir.lineOf(0x1000), dir.lineOf(0x1040));
}

/** Property: MESI invariants hold under random access streams. */
class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CoherenceProperty, InvariantsUnderRandomTraffic)
{
    laser::Rng rng(GetParam());
    CoherenceDirectory dir(4);
    for (int i = 0; i < 20000; ++i) {
        const int core = static_cast<int>(rng.below(4));
        const std::uint64_t addr = 0x1000 + rng.below(32) * 8;
        const bool is_write = rng.chance(0.4);
        const bool load_class = !is_write || rng.chance(0.5);
        dir.access(core, addr, is_write, load_class);
        if (i % 512 == 0)
            ASSERT_TRUE(dir.checkInvariants()) << "iteration " << i;
    }
    EXPECT_TRUE(dir.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// SoftwareStoreBuffer
// ---------------------------------------------------------------------

TEST(Ssb, PutThenGetFull)
{
    SoftwareStoreBuffer ssb;
    ssb.put(0x1000, 8, 0xdeadbeefcafef00dULL, 1);
    std::uint64_t v = 0;
    ASSERT_TRUE(ssb.getFull(0x1000, 8, &v));
    EXPECT_EQ(v, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(ssb.entryCount(), 1u);
}

TEST(Ssb, PartialOverlapIsNotFull)
{
    SoftwareStoreBuffer ssb;
    ssb.put(0x1000, 4, 0xaabbccdd, 1);
    std::uint64_t v = 0;
    EXPECT_FALSE(ssb.getFull(0x1000, 8, &v));
    EXPECT_TRUE(ssb.containsAny(0x1000, 8));
    EXPECT_TRUE(ssb.getFull(0x1000, 4, &v));
    EXPECT_EQ(v, 0xaabbccddu);
}

TEST(Ssb, MergeOverlaysBufferedBytes)
{
    SoftwareStoreBuffer ssb;
    ssb.put(0x1002, 2, 0xbeef, 1);
    const std::uint64_t merged =
        ssb.merge(0x1000, 8, 0x1111111111111111ULL);
    EXPECT_EQ(merged, 0x11111111beef1111ULL);
}

TEST(Ssb, UnalignedStoreSpansChunks)
{
    SoftwareStoreBuffer ssb;
    ssb.put(0x1006, 4, 0xaabbccdd, 1); // crosses the 8-byte boundary
    EXPECT_EQ(ssb.entryCount(), 2u);
    std::uint64_t v = 0;
    ASSERT_TRUE(ssb.getFull(0x1006, 4, &v));
    EXPECT_EQ(v, 0xaabbccddu);
}

TEST(Ssb, CoalescingKeepsLastValue)
{
    SoftwareStoreBuffer ssb;
    for (std::uint64_t i = 0; i < 1000; ++i)
        ssb.put(0x1000, 8, i, i + 1);
    EXPECT_EQ(ssb.entryCount(), 1u); // space efficiency (Section 5.5)
    EXPECT_EQ(ssb.totalPuts(), 1000u);
    std::uint64_t v = 0;
    ASSERT_TRUE(ssb.getFull(0x1000, 8, &v));
    EXPECT_EQ(v, 999u);
    auto drained = ssb.drain();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].minSeq, 1u);
    EXPECT_EQ(drained[0].maxSeq, 1000u);
    EXPECT_TRUE(ssb.empty());
}

TEST(Ssb, FifoKeepsOneEntryPerStore)
{
    SoftwareStoreBuffer ssb(SsbMode::Fifo);
    for (std::uint64_t i = 0; i < 100; ++i)
        ssb.put(0x1000, 8, i, i + 1);
    EXPECT_EQ(ssb.entryCount(), 100u);
    auto drained = ssb.drain();
    EXPECT_EQ(drained.size(), 100u);
    // Drained in program order.
    EXPECT_EQ(drained.front().minSeq, 1u);
    EXPECT_EQ(drained.back().minSeq, 100u);
    EXPECT_TRUE(ssb.empty());
}

TEST(Ssb, DrainAppliesLatestBytes)
{
    SoftwareStoreBuffer ssb;
    ssb.put(0x1000, 8, 0x1111111111111111ULL, 1);
    ssb.put(0x1004, 4, 0x22222222u, 2);
    auto drained = ssb.drain();
    ASSERT_EQ(drained.size(), 1u);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(drained[0].bytes[i]) << (8 * i);
    EXPECT_EQ(v, 0x2222222211111111ULL);
    EXPECT_EQ(drained[0].validMask, 0xff);
}

// ---------------------------------------------------------------------
// Machine execution
// ---------------------------------------------------------------------

/** Build a single-thread program where only thread 0 does work. */
isa::Program
tidGate(const std::function<void(Asm &)> &body)
{
    Asm a("t");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    body(a);
    a.bind(done);
    a.halt();
    return a.finalize();
}

TEST(Machine, ArithmeticSemantics)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R2, 6);
        a.movi(R3, 7);
        a.mul(R4, R2, R3);   // 42
        a.addi(R4, R4, 100); // 142
        a.subi(R4, R4, 2);   // 140
        a.shli(R5, R4, 1);   // 280
        a.shri(R5, R5, 2);   // 70
        a.xorr(R6, R4, R4);  // 0
    });
    Machine m(p);
    m.run();
    EXPECT_EQ(m.reg(0, R4), 140);
    EXPECT_EQ(m.reg(0, R5), 70);
    EXPECT_EQ(m.reg(0, R6), 0);
}

TEST(Machine, RegisterZeroIsHardwired)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R0, 999);
        a.mov(R2, R0);
    });
    Machine m(p);
    m.run();
    EXPECT_EQ(m.reg(0, R2), 0);
}

TEST(Machine, LoadStoreRoundTrip)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R2, 0x1000100);
        a.movi(R3, 0x1234);
        a.store(R2, 0, R3, 8);
        a.load(R4, R2, 0, 8);
    });
    Machine m(p);
    m.run();
    EXPECT_EQ(m.reg(0, R4), 0x1234);
    EXPECT_EQ(m.memory().read(0x1000100, 8), 0x1234u);
}

TEST(Machine, LoopsTerminate)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R2, 100);
        a.movi(R3, 0);
        Asm::Label loop = a.here();
        a.addi(R3, R3, 2);
        a.subi(R2, R2, 1);
        a.bne(R2, R0, loop);
    });
    Machine m(p);
    MachineStats s = m.run();
    EXPECT_EQ(m.reg(0, R3), 200);
    EXPECT_FALSE(s.truncated);
    EXPECT_GT(s.cycles, 0u);
}

TEST(Machine, CasSucceedsAndFails)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R2, 0x1000200);
        // CAS expecting 0: succeeds, writes 5.
        a.movi(R4, 5);
        a.cas(R4, R2, 0, R0);
        a.mov(R5, R4); // old value (0)
        // CAS expecting 0 again: fails (memory holds 5).
        a.movi(R4, 9);
        a.cas(R4, R2, 0, R0);
        a.mov(R6, R4); // old value (5)
    });
    Machine m(p);
    m.run();
    EXPECT_EQ(m.reg(0, R5), 0);
    EXPECT_EQ(m.reg(0, R6), 5);
    EXPECT_EQ(m.memory().read(0x1000200, 8), 5u);
}

TEST(Machine, FetchAddAccumulates)
{
    isa::Program p = tidGate([](Asm &a) {
        a.movi(R2, 0x1000300);
        a.movi(R3, 10);
        a.fetchadd(R4, R2, 0, R3); // old 0
        a.fetchadd(R5, R2, 0, R3); // old 10
    });
    Machine m(p);
    m.run();
    EXPECT_EQ(m.reg(0, R4), 0);
    EXPECT_EQ(m.reg(0, R5), 10);
    EXPECT_EQ(m.memory().read(0x1000300, 8), 20u);
}

TEST(Machine, TidDistinguishesThreads)
{
    Asm a("t");
    a.tid(R1);
    a.movi(R2, 0x1000400);
    a.muli(R3, R1, 8);
    a.add(R2, R2, R3);
    a.movi(R4, 1);
    a.store(R2, 0, R4, 8);
    a.halt();
    Machine m(a.finalize());
    m.run();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(m.memory().read(0x1000400 + 8 * t, 8), 1u);
}

TEST(Machine, CallAndRetThroughLibrary)
{
    Asm a("t");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R12, 0x1000500);
    a.callLib(LibFn::SpinLock);
    a.movi(R2, 77);
    a.callLib(LibFn::Unlock);
    a.bind(done);
    a.halt();
    Machine m(a.finalize());
    m.run();
    EXPECT_EQ(m.reg(0, R2), 77);
    // Lock released.
    EXPECT_EQ(m.memory().read(0x1000500, 8), 0u);
}

TEST(Machine, BarrierReleasesAllThreads)
{
    Asm a("t");
    // Barrier object at globals base: counter, generation, nthreads.
    const std::uint64_t bar = 0x600000;
    a.movi(R12, static_cast<std::int64_t>(bar));
    a.callLib(LibFn::BarrierWait);
    // After the barrier every thread bumps its own flag.
    a.tid(R1);
    a.movi(R2, 0x1000600);
    a.muli(R3, R1, 8);
    a.add(R2, R2, R3);
    a.movi(R4, 1);
    a.store(R2, 0, R4, 8);
    a.halt();
    isa::Program p = a.finalize();
    Machine m(p);
    m.memory().write(bar + 16, 8, 4); // nthreads
    MachineStats s = m.run();
    EXPECT_FALSE(s.truncated);
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(m.memory().read(0x1000600 + 8 * t, 8), 1u);
    EXPECT_EQ(s.syncOps, 4u); // one barrier arrival per thread
}

// ---------------------------------------------------------------------
// HITM generation
// ---------------------------------------------------------------------

/** Sink that counts HITM events and remembers their flavour. */
struct CountingSink : PmuSink
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t
    onHitm(const HitmEvent &ev) override
    {
        if (ev.isLoadUop)
            ++loads;
        else
            ++stores;
        return 0;
    }
};

/** Two threads ping-pong writes to the same line: write-write sharing. */
isa::Program
writeWriteSharing(int iters, std::int64_t addr0, std::int64_t addr1)
{
    Asm a("ww");
    Asm::Label t1 = a.newLabel();
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.movi(R9, 1);
    a.bne(R1, R0, t1);
    // Thread 0 writes addr0.
    a.movi(R2, addr0);
    a.movi(R3, iters);
    Asm::Label l0 = a.here();
    a.store(R2, 0, R3, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, l0);
    a.jmp(done);
    // Thread 1 writes addr1.
    a.bind(t1);
    a.bne(R1, R9, done); // threads 2..3 idle
    a.movi(R2, addr1);
    a.movi(R3, iters);
    Asm::Label l1 = a.here();
    a.store(R2, 0, R3, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, l1);
    a.bind(done);
    a.halt();
    return a.finalize();
}

TEST(Machine, FalseSharingGeneratesStoreHitms)
{
    // Two variables in one line: false sharing, pure stores.
    CountingSink sink;
    Machine m(writeWriteSharing(2000, 0x1000800, 0x1000808));
    m.setPmuSink(&sink);
    MachineStats s = m.run();
    EXPECT_GT(s.hitmStores, 500u);
    EXPECT_EQ(s.hitmLoads, sink.loads);
    EXPECT_EQ(s.hitmStores, sink.stores);
    EXPECT_GT(sink.stores, sink.loads);
}

TEST(Machine, PaddedVariablesGenerateNoHitms)
{
    // Same program, variables on distinct lines: padding fixed it.
    CountingSink sink;
    Machine m(writeWriteSharing(2000, 0x1000800, 0x1000880));
    m.setPmuSink(&sink);
    MachineStats s = m.run();
    EXPECT_EQ(s.hitmTotal(), 0u);
    EXPECT_EQ(sink.loads + sink.stores, 0u);
}

TEST(Machine, ContendedRunIsSlowerThanPadded)
{
    Machine contended(writeWriteSharing(5000, 0x1000800, 0x1000808));
    Machine padded(writeWriteSharing(5000, 0x1000800, 0x1000880));
    const auto slow = contended.run().cycles;
    const auto fast = padded.run().cycles;
    EXPECT_GT(slow, fast * 3 / 2); // contention costs real time
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto once = [] {
        Machine m(writeWriteSharing(3000, 0x1000800, 0x1000808));
        return m.run();
    };
    const MachineStats a = once();
    const MachineStats b = once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hitmStores, b.hitmStores);
    EXPECT_EQ(a.hitmLoads, b.hitmLoads);
}

// ---------------------------------------------------------------------
// SSB execution in the machine
// ---------------------------------------------------------------------

/** Mark all memory ops in [first, last] as SSB users. */
void
markSsb(isa::Program &p, std::uint32_t first, std::uint32_t last)
{
    for (std::uint32_t i = first; i <= last; ++i) {
        if (isa::opAccessesMemory(p.code[i].op))
            p.code[i].useSsb = true;
    }
}

TEST(Machine, SsbStoreInvisibleUntilFlush)
{
    Asm a("ssb");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000900);
    a.movi(R3, 42);
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    const std::uint32_t ld = a.load(R4, R2, 0, 8); // must see 42 via SSB
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();
    markSsb(p, st, ld);

    Machine m(p);
    MachineStats s = m.run();
    EXPECT_EQ(m.reg(0, R4), 42);           // store-to-load forwarding
    EXPECT_EQ(s.ssbStores, 1u);
    EXPECT_EQ(s.ssbLoadHits, 1u);
    // run() drains buffers at exit, so memory is final.
    EXPECT_EQ(m.memory().read(0x1000900, 8), 42u);
}

TEST(Machine, SsbFlushedAtFence)
{
    Asm a("ssb");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000900);
    a.movi(R3, 7);
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    a.fence();
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();
    markSsb(p, st, st);

    Machine m(p);
    MachineStats s = m.run();
    EXPECT_EQ(s.ssbFlushes, 1u);
    EXPECT_EQ(m.memory().read(0x1000900, 8), 7u);
}

TEST(Machine, SsbPreemptiveFlushAtCapacity)
{
    Asm a("ssb");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000900);
    a.movi(R3, 1);
    // 20 stores to distinct chunks: must pre-emptively flush at 8.
    std::uint32_t first = 0, last = 0;
    for (int i = 0; i < 20; ++i) {
        const std::uint32_t idx = a.store(R2, i * 8, R3, 8);
        if (i == 0)
            first = idx;
        last = idx;
    }
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();
    markSsb(p, first, last);

    Machine m(p);
    MachineStats s = m.run();
    EXPECT_GE(s.ssbFlushes, 2u);
    EXPECT_LE(s.ssbMaxEntriesSeen, 9u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(m.memory().read(0x1000900 + 8 * i, 8), 1u);
}

TEST(Machine, SsbProgramMatchesPlainExecution)
{
    // Property: instrumenting a (single-threaded) region with the SSB
    // must not change architectural results (Section 5.2).
    auto build = [](bool instrument) {
        Asm a("prop");
        Asm::Label done = a.newLabel();
        a.tid(R1);
        a.bne(R1, R0, done);
        a.movi(R2, 0x1000a00);
        a.movi(R3, 50);
        a.movi(R5, 0);
        Asm::Label loop = a.here();
        const std::uint32_t first = a.store(R2, 0, R5, 8);
        a.addmem(R2, 8, R3, 8);
        a.load(R4, R2, 8, 8);
        const std::uint32_t last = a.load(R6, R2, 0, 8);
        a.add(R5, R5, R4);
        a.subi(R3, R3, 1);
        a.bne(R3, R0, loop);
        a.bind(done);
        a.halt();
        isa::Program p = a.finalize();
        if (instrument)
            markSsb(p, first, last);
        return p;
    };

    Machine plain(build(false));
    Machine ssb(build(true));
    plain.run();
    ssb.run();
    EXPECT_EQ(plain.reg(0, R5), ssb.reg(0, R5));
    EXPECT_EQ(plain.reg(0, R6), ssb.reg(0, R6));
    EXPECT_EQ(plain.memory().read(0x1000a00, 8),
              ssb.memory().read(0x1000a00, 8));
    EXPECT_EQ(plain.memory().read(0x1000a08, 8),
              ssb.memory().read(0x1000a08, 8));
}

TEST(Machine, TsoTraceGroupsAreContiguousAndOrdered)
{
    Asm a("tso");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000b00);
    a.movi(R3, 5);
    std::uint32_t first = 0, last = 0;
    Asm::Label loop = a.newLabel();
    a.bind(loop);
    first = a.store(R2, 0, R3, 8);
    a.store(R2, 8, R3, 8);
    last = a.store(R2, 16, R3, 8);
    a.fence();
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();
    markSsb(p, first, last);

    MachineConfig cfg;
    cfg.recordTsoTrace = true;
    Machine m(p, cfg);
    m.run();

    // Per-thread visibility groups must cover contiguous, increasing
    // sequence ranges (TSO: stores become visible in program order, in
    // atomic groups).
    std::uint64_t prev_max[8] = {};
    for (const TsoEvent &ev : m.tsoTrace()) {
        ASSERT_LE(ev.minSeq, ev.maxSeq);
        ASSERT_EQ(ev.minSeq, prev_max[ev.tid] + 1)
            << "gap or reorder in thread " << ev.tid;
        prev_max[ev.tid] = ev.maxSeq;
    }
}

TEST(Machine, SheriffModeEliminatesHitms)
{
    MachineConfig cfg;
    cfg.threadsAsProcesses = true;
    Machine m(writeWriteSharing(2000, 0x1000800, 0x1000808), cfg);
    MachineStats s = m.run();
    EXPECT_EQ(s.hitmTotal(), 0u);
}

TEST(Machine, HeapPerturbationShiftsAllocations)
{
    isa::Program p = tidGate([](Asm &a) { a.nop(); });
    MachineConfig cfg;
    cfg.heapPerturbation = 48;
    Machine native(p);
    Machine shifted(p, cfg);
    EXPECT_EQ(native.heap().alloc(64) % 64, 16u);
    EXPECT_EQ(shifted.heap().alloc(64) % 64, 0u);
}

} // namespace
} // namespace laser::sim
