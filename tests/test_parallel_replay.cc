/**
 * @file
 * Tests for sharded parallel replay and the scheme-agnostic analysis
 * sinks: the merged DetectionReport must be field-identical to the
 * serial replay for every registered workload; DetectorState merging is
 * exercised at the unit level (boundary reclassification, window-order
 * rate scan); and the VTune/Sheriff capture-replay paths must reproduce
 * their live in-process reports.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/experiment.h"
#include "core/sweep_runner.h"
#include "detect/detector.h"
#include "detect/detector_state.h"
#include "detect/pipeline.h"
#include "isa/assembler.h"
#include "trace/capture.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"
#include "trace/trace_file.h"
#include "util/thread_pool.h"

namespace laser::trace {
namespace {

// ---------------------------------------------------------------------
// DetectorState merge units
// ---------------------------------------------------------------------

using detect::DetectorPipeline;
using detect::DetectorState;
using detect::SharingOutcome;

struct PipelineFixture
{
    isa::Program prog = [] {
        isa::Asm a("demo");
        a.at(10).store(isa::R2, 0, isa::R3, 8); // index 0, app store
        a.at(11).load(isa::R4, isa::R2, 0, 8);  // index 1, app load
        a.halt();
        return a.finalize();
    }();
    mem::AddressSpace space{prog, 2};
    sim::TimingModel timing{};
    detect::DetectorContext ctx{prog, space, space.renderProcMaps(),
                                timing};

    pebs::PebsRecord
    record(std::uint32_t index, std::uint64_t addr,
           std::uint64_t cycle) const
    {
        pebs::PebsRecord r;
        r.pc = space.indexToPc(index);
        r.dataAddr = addr;
        r.core = 0;
        r.cycle = cycle;
        return r;
    }
};

/** Digest @p recs split at @p cut into two shards and merge. */
DetectorState
digestSplit(const PipelineFixture &f,
            const std::vector<pebs::PebsRecord> &recs, std::size_t cut)
{
    DetectorPipeline a(f.ctx, {}, DetectorPipeline::Mode::Shard);
    DetectorPipeline b(f.ctx, {}, DetectorPipeline::Mode::Shard);
    for (std::size_t i = 0; i < recs.size(); ++i)
        (i < cut ? a : b).onRecord(recs[i]);
    DetectorState merged = a.takeState();
    merged.mergeFrom(b.takeState());
    return merged;
}

TEST(DetectorStateMerge, ReclassifiesShardBoundaryFirstAccess)
{
    PipelineFixture f;
    // Serial: store to bytes 0-7, then store to bytes 32-39 of the same
    // line => the second access is false sharing. Split between the two
    // accesses: shard B sees its first access unclassified until merge.
    const std::vector<pebs::PebsRecord> recs = {
        f.record(0, 0x1000000, 100),
        f.record(0, 0x1000020, 200),
    };
    for (std::size_t cut = 0; cut <= recs.size(); ++cut) {
        const DetectorState merged = digestSplit(f, recs, cut);
        EXPECT_EQ(merged.fsEvents, 1u) << "cut " << cut;
        EXPECT_EQ(merged.tsEvents, 0u) << "cut " << cut;
        ASSERT_EQ(merged.rateEvents.size(), 2u) << "cut " << cut;
        EXPECT_EQ(merged.rateEvents[1].outcome,
                  SharingOutcome::FalseSharing)
            << "cut " << cut;
        EXPECT_EQ(merged.pcStats.at(0).fs, 1u) << "cut " << cut;
    }
}

TEST(DetectorStateMerge, ReadReadBoundaryStaysUnclassified)
{
    PipelineFixture f;
    // Loads on both sides of the boundary: read-read is not contention.
    const std::vector<pebs::PebsRecord> recs = {
        f.record(1, 0x1000000, 100),
        f.record(1, 0x1000000, 200),
    };
    const DetectorState merged = digestSplit(f, recs, 1);
    EXPECT_EQ(merged.tsEvents, 0u);
    EXPECT_EQ(merged.fsEvents, 0u);
    EXPECT_EQ(merged.rateEvents[1].outcome, SharingOutcome::None);
}

TEST(DetectorStateMerge, CarriesLastAccessAcrossEmptyMiddleShard)
{
    PipelineFixture f;
    // Shard B holds no access to the line: A's last access must still
    // classify C's first one (associative fold across empty spans).
    DetectorPipeline a(f.ctx, {}, DetectorPipeline::Mode::Shard);
    DetectorPipeline b(f.ctx, {}, DetectorPipeline::Mode::Shard);
    DetectorPipeline c(f.ctx, {}, DetectorPipeline::Mode::Shard);
    a.onRecord(f.record(0, 0x1000000, 100));
    b.onRecord(f.record(0, 0x2000000, 200)); // different line
    c.onRecord(f.record(0, 0x1000004, 300)); // overlaps A's access
    DetectorState merged = a.takeState();
    merged.mergeFrom(b.takeState());
    merged.mergeFrom(c.takeState());
    EXPECT_EQ(merged.tsEvents, 1u);
    EXPECT_EQ(merged.fsEvents, 0u);
    EXPECT_EQ(merged.rateEvents[2].outcome, SharingOutcome::TrueSharing);
    EXPECT_EQ(merged.lines.size(), 2u);
}

TEST(DetectorStateMerge, MergedScanMatchesStreamingRepairTrigger)
{
    PipelineFixture f;
    detect::DetectorConfig cfg;
    cfg.sav = 19;
    cfg.rateCheckInterval = 100'000;

    // The false-sharing storm of test_detect's repair-trigger test.
    std::vector<pebs::PebsRecord> recs;
    for (int i = 0; i < 5000; ++i)
        recs.push_back(f.record(0, 0x1000000 + (i % 2) * 32,
                                1000 + 400ull * i));

    detect::Detector streaming(f.prog, f.space, f.space.renderProcMaps(),
                               f.timing, cfg);
    streaming.processAll(recs);
    const detect::DetectionReport serial = streaming.finish(1'700'000);

    for (std::size_t cut : {std::size_t(0), recs.size() / 3,
                            recs.size() / 2, recs.size()}) {
        DetectorState merged = digestSplit(f, recs, cut);
        const detect::RateScanState scan =
            detect::scanRateEvents(merged.rateEvents, cfg);
        EXPECT_EQ(scan.repairRequested, serial.repairRequested)
            << "cut " << cut;
        EXPECT_EQ(scan.repairTriggerCycle, serial.repairTriggerCycle)
            << "cut " << cut;
        const detect::DetectionReport rebuilt = detect::buildReport(
            f.ctx, cfg, merged, scan, 1'700'000);
        EXPECT_TRUE(detect::reportsIdentical(serial, rebuilt))
            << "cut " << cut;
    }
}

// ---------------------------------------------------------------------
// Sharded replay == serial replay, for every registered workload
// ---------------------------------------------------------------------

TEST(ParallelReplay, IdenticalToSerialForEveryWorkload)
{
    core::SweepRunner runner;
    const auto &all = workloads::allWorkloads();
    ASSERT_FALSE(all.empty());

    // Two configurations bracketing the interesting behaviours: the
    // paper default, and a permissive threshold that reports many lines.
    std::vector<detect::DetectorConfig> cfgs(2);
    cfgs[0].sav = 19;
    cfgs[1].sav = 19;
    cfgs[1].rateThreshold = 32.0;

    std::vector<std::string> failures(all.size());
    runner.parallelFor(all.size(), [&](std::size_t i) {
        const workloads::WorkloadDef &w = all[i];
        const auto trace = runner.capture(w, trace::CaptureOptions{});
        TraceReplayer env(*trace);
        if (!env.ok()) {
            failures[i] = w.info.name + ": " + env.error();
            return;
        }
        for (const detect::DetectorConfig &cfg : cfgs) {
            const detect::DetectionReport serial = env.replay(cfg);
            for (int shards : {2, 4, 7}) {
                ParallelReplayer::Options opt;
                opt.shards = shards;
                ParallelReplayer parallel(env, opt);
                if (!detect::reportsIdentical(serial,
                                              parallel.replay(cfg))) {
                    failures[i] = w.info.name + ": sharded report (" +
                                  std::to_string(shards) +
                                  " shards) differs from serial";
                    return;
                }
            }
        }
    });
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;
}

TEST(ParallelReplay, FileBackedCursorsIdenticalToSerialForEveryWorkload)
{
    // The streaming path: every workload written to a v3 file, mmapped
    // back, and sharded over per-shard block cursors. The merged report
    // must stay field-identical to the serial in-memory replay — the
    // index-based shard split sees the same record boundaries whether
    // records come from a vector or from decoded blocks.
    core::SweepRunner runner;
    const auto &all = workloads::allWorkloads();
    ASSERT_FALSE(all.empty());

    detect::DetectorConfig cfg;
    cfg.sav = 19;

    std::vector<std::string> failures(all.size());
    runner.parallelFor(all.size(), [&](std::size_t i) {
        const workloads::WorkloadDef &w = all[i];
        const auto trace = runner.capture(w, trace::CaptureOptions{});
        const std::string path =
            (std::filesystem::temp_directory_path() /
             ("laser_filecursor_" + std::to_string(i) + ".ltrace"))
                .string();
        if (writeTraceFile(*trace, path) != TraceStatus::Ok) {
            failures[i] = w.info.name + ": cannot write trace file";
            return;
        }
        TraceFile file;
        if (file.open(path) != TraceStatus::Ok) {
            failures[i] = w.info.name + ": " + file.error();
            std::remove(path.c_str());
            return;
        }
        TraceReplayer mem_env(*trace);
        TraceReplayer file_env(file.meta(), file);
        if (!mem_env.ok() || !file_env.ok()) {
            failures[i] = w.info.name + ": replay environment failed";
            std::remove(path.c_str());
            return;
        }
        const detect::DetectionReport serial = mem_env.replay(cfg);
        for (int shards : {1, 3, 5}) {
            ParallelReplayer::Options opt;
            opt.shards = shards;
            ParallelReplayer parallel(file_env, opt);
            if (!detect::reportsIdentical(serial, parallel.replay(cfg))) {
                failures[i] = w.info.name + ": file-backed replay (" +
                              std::to_string(shards) +
                              " shards) differs from serial";
                break;
            }
        }
        std::remove(path.c_str());
    });
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;
}

TEST(ParallelReplay, DigestReusedAcrossConfigs)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    ASSERT_NE(kmeans, nullptr);
    const Trace trace = captureTrace(*kmeans);
    TraceReplayer env(trace);
    ASSERT_TRUE(env.ok());

    ParallelReplayer::Options opt;
    opt.shards = 4;
    ParallelReplayer parallel(env, opt);
    EXPECT_EQ(parallel.shards(), 4);

    // One digest serves arbitrary configurations; each must match its
    // serial counterpart.
    for (double threshold : {32.0, 1000.0, 64000.0}) {
        detect::DetectorConfig cfg;
        cfg.rateThreshold = threshold;
        cfg.sav = trace.meta.pebs.sav;
        EXPECT_TRUE(detect::reportsIdentical(env.replay(cfg),
                                             parallel.replay(cfg)))
            << "threshold " << threshold;
    }
}

TEST(ParallelReplay, SharedExternalPool)
{
    const auto *kmeans = workloads::findWorkload("kmeans");
    const Trace trace = captureTrace(*kmeans);
    TraceReplayer env(trace);
    ASSERT_TRUE(env.ok());

    util::ThreadPool pool(3);
    ParallelReplayer::Options opt;
    opt.shards = 5;
    opt.pool = &pool;
    ParallelReplayer parallel(env, opt);
    EXPECT_TRUE(detect::reportsIdentical(
        env.replayAtThreshold(1000.0),
        parallel.replay([&] {
            detect::DetectorConfig cfg;
            cfg.sav = trace.meta.pebs.sav;
            return cfg;
        }())));
}

// ---------------------------------------------------------------------
// Baseline-scheme capture/replay fidelity
// ---------------------------------------------------------------------

TEST(SchemeCapture, VTuneReplayMatchesLiveModel)
{
    const auto *w = workloads::findWorkload("histogram'");
    ASSERT_NE(w, nullptr);
    core::ExperimentRunner runner;
    const core::RunResult live = runner.run(*w, core::Scheme::VTune);

    const Trace captured =
        captureTrace(*w, CaptureOptions::forScheme("vtune"));
    EXPECT_EQ(captured.meta.scheme, "vtune");
    EXPECT_FALSE(captured.records.empty());
    EXPECT_EQ(captured.meta.runtimeCycles, live.runtimeCycles);

    TraceReplayer env(captured);
    ASSERT_TRUE(env.ok()) << env.error();
    const baselines::VTuneReport replayed = env.replayVTune();
    EXPECT_EQ(replayed.hitmEvents, live.vtune.hitmEvents);
    ASSERT_FALSE(replayed.lines.empty());
    ASSERT_EQ(replayed.lines.size(), live.vtune.lines.size());
    for (std::size_t i = 0; i < replayed.lines.size(); ++i) {
        EXPECT_EQ(replayed.lines[i].location,
                  live.vtune.lines[i].location);
        EXPECT_EQ(replayed.lines[i].records, live.vtune.lines[i].records);
        EXPECT_DOUBLE_EQ(replayed.lines[i].hitmRate,
                         live.vtune.lines[i].hitmRate);
    }

    // Offline re-thresholding: a permissive threshold reports at least
    // as many lines without rerunning anything.
    baselines::VTuneConfig loose = captured.meta.vtune;
    loose.rateThreshold = 1.0;
    EXPECT_GE(env.replayVTune(loose).lines.size(), replayed.lines.size());
}

TEST(SchemeCapture, SheriffReplayMatchesLiveModel)
{
    // The paper's sync-heavy Sheriff example (Figure 14): tens of
    // thousands of sync commits give the cost model real work.
    const auto *w = workloads::findWorkload("water_nsquared");
    ASSERT_NE(w, nullptr);
    ASSERT_NE(w->info.sheriff, workloads::SheriffCompat::Crash);
    core::ExperimentRunner runner;
    const core::RunResult live =
        runner.run(*w, core::Scheme::SheriffProtect);

    const Trace captured =
        captureTrace(*w, CaptureOptions::forScheme("sheriff-protect"));
    EXPECT_TRUE(captured.meta.machine.threadsAsProcesses);
    EXPECT_FALSE(captured.meta.sheriff.detectMode);
    EXPECT_EQ(captured.meta.runtimeCycles, live.runtimeCycles);

    TraceReplayer env(captured);
    ASSERT_TRUE(env.ok()) << env.error();
    const SheriffReplay replay = env.replaySheriff();
    EXPECT_GT(replay.report.syncOps, 0u);
    EXPECT_EQ(replay.report.syncOps, live.sheriff.syncOps);
    EXPECT_EQ(replay.report.dirtyPagesCommitted,
              live.sheriff.dirtyPagesCommitted);
    EXPECT_EQ(replay.report.chargedCycles, live.sheriff.chargedCycles);
    // At the capture config, the runtime estimate is exact.
    EXPECT_EQ(replay.estimatedRuntimeCycles, captured.meta.runtimeCycles);

    // Re-tuning commit costs offline moves the estimate additively
    // (commit cycles spread evenly over the cores).
    baselines::SheriffConfig pricier = captured.meta.sheriff;
    pricier.perDirtyPageCost *= 2;
    const SheriffReplay re = env.replaySheriff(pricier);
    EXPECT_GT(re.report.chargedCycles, replay.report.chargedCycles);
    const std::uint64_t cores = captured.meta.machine.numCores;
    EXPECT_EQ(re.estimatedRuntimeCycles - replay.estimatedRuntimeCycles,
              re.report.chargedCycles / cores -
                  replay.report.chargedCycles / cores);
}

TEST(SchemeCapture, RoundTripsThroughFileFormat)
{
    const auto *w = workloads::findWorkload("kmeans");
    for (const char *scheme :
         {"native", "vtune", "sheriff-detect", "sheriff-protect"}) {
        const Trace captured =
            captureTrace(*w, CaptureOptions::forScheme(scheme));
        TraceWriter writer(captured.meta);
        writer.appendAll(captured.records);
        TraceReader reader;
        ASSERT_EQ(reader.parse(writer.finalize()), TraceStatus::Ok)
            << scheme << ": " << reader.error();
        EXPECT_EQ(reader.trace().meta.scheme, scheme);
        EXPECT_EQ(reader.trace().records.size(), captured.records.size())
            << scheme;
        EXPECT_EQ(configHash(reader.trace().meta),
                  configHash(captured.meta))
            << scheme;
    }
}

} // namespace
} // namespace laser::trace
