/**
 * @file
 * Tests for the protocol-pluggable coherence layer (sim/protocol.h):
 * the cross-protocol identity guarantee (MESI behind the interface must
 * reproduce the pre-refactor directory's HITM stream bit-for-bit),
 * outcome equivalence fuzzing against the retained CoherenceDirectory,
 * Dragon transition semantics, invariant property fuzzing over random
 * interleavings of both protocols, and cache-geometry behaviour
 * (line indexing, bounded-MESI eviction).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/coherence.h"
#include "sim/machine.h"
#include "sim/protocol.h"
#include "sim/protocol_dragon.h"
#include "sim/protocol_mesi.h"
#include "workloads/workload.h"

namespace laser::sim {
namespace {

// ---------------------------------------------------------------------
// Cross-protocol identity: goldens captured from the pre-refactor
// CoherenceDirectory machine
// ---------------------------------------------------------------------

/**
 * Order-sensitive FNV-1a digest over every HITM event's full payload.
 * Field order and the (non-standard, historical) offset basis must not
 * change: the golden table below was captured with exactly this sink
 * running against the pre-refactor directory-MESI machine.
 */
struct HashingSink final : PmuSink
{
    std::uint64_t hash = 1469598103934665603ULL;
    std::uint64_t count = 0;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ULL;
        }
    }

    std::uint64_t
    onHitm(const HitmEvent &e) override
    {
        ++count;
        mix(static_cast<std::uint64_t>(e.core));
        mix(e.pcIndex);
        mix(e.vaddr);
        mix(e.accessSize);
        mix(e.isLoadUop ? 1 : 0);
        mix(e.isStore ? 1 : 0);
        mix(e.cycle);
        return 0;
    }
};

struct Golden
{
    const char *workload;
    std::uint64_t hitmCount;
    std::uint64_t streamHash;
};

/**
 * Per-workload HITM stream digests of the pre-refactor machine: default
 * BuildOptions, default MachineConfig. If MesiDirectory diverges from
 * the old CoherenceDirectory by even one event field, the digest moves.
 */
constexpr Golden kGoldenHitmStreams[] = {
    {"barnes", 2868ULL, 0x00f44b0d947a8154ULL},
    {"blackscholes", 6ULL, 0x80c81a489b85bfbdULL},
    {"bodytrack", 5837ULL, 0xa202de4ee3385583ULL},
    {"canneal", 0ULL, 0x14650fb0739d0383ULL},
    {"dedup", 5518ULL, 0xe9edd9f9a75b78f1ULL},
    {"facesim", 144ULL, 0x23bdd028195dd4a1ULL},
    {"ferret", 219ULL, 0xf257d75f385893dcULL},
    {"fft", 228ULL, 0xdf1961bfa5d52f9aULL},
    {"fluidanimate", 918ULL, 0x6e0f102c4bba7779ULL},
    {"fmm", 42ULL, 0x31eb9df2f4151874ULL},
    {"freqmine", 0ULL, 0x14650fb0739d0383ULL},
    {"histogram", 0ULL, 0x14650fb0739d0383ULL},
    {"histogram'", 35195ULL, 0x302a8cb5d1576048ULL},
    {"kmeans", 7295ULL, 0xb5c8b874ac240152ULL},
    {"linear_regression", 10582ULL, 0x2039289fe65bb0d8ULL},
    {"lu_cb", 84ULL, 0x545d83c1bccb9ccbULL},
    {"lu_ncb", 2835ULL, 0x8caa3de2e54b6c5fULL},
    {"matrix_multiply", 0ULL, 0x14650fb0739d0383ULL},
    {"ocean_cp", 54ULL, 0xc4b2555ff5b29589ULL},
    {"ocean_ncp", 54ULL, 0x62cf3aa521ba2df3ULL},
    {"pca", 6ULL, 0xecaadc39d151eec2ULL},
    {"radiosity", 435ULL, 0xceb1089875068fe1ULL},
    {"radix", 338ULL, 0xf94bdb99a05d184bULL},
    {"raytrace.parsec", 79ULL, 0x17eecffce0551431ULL},
    {"raytrace.splash2x", 2542ULL, 0x0fd508490387afabULL},
    {"reverse_index", 2999ULL, 0x84e89a04286e06f3ULL},
    {"streamcluster", 8350ULL, 0xac1f05a16569f45aULL},
    {"string_match", 0ULL, 0x14650fb0739d0383ULL},
    {"swaptions", 0ULL, 0x14650fb0739d0383ULL},
    {"vips", 0ULL, 0x14650fb0739d0383ULL},
    {"volrend", 7823ULL, 0x75fd3959bcb78816ULL},
    {"water_nsquared", 18499ULL, 0xf9b553fa4dd587b2ULL},
    {"water_spatial", 1851ULL, 0xfd132b5aeadb3c83ULL},
    {"word_count", 2199ULL, 0x45af516ad5eeace5ULL},
    {"x264", 25600ULL, 0x78e79e980c457c3dULL},
};

TEST(ProtocolIdentity, MesiReproducesPreRefactorHitmStreams)
{
    const auto &all = workloads::allWorkloads();
    ASSERT_EQ(all.size(),
              sizeof kGoldenHitmStreams / sizeof kGoldenHitmStreams[0]);

    for (const Golden &golden : kGoldenHitmStreams) {
        const workloads::WorkloadDef *def =
            workloads::findWorkload(golden.workload);
        ASSERT_NE(def, nullptr) << golden.workload;

        workloads::WorkloadBuild build = def->build({});
        Machine machine(std::move(build.program), {});
        build.applyTo(machine);
        HashingSink sink;
        machine.setPmuSink(&sink);
        const MachineStats stats = machine.run();

        EXPECT_EQ(sink.count, golden.hitmCount) << golden.workload;
        EXPECT_EQ(sink.hash, golden.streamHash) << golden.workload;
        EXPECT_EQ(stats.hitmTotal(), golden.hitmCount)
            << golden.workload;
    }
}

// ---------------------------------------------------------------------
// Outcome-equivalence fuzz against the retained CoherenceDirectory
// ---------------------------------------------------------------------

TEST(ProtocolIdentity, MesiMatchesCoherenceDirectoryOnRandomStreams)
{
    for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
        std::mt19937_64 rng(seed);
        const int cores = 4;
        CoherenceDirectory reference(cores);
        MesiDirectory mesi(cores);

        for (int i = 0; i < 20000; ++i) {
            const int core = static_cast<int>(rng() % cores);
            // A small address pool concentrates contention so every
            // transition arm is exercised.
            const std::uint64_t addr = (rng() % 64) * 8;
            const bool is_write = (rng() & 1) != 0;
            const bool is_load_class = !is_write || (rng() & 1) != 0;

            const AccessOutcome expected =
                reference.access(core, addr, is_write, is_load_class);
            const AccessOutcome actual =
                mesi.access(core, addr, is_write, is_load_class);
            ASSERT_EQ(actual, expected)
                << "seed " << seed << " step " << i;
        }
        EXPECT_TRUE(reference.checkInvariants());
        EXPECT_TRUE(mesi.checkInvariants());
        EXPECT_EQ(mesi.linesTouched(), reference.linesTouched());
    }
}

// ---------------------------------------------------------------------
// Dragon transition semantics
// ---------------------------------------------------------------------

TEST(Dragon, DirtyInterventionIsHitmAndKeepsOwnership)
{
    DragonBus dragon(4);
    EXPECT_EQ(dragon.access(0, 0x1000, true, false),
              AccessOutcome::MemMiss); // first touch installs M
    // Remote read: the M holder supplies the line (HITM) and keeps it
    // dirty as Sm — no writeback, unlike MESI.
    EXPECT_EQ(dragon.access(1, 0x1000, false, true),
              AccessOutcome::HitmLoad);
    const DragonBus::LineInfo *li = dragon.probe(dragon.lineOf(0x1000));
    ASSERT_NE(li, nullptr);
    EXPECT_EQ(li->owner, 0);
    EXPECT_EQ(li->sharers, 0b11u);
    // A second reader is served by the Sm owner again: another HITM.
    EXPECT_EQ(dragon.access(2, 0x1000, false, true),
              AccessOutcome::HitmLoad);
}

TEST(Dragon, WritesUpdateInsteadOfInvalidating)
{
    DragonBus dragon(4);
    dragon.access(0, 0x1000, true, false); // M at core 0
    dragon.access(1, 0x1000, false, true); // core 1 joins (HITM)
    // Core 0 writes its shared-dirty copy: bus update, not invalidate.
    EXPECT_EQ(dragon.access(0, 0x1000, true, false),
              AccessOutcome::Upgrade);
    EXPECT_EQ(dragon.busUpdates(), 1u);
    // Core 1's copy stayed valid: its next read is a plain L1 hit.
    EXPECT_EQ(dragon.access(1, 0x1000, false, true),
              AccessOutcome::L1Hit);
}

TEST(Dragon, SilentCleanExclusiveUpgrade)
{
    DragonBus dragon(4);
    EXPECT_EQ(dragon.access(0, 0x1000, false, true),
              AccessOutcome::MemMiss); // E
    // E -> M without any bus traffic.
    EXPECT_EQ(dragon.access(0, 0x1000, true, false),
              AccessOutcome::L1Hit);
    EXPECT_EQ(dragon.busUpdates(), 0u);
    const DragonBus::LineInfo *li = dragon.probe(dragon.lineOf(0x1000));
    ASSERT_NE(li, nullptr);
    EXPECT_EQ(li->owner, 0);
    // The dirty copy now services a remote miss cache-to-cache.
    EXPECT_EQ(dragon.access(1, 0x1000, false, true),
              AccessOutcome::HitmLoad);
}

TEST(Dragon, FalseSharingPingPongHitmsOnlyOnFirstTouch)
{
    // The robustness observation the protocol sweep quantifies: under
    // MESI a false-sharing write ping-pong HITMs forever; under Dragon
    // only each core's first touch does — then writes become updates.
    DragonBus dragon(2);
    MesiDirectory mesi(2);
    int dragon_hitms = 0;
    int mesi_hitms = 0;
    for (int round = 0; round < 10; ++round) {
        for (int core = 0; core < 2; ++core) {
            const std::uint64_t addr = 0x1000 + 8 * core;
            dragon_hitms +=
                isHitm(dragon.access(core, addr, true, false)) ? 1 : 0;
            mesi_hitms +=
                isHitm(mesi.access(core, addr, true, false)) ? 1 : 0;
        }
    }
    EXPECT_EQ(dragon_hitms, 1); // core 1's first write only
    EXPECT_GT(mesi_hitms, 10);  // every post-first-round write
    EXPECT_GT(dragon.busUpdates(), 10u);
}

TEST(Dragon, WriteMissToDirtyLineIsHitmStore)
{
    DragonBus dragon(2);
    dragon.access(0, 0x1000, true, false);
    // Pure-store write miss to the dirty line: HitmStore (imprecise
    // PEBS flavour); an RMW (load-class) would be HitmLoad.
    EXPECT_EQ(dragon.access(1, 0x1000, true, false),
              AccessOutcome::HitmStore);
    const DragonBus::LineInfo *li = dragon.probe(dragon.lineOf(0x1000));
    ASSERT_NE(li, nullptr);
    EXPECT_EQ(li->owner, 1); // writer took ownership (Sm)
    EXPECT_EQ(li->sharers, 0b11u);
}

TEST(Dragon, WriteMissWithCleanCopiesIsRfoShared)
{
    DragonBus dragon(4);
    dragon.access(0, 0x1000, false, true);
    dragon.access(1, 0x1000, false, true); // two clean sharers
    EXPECT_EQ(dragon.access(2, 0x1000, true, false),
              AccessOutcome::RfoShared);
    // The clean copies stayed valid.
    EXPECT_EQ(dragon.access(0, 0x1000, false, true),
              AccessOutcome::L1Hit);
}

// ---------------------------------------------------------------------
// Invariant property fuzz over both protocols
// ---------------------------------------------------------------------

TEST(ProtocolInvariants, HoldUnderRandomInterleavings)
{
    for (const ProtocolKind kind :
         {ProtocolKind::Mesi, ProtocolKind::Dragon}) {
        for (std::uint64_t seed : {3u, 99u, 2016u}) {
            std::mt19937_64 rng(seed);
            const int cores = 4;
            const auto proto = makeProtocol(kind, cores);
            for (int i = 0; i < 30000; ++i) {
                const int core = static_cast<int>(rng() % cores);
                const std::uint64_t addr = (rng() % 128) * 4;
                const bool is_write = (rng() & 1) != 0;
                const bool is_load_class = !is_write || (rng() & 1) != 0;
                proto->access(core, addr, is_write, is_load_class);
                if (i % 512 == 0)
                    ASSERT_TRUE(proto->checkInvariants())
                        << protocolName(kind) << " seed " << seed
                        << " step " << i;
            }
            EXPECT_TRUE(proto->checkInvariants())
                << protocolName(kind) << " seed " << seed;
            EXPECT_GT(proto->linesTouched(), 0u);
        }
    }
}

TEST(ProtocolInvariants, BoundedMesiHoldsUnderRandomInterleavings)
{
    CacheGeometry geom;
    geom.sets = 2;
    geom.associativity = 2;
    std::mt19937_64 rng(7);
    MesiDirectory mesi(4, geom);
    for (int i = 0; i < 30000; ++i) {
        const int core = static_cast<int>(rng() % 4);
        const std::uint64_t addr = (rng() % 128) * 64;
        const bool is_write = (rng() & 1) != 0;
        mesi.access(core, addr, is_write, !is_write);
        if (i % 512 == 0)
            ASSERT_TRUE(mesi.checkInvariants()) << "step " << i;
    }
    EXPECT_TRUE(mesi.checkInvariants());
    EXPECT_GT(mesi.evictions(), 0u);
}

// ---------------------------------------------------------------------
// Geometry: line indexing and bounded-MESI eviction
// ---------------------------------------------------------------------

TEST(Geometry, ValidityBounds)
{
    CacheGeometry g;
    EXPECT_TRUE(g.valid());
    EXPECT_FALSE(g.bounded());
    g.lineBytes = 32;
    EXPECT_TRUE(g.valid());
    g.lineBytes = 128;
    EXPECT_TRUE(g.valid());
    g.lineBytes = 256; // would overflow HitmEvent::accessSize
    EXPECT_FALSE(g.valid());
    g.lineBytes = 48;
    EXPECT_FALSE(g.valid());
    g.lineBytes = 4;
    EXPECT_FALSE(g.valid());
}

TEST(Geometry, LineIndexingFollowsLineSize)
{
    CacheGeometry narrow;
    narrow.lineBytes = 32;
    const auto mesi = makeProtocol(ProtocolKind::Mesi, 4, narrow);
    EXPECT_EQ(mesi->lineBytes(), 32u);
    EXPECT_EQ(mesi->lineOf(0x1000), 0x1000u >> 5);
    EXPECT_NE(mesi->lineOf(0x1000), mesi->lineOf(0x1020));

    CacheGeometry wide;
    wide.lineBytes = 128;
    const auto dragon = makeProtocol(ProtocolKind::Dragon, 4, wide);
    EXPECT_EQ(dragon->lineBytes(), 128u);
    EXPECT_EQ(dragon->lineOf(0x1000), dragon->lineOf(0x1060));
    EXPECT_NE(dragon->lineOf(0x1000), dragon->lineOf(0x1080));
}

TEST(Geometry, InvalidGeometryFallsBackToDefault)
{
    CacheGeometry bad;
    bad.lineBytes = 48;
    const auto proto = makeProtocol(ProtocolKind::Mesi, 4, bad);
    EXPECT_EQ(proto->lineBytes(), 64u);
}

TEST(Geometry, BoundedMesiEvictsLeastRecentlyUsed)
{
    CacheGeometry geom;
    geom.sets = 1;
    geom.associativity = 2;
    MesiDirectory mesi(2, geom);

    EXPECT_EQ(mesi.access(0, 0x000, false, true),
              AccessOutcome::MemMiss);
    EXPECT_EQ(mesi.access(0, 0x040, false, true),
              AccessOutcome::MemMiss);
    EXPECT_EQ(mesi.access(0, 0x000, false, true),
              AccessOutcome::L1Hit); // 0x000 is now MRU
    // Third distinct line overflows the 2-way set, evicting LRU 0x040.
    EXPECT_EQ(mesi.access(0, 0x080, false, true),
              AccessOutcome::MemMiss);
    EXPECT_EQ(mesi.evictions(), 1u);
    // The evicted line is a miss again (re-fetch traffic).
    EXPECT_EQ(mesi.access(0, 0x040, false, true),
              AccessOutcome::MemMiss);
    EXPECT_TRUE(mesi.checkInvariants());
}

TEST(Geometry, BoundedMesiEvictsDirtyOwner)
{
    CacheGeometry geom;
    geom.sets = 1;
    geom.associativity = 1;
    MesiDirectory mesi(2, geom);

    EXPECT_EQ(mesi.access(0, 0x000, true, false),
              AccessOutcome::MemMiss); // M
    // Filling a second line evicts the modified line (writeback).
    EXPECT_EQ(mesi.access(0, 0x040, true, false),
              AccessOutcome::MemMiss);
    EXPECT_EQ(mesi.evictions(), 1u);
    // The written-back line is memory-resident again: no HITM on the
    // remote re-read, just a miss.
    EXPECT_EQ(mesi.access(1, 0x000, false, true),
              AccessOutcome::MemMiss);
    EXPECT_TRUE(mesi.checkInvariants());
}

TEST(Geometry, UnboundedMesiNeverEvicts)
{
    MesiDirectory mesi(2);
    for (std::uint64_t i = 0; i < 1000; ++i)
        mesi.access(0, i * 64, false, true);
    EXPECT_EQ(mesi.evictions(), 0u);
    EXPECT_EQ(mesi.linesTouched(), 1000u);
}

// ---------------------------------------------------------------------
// Factory / naming
// ---------------------------------------------------------------------

TEST(ProtocolFactory, MakesRequestedKind)
{
    EXPECT_EQ(makeProtocol(ProtocolKind::Mesi, 4)->kind(),
              ProtocolKind::Mesi);
    EXPECT_EQ(makeProtocol(ProtocolKind::Dragon, 4)->kind(),
              ProtocolKind::Dragon);
}

TEST(ProtocolFactory, ParsesNames)
{
    ProtocolKind kind = ProtocolKind::Mesi;
    EXPECT_TRUE(parseProtocol("dragon", &kind));
    EXPECT_EQ(kind, ProtocolKind::Dragon);
    EXPECT_TRUE(parseProtocol("mesi", &kind));
    EXPECT_EQ(kind, ProtocolKind::Mesi);
    kind = ProtocolKind::Dragon;
    EXPECT_FALSE(parseProtocol("moesi", &kind));
    EXPECT_EQ(kind, ProtocolKind::Dragon); // left alone on failure
    EXPECT_STREQ(protocolName(ProtocolKind::Mesi), "mesi");
    EXPECT_STREQ(protocolName(ProtocolKind::Dragon), "dragon");
}

// ---------------------------------------------------------------------
// Machine integration: protocol selection changes the HITM population
// ---------------------------------------------------------------------

TEST(MachineProtocol, DragonStarvesTheHitmSignal)
{
    const workloads::WorkloadDef *def =
        workloads::findWorkload("histogram'");
    ASSERT_NE(def, nullptr);

    const auto runWith = [&](ProtocolKind kind) {
        workloads::WorkloadBuild build = def->build({});
        MachineConfig mc;
        mc.protocol = kind;
        Machine machine(std::move(build.program), mc);
        build.applyTo(machine);
        return machine.run();
    };

    const MachineStats mesi = runWith(ProtocolKind::Mesi);
    const MachineStats dragon = runWith(ProtocolKind::Dragon);
    EXPECT_GT(mesi.hitmTotal(), 0u);
    // The update fabric converts the write ping-pong into bus updates:
    // the HITM population collapses (the detection-robustness result).
    EXPECT_LT(dragon.hitmTotal() * 10, mesi.hitmTotal());
}

} // namespace
} // namespace laser::sim
