/**
 * @file
 * Tests for the live metrics service (obs/server.h): endpoint routing,
 * push merging, and the PR's headline invariant — GET /metrics is
 * byte-identical to the offline Prometheus exporter
 * (Snapshot::toPrometheus), including under >= 8 concurrent scrapers
 * and pushers. The whole binary runs under TSan in CI's tsan-obs job,
 * so the concurrency tests double as data-race probes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/server.h"

namespace laser::obs {
namespace {

/** Private registry with a deterministic set of metrics. */
void
populate(Registry *reg)
{
    reg->counter("ingest.records").inc(12345);
    reg->counter("ingest.drops").inc(7);
    reg->gauge("queue.depth").set(3.5);
    Histogram &h = reg->histogram("span.seconds");
    for (double v : {0.001, 0.01, 0.1, 1.0, 10.0})
        h.record(v);
}

class ObsServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setEnabled(true);
        populate(&reg_);
        StatsServer::Config cfg;
        cfg.registry = &reg_;
        server_ = std::make_unique<StatsServer>(std::move(cfg));
        std::string err;
        ASSERT_TRUE(server_->start(&err)) << err;
        ASSERT_GT(server_->port(), 0);
    }

    void TearDown() override { server_->stop(); }

    HttpResponse
    get(const std::string &path)
    {
        HttpResponse resp;
        std::string err;
        EXPECT_TRUE(httpRequest("127.0.0.1", server_->port(), "GET",
                                path, "", &resp, &err))
            << err;
        return resp;
    }

    HttpResponse
    post(const std::string &path, const std::string &body)
    {
        HttpResponse resp;
        std::string err;
        EXPECT_TRUE(httpRequest("127.0.0.1", server_->port(), "POST",
                                path, body, &resp, &err))
            << err;
        return resp;
    }

    Registry reg_;
    std::unique_ptr<StatsServer> server_;
};

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

TEST_F(ObsServerTest, HealthzIsAlive)
{
    const HttpResponse resp = get("/healthz");
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "ok\n");
}

TEST_F(ObsServerTest, UnknownPathIs404AndPushRequiresPost)
{
    EXPECT_EQ(get("/nope").status, 404);
    EXPECT_EQ(get("/push").status, 405);
    EXPECT_EQ(post("/push", "{not json").status, 400);
    EXPECT_EQ(post("/push", "{\"no\":\"snapshot\"}").status, 400);
}

TEST_F(ObsServerTest, SnapshotJsonParsesBackToTheSameSnapshot)
{
    const HttpResponse resp = get("/snapshot.json");
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.contentType, "application/json");
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(resp.body, &doc, &err)) << err;
    Snapshot back;
    ASSERT_TRUE(Snapshot::fromJson(doc, &back));
    EXPECT_EQ(back.toPrometheus(), reg_.snapshot().toPrometheus());
}

// ---------------------------------------------------------------------
// The byte-identical invariant
// ---------------------------------------------------------------------

TEST_F(ObsServerTest, MetricsIsByteIdenticalToOfflineExporter)
{
    const std::string expected = reg_.snapshot().toPrometheus();
    const HttpResponse resp = get("/metrics");
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_EQ(resp.body, expected);
}

TEST_F(ObsServerTest, MetricsStaysByteIdenticalUnderConcurrentScrapes)
{
    const std::string expected = reg_.snapshot().toPrometheus();
    constexpr int kScrapers = 8;
    constexpr int kScrapesEach = 5;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kScrapers);
    for (int i = 0; i < kScrapers; ++i)
        threads.emplace_back([&] {
            for (int j = 0; j < kScrapesEach; ++j) {
                HttpResponse resp;
                if (!httpRequest("127.0.0.1", server_->port(), "GET",
                                 "/metrics", "", &resp) ||
                    resp.status != 200 || resp.body != expected)
                    mismatches.fetch_add(1);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------
// Push merging
// ---------------------------------------------------------------------

TEST_F(ObsServerTest, PushMergesCountersGaugesAndWrappedDocuments)
{
    // A bare snapshot document: counters sum into the served view.
    Registry pusher;
    pusher.counter("ingest.records").inc(5);
    pusher.gauge("queue.depth").set(9.0);
    const std::string bare = pusher.snapshot().toJson().dump(0);
    HttpResponse resp = post("/push", bare);
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"merged\":true"), std::string::npos);
    EXPECT_EQ(server_->pushCount(), 1u);

    // A BENCH-style wrapper: the "metrics" member is merged.
    Json wrapped = Json::object();
    wrapped.set("bench", Json(std::string("sweep")));
    Json inner;
    std::string err;
    ASSERT_TRUE(Json::parse(bare, &inner, &err)) << err;
    wrapped.set("metrics", std::move(inner));
    resp = post("/push", wrapped.dump(0));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(server_->pushCount(), 2u);

    // Served view == offline merge of the same parts, byte for byte.
    Snapshot expected = reg_.snapshot();
    expected.merge(pusher.snapshot());
    expected.merge(pusher.snapshot());
    EXPECT_EQ(get("/metrics").body, expected.toPrometheus());

    // Counters summed (12345 + 2*5), gauge last-write-wins (9.0).
    const Snapshot served = server_->mergedSnapshot();
    ASSERT_EQ(served.counters.size(), 2u);
    EXPECT_EQ(served.counters[1].first, "ingest.records");
    EXPECT_EQ(served.counters[1].second, 12355u);
    ASSERT_EQ(served.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(served.gauges[0].second, 9.0);
}

TEST_F(ObsServerTest, ConcurrentScrapersAndPushersConverge)
{
    constexpr int kScrapers = 8;
    constexpr int kPushers = 8;
    constexpr int kPushesEach = 4;

    Registry pusher;
    pusher.counter("push.count").inc(1);
    const std::string body = pusher.snapshot().toJson().dump(0);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kScrapers + kPushers);
    for (int i = 0; i < kPushers; ++i)
        threads.emplace_back([&] {
            for (int j = 0; j < kPushesEach; ++j) {
                HttpResponse resp;
                if (!httpRequest("127.0.0.1", server_->port(), "POST",
                                 "/push", body, &resp) ||
                    resp.status != 200)
                    failures.fetch_add(1);
            }
        });
    for (int i = 0; i < kScrapers; ++i)
        threads.emplace_back([&] {
            for (int j = 0; j < kPushesEach; ++j) {
                HttpResponse resp;
                if (!httpRequest("127.0.0.1", server_->port(), "GET",
                                 "/metrics", "", &resp) ||
                    resp.status != 200 ||
                    resp.body.find("laser_ingest_records") ==
                        std::string::npos)
                    failures.fetch_add(1);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server_->pushCount(),
              std::uint64_t(kPushers) * kPushesEach);

    // Once the dust settles the served text must again be byte-equal
    // to an offline merge of the live snapshot and every push.
    Snapshot expected = reg_.snapshot();
    for (int i = 0; i < kPushers * kPushesEach; ++i)
        expected.merge(pusher.snapshot());
    EXPECT_EQ(get("/metrics").body, expected.toPrometheus());
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

TEST_F(ObsServerTest, StopIsIdempotentAndRejectsDoubleStart)
{
    std::string err;
    EXPECT_FALSE(server_->start(&err));
    EXPECT_EQ(err, "already running");
    server_->stop();
    EXPECT_FALSE(server_->running());
    server_->stop(); // second stop is a no-op
}

TEST(ObsServer, StartFailsOnBadBindAddress)
{
    StatsServer::Config cfg;
    cfg.bindAddr = "not-an-address";
    StatsServer server(std::move(cfg));
    std::string err;
    EXPECT_FALSE(server.start(&err));
    EXPECT_NE(err.find("bad bind address"), std::string::npos);
}

TEST(ObsServer, ClientReportsTransportErrors)
{
    // Nothing listens on the discard port on a test box.
    HttpResponse resp;
    std::string err;
    EXPECT_FALSE(httpRequest("127.0.0.1", 9, "GET", "/healthz", "",
                             &resp, &err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace laser::obs
