/**
 * @file
 * Unit tests for the util module: stats estimators, deterministic RNG and
 * table/CSV rendering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace laser {
namespace {

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    // Geomean of normalized runtimes is insensitive to ordering.
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Stats, TrimmedMeanDropsExtremes)
{
    // Paper methodology: mean of 10 runs after dropping min and max.
    std::vector<double> xs = {100.0, 1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(trimmedMean(xs), 2.5);
    // Small samples fall back to the plain mean.
    EXPECT_DOUBLE_EQ(trimmedMean({5.0, 7.0}), 6.0);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, StddevZeroForConstant)
{
    EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(r.chance(0.0));
        ASSERT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.fork();
    // The child is decoupled from the parent's subsequent outputs.
    EXPECT_NE(child(), a());
}

TEST(Table, RendersAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PadsShortRows)
{
    TablePrinter t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtTimes(1.19), "1.19x");
    EXPECT_EQ(fmtPercent(0.02), "2.0%");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
}

TEST(ThreadPool, ParallelForRunsEveryIndex)
{
    util::ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SuppressedExceptionsCountedAndNoted)
{
    obs::setEnabled(true);
    util::ThreadPool pool(4);
    const std::uint64_t before =
        obs::Registry::global()
            .counter("pool.exceptions_suppressed")
            .value();
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(16, [&](std::size_t i) {
            ++ran;
            throw std::runtime_error("job " + std::to_string(i));
        });
        FAIL() << "parallelFor should rethrow the first exception";
    } catch (const std::exception &e) {
        // Every job ran despite the failures; the rethrown message
        // carries a note about the 15 suppressed ones.
        EXPECT_EQ(ran.load(), 16);
        EXPECT_NE(std::string(e.what()).find(
                      "15 additional exception(s)"),
                  std::string::npos);
    }
    const std::uint64_t after =
        obs::Registry::global()
            .counter("pool.exceptions_suppressed")
            .value();
    EXPECT_EQ(after - before, 15u);
}

TEST(ThreadPool, SingleExceptionRethrownUntouched)
{
    util::ThreadPool pool(2);
    try {
        pool.parallelFor(8, [](std::size_t i) {
            if (i == 3)
                throw std::out_of_range("only one");
        });
        FAIL() << "parallelFor should rethrow";
    } catch (const std::out_of_range &e) {
        // No suppressed siblings: the original type and message
        // survive.
        EXPECT_STREQ(e.what(), "only one");
    }
}

TEST(Csv, EscapesSpecialCharacters)
{
    CsvWriter w({"a", "b"});
    w.addRow({"plain", "with,comma"});
    w.addRow({"with\"quote", "multi\nline"});
    const std::string out = w.render();
    EXPECT_NE(out.find("a,b\n"), std::string::npos);
    EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

} // namespace
} // namespace laser
