/**
 * @file
 * Integration tests for the full LASER system: the accuracy evaluator,
 * the experiment runner's schemes, and the headline end-to-end
 * properties (zero false negatives across the suite, repair behaviour,
 * Sheriff compatibility/costs, VTune baseline).
 */

#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/experiment.h"

namespace laser::core {
namespace {

// ---------------------------------------------------------------------
// Accuracy evaluator
// ---------------------------------------------------------------------

workloads::WorkloadInfo
infoWithBug()
{
    workloads::WorkloadInfo info;
    info.name = "demo";
    info.bugs.push_back({"a.c:50", workloads::BugType::FalseSharing,
                         "demo bug", {"a.c:53"}});
    return info;
}

TEST(Accuracy, ParseLocation)
{
    std::string file;
    std::uint32_t line = 0;
    ASSERT_TRUE(parseLocation("foo.c:123", &file, &line));
    EXPECT_EQ(file, "foo.c");
    EXPECT_EQ(line, 123u);
    EXPECT_FALSE(parseLocation("nofile", &file, &line));
}

TEST(Accuracy, MatchWithinTolerance)
{
    EXPECT_TRUE(locationsMatch("a.c:50", "a.c:50"));
    EXPECT_TRUE(locationsMatch("a.c:51", "a.c:50")); // skid tolerance
    EXPECT_TRUE(locationsMatch("a.c:49", "a.c:50"));
    EXPECT_FALSE(locationsMatch("a.c:52", "a.c:50"));
    EXPECT_FALSE(locationsMatch("b.c:50", "a.c:50"));
}

TEST(Accuracy, CountsFnAndFp)
{
    const workloads::WorkloadInfo info = infoWithBug();
    // Bug found via a related line; one spurious line.
    AccuracyResult r = evaluateAccuracy(info, {"a.c:53", "z.c:9"});
    EXPECT_EQ(r.falseNegatives, 0);
    EXPECT_EQ(r.falsePositives, 1);
    EXPECT_EQ(r.fpLocations[0], "z.c:9");

    // Nothing reported: one FN, no FPs.
    r = evaluateAccuracy(info, {});
    EXPECT_EQ(r.falseNegatives, 1);
    EXPECT_EQ(r.falsePositives, 0);
    EXPECT_EQ(r.missedBugs[0], "a.c:50");
}

// ---------------------------------------------------------------------
// End-to-end system properties
// ---------------------------------------------------------------------

struct Runner
{
    ExperimentRunner runner;
};

TEST(System, LaserFindsEveryKnownBug)
{
    // The headline Table 1 property: zero false negatives across the
    // whole suite at the default 1K HITMs/sec threshold.
    ExperimentRunner runner;
    for (const auto *w : workloads::buggyWorkloads()) {
        RunResult laser = runner.run(*w, Scheme::Laser);
        AccuracyResult acc = evaluateAccuracy(
            w->info, reportLocations(laser.detection));
        EXPECT_EQ(acc.falseNegatives, 0)
            << w->info.name << " missed: "
            << (acc.missedBugs.empty() ? "?" : acc.missedBugs[0]);
    }
}

TEST(System, CleanWorkloadsStayQuiet)
{
    // Contention-free kernels must produce empty reports.
    ExperimentRunner runner;
    for (const char *name :
         {"blackscholes", "swaptions", "matrix_multiply", "histogram",
          "string_match", "pca"}) {
        RunResult laser =
            runner.run(*workloads::findWorkload(name), Scheme::Laser);
        EXPECT_TRUE(laser.detection.lines.empty()) << name;
        EXPECT_FALSE(laser.detection.repairRequested) << name;
    }
}

TEST(System, LaserOverheadIsLow)
{
    // Figure 10's headline: ~2% geomean. Check a representative
    // no-contention workload stays within noise.
    ExperimentRunner runner;
    const auto *w = workloads::findWorkload("blackscholes");
    RunResult native = runner.run(*w, Scheme::Native);
    RunResult laser = runner.run(*w, Scheme::LaserDetectOnly);
    const double norm =
        double(laser.runtimeCycles) / double(native.runtimeCycles);
    EXPECT_LT(norm, 1.05);
}

TEST(System, RepairTriggersForLinearRegressionNotDedup)
{
    ExperimentRunner runner;
    RunResult lr = runner.run(*workloads::findWorkload(
                                  "linear_regression"),
                              Scheme::Laser);
    EXPECT_TRUE(lr.detection.repairRequested);
    EXPECT_TRUE(lr.repairApplied) << lr.plan.reason;

    // dedup's contention is true sharing: repair must not fire
    // (Section 4.3: typing gates fruitless repair attempts).
    RunResult dd =
        runner.run(*workloads::findWorkload("dedup"), Scheme::Laser);
    EXPECT_FALSE(dd.repairApplied);
}

TEST(System, RepairImprovesHistogramAlt)
{
    ExperimentRunner runner;
    const auto *w = workloads::findWorkload("histogram'");
    RunResult laser = runner.run(*w, Scheme::Laser);
    EXPECT_TRUE(laser.repairApplied) << laser.plan.reason;
    EXPECT_LT(laser.repairTriggerFraction, 0.6);
}

TEST(System, ManualFixesSpeedUpBuggyWorkloads)
{
    ExperimentRunner runner;
    for (const char *name :
         {"linear_regression", "histogram'", "dedup", "lu_ncb"}) {
        const auto *w = workloads::findWorkload(name);
        RunResult native = runner.run(*w, Scheme::Native);
        RunResult fixed = runner.run(*w, Scheme::ManualFix);
        EXPECT_LT(fixed.runtimeCycles, native.runtimeCycles) << name;
    }
}

TEST(System, VTuneCostsMoreThanLaser)
{
    ExperimentRunner runner;
    std::vector<double> laser_norm, vtune_norm;
    for (const char *name :
         {"string_match", "histogram'", "bodytrack", "blackscholes"}) {
        const auto *w = workloads::findWorkload(name);
        RunResult native = runner.run(*w, Scheme::Native);
        laser_norm.push_back(
            double(runner.run(*w, Scheme::LaserDetectOnly).runtimeCycles) /
            double(native.runtimeCycles));
        vtune_norm.push_back(
            double(runner.run(*w, Scheme::VTune).runtimeCycles) /
            double(native.runtimeCycles));
    }
    for (std::size_t i = 0; i < laser_norm.size(); ++i)
        EXPECT_GT(vtune_norm[i], laser_norm[i]);
}

TEST(System, SheriffCompatibilityMatrixEnforced)
{
    ExperimentRunner runner;
    RunResult crash = runner.run(*workloads::findWorkload("kmeans"),
                                 Scheme::SheriffDetect);
    EXPECT_TRUE(crash.crashed);
    RunResult incompat = runner.run(*workloads::findWorkload("dedup"),
                                    Scheme::SheriffProtect);
    EXPECT_TRUE(incompat.crashed);
    RunResult works = runner.run(
        *workloads::findWorkload("linear_regression"),
        Scheme::SheriffProtect);
    EXPECT_FALSE(works.crashed);
}

TEST(System, SheriffProtectFixesFalseSharingItCannotDetect)
{
    // Figure 14's irony: both Sheriff schemes fix linear_regression's
    // false sharing (threads-as-processes isolates the stores) even
    // though Sheriff-Detect reports nothing.
    ExperimentRunner runner;
    const auto *w = workloads::findWorkload("linear_regression");
    RunResult sdet = runner.run(*w, Scheme::SheriffDetect);
    EXPECT_TRUE(sdet.sheriff.reportedSites.empty());
    RunResult sprot = runner.run(*w, Scheme::SheriffProtect);
    EXPECT_EQ(sprot.stats.hitmTotal(), 0u);
}

TEST(System, SheriffSlowsSyncHeavyWorkloads)
{
    // water_nsquared's per-sync page diffing dominates (Figure 14).
    ExperimentRunner runner;
    const auto *w = workloads::findWorkload("water_nsquared");
    RunResult native = runner.run(*w, Scheme::Native);
    RunResult sprot = runner.run(*w, Scheme::SheriffProtect);
    EXPECT_GT(double(sprot.runtimeCycles) / double(native.runtimeCycles),
              2.0);
}

TEST(System, SheriffReportsAllocationSiteForReverseIndex)
{
    ExperimentRunner runner;
    RunResult sdet = runner.run(
        *workloads::findWorkload("reverse_index"), Scheme::SheriffDetect);
    ASSERT_FALSE(sdet.crashed);
    ASSERT_EQ(sdet.sheriff.reportedSites.size(), 1u);
    // The allocation site, not the contending code (Section 7.1).
    EXPECT_EQ(sdet.sheriff.reportedSites[0], "malloc_wrapper.c:12");
}

TEST(System, SchemeNamesArePrintable)
{
    EXPECT_STREQ(schemeName(Scheme::Laser), "laser");
    EXPECT_STREQ(schemeName(Scheme::VTune), "vtune");
    EXPECT_STREQ(schemeName(Scheme::SheriffProtect), "sheriff-protect");
}

} // namespace
} // namespace laser::core
