/**
 * @file
 * Unit tests for the observability layer: JSON round-trips, lock-free
 * counter exactness under contention, histogram percentile accuracy,
 * span nesting and the trace-event / Prometheus export formats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace laser::obs {
namespace {

/** Ensure recording is on regardless of the ambient LASER_OBS. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override { setEnabled(true); }
    void TearDown() override { setEnabled(true); }
};

// ---------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------

TEST(Json, RoundTripsNestedDocument)
{
    Json doc = Json::object();
    doc.set("int", Json(std::uint64_t(1234567890123)));
    doc.set("neg", Json(-42));
    doc.set("pi", Json(3.25));
    doc.set("flag", Json(true));
    doc.set("none", Json());
    doc.set("text", Json(std::string("line\n\"quoted\"\ttab")));
    Json arr = Json::array();
    arr.push(Json(1)).push(Json(std::string("two"))).push(Json(false));
    doc.set("arr", std::move(arr));
    Json inner = Json::object();
    inner.set("k", Json(0.5));
    doc.set("obj", std::move(inner));

    for (int indent : {0, 2}) {
        Json back;
        std::string err;
        ASSERT_TRUE(Json::parse(doc.dump(indent), &back, &err)) << err;
        EXPECT_EQ(back.dump(), doc.dump());
    }
}

TEST(Json, ExactIntegersAndMemberOrder)
{
    Json doc = Json::object();
    doc.set("b", Json(std::uint64_t(9007199254740992ull))); // 2^53
    doc.set("a", Json(7));
    const std::string text = doc.dump();
    // Insertion order preserved; integers printed without exponent.
    EXPECT_EQ(text, "{\"b\":9007199254740992,\"a\":7}");
}

TEST(Json, RejectsMalformedInput)
{
    Json out;
    EXPECT_FALSE(Json::parse("", &out));
    EXPECT_FALSE(Json::parse("{", &out));
    EXPECT_FALSE(Json::parse("[1,]", &out));
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &out));
    EXPECT_FALSE(Json::parse("'single'", &out));
    EXPECT_FALSE(Json::parse("{\"a\" 1}", &out));
}

TEST(Json, FindAndAccessors)
{
    Json doc;
    ASSERT_TRUE(Json::parse(
        "{\"n\":4.5,\"b\":true,\"s\":\"hi\",\"a\":[1,2]}", &doc));
    ASSERT_NE(doc.find("n"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("n")->asNumber(), 4.5);
    EXPECT_TRUE(doc.find("b")->asBool());
    EXPECT_EQ(doc.find("s")->asString(), "hi");
    ASSERT_TRUE(doc.find("a")->isArray());
    EXPECT_EQ(doc.find("a")->items().size(), 2u);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

// ---------------------------------------------------------------------
// Counters / gauges
// ---------------------------------------------------------------------

TEST_F(ObsTest, ConcurrentCounterIncrementsSumExactly)
{
    Registry reg;
    Counter &c = reg.counter("test.hits");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterHonorsKillSwitch)
{
    Registry reg;
    Counter &c = reg.counter("test.off");
    c.inc(5);
    setEnabled(false);
    c.inc(100);
    setEnabled(true);
    c.inc(2);
    EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, RegistryReturnsStableHandles)
{
    Registry reg;
    Counter &a = reg.counter("same");
    Counter &b = reg.counter("same");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsTest, GaugeSetAndAdd)
{
    Registry reg;
    Gauge &g = reg.gauge("test.depth");
    g.set(10.0);
    g.add(5.0);
    g.add(-7.0);
    EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

TEST_F(ObsTest, HistogramExactCountSumMinMax)
{
    Registry reg;
    Histogram &h = reg.histogram("test.lat");
    for (int i = 1; i <= 1000; ++i)
        h.record(double(i));
    const Histogram::Data d = h.data();
    EXPECT_EQ(d.count, 1000u);
    EXPECT_DOUBLE_EQ(d.sum, 500500.0);
    EXPECT_DOUBLE_EQ(d.min, 1.0);
    EXPECT_DOUBLE_EQ(d.max, 1000.0);
    EXPECT_DOUBLE_EQ(d.mean(), 500.5);
}

TEST_F(ObsTest, HistogramPercentilesMatchKnownDistribution)
{
    Registry reg;
    Histogram &h = reg.histogram("test.uniform");
    // Uniform 1..10000: p50 ~ 5000, p90 ~ 9000, p99 ~ 9900. Log-scale
    // buckets with 4 sub-buckets per octave bound the relative error of
    // any in-bucket estimate by ~ sqrt(1.25) - 1 ~ 12%.
    for (int i = 1; i <= 10000; ++i)
        h.record(double(i));
    const Histogram::Data d = h.data();
    EXPECT_NEAR(d.percentile(0.50), 5000.0, 0.12 * 5000.0);
    EXPECT_NEAR(d.percentile(0.90), 9000.0, 0.12 * 9000.0);
    EXPECT_NEAR(d.percentile(0.99), 9900.0, 0.12 * 9900.0);
    // The extremes stay within the exact observed range (bucket
    // midpoints clamped to [min, max]).
    EXPECT_GE(d.percentile(0.0), d.min);
    EXPECT_LE(d.percentile(0.0), d.min * 1.25);
    EXPECT_LE(d.percentile(1.0), d.max);
    EXPECT_NEAR(d.percentile(1.0), d.max, 0.12 * d.max);
}

TEST_F(ObsTest, HistogramSpansManyOrdersOfMagnitude)
{
    Registry reg;
    Histogram &h = reg.histogram("test.wide");
    h.record(1e-9); // nanosecond-scale span
    h.record(1.0);
    h.record(3e9); // multi-billion cycle epoch
    const Histogram::Data d = h.data();
    EXPECT_EQ(d.count, 3u);
    EXPECT_DOUBLE_EQ(d.min, 1e-9);
    EXPECT_DOUBLE_EQ(d.max, 3e9);
    EXPECT_EQ(d.buckets.size(), 3u);
}

TEST_F(ObsTest, HistogramBucketBoundsAreMonotonic)
{
    double prev = 0.0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        const double upper = Histogram::bucketUpperBound(b);
        EXPECT_GT(upper, prev);
        prev = upper;
    }
    // Every positive value lands in a bucket whose bound contains it
    // (exact powers of two sit on the preceding bound inclusively).
    for (double v : {1e-8, 0.37, 1.0, 6.5, 1234.5, 8.9e8}) {
        const int b = Histogram::bucketOf(v);
        EXPECT_LE(v, Histogram::bucketUpperBound(b));
        if (b > 1)
            EXPECT_GE(v, Histogram::bucketUpperBound(b - 1));
    }
}

TEST_F(ObsTest, ConcurrentHistogramRecordsSumExactly)
{
    Registry reg;
    Histogram &h = reg.histogram("test.par");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h] {
            for (int i = 1; i <= kPerThread; ++i)
                h.record(double(i));
        });
    for (auto &t : threads)
        t.join();
    const Histogram::Data d = h.data();
    EXPECT_EQ(d.count, std::uint64_t(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(d.min, 1.0);
    EXPECT_DOUBLE_EQ(d.max, double(kPerThread));
}

// ---------------------------------------------------------------------
// Snapshot export formats
// ---------------------------------------------------------------------

TEST_F(ObsTest, SnapshotToJsonHasAllSections)
{
    Registry reg;
    reg.counter("c.one").inc(4);
    reg.gauge("g.one").set(2.5);
    reg.histogram("h.one").record(3.0);

    const Json doc = reg.snapshot().toJson();
    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(doc.dump(2), &back, &err)) << err;

    ASSERT_NE(back.find("counters"), nullptr);
    EXPECT_DOUBLE_EQ(back.find("counters")->find("c.one")->asNumber(),
                     4.0);
    ASSERT_NE(back.find("gauges"), nullptr);
    EXPECT_DOUBLE_EQ(back.find("gauges")->find("g.one")->asNumber(),
                     2.5);
    const Json *h = back.find("histograms")->find("h.one");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->find("count")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(h->find("sum")->asNumber(), 3.0);
    ASSERT_NE(h->find("buckets"), nullptr);
    EXPECT_EQ(h->find("buckets")->items().size(), 1u);
}

TEST_F(ObsTest, PrometheusTextFormat)
{
    Registry reg;
    reg.counter("sweep.machine_runs").inc(7);
    reg.gauge("pool.queue_depth").set(3.0);
    reg.histogram("span.replay.shard").record(0.5);
    reg.histogram("span.replay.shard").record(2.0);

    const std::string text = reg.snapshot().toPrometheus();
    EXPECT_NE(text.find("# TYPE laser_sweep_machine_runs counter\n"
                        "laser_sweep_machine_runs 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE laser_pool_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE laser_span_replay_shard histogram"),
              std::string::npos);
    EXPECT_NE(text.find("laser_span_replay_shard_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("laser_span_replay_shard_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("laser_span_replay_shard_sum 2.5"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Snapshot merge / fromJson (the /push and laser_statsd machinery)
// ---------------------------------------------------------------------

TEST_F(ObsTest, PromEscapeLabelQuotesTheTextFormatSpecials)
{
    EXPECT_EQ(promEscapeLabel("plain"), "plain");
    EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(promEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(promEscapeLabel("two\nlines"), "two\\nlines");
}

TEST_F(ObsTest, SnapshotMergeSumsCountersAndOverwritesGauges)
{
    Registry a, b;
    a.counter("shared").inc(10);
    a.counter("only_a").inc(1);
    a.gauge("depth").set(2.0);
    b.counter("shared").inc(5);
    b.counter("only_b").inc(3);
    b.gauge("depth").set(7.0);

    Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    ASSERT_EQ(merged.counters.size(), 3u);
    EXPECT_EQ(merged.counters[0].first, "only_a");
    EXPECT_EQ(merged.counters[1].first, "only_b");
    EXPECT_EQ(merged.counters[2].first, "shared");
    EXPECT_EQ(merged.counters[2].second, 15u);
    ASSERT_EQ(merged.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(merged.gauges[0].second, 7.0); // pushed value wins
}

TEST_F(ObsTest, SnapshotMergeFoldsHistogramsBucketWise)
{
    Registry a, b;
    for (double v : {0.5, 0.5, 2.0})
        a.histogram("h").record(v);
    for (double v : {0.5, 8.0})
        b.histogram("h").record(v);

    Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    ASSERT_EQ(merged.histograms.size(), 1u);
    const Histogram::Data &d = merged.histograms[0].second;
    EXPECT_EQ(d.count, 5u);
    EXPECT_DOUBLE_EQ(d.sum, 11.5);
    EXPECT_DOUBLE_EQ(d.min, 0.5);
    EXPECT_DOUBLE_EQ(d.max, 8.0);
    // 0.5s recorded on both sides lands in one bucket with count 3.
    std::uint64_t total = 0, maxBucket = 0;
    for (const auto &[upper, count] : d.buckets) {
        total += count;
        maxBucket = std::max(maxBucket, count);
    }
    EXPECT_EQ(total, 5u);
    EXPECT_EQ(maxBucket, 3u);
}

TEST_F(ObsTest, SnapshotMergeOfEmptyIsIdentity)
{
    // The property the live /metrics endpoint rides on: until someone
    // pushes, serving merge(live, empty) is byte-identical to the
    // offline exporter.
    Registry reg;
    reg.counter("c").inc(2);
    reg.gauge("g").set(1.5);
    reg.histogram("h").record(0.25);
    Snapshot merged = reg.snapshot();
    merged.merge(Snapshot{});
    EXPECT_EQ(merged.toPrometheus(), reg.snapshot().toPrometheus());
}

TEST_F(ObsTest, SnapshotFromJsonRoundTripsIncludingOverflowBucket)
{
    Registry reg;
    reg.counter("c").inc(9);
    reg.gauge("g").set(-1.25);
    Histogram &h = reg.histogram("h");
    h.record(0.125);
    h.record(1e12); // lands in the +Inf overflow bucket

    const Snapshot orig = reg.snapshot();
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(orig.toJson().dump(2), &doc, &err)) << err;
    Snapshot back;
    ASSERT_TRUE(Snapshot::fromJson(doc, &back));
    // The round-trip must preserve the exposition text exactly —
    // DBL_MAX-saturated bucket bounds turn back into +Inf.
    EXPECT_EQ(back.toPrometheus(), orig.toPrometheus());
    Snapshot twice = orig;
    twice.merge(back);
    ASSERT_EQ(twice.histograms.size(), 1u);
    EXPECT_EQ(twice.histograms[0].second.count, 4u);
}

TEST_F(ObsTest, SnapshotFromJsonRejectsNonSnapshotDocuments)
{
    const auto parse = [](const char *text) {
        Json doc;
        EXPECT_TRUE(Json::parse(text, &doc));
        Snapshot out;
        return Snapshot::fromJson(doc, &out);
    };
    EXPECT_FALSE(parse("{}"));
    EXPECT_FALSE(parse("{\"counters\":{},\"gauges\":{}}"));
    EXPECT_FALSE(parse("{\"counters\":3,\"gauges\":{},"
                       "\"histograms\":{}}"));
    EXPECT_TRUE(parse("{\"counters\":{},\"gauges\":{},"
                      "\"histograms\":{}}"));
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

TEST_F(ObsTest, SpanNestingProducesWellFormedTraceEvents)
{
    SpanCollector &col = SpanCollector::global();
    col.clear();
    col.enable();
    {
        LASER_SPAN("outer");
        {
            LASER_SPAN("inner");
        }
        {
            LASER_SPAN("inner");
        }
    }
    col.disable();

    ASSERT_EQ(col.eventCount(), 3u);
    // Scopes close innermost-first, so "outer" is appended last.
    const std::vector<TraceEvent> events = col.events();
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].name, "outer");
    // Strict nesting: the outer span covers both inner spans (allow a
    // few microseconds of slack for the separate clock reads that
    // derive ts from dur).
    const double slack_us = 50.0;
    EXPECT_LE(events[2].tsUs, events[0].tsUs + slack_us);
    EXPECT_GE(events[2].tsUs + events[2].durUs + slack_us,
              events[1].tsUs + events[1].durUs);

    // The export parses back as a JSON array of complete events.
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(col.toTraceEventJson(), &doc, &err)) << err;
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.items().size(), 3u);
    for (const Json &ev : doc.items()) {
        ASSERT_TRUE(ev.isObject());
        EXPECT_EQ(ev.find("ph")->asString(), "X");
        EXPECT_NE(ev.find("name"), nullptr);
        EXPECT_GE(ev.find("dur")->asNumber(), 0.0);
        EXPECT_GE(ev.find("ts")->asNumber(), 0.0);
        EXPECT_NE(ev.find("tid"), nullptr);
    }
    col.clear();
}

TEST_F(ObsTest, SpanFeedsDurationHistogram)
{
    const std::string name = "span.test_obs.timer";
    const std::uint64_t before = [&] {
        for (const auto &[n, d] :
             Registry::global().snapshot().histograms)
            if (n == name)
                return d.count;
        return std::uint64_t(0);
    }();
    {
        Span span("test_obs.timer");
    }
    const Histogram::Data d =
        Registry::global().histogram(name).data();
    EXPECT_EQ(d.count, before + 1);
}

TEST_F(ObsTest, SpansSkippedWhenDisabled)
{
    SpanCollector &col = SpanCollector::global();
    col.clear();
    col.enable();
    setEnabled(false); // obs kill switch beats collector enablement
    {
        LASER_SPAN("ghost");
    }
    setEnabled(true);
    col.disable();
    EXPECT_EQ(col.eventCount(), 0u);
    col.clear();
}

} // namespace
} // namespace laser::obs
