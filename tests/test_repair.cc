/**
 * @file
 * Unit and integration tests for LASERREPAIR: CFG construction, loop
 * depths, post-dominators, region/flush analysis, the cost model, alias
 * speculation, instrumentation correctness and end-to-end HITM
 * reduction on a falsely-sharing two-thread program.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "repair/cfg.h"
#include "repair/repairer.h"
#include "sim/machine.h"

namespace laser::repair {
namespace {

using namespace laser::isa;
using laser::sim::Machine;
using laser::sim::MachineConfig;
using laser::sim::MachineStats;

/**
 * Canonical loop program (one thread active):
 *   setup; loop { store A; store B; } post; halt
 * Returns the indices of the two stores via out parameters.
 */
isa::Program
loopProgram(std::uint32_t *store_a, std::uint32_t *store_b)
{
    Asm a("loop");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R3, 1000);
    Asm::Label loop = a.here();
    *store_a = a.store(R2, 0, R3, 8);
    *store_b = a.store(R2, 8, R3, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.movi(R4, 99); // post-loop block
    a.bind(done);
    a.halt();
    return a.finalize();
}

// ---------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------

TEST(Cfg, FindsLoopAndDepths)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Cfg cfg(p, p.segments[0]);

    const int loop_block = cfg.blockOf(sa);
    ASSERT_GE(loop_block, 0);
    EXPECT_EQ(cfg.blocks()[loop_block].loopDepth, 1);
    // Entry block is outside the loop.
    EXPECT_EQ(cfg.blocks()[cfg.blockOf(0)].loopDepth, 0);
    // The loop block contains both stores.
    EXPECT_EQ(cfg.blockOf(sb), loop_block);
    EXPECT_EQ(cfg.blocks()[loop_block].storeOps, 2);
}

TEST(Cfg, EdgesAreConsistent)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Cfg cfg(p, p.segments[0]);
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
        for (int s : cfg.blocks()[b].succs) {
            const auto &preds = cfg.blocks()[s].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), int(b)),
                      preds.end());
        }
    }
    EXPECT_FALSE(cfg.exits().empty());
}

TEST(Cfg, LoopBlockSelfLoopEdge)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Cfg cfg(p, p.segments[0]);
    const int loop_block = cfg.blockOf(sa);
    const auto &succs = cfg.blocks()[loop_block].succs;
    // Loop block branches to itself and falls through to the post block.
    EXPECT_NE(std::find(succs.begin(), succs.end(), loop_block),
              succs.end());
    EXPECT_EQ(succs.size(), 2u);
}

TEST(Cfg, PostDominators)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Cfg cfg(p, p.segments[0]);
    const int loop_block = cfg.blockOf(sa);
    const int post_block = cfg.blockOf(sb + 3); // "movi r4, 99"
    ASSERT_NE(loop_block, post_block);
    EXPECT_TRUE(cfg.postDominates(post_block, loop_block));
    EXPECT_FALSE(cfg.postDominates(loop_block, post_block));
    // Every block post-dominates itself.
    EXPECT_TRUE(cfg.postDominates(loop_block, loop_block));
    // Nearest common post-dominator of the loop block is the post block.
    EXPECT_EQ(cfg.commonPostDominator({loop_block}), post_block);
}

TEST(Cfg, DiamondCommonPostDominator)
{
    Asm a("diamond");
    Asm::Label left = a.newLabel();
    Asm::Label join = a.newLabel();
    a.tid(R1);
    a.beq(R1, R0, left);
    a.movi(R2, 1); // right arm
    a.jmp(join);
    a.bind(left);
    a.movi(R2, 2); // left arm
    a.bind(join);
    a.halt();
    isa::Program p = a.finalize();
    Cfg cfg(p, p.segments[0]);

    const int right = cfg.blockOf(2);
    const int leftb = cfg.blockOf(4);
    const int joinb = cfg.blockOf(5);
    EXPECT_EQ(cfg.commonPostDominator({right, leftb}), joinb);
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

TEST(Repairer, PlacesFlushAtLoopExit)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Repairer r(p);
    RepairPlan plan = r.analyze({sa, sb});
    ASSERT_TRUE(plan.applied) << plan.reason;
    // Flush inserted before the post-loop block, not inside the loop.
    const int flush_block = r.cfg().blockOf(plan.flushInsertBefore);
    EXPECT_EQ(r.cfg().blocks()[flush_block].loopDepth, 0);
    EXPECT_GT(plan.flushInsertBefore, sb);
    // Both stores instrumented.
    EXPECT_NE(std::find(plan.instrumentedOps.begin(),
                        plan.instrumentedOps.end(), sa),
              plan.instrumentedOps.end());
    EXPECT_GE(plan.estRatio(), 8.0);
}

TEST(Repairer, RejectsRegionWithCall)
{
    Asm a("call_in_loop");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R12, 0x600040);
    a.movi(R3, 100);
    Asm::Label loop = a.here();
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    a.callLib(LibFn::BarrierWait); // opaque call inside the loop
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    Repairer r(p);
    RepairPlan plan = r.analyze({st});
    EXPECT_FALSE(plan.applied);
    EXPECT_NE(plan.reason.find("opaque"), std::string::npos);
}

TEST(Repairer, RejectsLowStoreFlushRatio)
{
    // A fence right next to the store: every iteration flushes, so the
    // ratio is ~1 and repair cannot profit (Section 5.4: "fundamental
    // contention in the program that LASERREPAIR cannot repair").
    Asm a("fenced");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R3, 100);
    Asm::Label loop = a.here();
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    a.fence();
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    Repairer r(p);
    RepairPlan plan = r.analyze({st});
    EXPECT_FALSE(plan.applied);
    EXPECT_NE(plan.reason.find("ratio"), std::string::npos);
}

TEST(Repairer, RejectsPcsOutsideAppCode)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Repairer r(p);
    RepairPlan plan = r.analyze({static_cast<std::uint32_t>(p.size() + 5)});
    EXPECT_FALSE(plan.applied);
}

TEST(Repairer, AliasSpeculationSkipsDisjointLoads)
{
    // Loads through a base register never used by stores are skipped.
    Asm a("alias");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000); // store base
    a.movi(R5, 0x1100000); // load base (provably distinct here)
    a.movi(R3, 200);
    Asm::Label loop = a.here();
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    const std::uint32_t ld = a.load(R4, R5, 0, 8);
    a.add(R6, R6, R4);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    Repairer r(p);
    RepairPlan plan = r.analyze({st});
    ASSERT_TRUE(plan.applied) << plan.reason;
    EXPECT_NE(std::find(plan.skippedLoads.begin(),
                        plan.skippedLoads.end(), ld),
              plan.skippedLoads.end());

    // With speculation disabled the load is instrumented instead.
    RepairConfig cfg;
    cfg.aliasSpeculation = false;
    Repairer r2(p, cfg);
    RepairPlan plan2 = r2.analyze({st});
    ASSERT_TRUE(plan2.applied);
    EXPECT_TRUE(plan2.skippedLoads.empty());
    EXPECT_NE(std::find(plan2.instrumentedOps.begin(),
                        plan2.instrumentedOps.end(), ld),
              plan2.instrumentedOps.end());
}

TEST(Repairer, LoadsThroughStoreBaseAreInstrumented)
{
    // A load through the same base register as a store must go through
    // the SSB (it may read a buffered value).
    Asm a("aliasing");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R3, 50);
    Asm::Label loop = a.here();
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    const std::uint32_t ld = a.load(R4, R2, 0, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    Repairer r(p);
    RepairPlan plan = r.analyze({st});
    ASSERT_TRUE(plan.applied) << plan.reason;
    EXPECT_TRUE(plan.skippedLoads.empty());
    EXPECT_NE(std::find(plan.instrumentedOps.begin(),
                        plan.instrumentedOps.end(), ld),
              plan.instrumentedOps.end());
}

// ---------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------

TEST(Instrument, ProducesValidProgramWithFlush)
{
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    Repairer r(p);
    RepairPlan plan = r.analyze({sa, sb});
    ASSERT_TRUE(plan.applied);

    std::vector<std::uint32_t> index_map;
    isa::Program out = r.instrument(plan, &index_map);
    EXPECT_EQ(out.validate(), "");
    EXPECT_EQ(out.size(), p.size() + 1); // one flush inserted

    int flushes = 0;
    for (const auto &insn : out.code)
        flushes += insn.op == Op::SsbFlush;
    EXPECT_EQ(flushes, 1);
    // Stores carry the SSB flag in the rewritten binary.
    EXPECT_TRUE(out.code[index_map[sa]].useSsb);
    EXPECT_TRUE(out.code[index_map[sb]].useSsb);
}

TEST(Instrument, PreservesSingleThreadResults)
{
    // Section 5.2: SSB instrumentation must preserve single-threaded
    // semantics. Run the original and instrumented loop and compare
    // final architectural state.
    std::uint32_t sa = 0, sb = 0;
    isa::Program p = loopProgram(&sa, &sb);
    RepairOutcome out = repairProgram(p, {sa, sb});
    ASSERT_TRUE(out.plan.applied);

    Machine orig(p);
    Machine fixed(out.program);
    orig.run();
    MachineStats fs = fixed.run();
    EXPECT_EQ(orig.memory().read(0x1000000, 8),
              fixed.memory().read(0x1000000, 8));
    EXPECT_EQ(orig.memory().read(0x1000008, 8),
              fixed.memory().read(0x1000008, 8));
    EXPECT_EQ(orig.reg(0, R4), fixed.reg(0, R4));
    EXPECT_GT(fs.ssbStores, 0u);
    EXPECT_GT(fs.ssbFlushes, 0u);
}

/** Two threads falsely sharing one line, each in a tight store loop. */
isa::Program
falseSharingLoop(int iters, std::vector<std::uint32_t> *stores)
{
    Asm a("fsloop");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.movi(R9, 2);
    a.bge(R1, R9, done);   // threads 0 and 1 only
    a.movi(R2, 0x1000000);
    a.muli(R3, R1, 16);    // thread 0 -> offset 0, thread 1 -> offset 16
    a.add(R2, R2, R3);
    a.movi(R3, iters);
    Asm::Label loop = a.here();
    stores->push_back(a.store(R2, 0, R3, 8));
    stores->push_back(a.store(R2, 8, R3, 8));
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    return a.finalize();
}

TEST(Instrument, RepairEliminatesFalseSharingHitms)
{
    std::vector<std::uint32_t> stores;
    isa::Program p = falseSharingLoop(3000, &stores);
    RepairOutcome out = repairProgram(p, stores);
    ASSERT_TRUE(out.plan.applied) << out.plan.reason;

    Machine native(p);
    Machine repaired(out.program);
    MachineStats ns = native.run();
    MachineStats rs = repaired.run();

    // The SSB batches each thread's stores: HITMs collapse by orders of
    // magnitude and the run gets faster despite SSB software costs.
    EXPECT_GT(ns.hitmTotal(), 2000u);
    EXPECT_LT(rs.hitmTotal(), ns.hitmTotal() / 100);
    EXPECT_LT(rs.cycles, ns.cycles);

    // Memory results identical.
    for (std::uint64_t off : {0, 8, 16, 24})
        EXPECT_EQ(native.memory().read(0x1000000 + off, 8),
                  repaired.memory().read(0x1000000 + off, 8));
}

TEST(Instrument, RepairedProgramStillTso)
{
    std::vector<std::uint32_t> stores;
    isa::Program p = falseSharingLoop(500, &stores);
    RepairOutcome out = repairProgram(p, stores);
    ASSERT_TRUE(out.plan.applied);

    MachineConfig cfg;
    cfg.recordTsoTrace = true;
    Machine m(out.program, cfg);
    m.run();

    std::map<int, std::uint64_t> prev_max;
    for (const auto &ev : m.tsoTrace()) {
        ASSERT_LE(ev.minSeq, ev.maxSeq);
        ASSERT_EQ(ev.minSeq, prev_max[ev.tid] + 1)
            << "TSO violation for thread " << ev.tid;
        prev_max[ev.tid] = ev.maxSeq;
    }
}

TEST(Instrument, AliasCheckGuardsInsertedAndBenign)
{
    Asm a("alias2");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R5, 0x1100000);
    a.movi(R3, 100);
    a.movi(R7, 0);
    Asm::Label loop = a.here();
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    a.load(R4, R5, 0, 8);
    a.add(R7, R7, R4);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    RepairOutcome out = repairProgram(p, {st});
    ASSERT_TRUE(out.plan.applied);
    ASSERT_EQ(out.plan.skippedLoads.size(), 1u);

    Machine m(out.program);
    MachineStats s = m.run();
    EXPECT_GT(s.aliasChecks, 0u);
    EXPECT_EQ(s.aliasMisspecs, 0u); // bases never alias here
    EXPECT_EQ(m.reg(0, R7), 0);     // loads of untouched memory: zeros
}

TEST(Instrument, AliasMisspeculationRecoversByFlush)
{
    // The "skipped" load actually aliases the store (same address via a
    // different register): the runtime check must flush and the load
    // must observe the buffered value.
    Asm a("alias3");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.bne(R1, R0, done);
    a.movi(R2, 0x1000000);
    a.movi(R5, 0x1000000); // same address, different register
    a.movi(R3, 77);
    const std::uint32_t st = a.store(R2, 0, R3, 8);
    a.load(R4, R5, 0, 8);
    a.movi(R6, 1);
    Asm::Label loop = a.here(); // trivial loop to give the analysis one
    a.subi(R6, R6, 1);
    a.store(R2, 8, R3, 8);
    a.bne(R6, R0, loop);
    a.bind(done);
    a.halt();
    isa::Program p = a.finalize();

    RepairOutcome out = repairProgram(p, {st});
    if (!out.plan.applied)
        GTEST_SKIP() << "analysis declined: " << out.plan.reason;

    Machine m(out.program);
    MachineStats s = m.run();
    if (!out.plan.skippedLoads.empty()) {
        EXPECT_GT(s.aliasMisspecs, 0u);
    }
    EXPECT_EQ(m.reg(0, R4), 77); // correctness regardless of speculation
}

} // namespace
} // namespace laser::repair
