// Fixture: deliberate unchecked-status violations (and the shapes that
// must NOT be flagged). tests/test_lint.cc asserts the exact findings;
// this directory is excluded from the real lint run by collectFiles().

struct TraceStatus;
TraceStatus save();
TraceStatus load(int n);

struct Writer
{
    TraceStatus flush();
};

void
violations(Writer &w)
{
    save();     // FLAG line 17
    load(1);    // FLAG line 18
    w.flush();  // FLAG line 19
}

void
cleanUses(Writer &w)
{
    TraceStatus st = save();  // assigned: not flagged
    (void)st;
    if (load(2) == load(3)) { // branched on: not flagged
    }
    // laser-lint: allow(unchecked-status) fixture: suppressed on purpose
    w.flush();
    save(); // laser-lint: allow(unchecked-status) trailing form
}
