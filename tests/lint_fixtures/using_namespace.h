// Fixture: header-hygiene violation (using namespace at header scope).

#ifndef LASER_LINT_FIXTURES_USING_NAMESPACE_H
#define LASER_LINT_FIXTURES_USING_NAMESPACE_H

#include <vector>

using namespace std; // FLAG line 8

// A using-declaration is fine:
using std::vector;

#endif // LASER_LINT_FIXTURES_USING_NAMESPACE_H
