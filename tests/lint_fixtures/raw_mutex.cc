// Fixture: raw-mutex violations. Only the std:: qualified names fire;
// a type merely named mutex in another namespace does not.

#include <mutex>

namespace fixture {

std::mutex g_mu;                    // FLAG line 8
std::condition_variable *g_cv;      // FLAG line 9

void
locked()
{
    std::lock_guard<std::mutex> lock(g_mu); // FLAG line 14 (x2)
}

void
suppressed()
{
    // laser-lint: allow(raw-mutex) fixture: adopting a legacy API
    std::unique_lock<std::mutex> lk(g_mu, std::defer_lock); // fully suppressed
}

struct mutex
{
}; // a non-std type named mutex is fine

mutex not_flagged;

} // namespace fixture
