// Fixture: include guard present but wrong name for the path
// (expected LASER_LINT_FIXTURES_BAD_GUARD_H).

#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

int fixtureValue();

#endif // WRONG_GUARD_NAME_H
