// Fixture: raw-new-delete violations and the exempt forms.

#include <cstddef>

struct Thing
{
    Thing(const Thing &) = delete;            // exempt: deleted member
    Thing &operator=(const Thing &) = delete; // exempt
    void *operator new(std::size_t);          // exempt: operator new decl
    void operator delete(void *);             // exempt
};

void
violations()
{
    int *p = new int(7); // FLAG line 16
    delete p;            // FLAG line 17
}

void
suppressed()
{
    // laser-lint: allow(raw-new-delete) fixture: intentional leak
    int *q = new int(9);
    (void)q;
}

// "new" inside comments and strings must not fire:
// new delete new
const char *kText = "new delete";
