// Fixture: raw-fd-close violations and the exempt forms. The rule is
// path-scoped (src/obs/, src/util/, tools/), so the test lints this
// content under a synthetic src/obs/ path; under its real
// tests/lint_fixtures/ path the whole file is out of scope.

#include <unistd.h>

struct Conn
{
    int fd;
    void close(); // exempt: declaration, not the libc call
    static void close(int fd); // exempt: declaration
};

void
violations(Conn &c)
{
    close(c.fd);   // FLAG line 18
    ::close(c.fd); // FLAG line 19
}

int
flagged_in_return(int fd)
{
    return close(fd); // FLAG line 25
}

void
exempt(Conn &c, Conn *p)
{
    c.close();        // member call on an owning object
    p->close();       // likewise through a pointer
    Conn::close(c.fd); // qualified call, not the libc one
}

void
suppressed(int fd)
{
    // laser-lint: allow(raw-fd-close) fixture: adopting a legacy API
    close(fd);
}
