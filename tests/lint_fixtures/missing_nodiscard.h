// Fixture: nodiscard-status violations in a header. The include guard
// is canonical so only the nodiscard rule fires.

#ifndef LASER_LINT_FIXTURES_MISSING_NODISCARD_H
#define LASER_LINT_FIXTURES_MISSING_NODISCARD_H

struct TraceStatus;
struct MigrateFileResult;

TraceStatus unmarked();               // FLAG line 10
MigrateFileResult alsoUnmarked(int);  // FLAG line 11

[[nodiscard]] TraceStatus marked();            // ok
[[nodiscard]] inline TraceStatus alsoMarked(); // ok

struct Api
{
    [[nodiscard]] virtual TraceStatus status() const = 0; // ok
    TraceStatus memberUnmarked(); // FLAG line 19
    virtual ~Api() = default;
};

// A parameter of status type is not a declaration of one:
void consume(TraceStatus status); // ok

#endif // LASER_LINT_FIXTURES_MISSING_NODISCARD_H
