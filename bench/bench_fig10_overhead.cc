/**
 * @file
 * Figure 10 reproduction: runtime of LASER and VTune normalized to
 * native execution, per workload plus the geometric mean.
 *
 * Paper shape: LASER geomean 1.02 with kmeans worst (~1.22); VTune
 * geomean 1.84 with string_match worst (~7x); linear_regression and
 * histogram' run *faster* than native under LASER (online repair);
 * lu_ncb runs faster due to the coincidental heap-layout shift.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Monitoring/repair overhead", "Figure 10");

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "LASER (norm)", "VTune (norm)",
                        "paper LASER", "notes"});
    std::vector<double> laser_norm, vtune_norm;

    for (const auto &w : workloads::allWorkloads()) {
        core::RunResult native = runner.run(w, core::Scheme::Native);
        core::RunResult laser = runner.run(w, core::Scheme::Laser);
        core::RunResult vtune = runner.run(w, core::Scheme::VTune);

        const double ln = double(laser.runtimeCycles) /
                          double(native.runtimeCycles);
        const double vn = double(vtune.runtimeCycles) /
                          double(native.runtimeCycles);
        laser_norm.push_back(ln);
        vtune_norm.push_back(vn);

        std::string notes;
        if (laser.repairApplied)
            notes = "repair applied (f=" +
                    fmtDouble(laser.repairTriggerFraction, 2) + ")";
        else if (laser.detection.repairRequested)
            notes = "repair declined";

        const auto &paper = bench::paperLaserOverheads();
        auto it = paper.find(w.info.name);
        table.addRow({
            w.info.name,
            fmtTimes(ln, 3),
            fmtTimes(vn, 2),
            it != paper.end() ? fmtTimes(it->second, 2) : "",
            notes,
        });
    }
    table.addSeparator();
    table.addRow({"geomean", fmtTimes(geomean(laser_norm), 3),
                  fmtTimes(geomean(vtune_norm), 2), "1.02x / 1.84x",
                  ""});
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check: LASER's mean overhead is a few percent "
                "and uniformly low; VTune's interrupt-per-event "
                "collection costs much more, worst on the load-saturated "
                "string_match (paper ~7x).\n");
    return 0;
}
