/**
 * @file
 * Figure 10 reproduction: runtime of LASER and VTune normalized to
 * native execution, per workload plus the geometric mean.
 *
 * Capture-once/replay-many: the native, monitored (laser-detect) and
 * VTune runs are captured through the sweep runner's trace cache (set
 * LASER_TRACE_CACHE to persist it; a repeat invocation then performs
 * zero simulations). The repair decision is a sharded offline replay of
 * the captured stream; only workloads whose replay requests repair
 * re-simulate (the repaired remainder is a different execution, which
 * no stream replay can produce).
 *
 * Paper shape: LASER geomean 1.02 with kmeans worst (~1.22); VTune
 * geomean 1.84 with string_match worst (~7x); linear_regression and
 * histogram' run *faster* than native under LASER (online repair);
 * lu_ncb runs faster due to the coincidental heap-layout shift.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

using namespace laser;

int
main()
{
    bench::banner("Monitoring/repair overhead", "Figure 10");
    obs::BenchReport telemetry("fig10_overhead");

    const auto &all = workloads::allWorkloads();
    core::SweepRunner sweep(bench::sweepConfig());
    core::ExperimentRunner runner;

    struct Row
    {
        std::uint64_t nativeCycles = 0;
        std::uint64_t laserCycles = 0;
        std::uint64_t vtuneCycles = 0;
        bool repairRequested = false;
        bool repairApplied = false;
        double repairFraction = 1.0;
    };
    std::vector<Row> rows(all.size());

    sweep.parallelFor(all.size(), [&](std::size_t i) {
        const workloads::WorkloadDef &w = all[i];
        Row &row = rows[i];

        row.nativeCycles =
            sweep.capture(w, trace::CaptureOptions::forScheme("native"))
                ->meta.runtimeCycles;
        row.vtuneCycles =
            sweep.capture(w, trace::CaptureOptions::forScheme("vtune"))
                ->meta.runtimeCycles;

        // LASER: the monitored phase is the capture; the repair decision
        // replays offline (sharded, on the sweep's shared pool).
        const auto laser_trace = sweep.capture(w, {});
        const detect::DetectionReport detection =
            trace::replayDetection(*laser_trace, 4, &sweep.pool());
        row.repairRequested = detection.repairRequested;
        row.laserCycles = laser_trace->meta.runtimeCycles;
        if (detection.repairRequested) {
            // Only the repair path re-simulates: the remainder runs a
            // different (instrumented) execution.
            core::RunResult laser =
                runner.run(w, core::Scheme::Laser);
            row.laserCycles = laser.runtimeCycles;
            row.repairApplied = laser.repairApplied;
            row.repairFraction = laser.repairTriggerFraction;
        }
    });

    TablePrinter table({"benchmark", "LASER (norm)", "VTune (norm)",
                        "paper LASER", "notes"});
    std::vector<double> laser_norm, vtune_norm;

    for (std::size_t i = 0; i < all.size(); ++i) {
        const workloads::WorkloadDef &w = all[i];
        const Row &row = rows[i];
        const double ln =
            double(row.laserCycles) / double(row.nativeCycles);
        const double vn =
            double(row.vtuneCycles) / double(row.nativeCycles);
        laser_norm.push_back(ln);
        vtune_norm.push_back(vn);

        std::string notes;
        if (row.repairApplied)
            notes = "repair applied (f=" +
                    fmtDouble(row.repairFraction, 2) + ")";
        else if (row.repairRequested)
            notes = "repair declined";

        const auto &paper = bench::paperLaserOverheads();
        auto it = paper.find(w.info.name);
        table.addRow({
            w.info.name,
            fmtTimes(ln, 3),
            fmtTimes(vn, 2),
            it != paper.end() ? fmtTimes(it->second, 2) : "",
            notes,
        });
    }
    table.addSeparator();
    table.addRow({"geomean", fmtTimes(geomean(laser_norm), 3),
                  fmtTimes(geomean(vtune_norm), 2), "1.02x / 1.84x",
                  ""});
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = sweep.stats();
    std::printf("\nCapture-once/replay-many: %llu simulations (+ repair "
                "re-runs), %llu memory + %llu disk cache hits; repair "
                "decisions are sharded offline replays.\n",
                (unsigned long long)stats.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits);
    std::printf("Shape check: LASER's mean overhead is a few percent "
                "and uniformly low; VTune's interrupt-per-event "
                "collection costs much more, worst on the load-saturated "
                "string_match (paper ~7x).\n");

    int repairs_applied = 0;
    for (const Row &row : rows)
        repairs_applied += row.repairApplied ? 1 : 0;
    telemetry.results()
        .set("workloads", obs::Json(std::uint64_t(all.size())))
        .set("laser_geomean", obs::Json(geomean(laser_norm)))
        .set("vtune_geomean", obs::Json(geomean(vtune_norm)))
        .set("laser_worst", obs::Json(maxOf(laser_norm)))
        .set("vtune_worst", obs::Json(maxOf(vtune_norm)))
        .set("repairs_applied", obs::Json(repairs_applied));
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
