/**
 * @file
 * Figure 3 reproduction: HITM record accuracy characterization.
 *
 * "Over 160 test cases coded in assembly ... two threads engaged in true
 * or false sharing, with either write-read/read-write or write-write
 * sharing. Each thread performs the same operation repeatedly in an
 * infinite loop, where the loop body varies across tests from a single
 * memory operation to hundreds of branch, jump, arithmetic and memory
 * instructions. Event sampling is disabled." (Section 3.1)
 *
 * Expected shape (paper): RW tests ~75% correct data addresses, ~40%
 * exact PCs, ~70% exact+adjacent PCs; WW tests highly inaccurate for
 * both, ~34% adjacent PCs; >99% of wrong PCs inside the binary; 95% of
 * wrong data addresses unmapped.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "isa/assembler.h"
#include "pebs/monitor.h"
#include "sim/machine.h"

using namespace laser;
using namespace laser::isa;

namespace {

struct CaseResult
{
    double addrCorrect = 0;
    double pcExact = 0;
    double pcAdjacent = 0;
    double wrongPcInBinary = 0;
    double wrongAddrUnmapped = 0;
    std::size_t records = 0;
};

/**
 * One characterization case: two threads share a line (true sharing:
 * same word; false sharing: disjoint words). In RW mode thread 0 stores
 * while thread 1 loads; in WW both store. The loop body carries `filler`
 * extra instructions (arithmetic and a branch) like the paper's cases.
 */
CaseResult
runCase(bool true_sharing, bool write_write, int filler,
        std::uint64_t seed)
{
    Asm a("chartest");
    const std::int64_t target = 0x1200000;
    const std::int64_t other = true_sharing ? target : target + 8;
    const int iters = 1600;

    Asm::Label done = a.newLabel();
    Asm::Label t1 = a.newLabel();
    a.at(10).tid(R1);
    a.movi(R9, 1);
    a.bne(R1, R0, t1);

    // Thread 0: always stores.
    a.at(20).movi(R2, target);
    a.movi(R3, iters);
    {
        Asm::Label loop = a.here();
        a.at(22).store(R2, 0, R3, 8);
        for (int f = 0; f < filler; ++f)
            a.at(23 + f % 5).addi(R4, R4, f + 1);
        a.subi(R3, R3, 1);
        a.bne(R3, R0, loop);
    }
    a.jmp(done);

    // Thread 1: loads (RW) or stores (WW) the sharing partner address.
    a.bind(t1);
    a.bne(R1, R9, done);
    a.at(40).movi(R2, other);
    a.movi(R3, iters);
    {
        Asm::Label loop = a.here();
        if (write_write)
            a.at(42).store(R2, 0, R3, 8);
        else
            a.at(42).load(R4, R2, 0, 8);
        for (int f = 0; f < filler; ++f)
            a.at(43 + f % 5).addi(R5, R5, f + 1);
        a.subi(R3, R3, 1);
        a.bne(R3, R0, loop);
    }
    a.bind(done);
    a.at(60).halt();

    sim::MachineConfig mc;
    mc.seed = seed;
    sim::Machine machine(a.finalize(), mc);
    pebs::PebsConfig pc;
    pc.sav = 1; // sampling disabled for the characterization
    pc.keepGroundTruth = true;
    pc.seed = seed * 2654435761u + 1;
    pebs::PebsMonitor mon(machine.addressSpace(), machine.program().size(),
                          mc.timing, pc);
    machine.setPmuSink(&mon);
    machine.run();
    mon.finish();

    CaseResult res;
    res.records = mon.records().size();
    if (res.records == 0)
        return res;
    std::size_t addr_ok = 0, pc_exact = 0, pc_adj = 0;
    std::size_t wrong_pc = 0, wrong_pc_in = 0;
    std::size_t wrong_addr = 0, wrong_addr_unmapped = 0;
    for (std::size_t i = 0; i < mon.records().size(); ++i) {
        const auto &r = mon.records()[i];
        const auto &t = mon.truths()[i];
        if (r.dataAddr == t.trueAddr) {
            ++addr_ok;
        } else {
            ++wrong_addr;
            if (machine.addressSpace().classify(r.dataAddr) ==
                    mem::RegionKind::Unmapped) {
                ++wrong_addr_unmapped;
            }
        }
        const std::int64_t idx = machine.addressSpace().pcToIndex(r.pc);
        const std::int64_t tidx =
            machine.addressSpace().pcToIndex(t.truePc);
        if (idx == tidx) {
            ++pc_exact;
            ++pc_adj;
        } else {
            if (idx >= 0 && std::llabs(idx - tidx) <= 1)
                ++pc_adj;
            ++wrong_pc;
            if (idx >= 0)
                ++wrong_pc_in;
        }
    }
    const double n = double(res.records);
    res.addrCorrect = addr_ok / n;
    res.pcExact = pc_exact / n;
    res.pcAdjacent = pc_adj / n;
    res.wrongPcInBinary = wrong_pc ? double(wrong_pc_in) / wrong_pc : 1.0;
    res.wrongAddrUnmapped =
        wrong_addr ? double(wrong_addr_unmapped) / wrong_addr : 1.0;
    return res;
}

} // namespace

int
main()
{
    bench::banner("HITM record accuracy characterization", "Figure 3");
    obs::BenchReport telemetry("fig03_characterization");

    struct Category
    {
        const char *name;
        bool ts;
        bool ww;
        double paperAddr;
        double paperPcExact;
        double paperPcAdj;
    };
    const Category cats[] = {
        {"TSRW", true, false, 0.75, 0.40, 0.70},
        {"FSRW", false, false, 0.75, 0.40, 0.70},
        {"TSWW", true, true, 0.10, 0.07, 0.34},
        {"FSWW", false, true, 0.10, 0.07, 0.34},
    };

    TablePrinter table({"category", "cases", "records",
                        "addr-ok (paper)", "pc-exact (paper)",
                        "pc-adj (paper)", "wrongPC in-binary",
                        "wrongAddr unmapped"});

    int total_cases = 0;
    obs::Json cat_rows = obs::Json::array();
    for (const Category &cat : cats) {
        std::vector<double> addr, exact, adj, wpc, wad;
        std::size_t records = 0;
        // 40 variants per category: filler 0..hundreds of instructions,
        // distinct seeds => 160 cases total.
        for (int v = 0; v < 40; ++v) {
            const int filler = (v % 8) * (v % 8) * 4; // 0..196
            CaseResult r =
                runCase(cat.ts, cat.ww, filler, 1000 + 97 * v);
            if (r.records == 0)
                continue;
            ++total_cases;
            records += r.records;
            addr.push_back(r.addrCorrect);
            exact.push_back(r.pcExact);
            adj.push_back(r.pcAdjacent);
            wpc.push_back(r.wrongPcInBinary);
            wad.push_back(r.wrongAddrUnmapped);
        }
        table.addRow({
            cat.name,
            std::to_string(addr.size()),
            fmtCount(records),
            fmtPercent(mean(addr)) + " (" + fmtPercent(cat.paperAddr) +
                ")",
            fmtPercent(mean(exact)) + " (" +
                fmtPercent(cat.paperPcExact) + ")",
            fmtPercent(mean(adj)) + " (" + fmtPercent(cat.paperPcAdj) +
                ")",
            fmtPercent(mean(wpc)),
            fmtPercent(mean(wad)),
        });
        obs::Json r = obs::Json::object();
        r.set("category", obs::Json(std::string(cat.name)));
        r.set("cases", obs::Json(std::uint64_t(addr.size())));
        r.set("records", obs::Json(std::uint64_t(records)));
        r.set("addr_correct", obs::Json(mean(addr)));
        r.set("pc_exact", obs::Json(mean(exact)));
        r.set("pc_adjacent", obs::Json(mean(adj)));
        r.set("wrong_pc_in_binary", obs::Json(mean(wpc)));
        r.set("wrong_addr_unmapped", obs::Json(mean(wad)));
        cat_rows.push(std::move(r));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ntotal test cases: %d (paper: >160)\n"
                "Expected shape: RW categories precise (addresses ~75%%, "
                "adjacent PCs ~70%%), WW categories imprecise; wrong PCs "
                ">99%% in-binary; wrong addresses ~95%% unmapped.\n",
                total_cases);

    telemetry.results()
        .set("total_cases", obs::Json(total_cases))
        .set("categories", std::move(cat_rows));
    bench::writeTelemetry(telemetry, nullptr);
    return 0;
}
