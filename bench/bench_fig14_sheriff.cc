/**
 * @file
 * Figure 14 reproduction: runtime of LASER, the manually fixed code,
 * Sheriff-Detect and Sheriff-Protect, normalized to native execution,
 * on the workloads where at least one Sheriff scheme works.
 *
 * Capture-once/replay-many: every column's run — native, manual fix,
 * the LASER monitored phase, and both Sheriff schemes — is captured
 * through the sweep runner's trace cache; Sheriff runtimes come from
 * the captured sync-commit streams, and only LASER runs whose offline
 * replay requests repair re-simulate. With LASER_TRACE_CACHE set, a
 * repeat invocation performs zero simulations.
 *
 * Paper shape: LASER uniformly low overhead; Sheriff schemes fix the
 * false sharing in histogram'/linear_regression even though
 * Sheriff-Detect reports nothing, but pay heavily on synchronization-
 * intensive workloads (water_nsquared ~5x); "x" marks runtime errors;
 * "*" marks workloads run with simlarge inputs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

using namespace laser;

int
main()
{
    bench::banner("Comparison with Sheriff", "Figure 14");
    obs::BenchReport telemetry("fig14_sheriff");

    // The Figure 14 benchmark set.
    const char *names[] = {
        "blackscholes", "ferret",        "histogram",
        "histogram'",   "kmeans",        "linear_regression",
        "lu_cb",        "lu_ncb",        "matrix_multiply",
        "pca",          "radix",         "raytrace.splash2x",
        "reverse_index", "string_match", "swaptions",
        "water_nsquared", "water_spatial",
    };
    const std::size_t n = sizeof names / sizeof names[0];

    core::SweepRunner sweep(bench::sweepConfig());
    core::ExperimentRunner runner;
    const double small_scale = runner.config().sheriffSmallScale;

    struct Row
    {
        const workloads::WorkloadDef *w = nullptr;
        bool small = false;
        bool sheriffCrashes = false;
        std::uint64_t nativeCycles = 0;
        std::uint64_t sheriffNativeCycles = 0;
        std::uint64_t laserCycles = 0;
        std::uint64_t manualFixCycles = 0; ///< 0 = no manual fix
        std::uint64_t sheriffDetectCycles = 0;
        std::uint64_t sheriffProtectCycles = 0;
    };
    std::vector<Row> rows(n);

    sweep.parallelFor(n, [&](std::size_t i) {
        Row &row = rows[i];
        row.w = workloads::findWorkload(names[i]);
        const workloads::WorkloadDef &w = *row.w;
        row.small =
            w.info.sheriff == workloads::SheriffCompat::WorksSmallInput;
        row.sheriffCrashes =
            w.info.sheriff == workloads::SheriffCompat::Crash ||
            w.info.sheriff == workloads::SheriffCompat::Incompatible;

        row.nativeCycles =
            sweep.capture(w, trace::CaptureOptions::forScheme("native"))
                ->meta.runtimeCycles;
        row.sheriffNativeCycles = row.nativeCycles;

        if (w.info.hasManualFix) {
            trace::CaptureOptions mf =
                trace::CaptureOptions::forScheme("native");
            mf.manualFix = true;
            row.manualFixCycles =
                sweep.capture(w, mf)->meta.runtimeCycles;
        }

        // LASER monitored phase from the trace cache; re-simulate only
        // when the offline (sharded) replay requests repair.
        const auto laser_trace = sweep.capture(w, {});
        row.laserCycles = laser_trace->meta.runtimeCycles;
        if (trace::replayDetection(*laser_trace, 4, &sweep.pool())
                .repairRequested)
            row.laserCycles =
                runner.run(w, core::Scheme::Laser).runtimeCycles;

        if (row.sheriffCrashes)
            return;

        // Sheriff's small-input runs are normalized against an equally
        // scaled native run.
        const double scale = row.small ? small_scale : 1.0;
        if (row.small) {
            trace::CaptureOptions nat =
                trace::CaptureOptions::forScheme("native");
            nat.scale = scale;
            row.sheriffNativeCycles =
                sweep.capture(w, nat)->meta.runtimeCycles;
        }
        for (const char *scheme : {"sheriff-detect", "sheriff-protect"}) {
            trace::CaptureOptions so =
                trace::CaptureOptions::forScheme(scheme);
            so.scale = scale;
            const auto trace = sweep.capture(w, so);
            // The captured sync stream replays the cost model offline;
            // at the capture config the estimate equals the simulated
            // runtime exactly.
            const std::uint64_t cycles =
                trace::TraceReplayer(*trace)
                    .replaySheriff()
                    .estimatedRuntimeCycles;
            (std::string(scheme) == "sheriff-detect"
                 ? row.sheriffDetectCycles
                 : row.sheriffProtectCycles) = cycles;
        }
    });

    TablePrinter table({"benchmark", "LASER", "manual fix",
                        "Sheriff-Detect", "Sheriff-Protect"});
    for (const Row &row : rows) {
        auto norm = [](std::uint64_t cycles,
                       std::uint64_t base) -> std::string {
            if (cycles == 0)
                return "x";
            return fmtTimes(double(cycles) / double(base));
        };
        table.addRow({
            std::string(row.w->info.name) + (row.small ? "*" : ""),
            norm(row.laserCycles, row.nativeCycles),
            row.manualFixCycles
                ? norm(row.manualFixCycles, row.nativeCycles)
                : "",
            norm(row.sheriffDetectCycles, row.sheriffNativeCycles),
            norm(row.sheriffProtectCycles, row.sheriffNativeCycles),
        });
    }
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = sweep.stats();
    std::printf("\nCapture-once/replay-many: %llu simulations (+ repair "
                "re-runs), %llu memory + %llu disk cache hits; Sheriff "
                "runtimes replay the captured sync-commit streams.\n",
                (unsigned long long)stats.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits);
    std::printf("Shape check: LASER stays near 1.0x everywhere; "
                "Sheriff-Protect removes false sharing (histogram', "
                "linear_regression run fast) but sync-heavy workloads "
                "(water_nsquared) slow down severely under both Sheriff "
                "schemes.\n");

    obs::Json result_rows = obs::Json::array();
    for (const Row &row : rows) {
        obs::Json r = obs::Json::object();
        r.set("benchmark", obs::Json(std::string(row.w->info.name)));
        r.set("small_input", obs::Json(row.small));
        r.set("sheriff_crashes", obs::Json(row.sheriffCrashes));
        r.set("laser_norm", obs::Json(double(row.laserCycles) /
                                      double(row.nativeCycles)));
        if (row.manualFixCycles)
            r.set("manual_fix_norm",
                  obs::Json(double(row.manualFixCycles) /
                            double(row.nativeCycles)));
        if (row.sheriffDetectCycles)
            r.set("sheriff_detect_norm",
                  obs::Json(double(row.sheriffDetectCycles) /
                            double(row.sheriffNativeCycles)));
        if (row.sheriffProtectCycles)
            r.set("sheriff_protect_norm",
                  obs::Json(double(row.sheriffProtectCycles) /
                            double(row.sheriffNativeCycles)));
        result_rows.push(std::move(r));
    }
    telemetry.results()
        .set("workloads", obs::Json(std::uint64_t(n)))
        .set("rows", std::move(result_rows));
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
