/**
 * @file
 * Figure 14 reproduction: runtime of LASER, the manually fixed code,
 * Sheriff-Detect and Sheriff-Protect, normalized to native execution,
 * on the workloads where at least one Sheriff scheme works.
 *
 * Paper shape: LASER uniformly low overhead; Sheriff schemes fix the
 * false sharing in histogram'/linear_regression even though
 * Sheriff-Detect reports nothing, but pay heavily on synchronization-
 * intensive workloads (water_nsquared ~5x); "x" marks runtime errors;
 * "*" marks workloads run with simlarge inputs.
 */

#include <cstdio>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Comparison with Sheriff", "Figure 14");

    // The Figure 14 benchmark set.
    const char *names[] = {
        "blackscholes", "ferret",        "histogram",
        "histogram'",   "kmeans",        "linear_regression",
        "lu_cb",        "lu_ncb",        "matrix_multiply",
        "pca",          "radix",         "raytrace.splash2x",
        "reverse_index", "string_match", "swaptions",
        "water_nsquared", "water_spatial",
    };

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "LASER", "manual fix",
                        "Sheriff-Detect", "Sheriff-Protect"});

    for (const char *name : names) {
        const auto *w = workloads::findWorkload(name);
        const bool small = w->info.sheriff ==
                           workloads::SheriffCompat::WorksSmallInput;
        // Sheriff's comparison uses smaller inputs for the "*" set; the
        // native baseline for Sheriff columns uses the same scale.
        const double sheriff_scale = 1.0;

        core::RunResult native = runner.run(*w, core::Scheme::Native);
        core::RunResult laser = runner.run(*w, core::Scheme::Laser);
        core::RunResult sdet =
            runner.run(*w, core::Scheme::SheriffDetect, sheriff_scale);
        core::RunResult sprot =
            runner.run(*w, core::Scheme::SheriffProtect, sheriff_scale);

        // Sheriff's small-input runs are normalized against an equally
        // scaled native run.
        std::uint64_t sheriff_native = native.runtimeCycles;
        if (small && !sdet.crashed) {
            core::RunResult scaled_native =
                runner.run(*w, core::Scheme::Native,
                           runner.config().sheriffSmallScale);
            sheriff_native = scaled_native.runtimeCycles;
        }

        auto norm = [&](const core::RunResult &r,
                        std::uint64_t base) -> std::string {
            if (r.crashed)
                return "x";
            return fmtTimes(double(r.runtimeCycles) / double(base));
        };

        std::string fixed = "";
        if (w->info.hasManualFix) {
            core::RunResult mf = runner.run(*w, core::Scheme::ManualFix);
            fixed = fmtTimes(double(mf.runtimeCycles) /
                             double(native.runtimeCycles));
        }

        table.addRow({
            std::string(name) + (small ? "*" : ""),
            norm(laser, native.runtimeCycles),
            fixed,
            norm(sdet, sheriff_native),
            norm(sprot, sheriff_native),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check: LASER stays near 1.0x everywhere; "
                "Sheriff-Protect removes false sharing (histogram', "
                "linear_regression run fast) but sync-heavy workloads "
                "(water_nsquared) slow down severely under both Sheriff "
                "schemes.\n");
    return 0;
}
