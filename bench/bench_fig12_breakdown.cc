/**
 * @file
 * Figure 12 reproduction: time spent in the driver and the detector as a
 * proportion of application CPU time, for benchmarks with >= 10% LASER
 * overhead.
 *
 * Paper shape: both components are tiny (< ~3% combined) even for the
 * workloads that slow down the most (kmeans 1.22x, x264 1.15x,
 * water_nsquared 1.10x) — the overhead comes from PEBS assists and PMIs
 * perturbing the application, not from LASER's own processing.
 */

#include <cstdio>
#include <numeric>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Driver/detector time breakdown", "Figure 12");
    obs::BenchReport telemetry("fig12_breakdown");

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "slowdown", "driver %", "detector %",
                        "records"});

    obs::Json rows = obs::Json::array();
    for (const auto &w : workloads::allWorkloads()) {
        core::RunResult native = runner.run(w, core::Scheme::Native);
        core::RunResult laser =
            runner.run(w, core::Scheme::LaserDetectOnly);
        const double slowdown = double(laser.runtimeCycles) /
                                double(native.runtimeCycles);
        if (slowdown < 1.08)
            continue;

        const double app_cpu = double(std::accumulate(
            laser.stats.threadCycles.begin(),
            laser.stats.threadCycles.end(), std::uint64_t(0)));
        const double driver_pct =
            app_cpu > 0 ? double(laser.pebs.driverCycles) / app_cpu : 0;
        const double detector_pct =
            app_cpu > 0 ? double(laser.detection.detectorCycles) / app_cpu
                        : 0;
        table.addRow({
            w.info.name,
            fmtTimes(slowdown),
            fmtPercent(driver_pct, 2),
            fmtPercent(detector_pct, 2),
            fmtCount(laser.detection.totalRecords),
        });
        obs::Json r = obs::Json::object();
        r.set("benchmark", obs::Json(std::string(w.info.name)));
        r.set("slowdown", obs::Json(slowdown));
        r.set("driver_fraction", obs::Json(driver_pct));
        r.set("detector_fraction", obs::Json(detector_pct));
        r.set("records", obs::Json(laser.detection.totalRecords));
        rows.push(std::move(r));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check (paper: kmeans 1.22x, x264 1.15x, "
                "water_nsquared 1.10x; driver+detector < ~3%% of "
                "application time): even at high HITM rates, contention "
                "detection itself is cheap.\n");

    telemetry.results().set("rows", std::move(rows));
    bench::writeTelemetry(telemetry, nullptr);
    return 0;
}
