/**
 * @file
 * Shared helpers for the per-table/figure bench harnesses. Every harness
 * prints a "paper vs measured" table: absolute equality with the paper's
 * testbed is not expected (our substrate is a simulator), the *shape* is
 * (see EXPERIMENTS.md).
 */

#ifndef LASER_BENCH_COMMON_H
#define LASER_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/accuracy.h"
#include "core/experiment.h"
#include "core/sweep_runner.h"
#include "obs/export.h"
#include "obs/ledger.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace laser::bench {

/** Print a harness banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n(reproduces %s of LASER, HPCA 2016; "
                "shapes, not absolute numbers)\n\n",
                title.c_str(), paper_ref.c_str());
}

/** "-" for zero counts, matching the paper's table style. */
inline std::string
dashIfZero(int v)
{
    return v == 0 ? "-" : std::to_string(v);
}

/**
 * Sweep-runner configuration for the capture-once/replay-many benches:
 * LASER_TRACE_CACHE names an on-disk trace-cache directory shared
 * across invocations (a repeat run then performs zero simulations);
 * unset keeps the cache in memory for this invocation only.
 */
inline core::SweepRunner::Config
sweepConfig()
{
    core::SweepRunner::Config cfg;
    if (const char *dir = std::getenv("LASER_TRACE_CACHE"))
        cfg.cacheDir = dir;
    return cfg;
}

/**
 * Write a bench's telemetry artifacts (BENCH_<name>.json plus the
 * registry snapshot/span trace) when LASER_METRICS_OUT is set, append
 * the run-ledger record when LASER_LEDGER is set, folding in the sweep
 * runner's cache counters, and tell the user where everything went.
 * Benches without a sweep runner pass nullptr.
 */
inline void
writeTelemetry(obs::BenchReport &report, const core::SweepStats *stats)
{
    if (stats)
        report.setSweep(stats->machineRuns, stats->memoryCacheHits,
                        stats->diskCacheHits);
    if (report.write())
        std::printf("\ntelemetry: wrote %s (+ METRICS/TRACE artifacts)\n",
                    report.path().c_str());
    const std::string ledger = obs::ledgerPath();
    if (!ledger.empty())
        std::printf("ledger: appended %s run to %s\n",
                    report.name().c_str(), ledger.c_str());
}

/** Paper's Figure 10 LASER bars where readable (by workload name). */
inline const std::map<std::string, double> &
paperLaserOverheads()
{
    static const std::map<std::string, double> m = {
        {"kmeans", 1.22},         {"x264", 1.15},
        {"water_nsquared", 1.10}, {"linear_regression", 0.84},
        {"histogram'", 0.81},     {"lu_ncb", 0.70},
    };
    return m;
}

} // namespace laser::bench

#endif // LASER_BENCH_COMMON_H
