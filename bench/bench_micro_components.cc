/**
 * @file
 * google-benchmark microbenchmarks for the reproduction's hot
 * components: the software store buffer, the Figure 5 cache-line model,
 * the detector pipeline, the MESI directory and the interpreter.
 */

#include <benchmark/benchmark.h>

#include "detect/cacheline_model.h"
#include "obs/export.h"
#include "detect/detector.h"
#include "isa/assembler.h"
#include "pebs/monitor.h"
#include "sim/coherence.h"
#include "sim/machine.h"
#include "sim/ssb.h"
#include "util/rng.h"

using namespace laser;
using namespace laser::isa;

static void
BM_SsbPut(benchmark::State &state)
{
    sim::SoftwareStoreBuffer ssb;
    std::uint64_t addr = 0x1000;
    std::uint64_t seq = 0;
    for (auto _ : state) {
        ssb.put(addr, 8, seq, ++seq);
        addr = 0x1000 + (seq % 8) * 8; // stay within the flush cap
        if (ssb.entryCount() > 8)
            benchmark::DoNotOptimize(ssb.drain());
    }
}
BENCHMARK(BM_SsbPut);

static void
BM_SsbLookup(benchmark::State &state)
{
    sim::SoftwareStoreBuffer ssb;
    for (int i = 0; i < 8; ++i)
        ssb.put(0x1000 + i * 8, 8, i, i + 1);
    std::uint64_t v = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ssb.getFull(0x1000 + (i++ % 16) * 8, 8, &v));
    }
}
BENCHMARK(BM_SsbLookup);

static void
BM_SsbFlushDrain(benchmark::State &state)
{
    const int entries = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        sim::SoftwareStoreBuffer ssb;
        for (int i = 0; i < entries; ++i)
            ssb.put(0x1000 + i * 8, 8, i, i + 1);
        state.ResumeTiming();
        benchmark::DoNotOptimize(ssb.drain());
    }
}
BENCHMARK(BM_SsbFlushDrain)->Arg(8)->Arg(64)->Arg(512);

static void
BM_CacheLineModel(benchmark::State &state)
{
    detect::CacheLineModel model;
    Rng rng(42);
    for (auto _ : state) {
        const std::uint64_t addr = 0x1000000 + rng.below(64) * 8;
        benchmark::DoNotOptimize(model.access(addr, 8, rng.chance(0.5)));
    }
}
BENCHMARK(BM_CacheLineModel);

static void
BM_CoherenceAccess(benchmark::State &state)
{
    sim::CoherenceDirectory dir(4);
    Rng rng(43);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dir.access(static_cast<int>(rng.below(4)),
                       0x1000 + rng.below(128) * 8, rng.chance(0.4),
                       true));
    }
}
BENCHMARK(BM_CoherenceAccess);

namespace {

isa::Program
detectorProgram()
{
    Asm a("micro");
    a.store(R2, 0, R3, 8);
    a.load(R4, R2, 0, 8);
    a.halt();
    return a.finalize();
}

} // namespace

static void
BM_DetectorPipeline(benchmark::State &state)
{
    isa::Program prog = detectorProgram();
    mem::AddressSpace space(prog, 4);
    sim::TimingModel timing;
    detect::Detector det(prog, space, space.renderProcMaps(), timing,
                         {});
    Rng rng(44);
    pebs::PebsRecord rec;
    for (auto _ : state) {
        rec.pc = space.indexToPc(static_cast<std::uint32_t>(
            rng.below(prog.size())));
        rec.dataAddr = 0x1000000 + rng.below(16) * 8;
        rec.cycle = 1000;
        det.processRecord(rec);
    }
}
BENCHMARK(BM_DetectorPipeline);

static void
BM_InterpreterThroughput(benchmark::State &state)
{
    // Instructions-per-second of the simulator on a tight loop.
    for (auto _ : state) {
        Asm a("loop");
        a.movi(R2, 20000);
        Asm::Label l = a.here();
        a.addi(R3, R3, 1);
        a.subi(R2, R2, 1);
        a.bne(R2, R0, l);
        a.halt();
        sim::Machine m(a.finalize());
        sim::MachineStats s = m.run();
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(s.instructions));
    }
}
BENCHMARK(BM_InterpreterThroughput);

// Expanded BENCHMARK_MAIN so the run also emits BENCH_micro_components
// telemetry (per-benchmark wall times land in the registry snapshot via
// span histograms recorded by the instrumented components themselves).
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    obs::BenchReport telemetry("micro_components");
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    telemetry.results().set("benchmarks_run",
                            obs::Json(std::uint64_t(ran)));
    telemetry.write();
    return 0;
}
