/**
 * @file
 * LSRT v3 codec bench (ISSUE 7 acceptance): per-column encode/decode
 * throughput for every block codec, v3-vs-v2 compression on the full
 * workload corpus, and whole-trace vs windowed-seek replay latency.
 *
 * Acceptance:
 *   - v3 encodes the corpus's record streams >= 1.3x smaller than the
 *     v2 row-wise interleaved-delta format;
 *   - replaying a 10% cycle window through the block index reads < 25%
 *     of the payload bytes (measured via the trace.file.bytes_read
 *     counter, so it reflects what the seek path actually touched).
 */

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "detect/pipeline.h"
#include "obs/metrics.h"
#include "trace/columnar.h"
#include "trace/replay.h"
#include "trace/trace.h"
#include "trace/trace_file.h"

using namespace laser;
namespace col = trace::columnar;

namespace {

/** Process CPU time: immune to scheduler noise on shared CI runners. */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

/** One codec's measured throughput over one column. */
struct CodecResult
{
    double encodeMBps = 0;
    double decodeMBps = 0;
    std::uint64_t encodedBytes = 0;
};

/**
 * Time @p codec over @p vals in block-sized strides (the unit the real
 * writer encodes), repeating until the loop runs long enough for
 * CLOCK_PROCESS_CPUTIME_ID's granularity not to matter.
 */
CodecResult
timeCodec(col::ColumnCodec codec, const std::vector<std::uint64_t> &vals)
{
    CodecResult result;
    const double raw_mb = double(vals.size()) * 8.0 / 1e6;
    const std::size_t stride = col::kDefaultBlockRecords;

    std::vector<std::uint8_t> encoded;
    int reps = 0;
    double elapsed = 0;
    while (elapsed < 0.05 || reps < 3) {
        encoded.clear();
        const double start = cpuSeconds();
        for (std::size_t i = 0; i < vals.size(); i += stride) {
            const std::vector<std::uint64_t> block(
                vals.begin() + i,
                vals.begin() + std::min(i + stride, vals.size()));
            col::encodeColumn(codec, block, &encoded);
        }
        elapsed += cpuSeconds() - start;
        ++reps;
    }
    result.encodedBytes = encoded.size();
    result.encodeMBps = raw_mb * reps / elapsed;

    // Decode from the per-block slices the encode produced.
    std::vector<std::pair<std::size_t, std::size_t>> slices;
    {
        std::vector<std::uint8_t> probe;
        std::size_t off = 0;
        for (std::size_t i = 0; i < vals.size(); i += stride) {
            const std::vector<std::uint64_t> block(
                vals.begin() + i,
                vals.begin() + std::min(i + stride, vals.size()));
            probe.clear();
            col::encodeColumn(codec, block, &probe);
            slices.emplace_back(off, probe.size());
            off += probe.size();
        }
    }
    std::vector<std::uint64_t> decoded;
    reps = 0;
    elapsed = 0;
    while (elapsed < 0.05 || reps < 3) {
        const double start = cpuSeconds();
        std::size_t i = 0;
        for (const auto &[off, size] : slices) {
            const std::size_t count =
                std::min(stride, vals.size() - i);
            decoded.clear();
            if (!col::decodeColumn(codec, encoded.data() + off, size,
                                   count, &decoded)) {
                std::fprintf(stderr, "codec %s failed to round-trip\n",
                             col::codecName(codec));
                std::exit(1);
            }
            i += count;
        }
        elapsed += cpuSeconds() - start;
        ++reps;
    }
    result.decodeMBps = raw_mb * reps / elapsed;
    return result;
}

/** Record-stream bytes of a trace under format @p version (3 = current):
 *  full image minus the image of the same trace with no records, so the
 *  fixed header/config/results overhead cancels out of the ratio. */
std::uint64_t
recordStreamBytes(const trace::Trace &t, std::uint32_t version)
{
    trace::Trace empty;
    empty.meta = t.meta;
    if (version < trace::kTraceVersion)
        return trace::encodeLegacyTrace(t, version).size() -
               trace::encodeLegacyTrace(empty, version).size();
    trace::TraceWriter full(t.meta);
    full.appendAll(t.records);
    trace::TraceWriter none(t.meta);
    return full.finalize().size() - none.finalize().size();
}

} // namespace

int
main()
{
    bench::banner("Trace codec throughput & seek efficiency",
                  "the capture/replay substrate (Section 5)");
    obs::BenchReport telemetry("trace_codec");

    // ---- Corpus compression: v3 columnar vs v2 row-wise ----
    core::SweepRunner runner(bench::sweepConfig());
    std::shared_ptr<const trace::Trace> biggest;
    std::uint64_t v2_bytes = 0, v3_bytes = 0;
    std::size_t corpus = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto t = runner.capture(w, {});
        if (t->records.empty())
            continue;
        ++corpus;
        v2_bytes += recordStreamBytes(*t, 2);
        v3_bytes += recordStreamBytes(*t, trace::kTraceVersion);
        if (!biggest || t->records.size() > biggest->records.size())
            biggest = t;
    }
    const double ratio =
        v3_bytes > 0 ? double(v2_bytes) / double(v3_bytes) : 0.0;
    const bool ratio_pass = ratio >= 1.3;
    std::printf("corpus: %zu traces with records; v2 record streams "
                "%s, v3 %s -> %s smaller (acceptance: >= 1.30x)\n\n",
                corpus, humanBytes(v2_bytes).c_str(),
                humanBytes(v3_bytes).c_str(), fmtTimes(ratio).c_str());

    // ---- Per-column, per-codec throughput ----
    // Tile the biggest capture so each column is a few hundred KB and
    // per-block fixed costs stop dominating.
    if (!biggest) {
        std::fprintf(stderr, "no workload produced records\n");
        return 1;
    }
    const std::uint64_t stride = biggest->records.back().cycle + 1;
    const int copies = std::max<int>(
        1, int(200000 / std::max<std::size_t>(
                            1, biggest->records.size())));
    trace::Trace big;
    big.meta = biggest->meta;
    big.records.reserve(biggest->records.size() * std::size_t(copies));
    for (int c = 0; c < copies; ++c)
        for (pebs::PebsRecord r : biggest->records) {
            r.cycle += stride * std::uint64_t(c);
            big.records.push_back(r);
        }

    std::vector<std::uint64_t> cols[col::kColumnCount];
    for (const pebs::PebsRecord &r : big.records) {
        cols[col::kColPc].push_back(r.pc);
        cols[col::kColAddr].push_back(r.dataAddr);
        cols[col::kColCore].push_back(
            std::uint64_t(std::int64_t(r.core)));
        cols[col::kColCycle].push_back(r.cycle);
    }

    TablePrinter table({"column", "codec", "encode MB/s", "decode MB/s",
                        "ratio"});
    obs::Json codec_json = obs::Json::object();
    for (std::size_t c = 0; c < col::kColumnCount; ++c) {
        obs::Json per_col = obs::Json::object();
        for (std::uint8_t k = 0; k < col::kCodecCount; ++k) {
            const auto codec = static_cast<col::ColumnCodec>(k);
            const CodecResult r = timeCodec(codec, cols[c]);
            const double cr =
                r.encodedBytes > 0
                    ? double(cols[c].size()) * 8.0 / double(r.encodedBytes)
                    : 0.0;
            table.addRow({col::columnName(c), col::codecName(codec),
                          fmtDouble(r.encodeMBps, 1),
                          fmtDouble(r.decodeMBps, 1), fmtTimes(cr)});
            per_col.set(col::codecName(codec),
                        obs::Json::object()
                            .set("encode_mbps", obs::Json(r.encodeMBps))
                            .set("decode_mbps", obs::Json(r.decodeMBps))
                            .set("encoded_bytes",
                                 obs::Json(r.encodedBytes)));
        }
        table.addSeparator();
        codec_json.set(col::columnName(c), std::move(per_col));
    }
    std::printf("%zu records/column (%s raw per column, block size "
                "%zu)\n",
                big.records.size(),
                humanBytes(big.records.size() * 8).c_str(),
                col::kDefaultBlockRecords);
    std::fputs(table.render().c_str(), stdout);

    // ---- Whole-trace vs windowed-seek replay ----
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        "bench_trace_codec.ltrace";
    if (trace::writeTraceFile(big, path.string()) !=
            trace::TraceStatus::Ok) {
        std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
        return 1;
    }
    trace::TraceFile file;
    if (file.open(path.string()) != trace::TraceStatus::Ok) {
        std::fprintf(stderr, "cannot open %s: %s\n",
                     path.string().c_str(), file.error().c_str());
        return 1;
    }
    trace::TraceReplayer env(file.meta(), file);
    if (!env.ok()) {
        std::fprintf(stderr, "replay environment: %s\n",
                     env.error().c_str());
        return 1;
    }
    obs::Counter &bytes_read =
        obs::Registry::global().counter("trace.file.bytes_read");

    auto replay_window = [&](std::uint64_t begin, std::uint64_t end,
                             std::uint64_t *bytes) {
        detect::DetectorConfig cfg;
        cfg.sav = file.meta().pebs.sav;
        detect::DetectorPipeline pipeline(env.context(), cfg);
        const std::uint64_t before = bytes_read.value();
        const double start = cpuSeconds();
        file.cursorForCycles(begin, end)->drain(pipeline);
        pipeline.finish(file.meta().runtimeCycles);
        const double elapsed = cpuSeconds() - start;
        *bytes = bytes_read.value() - before;
        return elapsed;
    };

    const std::uint64_t lo = file.index().blocks.front().firstCycle;
    const std::uint64_t hi = file.index().blocks.back().lastCycle + 1;
    const std::uint64_t span = hi - lo;
    std::uint64_t full_bytes = 0, window_bytes = 0;
    double full_s = 1e300, window_s = 1e300;
    for (int i = 0; i < 5; ++i) {
        full_s = std::min(full_s, replay_window(0, UINT64_MAX,
                                                &full_bytes));
        window_s = std::min(
            window_s, replay_window(lo + span * 45 / 100,
                                    lo + span * 55 / 100, &window_bytes));
    }
    const double window_fraction =
        file.payloadBytes() > 0
            ? double(window_bytes) / double(file.payloadBytes())
            : 1.0;
    const bool window_pass = window_fraction < 0.25;
    std::printf("\nfull replay: %.2fms, %s read; 10%% cycle window: "
                "%.2fms, %s read (%.1f%% of payload; acceptance: "
                "< 25%%)\n",
                1e3 * full_s, humanBytes(full_bytes).c_str(),
                1e3 * window_s, humanBytes(window_bytes).c_str(),
                1e2 * window_fraction);
    std::printf("compression: %s (acceptance >= 1.30x); seek window: "
                "%s\n",
                ratio_pass ? "PASS" : "FAIL",
                window_pass ? "PASS" : "FAIL");
    std::error_code ec;
    std::filesystem::remove(path, ec);

    telemetry.results()
        .set("corpus_traces", obs::Json(std::uint64_t(corpus)))
        .set("v2_record_bytes", obs::Json(v2_bytes))
        .set("v3_record_bytes", obs::Json(v3_bytes))
        .set("compression_ratio", obs::Json(ratio))
        .set("compression_acceptance", obs::Json(1.3))
        .set("compression_pass", obs::Json(ratio_pass))
        .set("codec_throughput", std::move(codec_json))
        .set("records_per_column",
             obs::Json(std::uint64_t(big.records.size())))
        .set("full_replay_seconds", obs::Json(full_s))
        .set("window_replay_seconds", obs::Json(window_s))
        .set("window_cycle_fraction", obs::Json(0.10))
        .set("window_payload_fraction", obs::Json(window_fraction))
        .set("window_acceptance", obs::Json(0.25))
        .set("window_pass", obs::Json(window_pass));
    const core::SweepStats stats = runner.stats();
    bench::writeTelemetry(telemetry, &stats);
    return ratio_pass && window_pass ? 0 : 1;
}
