/**
 * @file
 * Observability-overhead micro-bench: per-record metrics increments in
 * the detector pipeline (detect.records_ingested and friends) ride the
 * hottest replay path, so this bench measures ParallelReplayer digest
 * throughput with the registry enabled vs disabled
 * (obs::setEnabled(false), the LASER_OBS=0 path).
 *
 * Acceptance (ISSUE 6): the enabled path must stay within 5% of the
 * disabled path's records/sec. Passes are interleaved A/B rounds so
 * frequency drift and cache warmth hit both sides equally.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "obs/span.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

using namespace laser;

namespace {

/**
 * Process CPU time across all threads. Instrumentation overhead is
 * extra CPU work, and unlike wall time this is immune to the
 * scheduler preempting us for unrelated processes — essential on the
 * small shared runners CI uses.
 */
double
cpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

/** CPU-time a batch of digests; returns seconds for the whole batch. */
double
timeDigests(const trace::TraceReplayer &env, util::ThreadPool *pool,
            int batch, std::uint64_t *records)
{
    trace::ParallelReplayer::Options opt;
    opt.shards = 4;
    opt.pool = pool;
    const double start = cpuSeconds();
    for (int i = 0; i < batch; ++i) {
        trace::ParallelReplayer replayer(env, opt);
        *records = replayer.state().totalRecords;
    }
    return cpuSeconds() - start;
}

} // namespace

int
main()
{
    bench::banner("Observability overhead", "ISSUE 6 acceptance");
    obs::BenchReport telemetry("obs_overhead");

    // Digest the suite's biggest captured record stream — amplified by
    // tiling it end-to-end, so each digest runs a few milliseconds and
    // fixed per-digest costs (shard dispatch, state merge) stop
    // dominating what is meant to be a per-record measurement.
    core::SweepRunner runner(bench::sweepConfig());
    std::shared_ptr<const trace::Trace> biggest;
    for (const auto &w : workloads::allWorkloads()) {
        auto t = runner.capture(w, {});
        if (!biggest || t->records.size() > biggest->records.size())
            biggest = t;
    }
    const int copies = 40;
    trace::Trace big;
    big.meta = biggest->meta;
    big.records.reserve(biggest->records.size() * copies);
    const std::uint64_t stride =
        biggest->records.empty() ? 1 : biggest->records.back().cycle + 1;
    for (int c = 0; c < copies; ++c)
        for (pebs::PebsRecord r : biggest->records) {
            r.cycle += stride * std::uint64_t(c);
            big.records.push_back(r);
        }
    trace::TraceReplayer env(big);
    if (!env.ok()) {
        std::fprintf(stderr, "replay environment failed to build\n");
        return 1;
    }

    // What the budget covers is the per-record registry increments, so
    // keep span *collection* (a mutexed event buffer for the trace
    // exporter, opt-in via LASER_TRACE_EVENTS) out of the timed loops.
    const bool spans_were_on = obs::SpanCollector::global().enabled();
    obs::SpanCollector::global().disable();

    // The suite's traces digest in well under a millisecond each, and
    // CPU-time accounting on small shared runners is heavy-tailed
    // (interrupt time lands on whichever side is running), so no
    // single round is trustworthy. Time a batch of digests per round,
    // pair each enabled round with the adjacent disabled round, and
    // take the *median* of the per-pair overheads — robust to tail
    // noise on either side.
    const int batch = 3;
    const int rounds = 21; // odd, so the median is a real sample
    const int warmup = 2;
    std::uint64_t records = 0;
    std::vector<double> pair_overheads;
    pair_overheads.reserve(rounds);
    double on_best = 1e300, off_best = 1e300;
    for (int i = 0; i < warmup; ++i)
        timeDigests(env, &runner.pool(), batch, &records);
    for (int i = 0; i < rounds; ++i) {
        obs::setEnabled(true);
        const double on =
            timeDigests(env, &runner.pool(), batch, &records);
        obs::setEnabled(false);
        const double off =
            timeDigests(env, &runner.pool(), batch, &records);
        on_best = std::min(on_best, on);
        off_best = std::min(off_best, off);
        if (off > 0)
            pair_overheads.push_back((on - off) / off);
    }
    obs::setEnabled(true); // restore for the telemetry export below
    if (spans_were_on)
        obs::SpanCollector::global().enable();

    std::sort(pair_overheads.begin(), pair_overheads.end());
    const double overhead =
        pair_overheads.empty()
            ? 0.0
            : pair_overheads[pair_overheads.size() / 2];
    const double on_rps =
        double(records) * batch / (on_best > 0 ? on_best : 1);
    const double off_rps =
        double(records) * batch / (off_best > 0 ? off_best : 1);

    std::printf("workload %s: %llu records/digest, %d rounds x %d "
                "digests, 4 shards\n",
                biggest->meta.workload.c_str(),
                (unsigned long long)records, rounds, batch);
    std::printf("obs enabled:  %.2f Mrec/s (best %.3fms/batch)\n",
                on_rps / 1e6, 1e3 * on_best);
    std::printf("obs disabled: %.2f Mrec/s (best %.3fms/batch)\n",
                off_rps / 1e6, 1e3 * off_best);
    std::printf("overhead: %.2f%% median of %d A/B pairs "
                "(acceptance: < 5%%)\n",
                1e2 * overhead, (int)pair_overheads.size());

    telemetry.results()
        .set("workload", obs::Json(biggest->meta.workload))
        .set("records_per_digest", obs::Json(records))
        .set("rounds", obs::Json(rounds))
        .set("enabled_records_per_sec", obs::Json(on_rps))
        .set("disabled_records_per_sec", obs::Json(off_rps))
        .set("overhead_fraction", obs::Json(overhead))
        .set("acceptance_threshold", obs::Json(0.05))
        .set("pass", obs::Json(overhead < 0.05));
    const core::SweepStats stats = runner.stats();
    bench::writeTelemetry(telemetry, &stats);
    return overhead < 0.05 ? 0 : 1;
}
