/**
 * @file
 * Figure 13 reproduction: effect of the sample-after value (SAV) on
 * dedup's normalized runtime, for SAV = 1 and all primes up to 31.
 *
 * Paper shape: ~1.5x at SAV=1, falling steeply to ~1.06x by the default
 * SAV=19, flat afterwards — modest sampling removes nearly all of the
 * PEBS assist/PMI cost.
 */

#include <cstdio>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("SAV sensitivity on dedup", "Figure 13");

    const auto *dedup = workloads::findWorkload("dedup");
    // dedup's pipeline timing is interleaving-sensitive; use the paper's
    // methodology (multiple runs, trimmed mean) across jitter seeds.
    const std::uint64_t seeds[] = {11, 22, 33, 44, 55, 66, 77};

    TablePrinter table({"SAV", "normalized runtime", "records"});
    const std::uint32_t savs[] = {1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
                                  31};
    for (std::uint32_t sav : savs) {
        std::vector<double> norms;
        std::uint64_t records = 0;
        for (std::uint64_t seed : seeds) {
            core::ExperimentConfig cfg;
            cfg.sav = sav;
            cfg.machineSeed = seed;
            core::ExperimentRunner runner(cfg);
            core::RunResult native =
                runner.run(*dedup, core::Scheme::Native);
            core::RunResult laser =
                runner.run(*dedup, core::Scheme::LaserDetectOnly);
            norms.push_back(double(laser.runtimeCycles) /
                            double(native.runtimeCycles));
            records = laser.detection.totalRecords;
        }
        const double norm = trimmedMean(norms);
        std::string marker = sav == 19 ? "  <- LASER default" : "";
        table.addRow({std::to_string(sav) + marker, fmtTimes(norm, 3),
                      fmtCount(records)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check (paper): ~1.5x at SAV=1 falling to ~1.06x "
                "by SAV=19 with no marginal benefit beyond.\n");
    return 0;
}
