/**
 * @file
 * Figure 13 reproduction: effect of the sample-after value (SAV) on
 * dedup's normalized runtime, for SAV = 1 and all primes up to 31.
 *
 * Runs through the parallel sweep runner: every (SAV x jitter seed)
 * monitored run is an independent job fanned across cores, and the
 * native baselines — identical for every SAV — are simulated once per
 * seed and served to the other eleven sweep points from the trace
 * cache. Record counts come from an offline detector replay of the
 * captured traces.
 *
 * Paper shape: ~1.5x at SAV=1, falling steeply to ~1.06x by the default
 * SAV=19, flat afterwards — modest sampling removes nearly all of the
 * PEBS assist/PMI cost.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "trace/replay.h"

using namespace laser;

int
main()
{
    bench::banner("SAV sensitivity on dedup", "Figure 13");
    obs::BenchReport telemetry("fig13_sav_sweep");

    const auto *dedup = workloads::findWorkload("dedup");
    // dedup's pipeline timing is interleaving-sensitive; use the paper's
    // methodology (multiple runs, trimmed mean) across jitter seeds.
    const std::vector<std::uint64_t> seeds = {11, 22, 33, 44, 55, 66, 77};
    const std::vector<std::uint32_t> savs = {1,  2,  3,  5,  7,  11,
                                             13, 17, 19, 23, 29, 31};
    const std::size_t nsav = savs.size();
    const std::size_t nseed = seeds.size();

    core::SweepRunner runner(bench::sweepConfig());

    // Phase 1: all (SAV x seed) monitored runs plus the per-seed native
    // baselines, in parallel. The baseline for a seed is requested by
    // all twelve SAV jobs but simulated exactly once (trace cache).
    std::vector<std::vector<double>> norms(nsav,
                                           std::vector<double>(nseed));
    std::vector<std::shared_ptr<const trace::Trace>> last_trace(nsav);
    const auto capture_start = std::chrono::steady_clock::now();
    runner.parallelFor(nsav * nseed, [&](std::size_t job) {
        const std::size_t si = job / nseed;
        const std::size_t ki = job % nseed;

        trace::CaptureOptions mon_opt;
        mon_opt.sav = savs[si];
        mon_opt.machineSeed = seeds[ki];

        trace::CaptureOptions native_opt;
        native_opt.sav = 0;
        native_opt.heapShift = 0;
        native_opt.machineSeed = seeds[ki];
        native_opt.scheme = "native";

        const auto monitored = runner.capture(*dedup, mon_opt);
        const auto native = runner.capture(*dedup, native_opt);
        norms[si][ki] = double(monitored->meta.runtimeCycles) /
                        double(native->meta.runtimeCycles);
        if (ki == nseed - 1)
            last_trace[si] = monitored;
    });
    const double capture_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      capture_start)
            .count();
    const core::SweepStats stats = runner.stats();

    // Phase 2: record counts via offline detector replay of the traces.
    std::vector<std::uint64_t> records(nsav, 0);
    const auto replay_start = std::chrono::steady_clock::now();
    runner.parallelFor(nsav, [&](std::size_t si) {
        trace::TraceReplayer replayer(*last_trace[si]);
        records[si] = replayer.replayAtThreshold(1000.0).totalRecords;
    });
    const double replay_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      replay_start)
            .count();

    TablePrinter table({"SAV", "normalized runtime", "records"});
    for (std::size_t si = 0; si < nsav; ++si) {
        const double norm = trimmedMean(norms[si]);
        std::string marker = savs[si] == 19 ? "  <- LASER default" : "";
        table.addRow({std::to_string(savs[si]) + marker,
                      fmtTimes(norm, 3), fmtCount(records[si])});
    }
    std::fputs(table.render().c_str(), stdout);

    const std::uint64_t hits =
        stats.memoryCacheHits + stats.diskCacheHits;
    std::printf("\nTrace cache: %llu simulations for %zu sweep jobs "
                "(%llu baseline requests served from cache, %d "
                "workers).\n",
                (unsigned long long)stats.machineRuns, nsav * nseed,
                (unsigned long long)hits, runner.workers());
    const double per_sim =
        capture_seconds / double(stats.machineRuns ? stats.machineRuns : 1);
    const double per_replay =
        replay_seconds / double(nsav ? nsav : 1);
    std::printf("Timing: capture %.2fs (%.1fms/sim), replay %.2fs "
                "(%.2fms/pass) -> replay speedup %.1fx vs "
                "re-simulating each sweep point.\n",
                capture_seconds, 1e3 * per_sim, replay_seconds,
                1e3 * per_replay,
                per_replay > 0.0 ? per_sim / per_replay : 0.0);
    std::printf("\nShape check (paper): ~1.5x at SAV=1 falling to ~1.06x "
                "by SAV=19 with no marginal benefit beyond.\n");

    obs::Json sav_rows = obs::Json::array();
    for (std::size_t si = 0; si < nsav; ++si) {
        obs::Json r = obs::Json::object();
        r.set("sav", obs::Json(std::uint64_t(savs[si])));
        r.set("normalized_runtime", obs::Json(trimmedMean(norms[si])));
        r.set("records", obs::Json(records[si]));
        sav_rows.push(std::move(r));
    }
    telemetry.results()
        .set("seeds", obs::Json(std::uint64_t(nseed)))
        .set("capture_seconds", obs::Json(capture_seconds))
        .set("replay_seconds", obs::Json(replay_seconds))
        .set("rows", std::move(sav_rows));
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
