/**
 * @file
 * Figure 11 reproduction: speedups from LASERREPAIR (automatic) and from
 * manual source fixes guided by LASERDETECT's reports.
 *
 * Paper values: automatic — histogram' 1.19x, linear_regression 1.16x;
 * manual — dedup 1.16x, histogram' 5.8x, kmeans 1.05x, linear_regression
 * 16.9x, lu_ncb 1.36x, reverse_index 1.04x.
 */

#include <cstdio>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Repair speedups", "Figure 11");
    obs::BenchReport telemetry("fig11_speedups");

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "mode", "speedup (measured)",
                        "speedup (paper)"});

    const std::map<std::string, double> paper_auto = {
        {"histogram'", 1.19},
        {"linear_regression", 1.16},
    };
    const std::map<std::string, double> paper_manual = {
        {"dedup", 1.16},        {"histogram'", 5.8},
        {"kmeans", 1.05},       {"linear_regression", 16.9},
        {"lu_ncb", 1.36},       {"reverse_index", 1.04},
    };

    obs::Json rows = obs::Json::array();
    for (const auto &[name, paper] : paper_auto) {
        const auto *w = workloads::findWorkload(name);
        core::RunResult native = runner.run(*w, core::Scheme::Native);
        core::RunResult laser = runner.run(*w, core::Scheme::Laser);
        const double speedup = double(native.runtimeCycles) /
                               double(laser.runtimeCycles);
        table.addRow({name,
                      laser.repairApplied ? "automatic (SSB)"
                                          : "automatic (no trigger)",
                      fmtTimes(speedup), fmtTimes(paper)});
        obs::Json r = obs::Json::object();
        r.set("benchmark", obs::Json(name));
        r.set("mode", obs::Json(std::string("automatic")));
        r.set("speedup", obs::Json(speedup));
        r.set("paper_speedup", obs::Json(paper));
        rows.push(std::move(r));
    }
    table.addSeparator();
    for (const auto &[name, paper] : paper_manual) {
        const auto *w = workloads::findWorkload(name);
        core::RunResult native = runner.run(*w, core::Scheme::Native);
        core::RunResult fixed = runner.run(*w, core::Scheme::ManualFix);
        const double speedup = double(native.runtimeCycles) /
                               double(fixed.runtimeCycles);
        table.addRow(
            {name, "manual fix", fmtTimes(speedup), fmtTimes(paper)});
        obs::Json r = obs::Json::object();
        r.set("benchmark", obs::Json(name));
        r.set("mode", obs::Json(std::string("manual_fix")));
        r.set("speedup", obs::Json(speedup));
        r.set("paper_speedup", obs::Json(paper));
        rows.push(std::move(r));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check: online repair wins ~15-20%% (Pin + SSB "
                "software costs bound the gain); the manual fixes of the "
                "same bugs win up to ~17x (linear_regression) because "
                "padding removes the contention outright.\n");

    telemetry.results().set("rows", std::move(rows));
    bench::writeTelemetry(telemetry, nullptr);
    return 0;
}
