/**
 * @file
 * Figure 9 reproduction: effect of the rate threshold on detection
 * accuracy. One monitored run per workload; the detector is re-run over
 * the same record stream for each threshold (the paper notes thresholds
 * can be adjusted offline without rerunning the program).
 *
 * Paper shape: false positives fall steeply as the threshold rises
 * (log-scale x axis); false negatives appear only at high thresholds;
 * the 1K HITMs/sec default sits in the wide flat valley between them.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "detect/detector.h"
#include "pebs/monitor.h"
#include "sim/machine.h"

using namespace laser;

int
main()
{
    bench::banner("Rate-threshold sensitivity", "Figure 9");

    // Collect one monitored record stream per workload.
    struct Captured
    {
        const workloads::WorkloadDef *def;
        isa::Program program;
        std::unique_ptr<sim::Machine> machine;
        std::vector<pebs::PebsRecord> records;
        std::uint64_t cycles = 0;
    };
    std::vector<Captured> captured;
    sim::TimingModel timing;
    for (const auto &w : workloads::allWorkloads()) {
        Captured c;
        c.def = &w;
        workloads::BuildOptions opt;
        opt.heapPerturbation = 48;
        workloads::WorkloadBuild build = w.build(opt);
        sim::MachineConfig mc;
        c.machine = std::make_unique<sim::Machine>(
            std::move(build.program), mc);
        build.applyTo(*c.machine);
        pebs::PebsConfig pc;
        pc.sav = 19;
        pebs::PebsMonitor mon(c.machine->addressSpace(),
                              c.machine->program().size(), timing, pc);
        c.machine->setPmuSink(&mon);
        c.cycles = c.machine->run().cycles;
        mon.finish();
        c.records = mon.records();
        captured.push_back(std::move(c));
    }

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    const double thresholds[] = {32,   64,   128,  256,   512,   1000,
                                 2000, 4000, 8000, 16000, 32000, 64000};
    for (double thr : thresholds) {
        int fn = 0, fp = 0;
        for (Captured &c : captured) {
            detect::DetectorConfig cfg;
            cfg.rateThreshold = thr;
            detect::Detector det(
                c.machine->program(), c.machine->addressSpace(),
                c.machine->addressSpace().renderProcMaps(), timing, cfg);
            det.processAll(c.records);
            detect::DetectionReport rep = det.finish(c.cycles);
            core::AccuracyResult acc = core::evaluateAccuracy(
                c.def->info, core::reportLocations(rep));
            fn += acc.falseNegatives;
            fp += acc.falsePositives;
        }
        std::string marker = thr == 1000 ? "  <- LASER default" : "";
        table.addRow({fmtDouble(thr, 0) + marker, std::to_string(fn),
                      std::to_string(fp)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check (paper Fig. 9): FPs fall as the threshold "
                "rises (log scale); FNs appear only at the high end; the "
                "1K default sits in the flat valley.\n");
    return 0;
}
