/**
 * @file
 * Figure 9 reproduction: effect of the rate threshold on detection
 * accuracy. One monitored run per workload — captured once through the
 * sweep runner's trace cache — and every sweep point is an offline
 * detector replay over the stored record stream (the paper notes
 * thresholds can be adjusted offline without rerunning the program).
 *
 * Paper shape: false positives fall steeply as the threshold rises
 * (log-scale x axis); false negatives appear only at high thresholds;
 * the 1K HITMs/sec default sits in the wide flat valley between them.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

using namespace laser;

namespace {

/**
 * Shard-parallel replay demo on the suite's biggest captured trace:
 * serial full-pipeline replays vs one sharded digest + per-config
 * scans, with the identity invariant enforced.
 */
void
shardedReplayDemo(core::SweepRunner &runner,
                  const std::vector<const workloads::WorkloadDef *> &defs,
                  const std::vector<double> &thresholds)
{
    std::shared_ptr<const trace::Trace> biggest;
    for (const auto *def : defs) {
        auto t = runner.capture(*def, {}); // cache-served by the sweep
        if (!biggest || t->records.size() > biggest->records.size())
            biggest = t;
    }
    if (!biggest || biggest->records.empty())
        return;
    trace::TraceReplayer env(*biggest);
    if (!env.ok())
        return;

    const trace::ShardedReplayCheck check =
        trace::checkShardedReplay(env, thresholds, 4);
    if (!check.identical) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: sharded replay differs from "
                     "serial at threshold %.0f\n",
                     check.mismatchThreshold);
        std::exit(1);
    }
    std::printf("\nShard-parallel replay (%s, %zu records): %d shards, "
                "%zu configs from one digest, reports identical to "
                "serial; serial %.1fms vs sharded %.1fms -> %.2fx "
                "speedup.\n",
                biggest->meta.workload.c_str(), biggest->records.size(),
                check.shards, thresholds.size(),
                1e3 * check.serialSeconds, 1e3 * check.shardedSeconds,
                check.speedup());
}

} // namespace

int
main()
{
    bench::banner("Rate-threshold sensitivity", "Figure 9");
    obs::BenchReport telemetry("fig09_threshold_sweep");

    std::vector<const workloads::WorkloadDef *> defs;
    for (const auto &w : workloads::allWorkloads())
        defs.push_back(&w);

    const std::vector<double> thresholds = {32,   64,   128,  256,
                                            512,  1000, 2000, 4000,
                                            8000, 16000, 32000, 64000};

    core::SweepRunner runner(bench::sweepConfig());
    const core::ThresholdSweepResult sweep =
        core::thresholdSweep(runner, defs, thresholds);

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    for (const core::ThresholdSweepRow &row : sweep.rows) {
        std::string marker =
            row.threshold == 1000 ? "  <- LASER default" : "";
        table.addRow({fmtDouble(row.threshold, 0) + marker,
                      std::to_string(row.falseNegatives),
                      std::to_string(row.falsePositives)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nTrace cache: %llu simulations for %zu workloads, "
                "%zu sweep points served by digest-once/report-many "
                "replay (%d-shard digests, %d workers).\n",
                (unsigned long long)sweep.machineRuns, defs.size(),
                sweep.replays, sweep.shardsPerDigest, runner.workers());
    std::printf("Timing: capture %.2fs (%.1fms/sim), digest %.2fs, "
                "replay %.2fs (%.2fms/pass) -> replay speedup %.1fx vs "
                "re-simulating each sweep point.\n",
                sweep.captureSeconds,
                1e3 * sweep.captureSeconds /
                    double(sweep.machineRuns ? sweep.machineRuns : 1),
                sweep.digestSeconds, sweep.replaySeconds,
                1e3 * sweep.replaySeconds /
                    double(sweep.replays ? sweep.replays : 1),
                sweep.replaySpeedup());

    shardedReplayDemo(runner, defs, thresholds);

    std::printf("\nShape check (paper Fig. 9): FPs fall as the threshold "
                "rises (log scale); FNs appear only at the high end; the "
                "1K default sits in the flat valley.\n");

    obs::Json rows = obs::Json::array();
    for (const core::ThresholdSweepRow &row : sweep.rows) {
        obs::Json r = obs::Json::object();
        r.set("threshold", obs::Json(row.threshold));
        r.set("false_negatives", obs::Json(row.falseNegatives));
        r.set("false_positives", obs::Json(row.falsePositives));
        rows.push(std::move(r));
    }
    telemetry.results()
        .set("workloads", obs::Json(std::uint64_t(defs.size())))
        .set("sweep_points", obs::Json(std::uint64_t(sweep.replays)))
        .set("shards_per_digest", obs::Json(sweep.shardsPerDigest))
        .set("capture_seconds", obs::Json(sweep.captureSeconds))
        .set("digest_seconds", obs::Json(sweep.digestSeconds))
        .set("replay_seconds", obs::Json(sweep.replaySeconds))
        .set("replay_speedup", obs::Json(sweep.replaySpeedup()))
        .set("rows", std::move(rows));
    const core::SweepStats stats = runner.stats();
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
