/**
 * @file
 * Figure 9 reproduction: effect of the rate threshold on detection
 * accuracy. One monitored run per workload — captured once through the
 * sweep runner's trace cache — and every sweep point is an offline
 * detector replay over the stored record stream (the paper notes
 * thresholds can be adjusted offline without rerunning the program).
 *
 * Paper shape: false positives fall steeply as the threshold rises
 * (log-scale x axis); false negatives appear only at high thresholds;
 * the 1K HITMs/sec default sits in the wide flat valley between them.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"

using namespace laser;

int
main()
{
    bench::banner("Rate-threshold sensitivity", "Figure 9");

    std::vector<const workloads::WorkloadDef *> defs;
    for (const auto &w : workloads::allWorkloads())
        defs.push_back(&w);

    const std::vector<double> thresholds = {32,   64,   128,  256,
                                            512,  1000, 2000, 4000,
                                            8000, 16000, 32000, 64000};

    core::SweepRunner runner;
    const core::ThresholdSweepResult sweep =
        core::thresholdSweep(runner, defs, thresholds);

    TablePrinter table(
        {"threshold (HITM/s)", "false negatives", "false positives"});
    for (const core::ThresholdSweepRow &row : sweep.rows) {
        std::string marker =
            row.threshold == 1000 ? "  <- LASER default" : "";
        table.addRow({fmtDouble(row.threshold, 0) + marker,
                      std::to_string(row.falseNegatives),
                      std::to_string(row.falsePositives)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nTrace cache: %llu simulations for %zu workloads, "
                "%zu sweep points served by detector replay "
                "(%d workers).\n",
                (unsigned long long)sweep.machineRuns, defs.size(),
                sweep.replays, runner.workers());
    std::printf("Timing: capture %.2fs (%.1fms/sim), replay %.2fs "
                "(%.2fms/pass) -> replay speedup %.1fx vs "
                "re-simulating each sweep point.\n",
                sweep.captureSeconds,
                1e3 * sweep.captureSeconds /
                    double(sweep.machineRuns ? sweep.machineRuns : 1),
                sweep.replaySeconds,
                1e3 * sweep.replaySeconds /
                    double(sweep.replays ? sweep.replays : 1),
                sweep.replaySpeedup());
    std::printf("\nShape check (paper Fig. 9): FPs fall as the threshold "
                "rises (log scale); FNs appear only at the high end; the "
                "1K default sits in the flat valley.\n");
    return 0;
}
