/**
 * @file
 * Ablation of LASERREPAIR's design choices (Section 5.5 and DESIGN.md):
 *
 *  1. Coalescing SSB vs a TSO-trivial FIFO queue — the queue keeps one
 *     entry per store, so its space and flush costs explode between
 *     flushes ("many of our workloads perform millions of stores before
 *     a flush operation").
 *  2. The pre-emptive flush threshold (8 entries = L1 associativity).
 *  3. Speculative alias analysis on/off.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "isa/assembler.h"
#include "repair/repairer.h"
#include "sim/machine.h"

using namespace laser;
using namespace laser::isa;

namespace {

/** Two threads falsely sharing one line, plus disjoint read traffic. */
isa::Program
fsKernel(std::vector<std::uint32_t> *stores)
{
    Asm a("ablation");
    Asm::Label done = a.newLabel();
    a.tid(R1);
    a.movi(R9, 2);
    a.bge(R1, R9, done);
    a.movi(R2, 0x1300000);
    a.muli(R3, R1, 16);
    a.add(R2, R2, R3);
    a.movi(R5, 0x1400000); // disjoint read-only data
    a.movi(R3, 6000);
    Asm::Label loop = a.here();
    stores->push_back(a.store(R2, 0, R3, 8));
    stores->push_back(a.store(R2, 8, R3, 8));
    a.load(R4, R5, 0, 8);
    a.add(R6, R6, R4);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, loop);
    a.bind(done);
    a.halt();
    return a.finalize();
}

struct Row
{
    std::string config;
    std::uint64_t cycles;
    std::uint64_t hitms;
    std::uint64_t flushes;
    std::uint64_t maxEntries;
};

Row
run(const isa::Program &prog, sim::SsbMode mode, int max_entries)
{
    sim::MachineConfig mc;
    mc.ssbMode = mode;
    mc.ssbMaxEntries = max_entries;
    sim::Machine m(prog, mc);
    sim::MachineStats s = m.run();
    return {"", s.cycles, s.hitmTotal(), s.ssbFlushes,
            s.ssbMaxEntriesSeen};
}

} // namespace

int
main()
{
    bench::banner("SSB design ablation", "Section 5.5 design choices");
    obs::BenchReport telemetry("ablation_ssb");

    std::vector<std::uint32_t> stores;
    isa::Program native_prog = fsKernel(&stores);

    sim::Machine native(native_prog);
    sim::MachineStats ns = native.run();

    TablePrinter table({"configuration", "cycles", "vs native", "HITMs",
                        "flushes", "max SSB entries"});
    table.addRow({"native (no repair)", fmtCount(ns.cycles), "1.00x",
                  fmtCount(ns.hitmTotal()), "-", "-"});

    // Repaired with alias speculation (default).
    repair::RepairOutcome with_alias =
        repair::repairProgram(native_prog, stores);
    // Repaired without alias speculation.
    repair::RepairConfig no_spec_cfg;
    no_spec_cfg.aliasSpeculation = false;
    repair::RepairOutcome no_alias =
        repair::repairProgram(native_prog, stores, no_spec_cfg);

    struct Variant
    {
        std::string name;
        const isa::Program *prog;
        sim::SsbMode mode;
        int maxEntries;
    };
    const Variant variants[] = {
        {"coalescing, cap 8, alias spec (paper design)",
         &with_alias.program, sim::SsbMode::Coalescing, 8},
        {"coalescing, cap 8, no alias speculation", &no_alias.program,
         sim::SsbMode::Coalescing, 8},
        {"coalescing, cap 2", &with_alias.program,
         sim::SsbMode::Coalescing, 2},
        {"coalescing, cap 32", &with_alias.program,
         sim::SsbMode::Coalescing, 32},
        {"FIFO queue, cap 8", &with_alias.program, sim::SsbMode::Fifo, 8},
        {"FIFO queue, cap 1024 (unbounded-ish)", &with_alias.program,
         sim::SsbMode::Fifo, 1024},
    };
    obs::Json rows = obs::Json::array();
    for (const Variant &v : variants) {
        Row r = run(*v.prog, v.mode, v.maxEntries);
        table.addRow({v.name, fmtCount(r.cycles),
                      fmtTimes(double(r.cycles) / double(ns.cycles)),
                      fmtCount(r.hitms), fmtCount(r.flushes),
                      fmtCount(r.maxEntries)});
        obs::Json j = obs::Json::object();
        j.set("configuration", obs::Json(v.name));
        j.set("cycles", obs::Json(r.cycles));
        j.set("vs_native", obs::Json(double(r.cycles) /
                                     double(ns.cycles)));
        j.set("hitms", obs::Json(r.hitms));
        j.set("flushes", obs::Json(r.flushes));
        j.set("max_ssb_entries", obs::Json(r.maxEntries));
        rows.push(std::move(j));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check: the coalescing SSB keeps a handful of "
                "entries and one flush at loop exit; the FIFO queue's "
                "entry count explodes with store count (the paper's "
                "space argument); tiny caps flush constantly and give "
                "back the contention.\n");

    telemetry.results()
        .set("native_cycles", obs::Json(ns.cycles))
        .set("rows", std::move(rows));
    bench::writeTelemetry(telemetry, nullptr);
    return 0;
}
