/**
 * @file
 * Table 1 reproduction: detection accuracy (false negatives / false
 * positives) of LASERDETECT, VTune and Sheriff-Detect over the 35
 * workload configurations.
 *
 * Paper totals: 9 bugs; LASER 0 FN / 24 FP; VTune 1 FN (dedup) / 64 FP;
 * Sheriff 3 FN / 4 FP with most workloads crashing ("x") or incompatible
 * ("i").
 */

#include <cstdio>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Detection accuracy", "Table 1");

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "bugs", "LASER FN", "LASER FP",
                        "VTune FN", "VTune FP", "Sheriff FN",
                        "Sheriff FP"});

    int total_bugs = 0;
    int laser_fn = 0, laser_fp = 0;
    int vtune_fn = 0, vtune_fp = 0;
    int sheriff_fn = 0, sheriff_fp = 0;

    for (const auto &w : workloads::allWorkloads()) {
        const int bugs = static_cast<int>(w.info.bugs.size());
        total_bugs += bugs;

        // LASER.
        core::RunResult laser = runner.run(w, core::Scheme::Laser);
        core::AccuracyResult la = core::evaluateAccuracy(
            w.info, core::reportLocations(laser.detection));

        // VTune.
        core::RunResult vt = runner.run(w, core::Scheme::VTune);
        std::vector<std::string> vt_lines;
        for (const auto &l : vt.vtune.lines)
            vt_lines.push_back(l.location);
        core::AccuracyResult va = core::evaluateAccuracy(w.info, vt_lines);

        // Sheriff-Detect.
        core::RunResult sh = runner.run(w, core::Scheme::SheriffDetect);
        std::string sh_fn_str, sh_fp_str;
        if (sh.crashed) {
            sh_fn_str = w.info.sheriff ==
                                workloads::SheriffCompat::Incompatible
                            ? "i"
                            : "x";
            sh_fp_str = "";
        } else {
            core::AccuracyResult sa = core::evaluateAccuracy(
                w.info, sh.sheriff.reportedSites);
            // Sheriff's allocation-site report finds the bug but points
            // at the wrong code (Section 7.1): the site itself is a FP.
            int fn = sa.falseNegatives;
            int fp = sa.falsePositives;
            if (w.info.sheriffDetectsBug && !w.info.bugs.empty())
                fn = 0;
            sheriff_fn += fn;
            sheriff_fp += fp;
            sh_fn_str = bench::dashIfZero(fn);
            sh_fp_str = bench::dashIfZero(fp);
        }

        laser_fn += la.falseNegatives;
        laser_fp += la.falsePositives;
        vtune_fn += va.falseNegatives;
        vtune_fp += va.falsePositives;

        table.addRow({
            w.info.name,
            bench::dashIfZero(bugs),
            bench::dashIfZero(la.falseNegatives),
            bench::dashIfZero(la.falsePositives),
            bench::dashIfZero(va.falseNegatives),
            bench::dashIfZero(va.falsePositives),
            sh_fn_str,
            sh_fp_str,
        });
    }

    table.addSeparator();
    table.addRow({"Total (measured)", std::to_string(total_bugs),
                  std::to_string(laser_fn), std::to_string(laser_fp),
                  std::to_string(vtune_fn), std::to_string(vtune_fp),
                  std::to_string(sheriff_fn), std::to_string(sheriff_fp)});
    table.addRow({"Total (paper)", "9", "0", "24", "1", "64", "3", "4"});
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nShape check: LASER misses no bugs and reports fewer "
                "spurious lines than VTune; Sheriff runs on only a "
                "fraction of the suite.\n");
    return 0;
}
