/**
 * @file
 * Table 1 reproduction: detection accuracy (false negatives / false
 * positives) of LASERDETECT, VTune and Sheriff-Detect over the 35
 * workload configurations.
 *
 * Capture-once/replay-many: each workload's LASER and VTune runs are
 * captured through the sweep runner's trace cache, and the accuracy
 * numbers come from offline replays — LASERDETECT through the sharded
 * parallel replayer, VTune through its offline aggregation. With
 * LASER_TRACE_CACHE pointing at a cache directory, a second invocation
 * performs zero simulations. Sheriff-Detect's object-granularity
 * findings are encoded from Table 1/2 in the workload metadata (see
 * DESIGN.md), so its columns need no machine run at all.
 *
 * Paper totals: 9 bugs; LASER 0 FN / 24 FP; VTune 1 FN (dedup) / 64 FP;
 * Sheriff 3 FN / 4 FP with most workloads crashing ("x") or incompatible
 * ("i").
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/sweep_runner.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

using namespace laser;

int
main()
{
    bench::banner("Detection accuracy", "Table 1");
    obs::BenchReport telemetry("table1_accuracy");

    const auto &all = workloads::allWorkloads();
    core::SweepRunner runner(bench::sweepConfig());

    // Phase 1: capture (or fetch) every workload's LASER and VTune
    // streams in parallel.
    struct Row
    {
        core::AccuracyResult laser;
        core::AccuracyResult vtune;
    };
    std::vector<Row> rows(all.size());
    runner.parallelFor(all.size(), [&](std::size_t i) {
        const workloads::WorkloadDef &w = all[i];

        // LASER: sharded replay of the captured PEBS stream.
        const auto laser_trace = runner.capture(w, {});
        rows[i].laser = core::evaluateAccuracy(
            w.info, core::reportLocations(trace::replayDetection(
                        *laser_trace, 4, &runner.pool())));

        // VTune: offline aggregation of the captured event stream.
        const auto vt_trace = runner.capture(
            w, trace::CaptureOptions::forScheme("vtune"));
        trace::TraceReplayer vt_env(*vt_trace);
        std::vector<std::string> vt_lines;
        for (const auto &l : vt_env.replayVTune().lines)
            vt_lines.push_back(l.location);
        rows[i].vtune = core::evaluateAccuracy(w.info, vt_lines);
    });

    TablePrinter table({"benchmark", "bugs", "LASER FN", "LASER FP",
                        "VTune FN", "VTune FP", "Sheriff FN",
                        "Sheriff FP"});

    int total_bugs = 0;
    int laser_fn = 0, laser_fp = 0;
    int vtune_fn = 0, vtune_fp = 0;
    int sheriff_fn = 0, sheriff_fp = 0;

    for (std::size_t i = 0; i < all.size(); ++i) {
        const workloads::WorkloadDef &w = all[i];
        const int bugs = static_cast<int>(w.info.bugs.size());
        total_bugs += bugs;

        // Sheriff-Detect: compatibility and object-granularity findings
        // are workload metadata (its runtime cost lives in Figure 14).
        std::string sh_fn_str, sh_fp_str;
        const bool sheriff_runs =
            w.info.sheriff == workloads::SheriffCompat::Works ||
            w.info.sheriff == workloads::SheriffCompat::WorksSmallInput;
        if (!sheriff_runs) {
            sh_fn_str = w.info.sheriff ==
                                workloads::SheriffCompat::Incompatible
                            ? "i"
                            : "x";
            sh_fp_str = "";
        } else {
            std::vector<std::string> sites;
            if (w.info.sheriffDetectsBug)
                sites.push_back(w.info.sheriffReportLocation);
            core::AccuracyResult sa =
                core::evaluateAccuracy(w.info, sites);
            // Sheriff's allocation-site report finds the bug but points
            // at the wrong code (Section 7.1): the site itself is a FP.
            int fn = sa.falseNegatives;
            int fp = sa.falsePositives;
            if (w.info.sheriffDetectsBug && !w.info.bugs.empty())
                fn = 0;
            sheriff_fn += fn;
            sheriff_fp += fp;
            sh_fn_str = bench::dashIfZero(fn);
            sh_fp_str = bench::dashIfZero(fp);
        }

        laser_fn += rows[i].laser.falseNegatives;
        laser_fp += rows[i].laser.falsePositives;
        vtune_fn += rows[i].vtune.falseNegatives;
        vtune_fp += rows[i].vtune.falsePositives;

        table.addRow({
            w.info.name,
            bench::dashIfZero(bugs),
            bench::dashIfZero(rows[i].laser.falseNegatives),
            bench::dashIfZero(rows[i].laser.falsePositives),
            bench::dashIfZero(rows[i].vtune.falseNegatives),
            bench::dashIfZero(rows[i].vtune.falsePositives),
            sh_fn_str,
            sh_fp_str,
        });
    }

    table.addSeparator();
    table.addRow({"Total (measured)", std::to_string(total_bugs),
                  std::to_string(laser_fn), std::to_string(laser_fp),
                  std::to_string(vtune_fn), std::to_string(vtune_fp),
                  std::to_string(sheriff_fn), std::to_string(sheriff_fp)});
    table.addRow({"Total (paper)", "9", "0", "24", "1", "64", "3", "4"});
    std::fputs(table.render().c_str(), stdout);

    const core::SweepStats stats = runner.stats();
    std::printf("\nCapture-once/replay-many: %llu simulations, %llu "
                "memory + %llu disk cache hits; accuracy columns are "
                "offline replays (LASER via 4-shard digests).\n",
                (unsigned long long)stats.machineRuns,
                (unsigned long long)stats.memoryCacheHits,
                (unsigned long long)stats.diskCacheHits);
    std::printf("Shape check: LASER misses no bugs and reports fewer "
                "spurious lines than VTune; Sheriff runs on only a "
                "fraction of the suite.\n");

    telemetry.results()
        .set("workloads", obs::Json(std::uint64_t(all.size())))
        .set("total_bugs", obs::Json(total_bugs))
        .set("laser_false_negatives", obs::Json(laser_fn))
        .set("laser_false_positives", obs::Json(laser_fp))
        .set("vtune_false_negatives", obs::Json(vtune_fn))
        .set("vtune_false_positives", obs::Json(vtune_fp))
        .set("sheriff_false_negatives", obs::Json(sheriff_fn))
        .set("sheriff_false_positives", obs::Json(sheriff_fp));
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
