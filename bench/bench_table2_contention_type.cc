/**
 * @file
 * Table 2 reproduction: contention type (true vs false sharing) reported
 * by LASERDETECT and Sheriff-Detect for the workloads with performance
 * bugs.
 *
 * Paper shape: LASER types most bugs correctly; linear_regression is
 * "unknown" (write-write records carry too little address signal);
 * Sheriff reports a type only for reverse_index.
 */

#include <cstdio>

#include "bench_common.h"

using namespace laser;

int
main()
{
    bench::banner("Contention type identification", "Table 2");
    obs::BenchReport telemetry("table2_contention_type");

    core::ExperimentRunner runner;
    TablePrinter table({"benchmark", "actual", "LASER (measured)",
                        "LASER (paper)", "Sheriff (measured)",
                        "Sheriff (paper)"});

    const std::map<std::string, std::pair<std::string, std::string>>
        paper = {
            {"bodytrack", {"TS", "x"}},
            {"dedup", {"TS", "i"}},
            {"histogram'", {"FS", "-"}},
            {"kmeans", {"TS", "i"}},
            {"linear_regression", {"unknown", "-"}},
            {"lu_ncb", {"FS", "x"}},
            {"reverse_index", {"FS", "FS"}},
            {"streamcluster", {"FS", "x"}},
            {"volrend", {"TS", "x"}},
        };

    int correct = 0, total = 0;
    obs::Json rows = obs::Json::array();
    for (const auto *w : workloads::buggyWorkloads()) {
        core::RunResult laser = runner.run(*w, core::Scheme::Laser);
        const detect::ContentionType reported =
            core::reportedTypeForBug(w->info, laser.detection);
        const std::string actual =
            workloads::bugTypeName(w->info.bugs[0].type);
        const std::string measured =
            detect::contentionTypeName(reported);
        ++total;
        if (measured == actual)
            ++correct;

        core::RunResult sh = runner.run(*w, core::Scheme::SheriffDetect);
        std::string sheriff;
        if (sh.crashed) {
            sheriff = w->info.sheriff ==
                              workloads::SheriffCompat::Incompatible
                          ? "i"
                          : "x";
        } else {
            sheriff = w->info.sheriffDetectsBug ? "FS" : "-";
        }

        auto it = paper.find(w->info.name);
        table.addRow({
            w->info.name,
            actual,
            measured,
            it != paper.end() ? it->second.first : "?",
            sheriff,
            it != paper.end() ? it->second.second : "?",
        });
        obs::Json r = obs::Json::object();
        r.set("benchmark", obs::Json(std::string(w->info.name)));
        r.set("actual", obs::Json(actual));
        r.set("laser", obs::Json(measured));
        r.set("sheriff", obs::Json(sheriff));
        rows.push(std::move(r));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nmeasured: %d/%d types match the ground-truth "
                "database (paper: 6/9, with linear_regression "
                "unclassifiable).\n",
                correct, total);

    telemetry.results()
        .set("correct", obs::Json(correct))
        .set("total", obs::Json(total))
        .set("rows", std::move(rows));
    bench::writeTelemetry(telemetry, nullptr);
    return 0;
}
