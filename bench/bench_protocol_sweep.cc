/**
 * @file
 * Protocol/geometry robustness sweep: Table-1-style detection accuracy
 * of LASERDETECT under each coherence backend (directory MESI and the
 * update-based Dragon bus) crossed with {32, 64, 128}-byte cache lines.
 *
 * The paper's whole detection signal is the HITM event; this bench asks
 * how that signal — and the accuracy built on it — holds up when the
 * fabric generating it changes. Under MESI every false-sharing write
 * ping-pong raises a HITM; under Dragon only the first touch of a dirty
 * remote line does (later writes become bus updates), so the HITM rate
 * starves and detection degrades — which is the robustness observation
 * this sweep quantifies. Line size scales how much disjoint data
 * cohabits a line, so the false-sharing population itself grows with
 * 128-byte lines and shrinks with 32-byte ones.
 *
 * Every (protocol, line size) combination hashes to its own trace-cache
 * key (the v4 config section includes both), so repeat invocations with
 * LASER_TRACE_CACHE set replay entirely from disk.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/protocol.h"
#include "trace/parallel_replay.h"

using namespace laser;

int
main()
{
    bench::banner("Protocol/geometry accuracy sweep",
                  "Table 1 across coherence fabrics");
    obs::BenchReport telemetry("protocol_sweep");

    const auto &all = workloads::allWorkloads();
    core::SweepRunner runner(bench::sweepConfig());

    const sim::ProtocolKind kProtocols[] = {sim::ProtocolKind::Mesi,
                                            sim::ProtocolKind::Dragon};
    const std::uint32_t kLineSizes[] = {32, 64, 128};

    struct Cell
    {
        sim::ProtocolKind protocol = sim::ProtocolKind::Mesi;
        std::uint32_t lineBytes = 64;
        int falseNegatives = 0;
        int falsePositives = 0;
        std::uint64_t hitmTotal = 0;
    };
    std::vector<Cell> cells;
    for (sim::ProtocolKind p : kProtocols)
        for (std::uint32_t lb : kLineSizes)
            cells.push_back({p, lb, 0, 0, 0});

    // One job per (workload, combination); the sweep runner coalesces
    // and cache-serves captures, and each cell's tallies are disjoint
    // slots indexed by the job, so the fan-out is race-free.
    struct Tally
    {
        core::AccuracyResult accuracy;
        std::uint64_t hitms = 0;
    };
    std::vector<Tally> tallies(cells.size() * all.size());
    runner.parallelFor(tallies.size(), [&](std::size_t job) {
        const Cell &cell = cells[job / all.size()];
        const workloads::WorkloadDef &w = all[job % all.size()];

        trace::CaptureOptions opt;
        opt.protocol = cell.protocol;
        opt.geometry.lineBytes = cell.lineBytes;
        const auto trace = runner.capture(w, opt);
        tallies[job].hitms = trace->meta.stats.hitmTotal();
        tallies[job].accuracy = core::evaluateAccuracy(
            w.info, core::reportLocations(trace::replayDetection(
                        *trace, 4, &runner.pool())));
    });

    int total_bugs = 0;
    for (const auto &w : all)
        total_bugs += static_cast<int>(w.info.bugs.size());
    for (std::size_t job = 0; job < tallies.size(); ++job) {
        Cell &cell = cells[job / all.size()];
        cell.falseNegatives += tallies[job].accuracy.falseNegatives;
        cell.falsePositives += tallies[job].accuracy.falsePositives;
        cell.hitmTotal += tallies[job].hitms;
    }

    TablePrinter table({"protocol", "line bytes", "HITM events",
                        "false negatives", "false positives"});
    for (const Cell &cell : cells)
        table.addRow({sim::protocolName(cell.protocol),
                      std::to_string(cell.lineBytes),
                      std::to_string(cell.hitmTotal),
                      std::to_string(cell.falseNegatives),
                      std::to_string(cell.falsePositives)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nShape check: MESI at 64-byte lines is the paper's "
                "configuration (%d bugs; LASER misses none). Dragon's "
                "update-based fabric raises HITMs only on first-touch "
                "dirty interventions, so its event counts collapse and "
                "false negatives appear — the detection signal is "
                "protocol-dependent. Wider lines breed more false "
                "sharing (more HITMs); narrower lines less.\n",
                total_bugs);

    telemetry.results()
        .set("workloads", obs::Json(std::uint64_t(all.size())))
        .set("total_bugs", obs::Json(total_bugs));
    for (const Cell &cell : cells) {
        const std::string prefix =
            std::string(sim::protocolName(cell.protocol)) + "_" +
            std::to_string(cell.lineBytes);
        telemetry.results()
            .set(prefix + "_hitm_events", obs::Json(cell.hitmTotal))
            .set(prefix + "_false_negatives",
                 obs::Json(cell.falseNegatives))
            .set(prefix + "_false_positives",
                 obs::Json(cell.falsePositives));
    }
    const core::SweepStats stats = runner.stats();
    bench::writeTelemetry(telemetry, &stats);
    return 0;
}
