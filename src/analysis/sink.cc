#include "analysis/sink.h"

#include <algorithm>

namespace laser::analysis {

void
drain(const std::vector<pebs::PebsRecord> &records, RecordSink &sink)
{
    for (const pebs::PebsRecord &rec : records)
        sink.onRecord(rec);
}

void
sortByCycle(std::vector<pebs::PebsRecord> *records)
{
    std::stable_sort(records->begin(), records->end(),
                     [](const pebs::PebsRecord &a,
                        const pebs::PebsRecord &b) {
                         return a.cycle < b.cycle;
                     });
}

void
drainSorted(const std::vector<pebs::PebsRecord> &records, RecordSink &sink)
{
    // Stored traces are already canonical (the reader enforces it);
    // skip the copy + sort for them and pay it only for raw
    // driver-delivery streams.
    if (std::is_sorted(records.begin(), records.end(),
                       [](const pebs::PebsRecord &a,
                          const pebs::PebsRecord &b) {
                           return a.cycle < b.cycle;
                       })) {
        drain(records, sink);
        return;
    }
    std::vector<pebs::PebsRecord> ordered(records);
    sortByCycle(&ordered);
    drain(ordered, sink);
}

} // namespace laser::analysis
