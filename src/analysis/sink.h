/**
 * @file
 * The scheme-agnostic analysis-sink interface.
 *
 * LASER's central property (Section 4) is that detection is a pure
 * function of the record stream: the same stream of (pc, data address,
 * core, cycle) tuples can be consumed live by a detector, persisted by a
 * trace writer, or both at once. This header defines the one interface
 * every consumer implements — detect::DetectorPipeline, the VTune and
 * Sheriff offline analyzers, and trace::TraceWriter are all RecordSinks —
 * so the live core::ExperimentRunner path and trace::TraceReplayer drive
 * their analyses through identical plumbing.
 *
 * Record-field interpretation is scheme-dependent (a "laser-detect"
 * record is a PEBS HITM sample; a "sheriff" record encodes one sync
 * operation), but the stream contract is shared: records arrive in
 * non-decreasing cycle order, exactly once, followed by nothing.
 */

#ifndef LASER_ANALYSIS_SINK_H
#define LASER_ANALYSIS_SINK_H

#include <cstdint>
#include <vector>

#include "pebs/record.h"

namespace laser::analysis {

/** Consumer of one analysis-record stream. */
class RecordSink
{
  public:
    virtual ~RecordSink() = default;

    /** One record; calls arrive in non-decreasing cycle order. */
    virtual void onRecord(const pebs::PebsRecord &rec) = 0;
};

/** Fan one stream into several sinks (multi-config single-pass replay). */
class TeeSink final : public RecordSink
{
  public:
    TeeSink() = default;
    explicit TeeSink(std::vector<RecordSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void add(RecordSink *sink) { sinks_.push_back(sink); }

    void
    onRecord(const pebs::PebsRecord &rec) override
    {
        for (RecordSink *sink : sinks_)
            sink->onRecord(rec);
    }

  private:
    std::vector<RecordSink *> sinks_;
};

/** Feed an already cycle-ordered stream through a sink. */
void drain(const std::vector<pebs::PebsRecord> &records, RecordSink &sink);

/**
 * Restore canonical time order (stable sort by cycle, preserving
 * driver-delivery order among equal cycles) and feed the sink. This is
 * the live-path entry point: per-core PEBS buffers are drained in
 * same-core bursts, and a stable cycle sort recovers the interleaving
 * the cache-line model needs.
 */
void drainSorted(const std::vector<pebs::PebsRecord> &records,
                 RecordSink &sink);

/**
 * Stable cycle sort used by drainSorted and by trace capture; exposed so
 * every producer of canonical streams orders records identically.
 */
void sortByCycle(std::vector<pebs::PebsRecord> *records);

} // namespace laser::analysis

#endif // LASER_ANALYSIS_SINK_H
