/**
 * @file
 * PEBS monitor: Haswell PMU sampling model + kernel driver model.
 *
 * This is the reproduction's substitute for real Haswell PEBS hardware.
 * It implements, per Section 3 and Section 6 of the paper:
 *
 *  - Sample-After-Value (SAV) sampling: every SAV-th HITM event produces
 *    a record; prime SAVs are recommended and 19 is the paper's default.
 *  - The record imprecision Figure 3 characterizes: load-triggered
 *    records are mostly precise (~75% correct data address, ~40% exact /
 *    +30% adjacent PC); store-triggered records are mostly garbage; 95%
 *    of wrong data addresses point at unmapped memory, the rest at the
 *    stack or kernel; >99% of wrong PCs still land inside the binary.
 *  - Per-core record buffers drained by an interrupt when full, with the
 *    PEBS microcode assist and PMI costs charged to the triggering core
 *    (this is where LASER's ~2% overhead comes from), and driver CPU
 *    time accounted separately for the Figure 12 breakdown.
 */

#ifndef LASER_PEBS_MONITOR_H
#define LASER_PEBS_MONITOR_H

#include <cstdint>
#include <vector>

#include "mem/address_space.h"
#include "pebs/record.h"
#include "sim/hitm.h"
#include "sim/timing.h"
#include "util/rng.h"

namespace laser::pebs {

/** Monitor configuration. */
struct PebsConfig
{
    /** Sample-after value; 0 disables monitoring entirely. */
    std::uint32_t sav = 19;
    /** Per-core record buffer capacity (records between interrupts). */
    std::uint32_t bufferCapacity = 64;
    std::uint64_t seed = 0x1a5e2'0001;
    /** Retain ground truth per record (Figure 3 harness / tests only). */
    bool keepGroundTruth = false;
    /** Charge assist/interrupt costs to the application (off = ideal). */
    bool chargeCosts = true;

    // Imprecision parameters, calibrated to Figure 3.
    double loadAddrCorrect = 0.75;
    double loadPcExact = 0.42;
    double loadPcAdjacent = 0.30;
    double storeAddrCorrect = 0.08;
    double storePcExact = 0.07;
    double storePcAdjacent = 0.27;
    double wrongAddrUnmapped = 0.95; ///< remainder split stack/kernel
    double wrongPcInBinary = 0.99;
};

/** Counters exposed by the monitor after a run. */
struct PebsStats
{
    std::uint64_t hitmEvents = 0;   ///< all HITM events seen
    std::uint64_t samples = 0;      ///< records generated (events / SAV)
    std::uint64_t interrupts = 0;   ///< buffer-full PMIs
    std::uint64_t appCycles = 0;    ///< cycles charged to the application
    std::uint64_t driverCycles = 0; ///< driver CPU (PMI handler + copies)
};

/**
 * The PMU + driver model. Install on a Machine via setPmuSink; read the
 * record stream afterwards.
 */
class PebsMonitor : public sim::PmuSink
{
  public:
    PebsMonitor(const mem::AddressSpace &space, std::size_t program_size,
                const sim::TimingModel &timing, PebsConfig cfg = {});

    std::uint64_t onHitm(const sim::HitmEvent &event) override;

    /**
     * Drain residual per-core buffers (call after Machine::run) and
     * fold the run's stats into the global obs registry (pebs.*
     * counters; idempotent — repeat calls export only the delta).
     */
    void finish();

    /** Records in driver-delivery order. */
    const std::vector<PebsRecord> &records() const { return records_; }

    /** Ground truth parallel to records() (characterization mode). */
    const std::vector<RecordTruth> &truths() const { return truths_; }

    const PebsStats &stats() const { return stats_; }

    const PebsConfig &config() const { return cfg_; }

  private:
    std::uint64_t makeRecordedAddr(const sim::HitmEvent &event);
    std::uint64_t makeRecordedPc(const sim::HitmEvent &event);
    void drainCore(int core, bool charge_interrupt);

    const mem::AddressSpace &space_;
    std::size_t programSize_;
    sim::TimingModel timing_;
    PebsConfig cfg_;
    laser::Rng rng_;
    /** Per-core event counters: each core's PMU samples independently. */
    std::vector<std::uint64_t> counters_;
    std::vector<std::vector<PebsRecord>> coreBuffers_;
    std::vector<std::vector<RecordTruth>> coreTruthBuffers_;
    std::vector<PebsRecord> records_;
    std::vector<RecordTruth> truths_;
    PebsStats stats_;
    /** Portion of stats_ already folded into the obs registry. */
    PebsStats exported_;
};

} // namespace laser::pebs

#endif // LASER_PEBS_MONITOR_H
