/**
 * @file
 * PEBS record types.
 *
 * The kernel driver strips each raw PEBS record down to the fields the
 * detector needs: "the PC, data address, and originating core"
 * (Section 6). We additionally carry the core-local cycle count (the TSC
 * analogue) so the detector can compute HITM *rates* and decide when to
 * invoke repair.
 */

#ifndef LASER_PEBS_RECORD_H
#define LASER_PEBS_RECORD_H

#include <cstdint>

namespace laser::pebs {

/** One HITM record as delivered by the driver to the detector. */
struct PebsRecord
{
    /** Recorded instruction pointer (virtual address; may be skewed). */
    std::uint64_t pc = 0;
    /** Recorded data linear address (may be garbage, Section 3.1). */
    std::uint64_t dataAddr = 0;
    /** Originating core. */
    int core = 0;
    /** Core-local cycle count when the event fired. */
    std::uint64_t cycle = 0;
};

/**
 * Ground truth retained alongside each record when characterization mode
 * is enabled (used only by the Figure 3 harness and tests; the detector
 * never sees it).
 */
struct RecordTruth
{
    std::uint64_t truePc = 0;
    std::uint64_t trueAddr = 0;
    bool isLoadUop = false;
};

} // namespace laser::pebs

#endif // LASER_PEBS_RECORD_H
