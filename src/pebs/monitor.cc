#include "pebs/monitor.h"

#include "obs/metrics.h"

namespace laser::pebs {

PebsMonitor::PebsMonitor(const mem::AddressSpace &space,
                         std::size_t program_size,
                         const sim::TimingModel &timing, PebsConfig cfg)
    : space_(space),
      programSize_(program_size),
      timing_(timing),
      cfg_(cfg),
      rng_(cfg.seed)
{
    counters_.resize(space.numThreads(), 0);
    coreBuffers_.resize(space.numThreads());
    coreTruthBuffers_.resize(space.numThreads());
}

std::uint64_t
PebsMonitor::makeRecordedAddr(const sim::HitmEvent &event)
{
    const double p_correct =
        event.isLoadUop ? cfg_.loadAddrCorrect : cfg_.storeAddrCorrect;
    if (rng_.chance(p_correct))
        return event.vaddr;

    // Wrong address: mostly unmapped space, remainder split between a
    // thread stack and the kernel (Section 3.1).
    if (rng_.chance(cfg_.wrongAddrUnmapped)) {
        // A hole between the heap and the stacks is always unmapped in
        // our layout.
        return 0x2000'0000ULL + rng_.below(0x4000'0000ULL);
    }
    if (rng_.chance(0.5)) {
        const int tid =
            static_cast<int>(rng_.below(space_.numThreads()));
        return space_.stackBase(tid) +
               rng_.below(mem::Layout::kStackSize);
    }
    return mem::Layout::kKernelBase + rng_.below(0x10'0000ULL);
}

std::uint64_t
PebsMonitor::makeRecordedPc(const sim::HitmEvent &event)
{
    const double p_exact =
        event.isLoadUop ? cfg_.loadPcExact : cfg_.storePcExact;
    const double p_adjacent =
        event.isLoadUop ? cfg_.loadPcAdjacent : cfg_.storePcAdjacent;

    const double roll = rng_.uniform();
    if (roll < p_exact)
        return space_.indexToPc(event.pcIndex);
    if (roll < p_exact + p_adjacent) {
        // Skid to an adjacent instruction: usually the next one (the
        // pre-Haswell "subsequent instruction" behaviour), sometimes the
        // previous.
        std::int64_t index = event.pcIndex;
        if (rng_.chance(0.75))
            index += 1;
        else
            index -= 1;
        if (index < 0)
            index = 0;
        if (index >= static_cast<std::int64_t>(programSize_))
            index = static_cast<std::int64_t>(programSize_) - 1;
        return space_.indexToPc(static_cast<std::uint32_t>(index));
    }
    if (rng_.chance(cfg_.wrongPcInBinary)) {
        // >99% of wrong PCs still land somewhere in the binary.
        return space_.indexToPc(
            static_cast<std::uint32_t>(rng_.below(programSize_)));
    }
    // Entirely outside any mapping; the detector's maps filter drops it.
    return 0x3000'0000ULL + rng_.below(0x1000'0000ULL);
}

std::uint64_t
PebsMonitor::onHitm(const sim::HitmEvent &event)
{
    ++stats_.hitmEvents;
    if (cfg_.sav == 0)
        return 0;
    if (++counters_[event.core] % cfg_.sav != 0)
        return 0;

    ++stats_.samples;
    PebsRecord rec;
    rec.pc = makeRecordedPc(event);
    rec.dataAddr = makeRecordedAddr(event);
    rec.core = event.core;
    rec.cycle = event.cycle;
    coreBuffers_[event.core].push_back(rec);
    if (cfg_.keepGroundTruth) {
        coreTruthBuffers_[event.core].push_back(
            {space_.indexToPc(event.pcIndex), event.vaddr,
             event.isLoadUop});
    }

    std::uint64_t cost = cfg_.chargeCosts ? timing_.pebsAssist : 0;
    if (coreBuffers_[event.core].size() >= cfg_.bufferCapacity) {
        drainCore(event.core, true);
        if (cfg_.chargeCosts) {
            cost += timing_.pmiCost +
                    std::uint64_t(cfg_.bufferCapacity) *
                        timing_.driverPerRecord;
        }
    }
    if (cfg_.chargeCosts)
        stats_.appCycles += cost;
    return cost;
}

void
PebsMonitor::drainCore(int core, bool charge_interrupt)
{
    auto &buf = coreBuffers_[core];
    if (buf.empty())
        return;
    if (charge_interrupt) {
        ++stats_.interrupts;
        stats_.driverCycles +=
            timing_.pmiCost +
            buf.size() * std::uint64_t(timing_.driverPerRecord);
    } else {
        stats_.driverCycles +=
            buf.size() * std::uint64_t(timing_.driverPerRecord);
    }
    records_.insert(records_.end(), buf.begin(), buf.end());
    buf.clear();
    if (cfg_.keepGroundTruth) {
        auto &tbuf = coreTruthBuffers_[core];
        truths_.insert(truths_.end(), tbuf.begin(), tbuf.end());
        tbuf.clear();
    }
}

void
PebsMonitor::finish()
{
    for (int core = 0; core < space_.numThreads(); ++core)
        drainCore(core, false);

    // Fold this run's stats into the process registry in bulk — the
    // per-HITM path stays untouched (onHitm fires for every coherence
    // intervention the simulator models, far hotter than the record
    // stream).
    static obs::Counter &hitm_events =
        obs::Registry::global().counter("pebs.hitm_events");
    static obs::Counter &samples =
        obs::Registry::global().counter("pebs.records_sampled");
    static obs::Counter &interrupts =
        obs::Registry::global().counter("pebs.interrupts");
    static obs::Counter &driver_cycles =
        obs::Registry::global().counter("pebs.driver_cycles");
    hitm_events.inc(stats_.hitmEvents - exported_.hitmEvents);
    samples.inc(stats_.samples - exported_.samples);
    interrupts.inc(stats_.interrupts - exported_.interrupts);
    driver_cycles.inc(stats_.driverCycles - exported_.driverCycles);
    exported_ = stats_;
}

} // namespace laser::pebs
