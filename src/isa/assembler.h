/**
 * @file
 * Assembler DSL used by the workload kernels and test cases.
 *
 * The assembler builds a Program instruction-by-instruction with symbolic
 * labels, a current source file/line cursor (so every instruction carries
 * the source location LASERDETECT will report), and a one-call runtime
 * library: callers request synthesized pthread-like routines (spin lock,
 * test-and-test-and-set lock, sense-reversing barrier) which are emitted
 * once into a separate "libpthread" segment at finalize() time, mirroring
 * how real binaries link against shared libraries.
 */

#ifndef LASER_ISA_ASSEMBLER_H
#define LASER_ISA_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.h"
#include "isa/types.h"

namespace laser::isa {

/** Synthetic runtime-library routines available to workloads. */
enum class LibFn : std::uint8_t {
    SpinLock,      ///< naive CAS-in-a-loop lock (the Section 2 anti-pattern)
    TtsLock,       ///< test-and-test-and-set lock (read-shared fast path)
    Unlock,        ///< store-0 release
    BarrierWait,   ///< centralized sense-reversing barrier
};

/**
 * Fluent assembler for the IR.
 *
 * Registers r10-r14 are reserved for the runtime library calling
 * convention (argument in r12, link in r14, scratch r11/r13, result r10);
 * workload code should avoid them across callLib boundaries.
 */
class Asm
{
  public:
    /** Symbolic label handle. */
    struct Label { std::int32_t id = -1; };

    /**
     * @param program_name name of the binary (used in /proc maps)
     * @param main_file    name of the primary application source file
     */
    explicit Asm(std::string program_name,
                 std::string main_file = "main.c");

    // ------------------------------------------------------------------
    // Source-location cursor
    // ------------------------------------------------------------------

    /** Switch the cursor to @p file_name (created on first use). */
    Asm &file(const std::string &file_name, bool is_library = false);

    /** Set the source line for subsequently emitted instructions. */
    Asm &at(std::uint32_t line);

    // ------------------------------------------------------------------
    // Labels
    // ------------------------------------------------------------------

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p l to the next emitted instruction. */
    Asm &bind(Label l);

    /** Create a label bound to the next emitted instruction. */
    Label here();

    // ------------------------------------------------------------------
    // Instruction emission. Each returns the emitted instruction index.
    // ------------------------------------------------------------------

    std::uint32_t nop();
    std::uint32_t halt();
    std::uint32_t movi(Reg dst, std::int64_t imm);
    std::uint32_t mov(Reg dst, Reg src);
    std::uint32_t add(Reg dst, Reg a, Reg b);
    std::uint32_t addi(Reg dst, Reg a, std::int64_t imm);
    std::uint32_t sub(Reg dst, Reg a, Reg b);
    std::uint32_t subi(Reg dst, Reg a, std::int64_t imm);
    std::uint32_t mul(Reg dst, Reg a, Reg b);
    std::uint32_t muli(Reg dst, Reg a, std::int64_t imm);
    std::uint32_t andr(Reg dst, Reg a, Reg b);
    std::uint32_t orr(Reg dst, Reg a, Reg b);
    std::uint32_t xorr(Reg dst, Reg a, Reg b);
    std::uint32_t shli(Reg dst, Reg a, std::int64_t imm);
    std::uint32_t shri(Reg dst, Reg a, std::int64_t imm);
    std::uint32_t load(Reg dst, Reg base, std::int64_t off, int size = 8);
    std::uint32_t store(Reg base, std::int64_t off, Reg src, int size = 8);
    std::uint32_t addmem(Reg base, std::int64_t off, Reg src, int size = 8);
    std::uint32_t cas(Reg desired_and_old, Reg base, std::int64_t off,
                      Reg expected);
    std::uint32_t fetchadd(Reg dst_old, Reg base, std::int64_t off,
                           Reg addend);
    std::uint32_t fence();
    std::uint32_t jmp(Label l);
    std::uint32_t beq(Reg a, Reg b, Label l);
    std::uint32_t bne(Reg a, Reg b, Label l);
    std::uint32_t blt(Reg a, Reg b, Label l);
    std::uint32_t bge(Reg a, Reg b, Label l);
    std::uint32_t pause();
    std::uint32_t tid(Reg dst);

    // ------------------------------------------------------------------
    // Runtime library
    // ------------------------------------------------------------------

    /**
     * Emit a call to a runtime-library routine. The object address (lock
     * or barrier) must already be in r12. The routine body is emitted into
     * a library segment at finalize() time.
     */
    std::uint32_t callLib(LibFn fn);

    /**
     * Mark a previously emitted instruction as a synchronization
     * operation (used by inline, macro-expanded locks).
     */
    Asm &markSync(std::uint32_t index, SyncKind kind);

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /**
     * Resolve labels, emit requested library routines, build segments and
     * validate. Aborts on malformed programs (assembler-bug conditions).
     */
    Program finalize();

    /** Number of instructions emitted so far (app section). */
    std::uint32_t size() const;

  private:
    std::uint32_t emit(Instruction insn);
    std::uint32_t emitBranch(Op op, Reg a, Reg b, Label l);
    void emitLibraryBody(LibFn fn);
    void resolveLabel(std::int32_t id, std::int32_t index);

    Program prog_;
    std::uint16_t curFile_ = 0;
    std::uint32_t curLine_ = 1;
    std::map<std::string, std::uint16_t> fileIds_;

    // Label id -> bound instruction index (-1 while unbound).
    std::vector<std::int32_t> labels_;
    // Instruction indices whose target holds a label id to patch.
    std::vector<std::uint32_t> fixups_;

    // Library routines requested via callLib; entry index filled at
    // finalize.
    std::map<LibFn, std::int32_t> libEntries_;
    // Call sites (instruction index -> LibFn) to patch at finalize.
    std::vector<std::pair<std::uint32_t, LibFn>> libCalls_;
    bool finalized_ = false;
};

} // namespace laser::isa

#endif // LASER_ISA_ASSEMBLER_H
