/**
 * @file
 * Core types of the x86-like IR used throughout the LASER reproduction.
 *
 * The paper operates on real x86 binaries via Pin; this reproduction uses a
 * small register/memory IR with the properties the LASER analyses care
 * about: PCs, load/store instructions with byte sizes, read-modify-write
 * instructions that are simultaneously loads and stores (Section 4.3),
 * atomics with fence semantics, and explicit memory fences (Section 5.4).
 */

#ifndef LASER_ISA_TYPES_H
#define LASER_ISA_TYPES_H

#include <cstdint>

namespace laser::isa {

/** General-purpose register index. */
using Reg = std::uint8_t;

/** Number of general-purpose registers. */
constexpr int kNumRegs = 16;

// Register conventions used by the assembler runtime library.
constexpr Reg R0 = 0;   ///< always zero by convention (never written)
constexpr Reg R1 = 1;
constexpr Reg R2 = 2;
constexpr Reg R3 = 3;
constexpr Reg R4 = 4;
constexpr Reg R5 = 5;
constexpr Reg R6 = 6;
constexpr Reg R7 = 7;
constexpr Reg R8 = 8;
constexpr Reg R9 = 9;
constexpr Reg R10 = 10; ///< runtime-library return value
constexpr Reg R11 = 11; ///< runtime-library scratch
constexpr Reg R12 = 12; ///< runtime-library argument (object address)
constexpr Reg R13 = 13; ///< runtime-library scratch
constexpr Reg R14 = 14; ///< link register for Call/Ret
constexpr Reg R15 = 15; ///< stack pointer (initialized per thread)

/** Opcode set. See Instruction for operand meanings. */
enum class Op : std::uint8_t {
    Nop,
    Halt,       ///< terminate this thread
    MovImm,     ///< dst <- imm
    MovReg,     ///< dst <- src1
    Add,        ///< dst <- src1 + src2
    AddImm,     ///< dst <- src1 + imm
    Sub,        ///< dst <- src1 - src2
    SubImm,     ///< dst <- src1 - imm
    Mul,        ///< dst <- src1 * src2
    MulImm,     ///< dst <- src1 * imm
    And,        ///< dst <- src1 & src2
    Or,         ///< dst <- src1 | src2
    Xor,        ///< dst <- src1 ^ src2
    ShlImm,     ///< dst <- src1 << imm
    ShrImm,     ///< dst <- src1 >> imm (logical)
    Load,       ///< dst <- mem[src1 + imm] (size bytes)
    Store,      ///< mem[src1 + imm] <- src2 (size bytes)
    AddMem,     ///< mem[src1 + imm] += src2; non-atomic RMW (load AND store)
    Cas,        ///< atomic: old <- mem[src1+imm]; if old == src2 then
                ///<         mem <- dst; dst <- old. Full fence.
    FetchAdd,   ///< atomic: dst <- mem[src1+imm]; mem += src2. Full fence.
    Fence,      ///< mfence: drains the (software) store buffer
    Jmp,        ///< unconditional branch to target
    JmpReg,     ///< indirect branch to instruction index in src1
    Call,       ///< dst <- next index; branch to target
    Ret,        ///< branch to instruction index in src1 (link register)
    Beq,        ///< if src1 == src2 branch to target
    Bne,        ///< if src1 != src2 branch to target
    Blt,        ///< if src1 <  src2 (signed) branch to target
    Bge,        ///< if src1 >= src2 (signed) branch to target
    Pause,      ///< spin-loop hint (consumes cycles, no effect)
    Tid,        ///< dst <- hardware thread id
    SsbFlush,   ///< flush the software store buffer (inserted by repair)
    AliasCheck, ///< check mem[src1+imm] against SSB (inserted by repair)
};

/**
 * Marks instructions emitted as part of a synchronization operation so the
 * Sheriff baseline (which pays a page-diff cost per synchronization, see
 * Section 7.3) and the repair analysis (fences constrain flush placement,
 * Section 5.4) can recognize them.
 */
enum class SyncKind : std::uint8_t {
    None,
    LockAcquire,
    LockRelease,
    BarrierWait,
};

/** A single IR instruction. Each occupies 4 bytes of virtual code space. */
struct Instruction
{
    Op op = Op::Nop;
    Reg dst = 0;
    Reg src1 = 0;
    Reg src2 = 0;
    /** Access size in bytes for memory operations (1, 2, 4 or 8). */
    std::uint8_t size = 8;
    SyncKind sync = SyncKind::None;
    /** Set by LASERREPAIR: this memory operation goes through the SSB. */
    bool useSsb = false;
    /**
     * Set by LASERREPAIR's speculative alias analysis: this load was proven
     * (speculatively) not to alias any buffered store and may skip the SSB
     * lookup; a preceding AliasCheck validates the speculation at runtime.
     */
    bool ssbSkip = false;
    /** Branch/call target as an instruction index; -1 if unused. */
    std::int32_t target = -1;
    /** Immediate operand / address displacement. */
    std::int64_t imm = 0;
    /** Source file id (index into Program::files). */
    std::uint16_t file = 0;
    /** Source line number within that file. */
    std::uint32_t line = 0;
};

/** True if the op reads memory (includes RMW and atomics). */
constexpr bool
opReadsMemory(Op op)
{
    return op == Op::Load || op == Op::AddMem || op == Op::Cas ||
           op == Op::FetchAdd;
}

/** True if the op writes memory (includes RMW and atomics). */
constexpr bool
opWritesMemory(Op op)
{
    return op == Op::Store || op == Op::AddMem || op == Op::Cas ||
           op == Op::FetchAdd;
}

/** True if the op accesses memory at all. */
constexpr bool
opAccessesMemory(Op op)
{
    return opReadsMemory(op) || opWritesMemory(op);
}

/** True for atomic read-modify-write operations (full fence semantics). */
constexpr bool
opIsAtomic(Op op)
{
    return op == Op::Cas || op == Op::FetchAdd;
}

/** True for operations with (explicit or implicit) fence semantics. */
constexpr bool
opIsFence(Op op)
{
    return op == Op::Fence || opIsAtomic(op);
}

/** True for control-transfer operations. */
constexpr bool
opIsBranch(Op op)
{
    return op == Op::Jmp || op == Op::JmpReg || op == Op::Call ||
           op == Op::Ret || op == Op::Beq || op == Op::Bne ||
           op == Op::Blt || op == Op::Bge;
}

/** True for conditional branches (fall-through is possible). */
constexpr bool
opIsCondBranch(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt || op == Op::Bge;
}

/** Printable mnemonic for an opcode. */
const char *opName(Op op);

/** Size of one encoded instruction in bytes of virtual code space. */
constexpr std::uint64_t kInsnBytes = 4;

} // namespace laser::isa

#endif // LASER_ISA_TYPES_H
