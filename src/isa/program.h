/**
 * @file
 * Program container: code, source map and segment (module) table.
 *
 * A Program is the reproduction's stand-in for an x86 binary plus its
 * loaded shared libraries. Segments model the distinct text mappings that
 * appear in /proc/<pid>/maps, which LASERDETECT's first pipeline stage
 * parses to classify record PCs as application, library or other code
 * (Section 4.1 of the paper).
 */

#ifndef LASER_ISA_PROGRAM_H
#define LASER_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/types.h"

namespace laser::isa {

/** A synthetic source file contributing lines to the program. */
struct SourceFile
{
    std::string name;
    /** True for runtime-library files (libpthread-like helpers). */
    bool isLibrary = false;
};

/**
 * A contiguous range of instructions belonging to one "module" (the main
 * executable or a shared library); becomes one text mapping in the
 * synthetic /proc maps.
 */
struct Segment
{
    std::string name;
    bool isLibrary = false;
    /** First instruction index (inclusive). */
    std::uint32_t begin = 0;
    /** Last instruction index (exclusive). */
    std::uint32_t end = 0;
};

/** A source location, resolvable against a Program's file table. */
struct SourceLoc
{
    std::uint16_t file = 0;
    std::uint32_t line = 0;

    friend bool
    operator==(const SourceLoc &a, const SourceLoc &b)
    {
        return a.file == b.file && a.line == b.line;
    }
    friend auto
    operator<=>(const SourceLoc &a, const SourceLoc &b)
    {
        if (auto c = a.file <=> b.file; c != 0)
            return c;
        return a.line <=> b.line;
    }
};

/** An assembled program: the unit loaded into a simulated Machine. */
class Program
{
  public:
    std::string name;
    std::vector<Instruction> code;
    std::vector<SourceFile> files;
    std::vector<Segment> segments;

    /** Number of instructions. */
    std::size_t size() const { return code.size(); }

    /** Source location of the instruction at @p index. */
    SourceLoc
    locOf(std::uint32_t index) const
    {
        const Instruction &insn = code.at(index);
        return {insn.file, insn.line};
    }

    /** Human-readable "file:line" for the instruction at @p index. */
    std::string locString(std::uint32_t index) const;

    /** Human-readable "file:line" for a source location. */
    std::string locString(SourceLoc loc) const;

    /** Segment containing @p index, or nullptr. */
    const Segment *segmentOf(std::uint32_t index) const;

    /** Disassemble one instruction. */
    std::string disassemble(std::uint32_t index) const;

    /** Disassemble the whole program (for debugging and tests). */
    std::string disassembleAll() const;

    /**
     * Structural validation: branch targets in range, segments contiguous
     * and covering, register indices legal, memory sizes legal.
     * @return empty string if valid, else a description of the first error.
     */
    std::string validate() const;
};

} // namespace laser::isa

#endif // LASER_ISA_PROGRAM_H
