/**
 * @file
 * Load/store-set extraction ("binary decoding").
 *
 * LASERDETECT analyzes the application binary at runtime to construct load
 * and store sets identifying load PCs, store PCs and their access sizes
 * (Section 4.3); the cache-line model consumes these to turn a HITM record
 * (which only has a PC and a data address) into a typed, sized memory
 * access. x86 instructions that are simultaneously loads and stores appear
 * in both sets, a documented source of detector inaccuracy.
 */

#ifndef LASER_ISA_DECODE_H
#define LASER_ISA_DECODE_H

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace laser::isa {

/** Per-PC memory-access facts derived from the binary. */
struct MemAccessInfo
{
    bool isLoad = false;
    bool isStore = false;
    std::uint8_t size = 0;
};

/**
 * The decoded load/store sets of one program, indexed by instruction
 * index (PC / kInsnBytes - code base).
 */
class LoadStoreSets
{
  public:
    LoadStoreSets() = default;

    /** Decode @p prog into load/store sets. */
    explicit LoadStoreSets(const Program &prog);

    /** Facts for the given instruction index; zeroes if out of range. */
    MemAccessInfo
    lookup(std::uint32_t index) const
    {
        if (index >= info_.size())
            return {};
        return info_[index];
    }

    std::size_t size() const { return info_.size(); }

    /** Number of PCs in the load set. */
    std::size_t loadCount() const { return loads_; }

    /** Number of PCs in the store set. */
    std::size_t storeCount() const { return stores_; }

  private:
    std::vector<MemAccessInfo> info_;
    std::size_t loads_ = 0;
    std::size_t stores_ = 0;
};

} // namespace laser::isa

#endif // LASER_ISA_DECODE_H
