#include "isa/program.h"

#include <sstream>

namespace laser::isa {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:        return "nop";
      case Op::Halt:       return "halt";
      case Op::MovImm:     return "movi";
      case Op::MovReg:     return "mov";
      case Op::Add:        return "add";
      case Op::AddImm:     return "addi";
      case Op::Sub:        return "sub";
      case Op::SubImm:     return "subi";
      case Op::Mul:        return "mul";
      case Op::MulImm:     return "muli";
      case Op::And:        return "and";
      case Op::Or:         return "or";
      case Op::Xor:        return "xor";
      case Op::ShlImm:     return "shl";
      case Op::ShrImm:     return "shr";
      case Op::Load:       return "load";
      case Op::Store:      return "store";
      case Op::AddMem:     return "addmem";
      case Op::Cas:        return "cas";
      case Op::FetchAdd:   return "fetchadd";
      case Op::Fence:      return "fence";
      case Op::Jmp:        return "jmp";
      case Op::JmpReg:     return "jmpreg";
      case Op::Call:       return "call";
      case Op::Ret:        return "ret";
      case Op::Beq:        return "beq";
      case Op::Bne:        return "bne";
      case Op::Blt:        return "blt";
      case Op::Bge:        return "bge";
      case Op::Pause:      return "pause";
      case Op::Tid:        return "tid";
      case Op::SsbFlush:   return "ssbflush";
      case Op::AliasCheck: return "aliaschk";
    }
    return "???";
}

std::string
Program::locString(std::uint32_t index) const
{
    return locString(locOf(index));
}

std::string
Program::locString(SourceLoc loc) const
{
    std::ostringstream os;
    if (loc.file < files.size())
        os << files[loc.file].name;
    else
        os << "<file" << loc.file << ">";
    os << ":" << loc.line;
    return os.str();
}

const Segment *
Program::segmentOf(std::uint32_t index) const
{
    for (const Segment &seg : segments) {
        if (index >= seg.begin && index < seg.end)
            return &seg;
    }
    return nullptr;
}

std::string
Program::disassemble(std::uint32_t index) const
{
    const Instruction &insn = code.at(index);
    std::ostringstream os;
    os << index << ":\t" << opName(insn.op);
    auto reg = [](Reg r) { return "r" + std::to_string(int(r)); };
    switch (insn.op) {
      case Op::MovImm:
        os << " " << reg(insn.dst) << ", " << insn.imm;
        break;
      case Op::MovReg:
        os << " " << reg(insn.dst) << ", " << reg(insn.src1);
        break;
      case Op::Add: case Op::Sub: case Op::Mul: case Op::And:
      case Op::Or: case Op::Xor:
        os << " " << reg(insn.dst) << ", " << reg(insn.src1) << ", "
           << reg(insn.src2);
        break;
      case Op::AddImm: case Op::SubImm: case Op::MulImm:
      case Op::ShlImm: case Op::ShrImm:
        os << " " << reg(insn.dst) << ", " << reg(insn.src1) << ", "
           << insn.imm;
        break;
      case Op::Load:
        os << int(insn.size) << " " << reg(insn.dst) << ", ["
           << reg(insn.src1) << (insn.imm >= 0 ? "+" : "") << insn.imm
           << "]";
        break;
      case Op::Store:
        os << int(insn.size) << " [" << reg(insn.src1)
           << (insn.imm >= 0 ? "+" : "") << insn.imm << "], "
           << reg(insn.src2);
        break;
      case Op::AddMem:
        os << int(insn.size) << " [" << reg(insn.src1)
           << (insn.imm >= 0 ? "+" : "") << insn.imm << "], "
           << reg(insn.src2);
        break;
      case Op::Cas:
        os << " " << reg(insn.dst) << ", [" << reg(insn.src1)
           << (insn.imm >= 0 ? "+" : "") << insn.imm << "], expect "
           << reg(insn.src2);
        break;
      case Op::FetchAdd:
        os << " " << reg(insn.dst) << ", [" << reg(insn.src1)
           << (insn.imm >= 0 ? "+" : "") << insn.imm << "], "
           << reg(insn.src2);
        break;
      case Op::Jmp: case Op::Call:
        os << " @" << insn.target;
        break;
      case Op::JmpReg: case Op::Ret:
        os << " " << reg(insn.src1);
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
        os << " " << reg(insn.src1) << ", " << reg(insn.src2) << ", @"
           << insn.target;
        break;
      case Op::Tid:
        os << " " << reg(insn.dst);
        break;
      case Op::AliasCheck:
        os << " [" << reg(insn.src1) << (insn.imm >= 0 ? "+" : "")
           << insn.imm << "]";
        break;
      default:
        break;
    }
    if (insn.useSsb)
        os << "  {ssb}";
    if (insn.ssbSkip)
        os << "  {skip}";
    if (insn.sync != SyncKind::None)
        os << "  {sync}";
    os << "\t; " << locString(index);
    return os.str();
}

std::string
Program::disassembleAll() const
{
    std::ostringstream os;
    for (const Segment &seg : segments) {
        os << "; segment " << seg.name << (seg.isLibrary ? " (lib)" : "")
           << " [" << seg.begin << ", " << seg.end << ")\n";
        for (std::uint32_t i = seg.begin; i < seg.end; ++i)
            os << disassemble(i) << "\n";
    }
    return os.str();
}

std::string
Program::validate() const
{
    if (code.empty())
        return "empty program";
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &insn = code[i];
        auto err = [&](const std::string &what) {
            return "insn " + std::to_string(i) + " (" + opName(insn.op) +
                   "): " + what;
        };
        if (insn.dst >= kNumRegs || insn.src1 >= kNumRegs ||
                insn.src2 >= kNumRegs) {
            return err("register out of range");
        }
        if (opAccessesMemory(insn.op)) {
            if (insn.size != 1 && insn.size != 2 && insn.size != 4 &&
                    insn.size != 8) {
                return err("bad access size " + std::to_string(insn.size));
            }
        }
        const bool needs_target = insn.op == Op::Jmp || insn.op == Op::Call ||
                                  opIsCondBranch(insn.op);
        if (needs_target) {
            if (insn.target < 0 ||
                    insn.target >= static_cast<std::int32_t>(code.size())) {
                return err("branch target out of range");
            }
        }
        if (insn.file >= files.size())
            return err("file id out of range");
    }
    // Segments must be non-empty, contiguous and cover all code.
    std::uint32_t expect = 0;
    for (const Segment &seg : segments) {
        if (seg.begin != expect)
            return "segment " + seg.name + " not contiguous";
        if (seg.end <= seg.begin)
            return "segment " + seg.name + " empty";
        expect = seg.end;
    }
    if (expect != code.size())
        return "segments do not cover program";
    return "";
}

} // namespace laser::isa
