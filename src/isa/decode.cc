#include "isa/decode.h"

namespace laser::isa {

LoadStoreSets::LoadStoreSets(const Program &prog)
{
    info_.resize(prog.code.size());
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &insn = prog.code[i];
        MemAccessInfo &mi = info_[i];
        mi.isLoad = opReadsMemory(insn.op);
        mi.isStore = opWritesMemory(insn.op);
        if (mi.isLoad || mi.isStore)
            mi.size = insn.size;
        if (mi.isLoad)
            ++loads_;
        if (mi.isStore)
            ++stores_;
    }
}

} // namespace laser::isa
