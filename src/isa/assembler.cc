#include "isa/assembler.h"

#include <cstdio>
#include <cstdlib>

namespace laser::isa {

namespace {

/** Abort with a message: assembler misuse is a programming error. */
[[noreturn]] void
asmPanic(const std::string &what)
{
    std::fprintf(stderr, "assembler error: %s\n", what.c_str());
    std::abort();
}

} // namespace

Asm::Asm(std::string program_name, std::string main_file)
{
    prog_.name = std::move(program_name);
    prog_.files.push_back({std::move(main_file), false});
    fileIds_[prog_.files[0].name] = 0;
}

Asm &
Asm::file(const std::string &file_name, bool is_library)
{
    auto it = fileIds_.find(file_name);
    if (it == fileIds_.end()) {
        const auto id = static_cast<std::uint16_t>(prog_.files.size());
        prog_.files.push_back({file_name, is_library});
        fileIds_[file_name] = id;
        curFile_ = id;
    } else {
        curFile_ = it->second;
    }
    return *this;
}

Asm &
Asm::at(std::uint32_t line)
{
    curLine_ = line;
    return *this;
}

Asm::Label
Asm::newLabel()
{
    labels_.push_back(-1);
    return Label{static_cast<std::int32_t>(labels_.size() - 1)};
}

Asm &
Asm::bind(Label l)
{
    if (l.id < 0 || l.id >= static_cast<std::int32_t>(labels_.size()))
        asmPanic("bind of invalid label");
    if (labels_[l.id] != -1)
        asmPanic("label bound twice");
    labels_[l.id] = static_cast<std::int32_t>(prog_.code.size());
    return *this;
}

Asm::Label
Asm::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

std::uint32_t
Asm::emit(Instruction insn)
{
    if (finalized_)
        asmPanic("emit after finalize");
    insn.file = curFile_;
    insn.line = curLine_;
    prog_.code.push_back(insn);
    return static_cast<std::uint32_t>(prog_.code.size() - 1);
}

std::uint32_t
Asm::nop()
{
    return emit({.op = Op::Nop});
}

std::uint32_t
Asm::halt()
{
    return emit({.op = Op::Halt});
}

std::uint32_t
Asm::movi(Reg dst, std::int64_t imm)
{
    return emit({.op = Op::MovImm, .dst = dst, .imm = imm});
}

std::uint32_t
Asm::mov(Reg dst, Reg src)
{
    return emit({.op = Op::MovReg, .dst = dst, .src1 = src});
}

std::uint32_t
Asm::add(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::Add, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::addi(Reg dst, Reg a, std::int64_t imm)
{
    return emit({.op = Op::AddImm, .dst = dst, .src1 = a, .imm = imm});
}

std::uint32_t
Asm::sub(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::Sub, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::subi(Reg dst, Reg a, std::int64_t imm)
{
    return emit({.op = Op::SubImm, .dst = dst, .src1 = a, .imm = imm});
}

std::uint32_t
Asm::mul(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::Mul, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::muli(Reg dst, Reg a, std::int64_t imm)
{
    return emit({.op = Op::MulImm, .dst = dst, .src1 = a, .imm = imm});
}

std::uint32_t
Asm::andr(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::And, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::orr(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::Or, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::xorr(Reg dst, Reg a, Reg b)
{
    return emit({.op = Op::Xor, .dst = dst, .src1 = a, .src2 = b});
}

std::uint32_t
Asm::shli(Reg dst, Reg a, std::int64_t imm)
{
    return emit({.op = Op::ShlImm, .dst = dst, .src1 = a, .imm = imm});
}

std::uint32_t
Asm::shri(Reg dst, Reg a, std::int64_t imm)
{
    return emit({.op = Op::ShrImm, .dst = dst, .src1 = a, .imm = imm});
}

std::uint32_t
Asm::load(Reg dst, Reg base, std::int64_t off, int size)
{
    return emit({.op = Op::Load, .dst = dst, .src1 = base,
                 .size = static_cast<std::uint8_t>(size), .imm = off});
}

std::uint32_t
Asm::store(Reg base, std::int64_t off, Reg src, int size)
{
    return emit({.op = Op::Store, .src1 = base, .src2 = src,
                 .size = static_cast<std::uint8_t>(size), .imm = off});
}

std::uint32_t
Asm::addmem(Reg base, std::int64_t off, Reg src, int size)
{
    return emit({.op = Op::AddMem, .src1 = base, .src2 = src,
                 .size = static_cast<std::uint8_t>(size), .imm = off});
}

std::uint32_t
Asm::cas(Reg desired_and_old, Reg base, std::int64_t off, Reg expected)
{
    return emit({.op = Op::Cas, .dst = desired_and_old, .src1 = base,
                 .src2 = expected, .size = 8, .imm = off});
}

std::uint32_t
Asm::fetchadd(Reg dst_old, Reg base, std::int64_t off, Reg addend)
{
    return emit({.op = Op::FetchAdd, .dst = dst_old, .src1 = base,
                 .src2 = addend, .size = 8, .imm = off});
}

std::uint32_t
Asm::fence()
{
    return emit({.op = Op::Fence});
}

std::uint32_t
Asm::emitBranch(Op op, Reg a, Reg b, Label l)
{
    if (l.id < 0 || l.id >= static_cast<std::int32_t>(labels_.size()))
        asmPanic("branch to invalid label");
    std::uint32_t idx =
        emit({.op = op, .src1 = a, .src2 = b, .target = l.id});
    fixups_.push_back(idx);
    return idx;
}

std::uint32_t
Asm::jmp(Label l)
{
    return emitBranch(Op::Jmp, 0, 0, l);
}

std::uint32_t
Asm::beq(Reg a, Reg b, Label l)
{
    return emitBranch(Op::Beq, a, b, l);
}

std::uint32_t
Asm::bne(Reg a, Reg b, Label l)
{
    return emitBranch(Op::Bne, a, b, l);
}

std::uint32_t
Asm::blt(Reg a, Reg b, Label l)
{
    return emitBranch(Op::Blt, a, b, l);
}

std::uint32_t
Asm::bge(Reg a, Reg b, Label l)
{
    return emitBranch(Op::Bge, a, b, l);
}

std::uint32_t
Asm::pause()
{
    return emit({.op = Op::Pause});
}

std::uint32_t
Asm::tid(Reg dst)
{
    return emit({.op = Op::Tid, .dst = dst});
}

std::uint32_t
Asm::callLib(LibFn fn)
{
    libEntries_.emplace(fn, -1);
    std::uint32_t idx = emit({.op = Op::Call, .dst = R14, .target = -1});
    libCalls_.emplace_back(idx, fn);
    return idx;
}

Asm &
Asm::markSync(std::uint32_t index, SyncKind kind)
{
    if (index >= prog_.code.size())
        asmPanic("markSync index out of range");
    prog_.code[index].sync = kind;
    return *this;
}

void
Asm::emitLibraryBody(LibFn fn)
{
    // Calling convention: object address in r12, link in r14,
    // scratch r10/r11/r13.
    switch (fn) {
      case LibFn::SpinLock: {
        // Naive CAS-in-a-loop lock: every attempt is an RFO on the lock
        // line, the "poorly performing" pattern from Section 2.
        at(10);
        Label retry = here();
        movi(R13, 1);
        std::uint32_t c = cas(R13, R12, 0, R0);
        prog_.code[c].sync = SyncKind::LockAcquire;
        Label done = newLabel();
        beq(R13, R0, done);
        pause();
        jmp(retry);
        bind(done);
        emit({.op = Op::Ret, .src1 = R14});
        break;
      }
      case LibFn::TtsLock: {
        // Test-and-test-and-set: read-share the lock word while held.
        at(30);
        Label retry = here();
        Label spin = newLabel();
        Label done = newLabel();
        load(R13, R12, 0, 8);
        bne(R13, R0, spin);
        movi(R13, 1);
        std::uint32_t c = cas(R13, R12, 0, R0);
        prog_.code[c].sync = SyncKind::LockAcquire;
        beq(R13, R0, done);
        bind(spin);
        pause();
        jmp(retry);
        bind(done);
        emit({.op = Op::Ret, .src1 = R14});
        break;
      }
      case LibFn::Unlock: {
        at(50);
        std::uint32_t s = store(R12, 0, R0, 8);
        prog_.code[s].sync = SyncKind::LockRelease;
        emit({.op = Op::Ret, .src1 = R14});
        break;
      }
      case LibFn::BarrierWait: {
        // Object layout: counter @0, generation @8, nthreads @16.
        at(70);
        Label spin = newLabel();
        Label last = newLabel();
        Label done = newLabel();
        load(R11, R12, 8, 8);        // my generation
        movi(R13, 1);
        std::uint32_t f = fetchadd(R13, R12, 0, R13);
        prog_.code[f].sync = SyncKind::BarrierWait;
        addi(R13, R13, 1);
        load(R10, R12, 16, 8);       // nthreads
        beq(R13, R10, last);
        bind(spin);
        load(R13, R12, 8, 8);
        bne(R13, R11, done);
        pause();
        jmp(spin);
        bind(last);
        store(R12, 0, R0, 8);        // reset counter (before release)
        addi(R11, R11, 1);
        store(R12, 8, R11, 8);       // bump generation: releases waiters
        bind(done);
        emit({.op = Op::Ret, .src1 = R14});
        break;
      }
    }
}

void
Asm::resolveLabel(std::int32_t id, std::int32_t index)
{
    labels_[id] = index;
}

Program
Asm::finalize()
{
    if (finalized_)
        asmPanic("finalize called twice");
    finalized_ = false; // allow library emission below

    const auto app_end = static_cast<std::uint32_t>(prog_.code.size());
    if (app_end == 0)
        asmPanic("finalize of empty program");

    // Emit requested library routines into a trailing library segment.
    if (!libEntries_.empty()) {
        file("libpthread.c", true);
        for (auto &[fn, entry] : libEntries_) {
            entry = static_cast<std::int32_t>(prog_.code.size());
            emitLibraryBody(fn);
        }
        for (auto &[site, fn] : libCalls_)
            prog_.code[site].target = libEntries_[fn];
    }

    // Patch label references (target currently holds the label id).
    for (std::uint32_t site : fixups_) {
        const std::int32_t id = prog_.code[site].target;
        if (id < 0 || id >= static_cast<std::int32_t>(labels_.size()))
            asmPanic("dangling label fixup");
        if (labels_[id] < 0)
            asmPanic("unbound label used as branch target");
        prog_.code[site].target = labels_[id];
    }

    // Build segments.
    prog_.segments.clear();
    const auto total = static_cast<std::uint32_t>(prog_.code.size());
    prog_.segments.push_back({prog_.name, false, 0, app_end});
    if (total > app_end)
        prog_.segments.push_back({"libpthread.so", true, app_end, total});

    const std::string err = prog_.validate();
    if (!err.empty())
        asmPanic("validate failed: " + err);

    finalized_ = true;
    return std::move(prog_);
}

std::uint32_t
Asm::size() const
{
    return static_cast<std::uint32_t>(prog_.code.size());
}

} // namespace laser::isa
