/**
 * @file
 * Minimal JSON document tree shared by the observability layer: the
 * metrics/telemetry exporters build documents with it, the bench-schema
 * validator and the obs tests parse exported artifacts back through it.
 *
 * Deliberately small: objects keep insertion order (deterministic
 * artifacts diff cleanly), numbers are doubles with exact integer
 * printing up to 2^53, and the parser accepts exactly the JSON the
 * dumper emits (full RFC 8259 input, no extensions). 64-bit identifiers
 * such as config hashes must be encoded as strings.
 */

#ifndef LASER_OBS_JSON_H
#define LASER_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace laser::obs {

class Json
{
  public:
    enum class Type : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int i) : type_(Type::Number), num_(i) {}
    Json(std::int64_t i) : type_(Type::Number), num_(double(i)) {}
    Json(std::uint64_t u) : type_(Type::Number), num_(double(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }

    /** Append to an array (converts a Null value to an array first). */
    Json &push(Json v);

    /** Set/replace an object member (converts Null to an object). */
    Json &set(std::string key, Json v);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(std::string_view key) const;

    double asNumber(double fallback = 0.0) const;
    bool asBool(bool fallback = false) const;
    const std::string &asString() const { return str_; }
    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text into @p out. Returns false (and sets @p err when
     * given) on malformed input or trailing garbage.
     */
    static bool parse(std::string_view text, Json *out,
                      std::string *err = nullptr);

  private:
    void dumpTo(std::string *out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace laser::obs

#endif // LASER_OBS_JSON_H
