#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace laser::obs {

namespace {

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{[] {
        const char *env = std::getenv("LASER_OBS");
        return !(env && env[0] == '0' && env[1] == '\0');
    }()};
    return flag;
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

unsigned
threadIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned index =
        next.fetch_add(1, std::memory_order_relaxed);
    return index;
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const detail::PaddedU64 &slot : slots_)
        total += slot.v.load(std::memory_order_relaxed);
    return total;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::string name) : name_(std::move(name))
{
    for (Slot &slot : slots_) {
        slot.min.store(std::numeric_limits<double>::infinity(),
                       std::memory_order_relaxed);
        slot.max.store(-std::numeric_limits<double>::infinity(),
                       std::memory_order_relaxed);
    }
}

int
Histogram::bucketOf(double value)
{
    if (!(value > 0.0)) // also catches NaN
        return 0;
    int exp = 0;
    const double m = std::frexp(value, &exp); // value = m * 2^exp
    if (exp - 1 < kMinExp)
        return 0;
    if (exp - 1 >= kMaxExp)
        return kBuckets - 1;
    int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
    if (sub < 0)
        sub = 0;
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    return 1 + (exp - 1 - kMinExp) * kSubBuckets + sub;
}

double
Histogram::bucketUpperBound(int b)
{
    if (b <= 0)
        return std::ldexp(1.0, kMinExp);
    if (b >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    const int idx = b - 1;
    const int octave = idx / kSubBuckets;
    const int sub = idx % kSubBuckets;
    return std::ldexp(1.0 + double(sub + 1) / kSubBuckets,
                      kMinExp + octave);
}

void
Histogram::record(double value)
{
    if (!enabled())
        return;
    Slot &slot = slots_[detail::slotIndex()];
    slot.counts[static_cast<std::size_t>(bucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    double cur = slot.min.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.min.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed)) {
    }
    cur = slot.max.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.max.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed)) {
    }
}

Histogram::Data
Histogram::data() const
{
    Data out;
    std::array<std::uint64_t, kBuckets> merged{};
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const Slot &slot : slots_) {
        for (int b = 0; b < kBuckets; ++b)
            merged[static_cast<std::size_t>(b)] +=
                slot.counts[static_cast<std::size_t>(b)].load(
                    std::memory_order_relaxed);
        out.count += slot.count.load(std::memory_order_relaxed);
        out.sum += slot.sum.load(std::memory_order_relaxed);
        min = std::min(min, slot.min.load(std::memory_order_relaxed));
        max = std::max(max, slot.max.load(std::memory_order_relaxed));
    }
    if (out.count > 0) {
        out.min = min;
        out.max = max;
    }
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t c = merged[static_cast<std::size_t>(b)];
        if (c > 0)
            out.buckets.emplace_back(bucketUpperBound(b), c);
    }
    return out;
}

void
Histogram::Data::merge(const Data &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        *this = other;
        return;
    }
    std::vector<std::pair<double, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < buckets.size() || j < other.buckets.size()) {
        if (j >= other.buckets.size() ||
            (i < buckets.size() &&
             buckets[i].first < other.buckets[j].first)) {
            merged.push_back(buckets[i++]);
        } else if (i >= buckets.size() ||
                   other.buckets[j].first < buckets[i].first) {
            merged.push_back(other.buckets[j++]);
        } else {
            merged.emplace_back(buckets[i].first,
                                buckets[i].second +
                                    other.buckets[j].second);
            ++i;
            ++j;
        }
    }
    buckets = std::move(merged);
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
}

double
Histogram::Data::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    const double rank = p * double(count);
    std::uint64_t seen = 0;
    for (const auto &[upper, c] : buckets) {
        seen += c;
        if (double(seen) >= rank) {
            // Geometric midpoint of the bucket, clamped to the exact
            // observed range (tight for the extreme buckets).
            double rep;
            if (!std::isfinite(upper)) {
                rep = max;
            } else {
                const double lower =
                    upper / (1.0 + 1.0 / double(kSubBuckets));
                rep = std::sqrt(lower * upper);
            }
            return std::min(std::max(rep, min), max);
        }
    }
    return max;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry &
Registry::global()
{
    // Leaked singleton: instrumentation may fire from detached threads
    // during process teardown, after static destructors would have run.
    // laser-lint: allow(raw-new-delete) — deliberate leak, see above
    static Registry *g = new Registry();
    return *g;
}

Counter &
Registry::counter(const std::string &name)
{
    util::MutexLock lock(&mu_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        // laser-lint: allow(raw-new-delete) — private ctor, Registry is
        // a friend; std::make_unique cannot reach it
        slot.reset(new Counter(name));
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    util::MutexLock lock(&mu_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        // laser-lint: allow(raw-new-delete) — private ctor, Registry is
        // a friend; std::make_unique cannot reach it
        slot.reset(new Gauge(name));
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    util::MutexLock lock(&mu_);
    std::unique_ptr<Histogram> &slot = histograms_[name];
    if (!slot)
        // laser-lint: allow(raw-new-delete) — private ctor, Registry is
        // a friend; std::make_unique cannot reach it
        slot.reset(new Histogram(name));
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    util::MutexLock lock(&mu_);
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_)
        snap.histograms.emplace_back(name, h->data());
    return snap;
}

// ---------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------

Json
Snapshot::toJson() const
{
    Json counters_obj = Json::object();
    for (const auto &[name, v] : counters)
        counters_obj.set(name, Json(v));

    Json gauges_obj = Json::object();
    for (const auto &[name, v] : gauges)
        gauges_obj.set(name, Json(v));

    Json hists_obj = Json::object();
    for (const auto &[name, d] : histograms) {
        Json h = Json::object();
        h.set("count", Json(d.count));
        h.set("sum", Json(d.sum));
        h.set("min", Json(d.min));
        h.set("max", Json(d.max));
        h.set("mean", Json(d.mean()));
        h.set("p50", Json(d.percentile(0.50)));
        h.set("p90", Json(d.percentile(0.90)));
        h.set("p99", Json(d.percentile(0.99)));
        Json buckets = Json::array();
        for (const auto &[upper, c] : d.buckets) {
            Json pair = Json::array();
            pair.push(Json(std::isfinite(upper)
                               ? upper
                               : std::numeric_limits<double>::max()));
            pair.push(Json(c));
            buckets.push(std::move(pair));
        }
        h.set("buckets", std::move(buckets));
        hists_obj.set(name, std::move(h));
    }

    Json root = Json::object();
    root.set("counters", std::move(counters_obj));
    root.set("gauges", std::move(gauges_obj));
    root.set("histograms", std::move(hists_obj));
    return root;
}

void
Snapshot::merge(const Snapshot &other)
{
    const auto mergeInto = [](auto *ours, const auto &theirs,
                              const auto &combine) {
        for (const auto &[name, value] : theirs) {
            auto it = std::find_if(
                ours->begin(), ours->end(),
                [&name = name](const auto &e) { return e.first == name; });
            if (it == ours->end())
                ours->emplace_back(name, value);
            else
                combine(&it->second, value);
        }
        std::sort(ours->begin(), ours->end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    };
    mergeInto(&counters, other.counters,
              [](std::uint64_t *mine, std::uint64_t theirs) {
                  *mine += theirs;
              });
    mergeInto(&gauges, other.gauges,
              [](double *mine, double theirs) { *mine = theirs; });
    mergeInto(&histograms, other.histograms,
              [](Histogram::Data *mine, const Histogram::Data &theirs) {
                  mine->merge(theirs);
              });
}

bool
Snapshot::fromJson(const Json &doc, Snapshot *out)
{
    const Json *counters_obj = doc.find("counters");
    const Json *gauges_obj = doc.find("gauges");
    const Json *hists_obj = doc.find("histograms");
    if (!counters_obj || !counters_obj->isObject() || !gauges_obj ||
        !gauges_obj->isObject() || !hists_obj || !hists_obj->isObject())
        return false;

    Snapshot snap;
    for (const auto &[name, v] : counters_obj->members())
        snap.counters.emplace_back(
            name, static_cast<std::uint64_t>(v.asNumber()));
    for (const auto &[name, v] : gauges_obj->members())
        snap.gauges.emplace_back(name, v.asNumber());
    for (const auto &[name, h] : hists_obj->members()) {
        Histogram::Data d;
        if (const Json *v = h.find("count"))
            d.count = static_cast<std::uint64_t>(v->asNumber());
        if (const Json *v = h.find("sum"))
            d.sum = v->asNumber();
        if (const Json *v = h.find("min"))
            d.min = v->asNumber();
        if (const Json *v = h.find("max"))
            d.max = v->asNumber();
        if (const Json *buckets = h.find("buckets")) {
            for (const Json &pair : buckets->items()) {
                if (pair.items().size() != 2)
                    continue;
                // toJson saturates the overflow bucket's +Inf bound to
                // DBL_MAX (JSON has no Inf); undo that so re-exported
                // Prometheus text matches the live formatting.
                double upper = pair.items()[0].asNumber();
                if (upper >= std::numeric_limits<double>::max())
                    upper = std::numeric_limits<double>::infinity();
                d.buckets.emplace_back(
                    upper, static_cast<std::uint64_t>(
                               pair.items()[1].asNumber()));
            }
        }
        snap.histograms.emplace_back(name, std::move(d));
    }
    *out = std::move(snap);
    return true;
}

std::string
promEscapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

namespace {

std::string
promName(const std::string &name)
{
    std::string out = "laser_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
promDouble(double d)
{
    if (std::isinf(d))
        return d > 0 ? "+Inf" : "-Inf";
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, d);
    return std::string(buf, r.ptr);
}

} // namespace

std::string
Snapshot::toPrometheus() const
{
    std::string out;
    for (const auto &[name, v] : counters) {
        const std::string pn = promName(name);
        out += "# TYPE " + pn + " counter\n";
        out += pn + " " + std::to_string(v) + "\n";
    }
    for (const auto &[name, v] : gauges) {
        const std::string pn = promName(name);
        out += "# TYPE " + pn + " gauge\n";
        out += pn + " " + promDouble(v) + "\n";
    }
    for (const auto &[name, d] : histograms) {
        const std::string pn = promName(name);
        out += "# TYPE " + pn + " histogram\n";
        std::uint64_t cum = 0;
        for (const auto &[upper, c] : d.buckets) {
            cum += c;
            out += pn + "_bucket{le=\"" +
                   promEscapeLabel(promDouble(upper)) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(d.count) +
               "\n";
        out += pn + "_sum " + promDouble(d.sum) + "\n";
        out += pn + "_count " + std::to_string(d.count) + "\n";
    }
    return out;
}

} // namespace laser::obs
