#include "obs/span.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace laser::obs {

SpanCollector::SpanCollector()
    : origin_(std::chrono::steady_clock::now())
{
    if (std::getenv("LASER_TRACE_EVENTS") ||
            std::getenv("LASER_METRICS_OUT"))
        enable();
}

SpanCollector &
SpanCollector::global()
{
    // laser-lint: allow(raw-new-delete) — leaked singleton (spans may
    // fire during static teardown)
    static SpanCollector *g = new SpanCollector();
    return *g;
}

double
SpanCollector::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
}

void
SpanCollector::append(TraceEvent event)
{
    util::MutexLock lock(&mu_);
    events_.push_back(std::move(event));
}

std::vector<TraceEvent>
SpanCollector::events() const
{
    util::MutexLock lock(&mu_);
    return events_;
}

std::size_t
SpanCollector::eventCount() const
{
    util::MutexLock lock(&mu_);
    return events_.size();
}

void
SpanCollector::clear()
{
    util::MutexLock lock(&mu_);
    events_.clear();
}

namespace {

void
appendJsonNumber(std::string *out, double d)
{
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, d);
    out->append(buf, r.ptr);
}

} // namespace

std::string
SpanCollector::toTraceEventJson() const
{
    const std::vector<TraceEvent> snapshot = events();
    std::string out = "[\n";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const TraceEvent &e = snapshot[i];
        out += R"({"name":")";
        // Span names are instrumentation literals (no escapes needed);
        // escape the quote/backslash anyway so the output stays valid
        // JSON for any name.
        for (char c : e.name) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        out += R"(","ph":"X","pid":1,"tid":)";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        appendJsonNumber(&out, e.tsUs);
        out += ",\"dur\":";
        appendJsonNumber(&out, e.durUs);
        out += "}";
        if (i + 1 < snapshot.size())
            out += ",";
        out += "\n";
    }
    out += "]\n";
    return out;
}

bool
SpanCollector::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::string json = toTraceEventJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

Span::Span(const char *name) : name_(name)
{
    // Snapshot the enabled state once: a toggle mid-span should not
    // produce a half-recorded event. The process kill switch
    // (obs::setEnabled(false) / LASER_OBS=0) is the master: it beats
    // collector enablement, so an obs-disabled run records nothing.
    armed_ = enabled();
    if (armed_)
        start_ = std::chrono::steady_clock::now();
}

Span::~Span()
{
    if (!armed_)
        return;
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start_).count();

    Registry::global()
        .histogram(std::string("span.") + name_)
        .record(seconds);

    SpanCollector &collector = SpanCollector::global();
    if (collector.enabled()) {
        TraceEvent event;
        event.name = name_;
        event.tid = threadIndex();
        event.durUs = seconds * 1e6;
        event.tsUs = collector.nowUs() - event.durUs;
        collector.append(std::move(event));
    }
}

} // namespace laser::obs
