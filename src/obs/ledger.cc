#include "obs/ledger.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/resource.h>
#include <unistd.h>

#include "util/fd.h"
#include "util/stats.h"

extern char **environ; // hashed into RunContext::configHash

namespace laser::obs {

namespace {

std::uint64_t
fnv1a(std::uint64_t h, const char *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * LASER_* variables that name telemetry *destinations* rather than
 * affecting what a run computes; excluded from the config hash so runs
 * recorded from different ledger/metrics paths still compare as the
 * same configuration.
 */
bool
isTelemetryDestination(const char *env)
{
    static const char *const kPrefixes[] = {
        "LASER_LEDGER=",
        "LASER_METRICS_OUT=",
        "LASER_TRACE_EVENTS=",
    };
    for (const char *prefix : kPrefixes)
        if (std::strncmp(env, prefix, std::strlen(prefix)) == 0)
            return true;
    return false;
}

} // namespace

std::string
ledgerPath()
{
    const char *path = std::getenv("LASER_LEDGER");
    return path ? path : "";
}

RunContext
currentRunContext()
{
    RunContext ctx;

    const char *sha = std::getenv("LASER_GIT_SHA");
    if (!sha || !*sha)
        sha = std::getenv("GITHUB_SHA");
    ctx.gitSha = (sha && *sha) ? sha : "unknown";

    char host[256] = {};
    if (gethostname(host, sizeof host - 1) == 0 && host[0] != '\0')
        ctx.hostname = host;
    else
        ctx.hostname = "unknown";

    // Configuration fingerprint: FNV-1a over the sorted LASER_*
    // environment (minus telemetry destinations), so two runs hash
    // equal exactly when every behavior-affecting knob matches.
    std::vector<std::string> vars;
    for (char **env = environ; env && *env; ++env)
        if (std::strncmp(*env, "LASER_", 6) == 0 &&
            !isTelemetryDestination(*env))
            vars.emplace_back(*env);
    std::sort(vars.begin(), vars.end());
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::string &v : vars) {
        h = fnv1a(h, v.data(), v.size());
        h = fnv1a(h, "\n", 1);
    }
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(h));
    ctx.configHash = hex;

    ctx.unixTime = static_cast<std::int64_t>(std::time(nullptr));
    return ctx;
}

double
processCpuSeconds()
{
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    const auto seconds = [](const timeval &tv) {
        return static_cast<double>(tv.tv_sec) +
               1e-6 * static_cast<double>(tv.tv_usec);
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

bool
appendLedgerRecord(const std::string &path, const Json &record)
{
    const std::string line = record.dump(0) + "\n";

    util::UniqueFd fd(::open(path.c_str(),
                             O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                             0644));
    if (!fd.valid())
        return false;

    // O_APPEND alone does not guarantee a multi-kilobyte write lands as
    // one atomic unit; the advisory lock serializes whole lines across
    // concurrent appenders. Lock failure (e.g. an exotic filesystem)
    // degrades to the plain O_APPEND best effort.
    const bool locked = ::flock(fd.get(), LOCK_EX) == 0;

    const char *p = line.data();
    std::size_t left = line.size();
    bool ok = true;
    while (left > 0) {
        const ssize_t n = ::write(fd.get(), p, left);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ok = false;
            break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }

    if (locked)
        ::flock(fd.get(), LOCK_UN);
    return ok;
}

LedgerReadResult
readLedger(const std::string &path)
{
    LedgerReadResult result;
    std::ifstream in(path);
    if (!in) {
        result.error = "cannot open " + path;
        return result;
    }
    result.ok = true;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Json record;
        if (Json::parse(line, &record))
            result.records.push_back(std::move(record));
        else
            ++result.corruptLines; // torn write / foreign line: skip
    }
    return result;
}

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

GateResult
evaluateGate(std::vector<double> baseline, double candidate,
             const GateConfig &cfg)
{
    GateResult result;
    result.candidate = candidate;
    if (baseline.empty())
        return result; // nothing to compare against: vacuous pass

    if (cfg.window > 0 && baseline.size() > cfg.window)
        baseline.erase(baseline.begin(),
                       baseline.end() -
                           static_cast<std::ptrdiff_t>(cfg.window));
    result.baselineRuns = baseline.size();
    result.baselineMedian = median(baseline);
    result.baselineIqr =
        quantile(baseline, 0.75) - quantile(baseline, 0.25);

    const double tolerance =
        std::max({cfg.iqrMult * result.baselineIqr,
                  cfg.relFloor * result.baselineMedian, cfg.absFloor});
    result.threshold = result.baselineMedian + tolerance;
    result.regressed = candidate > result.threshold;
    return result;
}

std::vector<std::pair<std::string, double>>
gatedMetrics(const Json &record)
{
    std::vector<std::pair<std::string, double>> out;
    if (const Json *wall = record.find("wall_seconds");
        wall && wall->isNumber())
        out.emplace_back("wall_seconds", wall->asNumber());
    if (const Json *run = record.find("run"); run && run->isObject())
        if (const Json *cpu = run->find("cpu_seconds");
            cpu && cpu->isNumber())
            out.emplace_back("cpu_seconds", cpu->asNumber());
    if (const Json *results = record.find("results");
        results && results->isObject()) {
        for (const auto &[name, value] : results->members()) {
            if (!value.isNumber())
                continue;
            static const std::string kSuffix = "_seconds";
            if (name.size() > kSuffix.size() &&
                name.compare(name.size() - kSuffix.size(),
                             kSuffix.size(), kSuffix) == 0)
                out.emplace_back("results." + name, value.asNumber());
        }
    }
    return out;
}

} // namespace laser::obs
