/**
 * @file
 * Persistent bench-run ledger plus the noise-aware regression gate that
 * reads it.
 *
 * LASER_LEDGER=<file> makes every BenchReport::write() append one
 * compact JSONL line — the full schema-v2 BENCH document (see
 * obs/export.h and EXPERIMENTS.md) — to <file>, independently of
 * LASER_METRICS_OUT. Concurrent appenders (sharded sweeps, parallel CI
 * steps) serialize whole lines through an advisory flock, so a ledger
 * is always a sequence of parseable records; readers skip (and count)
 * any line that still fails to parse rather than aborting the whole
 * history.
 *
 * The gate (evaluateGate) compares a candidate run against the median
 * of up to GateConfig::window prior runs, with a tolerance derived from
 * the baseline's interquartile range instead of a naked percentage:
 *
 *   regressed  iff  candidate > median + max(iqrMult * IQR,
 *                                            relFloor * median,
 *                                            absFloor)
 *
 * The IQR term scales the tolerance with the metric's actually observed
 * run-to-run noise; the relative and absolute floors keep sub-second
 * metrics (whose IQR on a quiet machine is ~0) from tripping on
 * scheduler jitter. tools/laser_report drives this over a ledger and
 * exits nonzero on any regression, which is what CI gates on.
 */

#ifndef LASER_OBS_LEDGER_H
#define LASER_OBS_LEDGER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace laser::obs {

/** $LASER_LEDGER, or "" when the run ledger is off. */
std::string ledgerPath();

/** Identity of one run, stamped into every schema-v2 record. */
struct RunContext
{
    std::string gitSha;     ///< $LASER_GIT_SHA / $GITHUB_SHA / "unknown"
    std::string configHash; ///< 16-hex FNV-1a over the LASER_* environment
    std::string hostname;   ///< gethostname(), "unknown" on failure
    std::int64_t unixTime = 0; ///< seconds since the epoch
};

/** Best-effort context for the current process and environment. */
RunContext currentRunContext();

/** Cumulative process CPU seconds, user + system (getrusage). */
double processCpuSeconds();

/**
 * Append @p record to @p path as one compact JSONL line
 * (O_APPEND + flock, single write). Returns false on I/O failure;
 * never throws.
 */
[[nodiscard]] bool appendLedgerRecord(const std::string &path,
                                      const Json &record);

struct LedgerReadResult
{
    bool ok = false;    ///< the file could be opened
    std::string error;  ///< failure reason when !ok
    /** Parsed records in file (= chronological append) order. */
    std::vector<Json> records;
    /** Non-empty lines skipped because they failed to parse. */
    std::size_t corruptLines = 0;
};

/** Read every record of the JSONL ledger at @p path. */
LedgerReadResult readLedger(const std::string &path);

// ---------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------

/** Gate parameters (defaults documented in EXPERIMENTS.md). */
struct GateConfig
{
    double iqrMult = 3.0;   ///< baseline-IQR multiples tolerated
    double relFloor = 0.35; ///< tolerance floor as a fraction of median
    double absFloor = 0.05; ///< absolute tolerance floor (seconds)
    std::size_t window = 8; ///< most recent baseline runs considered
};

/** Verdict for one metric of one bench. */
struct GateResult
{
    std::size_t baselineRuns = 0; ///< samples actually used
    double baselineMedian = 0.0;
    double baselineIqr = 0.0;
    double threshold = 0.0; ///< candidate values above this regress
    double candidate = 0.0;
    bool regressed = false;
};

/**
 * Evaluate the gate for @p candidate against @p baseline (chronological;
 * only the trailing GateConfig::window samples are used). An empty
 * baseline passes vacuously.
 */
GateResult evaluateGate(std::vector<double> baseline, double candidate,
                        const GateConfig &cfg = {});

/**
 * The lower-is-better duration metrics gated in a ledger record:
 * "wall_seconds", "cpu_seconds" (from the run context) and every
 * numeric results.* member whose name ends in "_seconds", as
 * (metric name, value) pairs in record order.
 */
std::vector<std::pair<std::string, double>> gatedMetrics(const Json &record);

} // namespace laser::obs

#endif // LASER_OBS_LEDGER_H
