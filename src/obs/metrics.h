/**
 * @file
 * Process-wide metrics registry: counters, gauges and log-scale
 * histograms with lock-free per-thread-sharded hot paths.
 *
 * Increment cost is one relaxed fetch_add on a cache-line-padded slot
 * owned (with overwhelming probability) by the calling thread alone, so
 * instrumenting the digest/replay hot paths — one counter bump per PEBS
 * record — stays uncontended no matter how many shard pipelines run
 * concurrently. Slots are merged only on snapshot().
 *
 * Handles returned by Registry::counter()/gauge()/histogram() are
 * stable for the registry's lifetime; instrumentation sites cache them
 * in function-local statics:
 *
 *     static obs::Counter &c =
 *         obs::Registry::global().counter("detect.records_ingested");
 *     c.inc();
 *
 * A process-wide kill switch (obs::setEnabled(false), or the
 * LASER_OBS=0 environment variable read on first use) turns every
 * recording call into a single predictable-branch early return — the
 * baseline the bench_obs_overhead harness measures instrumentation
 * against.
 */

#ifndef LASER_OBS_METRICS_H
#define LASER_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "util/mutex.h"

namespace laser::obs {

/** Process-wide recording switch (default on; LASER_OBS=0 disables). */
bool enabled();
void setEnabled(bool on);

/** Small dense thread index, assigned on first use per thread. */
unsigned threadIndex();

namespace detail {

/** Slots used for striping; thread i writes slot i % kSlots. */
inline constexpr unsigned kSlots = 16;

struct alignas(64) PaddedU64
{
    std::atomic<std::uint64_t> v{0};
};

inline unsigned
slotIndex()
{
    return threadIndex() % kSlots;
}

} // namespace detail

/** Monotonic counter; inc() is wait-free on the caller's slot. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        slots_[detail::slotIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over all slots (snapshot-consistency only per slot). */
    std::uint64_t value() const;

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::array<detail::PaddedU64, detail::kSlots> slots_;
};

/** Last-write-wins double value with atomic add (queue depths etc.). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        if (enabled())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * Log-scale histogram over positive doubles: 4 sub-buckets per power of
 * two covering [2^-32, 2^32) plus underflow/overflow buckets, so
 * percentile estimates carry at most ~9% relative bucket error across
 * 19 decimal orders of magnitude — one layout serves nanosecond span
 * timings and multi-billion cycle epochs alike. record() touches only
 * the caller's slot (relaxed atomics, no locks).
 */
class Histogram
{
  public:
    static constexpr int kSubBuckets = 4;
    static constexpr int kMinExp = -32; ///< values below 2^-32 underflow
    static constexpr int kMaxExp = 32;  ///< values >= 2^32 overflow
    static constexpr int kBuckets =
        (kMaxExp - kMinExp) * kSubBuckets + 2;

    void record(double value);

    /** Bucket index for @p value (non-positive values underflow). */
    static int bucketOf(double value);
    /** Upper bound of bucket @p b (inclusive representative range). */
    static double bucketUpperBound(int b);

    const std::string &name() const { return name_; }

    struct Data
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0; ///< exact observed minimum (0 when empty)
        double max = 0.0; ///< exact observed maximum (0 when empty)
        /** Non-empty buckets: (upper bound, count), ascending. */
        std::vector<std::pair<double, std::uint64_t>> buckets;

        /**
         * Percentile estimate for @p p in [0, 1]: geometric midpoint of
         * the bucket holding the rank, clamped to [min, max].
         */
        double percentile(double p) const;
        double mean() const { return count ? sum / double(count) : 0.0; }

        /**
         * Fold @p other into this histogram: bucket counts with equal
         * upper bounds add, the rest merge-join in ascending order.
         * Both sides share the bucketUpperBound() grid (or round-trip
         * through it via Snapshot::fromJson), so bounds compare exactly.
         */
        void merge(const Data &other);
    };

    /** Merge all slots into one Data (no locks; relaxed reads). */
    Data data() const;

  private:
    friend class Registry;
    explicit Histogram(std::string name);

    struct alignas(64) Slot
    {
        std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> min{0.0};
        std::atomic<double> max{0.0};
    };

    std::string name_;
    std::array<Slot, detail::kSlots> slots_;
};

/** Point-in-time merged view of a registry. */
struct Snapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Data>> histograms;

    /** {"counters":{...},"gauges":{...},"histograms":{...}} */
    Json toJson() const;

    /**
     * Prometheus text exposition: metric names are prefixed "laser_"
     * and dots become underscores; histograms emit cumulative _bucket
     * series plus _sum and _count.
     */
    std::string toPrometheus() const;

    /**
     * Fold @p other into this snapshot: counters sum, gauges are
     * last-write-wins (the pushed value replaces ours), histograms
     * merge bucket-wise (Histogram::Data::merge). Output stays
     * name-sorted, so merging an empty snapshot is an identity — the
     * property that keeps the live /metrics endpoint byte-identical to
     * the offline exporter until something is actually pushed.
     */
    void merge(const Snapshot &other);

    /**
     * Rebuild a snapshot from toJson() output (the inverse transform;
     * bucket upper bounds saturated to DBL_MAX by toJson turn back into
     * +Inf). Returns false when @p doc is not a snapshot document.
     */
    static bool fromJson(const Json &doc, Snapshot *out);
};

/**
 * Escape a Prometheus label value per the text exposition format:
 * backslash, double quote and newline become \\, \" and \n.
 */
std::string promEscapeLabel(std::string_view value);

/**
 * Named-metric owner. Metric creation takes a lock; returned references
 * stay valid for the registry's lifetime. Most code uses the process
 * global(); tests may construct private registries.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    Snapshot snapshot() const;

  private:
    mutable util::Mutex mu_;
    /**
     * Name -> metric. The maps are guarded (creation and snapshot take
     * the lock); the metric objects themselves are lock-free — their
     * striped relaxed-atomic slots are the whole point — so the
     * references handed out stay valid and writable without mu_.
     */
    std::map<std::string, std::unique_ptr<Counter>> counters_
        GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        GUARDED_BY(mu_);
};

} // namespace laser::obs

#endif // LASER_OBS_METRICS_H
