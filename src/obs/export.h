/**
 * @file
 * Telemetry export: registry snapshots, Prometheus text dumps, span
 * traces and per-bench machine-readable reports, all keyed off one
 * environment switch.
 *
 * LASER_METRICS_OUT=<dir> makes every tool and bench drop artifacts
 * into <dir> (created on demand):
 *
 *   METRICS_<name>.json  registry snapshot (counters/gauges/histograms)
 *   METRICS_<name>.prom  the same snapshot as Prometheus text
 *   TRACE_<name>.json    Chrome trace-event spans (when any were
 *                        collected; LASER_TRACE_EVENTS=<file> overrides
 *                        the path)
 *   BENCH_<name>.json    bench telemetry (BenchReport below)
 *
 * The BENCH schema (validated by tools/bench_schema_check, documented
 * in EXPERIMENTS.md):
 *
 *   {
 *     "schema_version": 2,
 *     "bench": "<name>",
 *     "wall_seconds": <number >= 0>,
 *     "run": {"git_sha": "...", "config_hash": "...",    // v2: run
 *             "hostname": "...", "unix_time": N,         // context
 *             "cpu_seconds": <number >= 0>},             // (obs/ledger.h)
 *     "sweep": {"machine_runs": N, "memory_cache_hits": N,
 *               "disk_cache_hits": N},          // all integers >= 0
 *     "results": { ... bench-specific scalars/arrays ... },
 *     "artifacts": { ... resolved artifact paths ... },  // v2, optional
 *     "metrics": { registry snapshot }
 *   }
 *
 * Independently of LASER_METRICS_OUT, LASER_LEDGER=<file> makes write()
 * append the same document as one JSONL line to the persistent run
 * ledger (obs/ledger.h), which tools/laser_report mines for perf
 * trajectories and regression gating.
 *
 * With neither variable in the environment the whole layer is inert:
 * write() returns false and touches no files.
 */

#ifndef LASER_OBS_EXPORT_H
#define LASER_OBS_EXPORT_H

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace laser::obs {

/** Current BENCH_*.json schema version. */
inline constexpr int kBenchSchemaVersion = 2;

/** $LASER_METRICS_OUT, or "" when telemetry is off. */
std::string metricsDir();

/**
 * Write METRICS_<name>.json/.prom (and the span trace, if any events
 * were collected) for @p reg into the metrics dir. No-op returning
 * false when LASER_METRICS_OUT is unset; best-effort on I/O errors.
 */
bool exportProcessMetrics(const std::string &name,
                          const Registry &reg = Registry::global());

/**
 * Machine-readable record of one bench invocation. Construct at the
 * top of main() (wall time starts here), fill results() with the
 * numbers the human table prints, then write() at the end:
 *
 *     obs::BenchReport report("fig09_threshold_sweep");
 *     ...
 *     report.results().set("replay_speedup", obs::Json(speedup));
 *     report.setSweep(runs, memHits, diskHits);
 *     report.write();
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);

    const std::string &name() const { return name_; }

    /** Mutable bench-specific section of the report. */
    Json &results() { return results_; }

    /** Cache/execution counters (core::SweepStats, field by field). */
    void setSweep(std::uint64_t machine_runs,
                  std::uint64_t memory_cache_hits,
                  std::uint64_t disk_cache_hits);

    /**
     * Write BENCH_<name>.json plus the METRICS_/TRACE_ artifacts, and
     * append the same document to the run ledger when LASER_LEDGER is
     * set. Returns true when the bench file was written (false when
     * LASER_METRICS_OUT is unset or on I/O error; a ledger-only
     * configuration still appends its record).
     */
    bool write(const Registry &reg = Registry::global());

    /** Path write() targets ("" when telemetry is disabled). */
    std::string path() const;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    Json results_ = Json::object();
    bool haveSweep_ = false;
    std::uint64_t machineRuns_ = 0;
    std::uint64_t memoryCacheHits_ = 0;
    std::uint64_t diskCacheHits_ = 0;
};

} // namespace laser::obs

#endif // LASER_OBS_EXPORT_H
