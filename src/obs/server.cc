#include "obs/server.h"

#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "obs/json.h"

namespace laser::obs {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;
constexpr const char *kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char *kTextContentType = "text/plain; charset=utf-8";
constexpr const char *kJsonContentType = "application/json";

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    default: return "Internal Server Error";
    }
}

std::string
serializeResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      statusText(resp.status) + "\r\n";
    out += "Content-Type: ";
    out += resp.contentType.empty() ? kTextContentType
                                    : resp.contentType.c_str();
    out += "\r\nContent-Length: " + std::to_string(resp.body.size()) +
           "\r\nConnection: close\r\n\r\n";
    out += resp.body;
    return out;
}

bool
sendAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

void
setIoTimeouts(int fd, int seconds)
{
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/** Case-insensitive header lookup in a \r\n-joined header block. */
bool
findHeaderValue(const std::string &headers, const std::string &name,
                std::string *value)
{
    std::size_t pos = 0;
    while (pos < headers.size()) {
        std::size_t eol = headers.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = headers.size();
        const std::string line = headers.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos && colon == name.size()) {
            bool match = true;
            for (std::size_t i = 0; i < name.size(); ++i)
                if (std::tolower(static_cast<unsigned char>(line[i])) !=
                    std::tolower(static_cast<unsigned char>(name[i]))) {
                    match = false;
                    break;
                }
            if (match) {
                std::size_t start = colon + 1;
                while (start < line.size() && line[start] == ' ')
                    ++start;
                *value = line.substr(start);
                return true;
            }
        }
        pos = eol + 2;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// StatsServer
// ---------------------------------------------------------------------

StatsServer::StatsServer() : StatsServer(Config()) {}

StatsServer::StatsServer(Config cfg) : cfg_(std::move(cfg)) {}

StatsServer::~StatsServer()
{
    stop();
}

bool
StatsServer::start(std::string *err)
{
    if (running_.load()) {
        if (err)
            *err = "already running";
        return false;
    }

    util::UniqueFd fd(
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::inet_pton(AF_INET, cfg_.bindAddr.c_str(), &addr.sin_addr) !=
        1) {
        if (err)
            *err = "bad bind address: " + cfg_.bindAddr;
        return false;
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (err)
            *err = std::string("bind: ") + std::strerror(errno);
        return false;
    }
    if (::listen(fd.get(), 128) != 0) {
        if (err)
            *err = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);

    listen_ = std::move(fd);
    pool_ = std::make_unique<util::ThreadPool>(
        cfg_.threads > 0 ? cfg_.threads : 8);
    acceptor_ = std::thread([this] { acceptLoop(); });
    running_.store(true);
    return true;
}

void
StatsServer::stop()
{
    if (!running_.load())
        return;
    running_.store(false);
    // Unblocks the acceptor's accept() (returns EINVAL on Linux); the
    // fd itself stays open until the acceptor has joined, so the loop
    // never races a reused descriptor number.
    ::shutdown(listen_.get(), SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    listen_.reset();
    pool_.reset(); // drains queued handlers, joins the workers
}

void
StatsServer::acceptLoop()
{
    static Counter &accepted =
        Registry::global().counter("statsd.connections_accepted");
    for (;;) {
        const int conn =
            ::accept4(listen_.get(), nullptr, nullptr, SOCK_CLOEXEC);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            return; // socket shut down by stop(), or fatal
        }
        if (!running_.load()) {
            util::UniqueFd reject(conn);
            return;
        }
        accepted.inc();
        pool_->post([this, conn] { handleConnection(conn); });
    }
}

void
StatsServer::handleConnection(int rawFd)
{
    util::UniqueFd fd(rawFd);
    setIoTimeouts(fd.get(), 10);

    std::string buf;
    std::size_t headerEnd = std::string::npos;
    char chunk[4096];
    while (buf.size() < kMaxHeaderBytes) {
        const ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return; // client went away / timed out
        buf.append(chunk, static_cast<std::size_t>(n));
        headerEnd = buf.find("\r\n\r\n");
        if (headerEnd != std::string::npos)
            break;
    }
    if (headerEnd == std::string::npos) {
        const std::string resp = serializeResponse(
            {400, kTextContentType, "malformed request\n"});
        sendAll(fd.get(), resp.data(), resp.size());
        return;
    }

    // Request line: METHOD SP PATH SP VERSION.
    const std::string headers = buf.substr(0, headerEnd);
    const std::size_t lineEnd = headers.find("\r\n");
    const std::string requestLine =
        headers.substr(0, lineEnd == std::string::npos ? headers.size()
                                                       : lineEnd);
    const std::size_t sp1 = requestLine.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : requestLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        const std::string resp = serializeResponse(
            {400, kTextContentType, "malformed request line\n"});
        sendAll(fd.get(), resp.data(), resp.size());
        return;
    }
    const std::string method = requestLine.substr(0, sp1);
    const std::string path = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);

    std::size_t bodyLen = 0;
    std::string lenValue;
    if (findHeaderValue(headers, "Content-Length", &lenValue))
        bodyLen = static_cast<std::size_t>(
            std::strtoull(lenValue.c_str(), nullptr, 10));
    if (bodyLen > kMaxBodyBytes) {
        const std::string resp = serializeResponse(
            {413, kTextContentType, "body too large\n"});
        sendAll(fd.get(), resp.data(), resp.size());
        return;
    }
    std::string body = buf.substr(headerEnd + 4);
    while (body.size() < bodyLen) {
        const ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
        body.append(chunk, static_cast<std::size_t>(n));
    }
    body.resize(bodyLen);

    const std::string resp =
        serializeResponse(route(method, path, body));
    sendAll(fd.get(), resp.data(), resp.size());
}

HttpResponse
StatsServer::route(const std::string &method, const std::string &path,
                   const std::string &body)
{
    static Counter &requests =
        Registry::global().counter("statsd.requests");
    static Counter &badRequests =
        Registry::global().counter("statsd.bad_requests");
    requests.inc();

    if (method == "GET" && path == "/healthz")
        return {200, kTextContentType, "ok\n"};
    if (method == "GET" && path == "/metrics")
        return {200, kPromContentType, mergedSnapshot().toPrometheus()};
    if (method == "GET" && path == "/snapshot.json")
        return {200, kJsonContentType,
                mergedSnapshot().toJson().dump(2) + "\n"};
    if (path == "/push") {
        if (method != "POST")
            return {405, kTextContentType, "use POST\n"};
        Json doc;
        std::string err;
        if (!Json::parse(body, &doc, &err)) {
            badRequests.inc();
            return {400, kTextContentType, "invalid JSON: " + err + "\n"};
        }
        // Accept a bare snapshot document or anything wrapping one
        // under "metrics" (e.g. a whole BENCH_*.json).
        const Json *snapDoc =
            doc.find("metrics") ? doc.find("metrics") : &doc;
        Snapshot snap;
        if (!Snapshot::fromJson(*snapDoc, &snap)) {
            badRequests.inc();
            return {400, kTextContentType,
                    "body is not a metrics snapshot\n"};
        }
        std::uint64_t total = 0;
        {
            util::MutexLock lock(&mu_);
            pushed_.merge(snap);
            total = ++pushCount_;
        }
        Json ack = Json::object();
        ack.set("merged", Json(true));
        ack.set("pushes", Json(total));
        return {200, kJsonContentType, ack.dump(0) + "\n"};
    }
    return {404, kTextContentType, "not found\n"};
}

Snapshot
StatsServer::mergedSnapshot() const
{
    Snapshot snap =
        (cfg_.registry ? *cfg_.registry : Registry::global()).snapshot();
    util::MutexLock lock(&mu_);
    snap.merge(pushed_);
    return snap;
}

std::uint64_t
StatsServer::pushCount() const
{
    util::MutexLock lock(&mu_);
    return pushCount_;
}

// ---------------------------------------------------------------------
// HTTP client
// ---------------------------------------------------------------------

bool
httpRequest(const std::string &host, int port, const std::string &method,
            const std::string &path, const std::string &body,
            HttpResponse *out, std::string *err)
{
    util::UniqueFd fd(
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    setIoTimeouts(fd.get(), 10);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad address: " + host;
        return false;
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err)
            *err = std::string("connect: ") + std::strerror(errno);
        return false;
    }

    std::string request = method + " " + path + " HTTP/1.1\r\nHost: " +
                          host + "\r\nContent-Length: " +
                          std::to_string(body.size()) +
                          "\r\nConnection: close\r\n\r\n" + body;
    if (!sendAll(fd.get(), request.data(), request.size())) {
        if (err)
            *err = std::string("send: ") + std::strerror(errno);
        return false;
    }

    std::string resp;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd.get(), chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            if (err)
                *err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (n == 0)
            break; // server closed: response complete
        resp.append(chunk, static_cast<std::size_t>(n));
    }

    const std::size_t headerEnd = resp.find("\r\n\r\n");
    if (resp.compare(0, 9, "HTTP/1.1 ") != 0 ||
        headerEnd == std::string::npos) {
        if (err)
            *err = "malformed response";
        return false;
    }
    out->status = std::atoi(resp.c_str() + 9);
    const std::string headers = resp.substr(0, headerEnd);
    std::string contentType;
    if (findHeaderValue(headers, "Content-Type", &contentType))
        out->contentType = contentType;
    out->body = resp.substr(headerEnd + 4);
    if (err)
        err->clear();
    return true;
}

} // namespace laser::obs
