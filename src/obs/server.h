/**
 * @file
 * Live metrics service: a small HTTP/1.1 loop over a metrics Registry,
 * the observability half of the ROADMAP's distributed trace farm
 * ("a thin server loop in tools/" — tools/laser_statsd wraps this).
 *
 * Endpoints:
 *   GET  /metrics        Prometheus text — byte-identical to the
 *                        offline exporter (Snapshot::toPrometheus)
 *   GET  /snapshot.json  merged snapshot as JSON
 *   GET  /healthz        liveness probe ("ok")
 *   POST /push           merge a snapshot document (a METRICS_*.json
 *                        body, or a full BENCH_*.json whose "metrics"
 *                        member is used) into the served view:
 *                        counters sum, gauges last-write-wins,
 *                        histograms merge bucket-wise — how concurrent
 *                        sweep clients aggregate into one scrape target
 *
 * Concurrency: one acceptor thread; each accepted connection is
 * post()ed onto a util::ThreadPool, so Config::threads connections are
 * served in parallel and the pushed-state mutation is the only locked
 * section (annotated util::Mutex, checked by LASER_THREAD_SAFETY and
 * exercised under TSan in CI).
 */

#ifndef LASER_OBS_SERVER_H
#define LASER_OBS_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/fd.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace laser::obs {

/** One parsed HTTP response (client side) or reply (server side). */
struct HttpResponse
{
    int status = 0;
    std::string contentType;
    std::string body;
};

/**
 * Minimal blocking HTTP/1.1 client for the endpoints above (tests,
 * laser_statsd push/get). Connects to @p host:@p port, sends one
 * request, reads to connection close. Returns false (with @p err set
 * when given) on connect/transport errors; HTTP-level failures return
 * true with the status in @p out.
 */
bool httpRequest(const std::string &host, int port,
                 const std::string &method, const std::string &path,
                 const std::string &body, HttpResponse *out,
                 std::string *err = nullptr);

class StatsServer
{
  public:
    struct Config
    {
        std::string bindAddr = "127.0.0.1";
        int port = 0;    ///< 0 binds an ephemeral port (see port())
        int threads = 8; ///< connection-handler pool width
        /** Registry served; nullptr = the process Registry::global(). */
        Registry *registry = nullptr;
    };

    StatsServer(); ///< all-default Config
    explicit StatsServer(Config cfg);
    ~StatsServer(); ///< stop()s if still running

    StatsServer(const StatsServer &) = delete;
    StatsServer &operator=(const StatsServer &) = delete;

    /** Bind + listen + spawn the acceptor; false (err set) on failure. */
    bool start(std::string *err = nullptr);

    /** Unblock the acceptor, drain in-flight handlers, join. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** Port actually bound (resolves Config::port == 0). */
    int port() const { return port_; }

    /** The served view: live registry snapshot merged with all pushes. */
    Snapshot mergedSnapshot() const;

    /** Snapshots merged via /push so far. */
    std::uint64_t pushCount() const;

  private:
    void acceptLoop();
    void handleConnection(int rawFd);
    HttpResponse route(const std::string &method, const std::string &path,
                       const std::string &body);

    Config cfg_;
    int port_ = 0;
    std::atomic<bool> running_{false};
    /**
     * Listening socket: written by start()/stop() only; the acceptor
     * thread reads it between those points. stop() shuts the socket
     * down (unblocking accept) and joins the acceptor before closing,
     * so the fd value never changes under a concurrent reader.
     */
    util::UniqueFd listen_;
    std::thread acceptor_;
    std::unique_ptr<util::ThreadPool> pool_;

    mutable util::Mutex mu_;
    Snapshot pushed_ GUARDED_BY(mu_); ///< accumulated /push state
    std::uint64_t pushCount_ GUARDED_BY(mu_) = 0;
};

} // namespace laser::obs

#endif // LASER_OBS_SERVER_H
