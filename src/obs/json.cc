#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace laser::obs {

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json &
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(v));
    return *this;
}

Json &
Json::set(std::string key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
    return *this;
}

const Json *
Json::find(std::string_view key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

double
Json::asNumber(double fallback) const
{
    return type_ == Type::Number ? num_ : fallback;
}

bool
Json::asBool(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

namespace {

void
appendEscaped(std::string *out, const std::string &s)
{
    out->push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\r': *out += "\\r"; break;
        case '\t': *out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

void
appendNumber(std::string *out, double d)
{
    if (!std::isfinite(d)) {
        *out += "null"; // JSON has no Inf/NaN
        return;
    }
    // Exact-integer values print without an exponent or fraction so
    // counters stay greppable; everything else is shortest round-trip.
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        const auto r = std::to_chars(buf, buf + sizeof buf,
                                     static_cast<std::int64_t>(d));
        out->append(buf, r.ptr);
        return;
    }
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, d);
    out->append(buf, r.ptr);
}

void
appendIndent(std::string *out, int indent, int depth)
{
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string *out, int indent, int depth) const
{
    switch (type_) {
    case Type::Null: *out += "null"; return;
    case Type::Bool: *out += bool_ ? "true" : "false"; return;
    case Type::Number: appendNumber(out, num_); return;
    case Type::String: appendEscaped(out, str_); return;
    case Type::Array: {
        if (items_.empty()) {
            *out += "[]";
            return;
        }
        out->push_back('[');
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out->push_back(',');
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendIndent(out, indent, depth);
        out->push_back(']');
        return;
    }
    case Type::Object: {
        if (members_.empty()) {
            *out += "{}";
            return;
        }
        out->push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out->push_back(',');
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            appendEscaped(out, members_[i].first);
            out->push_back(':');
            if (indent > 0)
                out->push_back(' ');
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendIndent(out, indent, depth);
        out->push_back('}');
        return;
    }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(&out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser: recursive descent over the string view.
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string err;

    bool fail(const std::string &what)
    {
        err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool parseString(std::string *out)
    {
        skipWs();
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not produced by our dumper; pass them through raw).
                if (code < 0x80) {
                    out->push_back(char(code));
                } else if (code < 0x800) {
                    out->push_back(char(0xC0 | (code >> 6)));
                    out->push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out->push_back(char(0xE0 | (code >> 12)));
                    out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out->push_back(char(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseValue(Json *out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            *out = Json::object();
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                if (!parseString(&key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parseValue(&v))
                    return false;
                out->set(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            *out = Json::array();
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                Json v;
                if (!parseValue(&v))
                    return false;
                out->push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            *out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            *out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            *out = Json();
            return true;
        }
        // Number.
        double d = 0.0;
        const auto r = std::from_chars(text.data() + pos,
                                       text.data() + text.size(), d);
        if (r.ec != std::errc())
            return fail("bad value");
        pos = static_cast<std::size_t>(r.ptr - text.data());
        *out = Json(d);
        return true;
    }
};

} // namespace

bool
Json::parse(std::string_view text, Json *out, std::string *err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace laser::obs
