/**
 * @file
 * Scoped span tracing: RAII timers over the sweep/replay phases with a
 * Chrome trace-event-format exporter.
 *
 *     void digestShard() {
 *         LASER_SPAN("replay.shard");
 *         ...
 *     }
 *
 * Every span feeds a "span.<name>" log-scale histogram in the global
 * metrics registry (duration in seconds), so phase timings show up in
 * plain snapshots; the process kill switch (obs::setEnabled(false) /
 * LASER_OBS=0) disarms spans entirely. When event *collection* is
 * additionally enabled — via
 * SpanCollector::global().enable() or automatically when the
 * LASER_TRACE_EVENTS or LASER_METRICS_OUT environment variable is set —
 * each span additionally appends a complete ("ph":"X") trace event;
 * writeFile() emits the buffer as one JSON array with one event per
 * line (line-oriented yet valid JSON), loadable directly in
 * chrome://tracing or Perfetto for flame-graph inspection of a sweep.
 *
 * Span begin/end pairs on one thread are strictly nested (they are
 * scopes), which is exactly the invariant the trace viewers assume.
 */

#ifndef LASER_OBS_SPAN_H
#define LASER_OBS_SPAN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace laser::obs {

/** One completed span, timestamps in microseconds since first use. */
struct TraceEvent
{
    std::string name;
    std::uint32_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
};

class SpanCollector
{
  public:
    /**
     * The process collector. First access arms collection when
     * LASER_TRACE_EVENTS or LASER_METRICS_OUT is set in the
     * environment.
     */
    static SpanCollector &global();

    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void append(TraceEvent event);
    std::vector<TraceEvent> events() const;
    std::size_t eventCount() const;
    void clear();

    /** The whole buffer in Chrome trace-event JSON (array format). */
    std::string toTraceEventJson() const;

    /** Write toTraceEventJson() to @p path; false on I/O error. */
    bool writeFile(const std::string &path) const;

    /** Microseconds since the collector's time origin. */
    double nowUs() const;

  private:
    SpanCollector();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point origin_;
    mutable util::Mutex mu_;
    std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

/**
 * RAII span. @p name must outlive the span (string literals only);
 * construction/destruction cost is two clock reads plus one histogram
 * record, and additionally one buffer append when collection is on.
 */
class Span
{
  public:
    explicit Span(const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    bool armed_ = false;
    std::chrono::steady_clock::time_point start_;
};

#define LASER_SPAN_CONCAT2(a, b) a##b
#define LASER_SPAN_CONCAT(a, b) LASER_SPAN_CONCAT2(a, b)
/** Time the enclosing scope as a span named @p name_literal. */
#define LASER_SPAN(name_literal)                                         \
    ::laser::obs::Span LASER_SPAN_CONCAT(laser_span_,                    \
                                         __LINE__)(name_literal)

} // namespace laser::obs

#endif // LASER_OBS_SPAN_H
