#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/ledger.h"
#include "obs/span.h"

namespace laser::obs {

namespace {

bool
writeFileAtomicEnough(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
}

/** Ensure the metrics dir exists; "" when telemetry is off. */
std::string
preparedMetricsDir()
{
    const std::string dir = metricsDir();
    if (dir.empty())
        return dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // An uncreatable directory degrades to failed writes below.
    return dir;
}

/** Resolved span-trace path (LASER_TRACE_EVENTS overrides the dir). */
std::string
traceEventPath(const std::string &dir, const std::string &name)
{
    const char *override_path = std::getenv("LASER_TRACE_EVENTS");
    return override_path ? override_path
                         : dir + "/TRACE_" + name + ".json";
}

} // namespace

std::string
metricsDir()
{
    const char *dir = std::getenv("LASER_METRICS_OUT");
    return dir ? dir : "";
}

bool
exportProcessMetrics(const std::string &name, const Registry &reg)
{
    const std::string dir = preparedMetricsDir();
    if (dir.empty())
        return false;

    const Snapshot snap = reg.snapshot();
    bool ok = writeFileAtomicEnough(dir + "/METRICS_" + name + ".json",
                                    snap.toJson().dump(2) + "\n");
    ok &= writeFileAtomicEnough(dir + "/METRICS_" + name + ".prom",
                                snap.toPrometheus());

    const SpanCollector &spans = SpanCollector::global();
    if (spans.eventCount() > 0)
        ok &= spans.writeFile(traceEventPath(dir, name));
    return ok;
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
    // Arm span collection for the whole bench run even if the collector
    // was created before the environment was inspected (tests).
    if (!metricsDir().empty())
        SpanCollector::global().enable();
}

void
BenchReport::setSweep(std::uint64_t machine_runs,
                      std::uint64_t memory_cache_hits,
                      std::uint64_t disk_cache_hits)
{
    haveSweep_ = true;
    machineRuns_ = machine_runs;
    memoryCacheHits_ = memory_cache_hits;
    diskCacheHits_ = disk_cache_hits;
}

std::string
BenchReport::path() const
{
    const std::string dir = metricsDir();
    if (dir.empty())
        return "";
    return dir + "/BENCH_" + name_ + ".json";
}

bool
BenchReport::write(const Registry &reg)
{
    const std::string dir = preparedMetricsDir();
    const std::string ledger = ledgerPath();
    if (dir.empty() && ledger.empty())
        return false;

    Json root = Json::object();
    root.set("schema_version", Json(kBenchSchemaVersion));
    root.set("bench", Json(name_));
    root.set("wall_seconds",
             Json(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count()));
    const RunContext ctx = currentRunContext();
    Json run = Json::object();
    run.set("git_sha", Json(ctx.gitSha));
    run.set("config_hash", Json(ctx.configHash));
    run.set("hostname", Json(ctx.hostname));
    run.set("unix_time", Json(ctx.unixTime));
    run.set("cpu_seconds", Json(processCpuSeconds()));
    root.set("run", std::move(run));
    Json sweep = Json::object();
    sweep.set("machine_runs", Json(machineRuns_));
    sweep.set("memory_cache_hits", Json(memoryCacheHits_));
    sweep.set("disk_cache_hits", Json(diskCacheHits_));
    root.set("sweep", std::move(sweep));
    root.set("results", results_);
    if (!dir.empty()) {
        Json artifacts = Json::object();
        artifacts.set("bench_json", Json(path()));
        artifacts.set("metrics_json",
                      Json(dir + "/METRICS_" + name_ + ".json"));
        artifacts.set("metrics_prom",
                      Json(dir + "/METRICS_" + name_ + ".prom"));
        if (SpanCollector::global().eventCount() > 0)
            artifacts.set("trace_json",
                          Json(traceEventPath(dir, name_)));
        root.set("artifacts", std::move(artifacts));
    }
    root.set("metrics", reg.snapshot().toJson());

    // Run ledger first: it must record the invocation even when the
    // per-run artifact directory is off or unwritable.
    if (!ledger.empty() && !appendLedgerRecord(ledger, root))
        std::fprintf(stderr, "obs: ledger append to %s failed: %s\n",
                     ledger.c_str(), name_.c_str());

    if (dir.empty())
        return false;
    const bool ok =
        writeFileAtomicEnough(path(), root.dump(2) + "\n");
    exportProcessMetrics(name_, reg);
    return ok;
}

} // namespace laser::obs
