/**
 * @file
 * Control-flow graph over the application segment of a program.
 *
 * LASERREPAIR's static analysis (Section 5.3, Figure 7) needs basic
 * blocks, successor/predecessor edges, loop nesting depth (to place
 * flushes outside loops and to estimate dynamic store counts) and
 * post-dominators (flush operations must post-dominate the modified
 * blocks). Calls and indirect jumps are opaque at assembly level; blocks
 * containing them are flagged so the analysis can refuse regions it
 * cannot reason about precisely — exactly why the paper's lu_ncb is
 * detected but not auto-repaired (Section 7.4.2).
 */

#ifndef LASER_REPAIR_CFG_H
#define LASER_REPAIR_CFG_H

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace laser::repair {

/** One basic block: instructions [first, last], both inclusive. */
struct BasicBlock
{
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::vector<int> succs;
    std::vector<int> preds;
    /** Loop nesting depth (0 = not in any natural loop). */
    int loopDepth = 0;
    bool hasCall = false;
    bool hasIndirect = false; ///< JmpReg/Ret inside (tail of) the block
    bool hasFence = false;    ///< explicit fence or atomic op
    bool isExit = false;      ///< ends in Halt or an indirect jump

    /** Number of store-set instructions in the block (set lazily). */
    int storeOps = 0;
    /** Number of load-set instructions in the block. */
    int loadOps = 0;
};

/** CFG over one (application) segment. */
class Cfg
{
  public:
    Cfg(const isa::Program &prog, const isa::Segment &segment);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block containing instruction @p index; -1 if outside the segment. */
    int blockOf(std::uint32_t index) const;

    /** Ids of exit blocks (no static successors). */
    const std::vector<int> &exits() const { return exits_; }

    const isa::Segment &segment() const { return segment_; }

    /**
     * Immediate post-dominator of each block; -1 means the virtual exit
     * is the immediate post-dominator (or the block is unreachable).
     */
    const std::vector<int> &ipdom() const { return ipdom_; }

    /** True if block @p a post-dominates block @p b (a == b counts). */
    bool postDominates(int a, int b) const;

    /**
     * Nearest common post-dominator of a set of blocks; -1 if only the
     * virtual exit post-dominates them all.
     */
    int commonPostDominator(const std::vector<int> &ids) const;

  private:
    void buildBlocks(const isa::Program &prog);
    void buildEdges(const isa::Program &prog);
    void computeLoopDepths();
    void computePostDominators();

    isa::Segment segment_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockIndex_; ///< insn offset in segment -> block id
    std::vector<int> exits_;
    std::vector<int> ipdom_;
    /** pdomSets_[b][a] == true iff a post-dominates b. */
    std::vector<std::vector<bool>> pdomSets_;
};

} // namespace laser::repair

#endif // LASER_REPAIR_CFG_H
