#include "repair/repairer.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace laser::repair {

using isa::Instruction;
using isa::Op;

Repairer::Repairer(const isa::Program &prog, RepairConfig cfg)
    : prog_(prog), config_(cfg), cfg_(prog, prog.segments.front())
{
}

RepairPlan
Repairer::analyze(const std::vector<std::uint32_t> &pcs) const
{
    RepairPlan plan;
    const auto &blocks = cfg_.blocks();

    // 1. Contending blocks within the application segment.
    std::set<int> marked_set;
    for (std::uint32_t pc : pcs) {
        const int b = cfg_.blockOf(pc);
        if (b >= 0)
            marked_set.insert(b);
    }
    if (marked_set.empty()) {
        plan.reason = "no contending PCs in analyzable application code";
        return plan;
    }
    std::vector<int> marked(marked_set.begin(), marked_set.end());

    int min_depth = blocks[marked[0]].loopDepth;
    for (int m : marked)
        min_depth = std::min(min_depth, blocks[m].loopDepth);

    // 2. Flush point: nearest common post-dominator, hoisted out of the
    //    loops containing the contending blocks.
    int flush = cfg_.commonPostDominator(marked);
    while (flush != -1 && min_depth > 0 &&
           blocks[flush].loopDepth >= min_depth) {
        flush = cfg_.ipdom()[flush];
    }
    if (flush == -1) {
        plan.reason = "no single flush point post-dominates the "
                      "contending blocks";
        return plan;
    }

    // 3. Region: reachable from contending blocks without passing the
    //    flush block.
    std::set<int> region(marked.begin(), marked.end());
    std::vector<int> work(marked.begin(), marked.end());
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        for (int s : blocks[b].succs) {
            if (s != flush && region.insert(s).second)
                work.push_back(s);
        }
    }

    // 4a. Refuse opaque control flow (calls / indirect jumps) — the
    //     lu_ncb "sophisticated code structure" case.
    for (int b : region) {
        if (blocks[b].hasCall || blocks[b].hasIndirect) {
            plan.reason = "opaque control flow (call/indirect) in the "
                          "contending region";
            return plan;
        }
    }

    // 4b. Cost model: estimated dynamic stores per flush.
    auto weight = [&](int depth) {
        const int d = std::min(depth, config_.loopDepthCap);
        return std::pow(double(config_.tripCountEstimate), double(d));
    };
    double est_stores = 0.0;
    double est_flushes = weight(blocks[flush].loopDepth);
    for (int b : region) {
        est_stores += double(blocks[b].storeOps) *
                      weight(blocks[b].loopDepth);
        // Fences inside the region force a flush each time they run.
        for (std::uint32_t i = blocks[b].first; i <= blocks[b].last; ++i) {
            if (isa::opIsFence(prog_.code[i].op))
                est_flushes += weight(blocks[b].loopDepth);
        }
    }
    plan.estStores = est_stores;
    plan.estFlushes = est_flushes;
    if (plan.estRatio() < config_.minStoreFlushRatio) {
        plan.reason = "estimated store:flush ratio " +
                      std::to_string(plan.estRatio()) +
                      " below profitability threshold";
        return plan;
    }

    // 4c. SSB working-set check: more distinct static store targets
    //     than the buffer can coalesce means pre-emptive flushing on
    //     nearly every store, which cannot profit.
    std::set<std::pair<std::uint8_t, std::int64_t>> store_targets;
    for (int b : region) {
        for (std::uint32_t i = blocks[b].first; i <= blocks[b].last; ++i) {
            const Instruction &insn = prog_.code[i];
            if (insn.op == Op::Store || insn.op == Op::AddMem)
                store_targets.insert({insn.src1, insn.imm});
        }
    }
    if (store_targets.size() > 16) {
        plan.reason = "store working set (" +
                      std::to_string(store_targets.size()) +
                      " static targets) exceeds SSB capacity";
        return plan;
    }

    // 5. Collect memory ops; speculative alias analysis for loads.
    std::set<std::uint8_t> store_bases;
    for (int b : region) {
        for (std::uint32_t i = blocks[b].first; i <= blocks[b].last; ++i) {
            const Instruction &insn = prog_.code[i];
            if (insn.op == Op::Store || insn.op == Op::AddMem ||
                    isa::opIsAtomic(insn.op)) {
                store_bases.insert(insn.src1);
            }
        }
    }
    for (int b : region) {
        for (std::uint32_t i = blocks[b].first; i <= blocks[b].last; ++i) {
            const Instruction &insn = prog_.code[i];
            if (insn.op == Op::Store || insn.op == Op::AddMem) {
                plan.instrumentedOps.push_back(i);
            } else if (insn.op == Op::Load) {
                if (config_.aliasSpeculation &&
                        !store_bases.count(insn.src1)) {
                    plan.skippedLoads.push_back(i);
                } else {
                    plan.instrumentedOps.push_back(i);
                }
            }
        }
    }

    plan.regionBlocks.assign(region.begin(), region.end());
    plan.flushInsertBefore = blocks[flush].first;
    plan.applied = true;
    plan.reason = "ok";
    return plan;
}

isa::Program
Repairer::instrument(const RepairPlan &plan,
                     std::vector<std::uint32_t> *out_index_map) const
{
    // Insertions keyed by the old instruction index they precede.
    struct Insertion
    {
        std::uint32_t before;
        Instruction insn;
    };
    std::vector<Insertion> insertions;

    {
        Instruction flush;
        flush.op = Op::SsbFlush;
        flush.file = prog_.code[plan.flushInsertBefore].file;
        flush.line = prog_.code[plan.flushInsertBefore].line;
        insertions.push_back({plan.flushInsertBefore, flush});
    }
    for (std::uint32_t load : plan.skippedLoads) {
        const Instruction &l = prog_.code[load];
        Instruction check;
        check.op = Op::AliasCheck;
        check.src1 = l.src1;
        check.imm = l.imm;
        check.file = l.file;
        check.line = l.line;
        insertions.push_back({load, check});
    }
    std::stable_sort(insertions.begin(), insertions.end(),
                     [](const Insertion &a, const Insertion &b) {
                         return a.before < b.before;
                     });

    isa::Program out;
    out.name = prog_.name;
    out.files = prog_.files;
    const std::size_t n = prog_.code.size();

    // slot_start[i]: new index where control arriving at old i lands
    // (i.e. the first insertion at that slot, if any).
    std::vector<std::uint32_t> slot_start(n + 1, 0);
    std::vector<std::uint32_t> new_index(n, 0);

    std::size_t ins_cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        slot_start[i] = static_cast<std::uint32_t>(out.code.size());
        while (ins_cursor < insertions.size() &&
               insertions[ins_cursor].before == i) {
            out.code.push_back(insertions[ins_cursor].insn);
            ++ins_cursor;
        }
        new_index[i] = static_cast<std::uint32_t>(out.code.size());
        out.code.push_back(prog_.code[i]);
    }
    slot_start[n] = static_cast<std::uint32_t>(out.code.size());

    // Apply SSB flags.
    for (std::uint32_t i : plan.instrumentedOps)
        out.code[new_index[i]].useSsb = true;
    for (std::uint32_t i : plan.skippedLoads) {
        out.code[new_index[i]].useSsb = true;
        out.code[new_index[i]].ssbSkip = true;
    }

    // Relocate branch targets: control transfers land at the slot start
    // so inserted flushes/checks on the target block execute.
    for (Instruction &insn : out.code) {
        if (insn.target >= 0)
            insn.target = static_cast<std::int32_t>(
                slot_start[static_cast<std::size_t>(insn.target)]);
    }

    // Relocate segments.
    for (const isa::Segment &seg : prog_.segments) {
        isa::Segment s = seg;
        s.begin = slot_start[seg.begin];
        s.end = slot_start[seg.end];
        out.segments.push_back(s);
    }

    if (out_index_map)
        *out_index_map = new_index;
    return out;
}

RepairOutcome
repairProgram(const isa::Program &prog,
              const std::vector<std::uint32_t> &pcs, RepairConfig cfg)
{
    Repairer repairer(prog, cfg);
    RepairOutcome outcome;
    outcome.plan = repairer.analyze(pcs);
    if (outcome.plan.applied)
        outcome.program = repairer.instrument(outcome.plan);
    else
        outcome.program = prog;
    return outcome;
}

} // namespace laser::repair
