/**
 * @file
 * LASERREPAIR: static analysis + binary rewriting for online false
 * sharing repair (Section 5).
 *
 * Given the contending PCs reported by LASERDETECT, the repairer:
 *
 *  1. locates the basic blocks containing contending instructions;
 *  2. chooses a flush point that post-dominates them with lower loop
 *     depth (so flushes run at loop exits, not per iteration — Fig. 7);
 *  3. computes the region of blocks reachable from the contending blocks
 *     without passing the flush, whose memory operations must all use
 *     the SSB to preserve single-threaded semantics and TSO
 *     (Sections 5.2 / 5.4: once a store is buffered, subsequent
 *     operations up to the flush must be buffered too);
 *  4. refuses regions it cannot analyze precisely (opaque calls or
 *     indirect jumps — the lu_ncb case) and regions whose estimated
 *     store:flush ratio is too low to profit (fences inside small
 *     critical sections represent fundamental contention LASERREPAIR
 *     cannot repair);
 *  5. runs a simplified speculative alias analysis (Section 5.3): loads
 *     whose base register is never used by any buffered store skip the
 *     SSB lookup, guarded by a runtime alias check that flushes on
 *     mis-speculation (a thread-local decision, so TSO is preserved);
 *  6. rewrites the program: marks region memory ops as SSB users,
 *     inserts the flush, and inserts alias checks.
 */

#ifndef LASER_REPAIR_REPAIRER_H
#define LASER_REPAIR_REPAIRER_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"
#include "repair/cfg.h"

namespace laser::repair {

/** Repair policy knobs. */
struct RepairConfig
{
    /** Minimum estimated stores per flush for repair to be profitable. */
    double minStoreFlushRatio = 8.0;
    /** Static trip-count estimate per loop nesting level. */
    int tripCountEstimate = 64;
    /** Cap on the loop-depth exponent in the static estimate. */
    int loopDepthCap = 3;
    /** Enable the speculative alias analysis for loads. */
    bool aliasSpeculation = true;
};

/** Result of the static analysis over one set of contending PCs. */
struct RepairPlan
{
    bool applied = false;
    /** Human-readable acceptance/rejection reason. */
    std::string reason;
    std::vector<int> regionBlocks;
    /** Instruction indices whose memory ops will use the SSB. */
    std::vector<std::uint32_t> instrumentedOps;
    /** Loads proven (speculatively) non-aliasing: skip + alias check. */
    std::vector<std::uint32_t> skippedLoads;
    /** Instruction index the flush is inserted before. */
    std::uint32_t flushInsertBefore = 0;
    double estStores = 0.0;
    double estFlushes = 0.0;

    double
    estRatio() const
    {
        return estFlushes > 0.0 ? estStores / estFlushes : 0.0;
    }
};

/** Analyzer + rewriter bound to one program. */
class Repairer
{
  public:
    explicit Repairer(const isa::Program &prog, RepairConfig cfg = {});

    /** Static analysis for the given contending instruction indices. */
    RepairPlan analyze(const std::vector<std::uint32_t> &pcs) const;

    /**
     * Rewrite the program per an applied plan. @p out_index_map (if
     * non-null) receives old-instruction-index -> new-index.
     */
    isa::Program instrument(const RepairPlan &plan,
                            std::vector<std::uint32_t> *out_index_map =
                                nullptr) const;

    const Cfg &cfg() const { return cfg_; }

  private:
    const isa::Program &prog_;
    RepairConfig config_;
    Cfg cfg_;
};

/** Convenience: analyze and, if profitable, instrument in one call. */
struct RepairOutcome
{
    RepairPlan plan;
    isa::Program program; ///< rewritten iff plan.applied, else original
};

RepairOutcome repairProgram(const isa::Program &prog,
                            const std::vector<std::uint32_t> &pcs,
                            RepairConfig cfg = {});

} // namespace laser::repair

#endif // LASER_REPAIR_REPAIRER_H
