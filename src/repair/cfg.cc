#include "repair/cfg.h"

#include <algorithm>
#include <set>

namespace laser::repair {

using isa::Op;

Cfg::Cfg(const isa::Program &prog, const isa::Segment &segment)
    : segment_(segment)
{
    buildBlocks(prog);
    buildEdges(prog);
    computeLoopDepths();
    computePostDominators();
}

int
Cfg::blockOf(std::uint32_t index) const
{
    if (index < segment_.begin || index >= segment_.end)
        return -1;
    return blockIndex_[index - segment_.begin];
}

void
Cfg::buildBlocks(const isa::Program &prog)
{
    const std::uint32_t begin = segment_.begin;
    const std::uint32_t end = segment_.end;
    std::set<std::uint32_t> leaders;
    leaders.insert(begin);

    for (std::uint32_t i = begin; i < end; ++i) {
        const isa::Instruction &insn = prog.code[i];
        const bool ends_block =
            isa::opIsBranch(insn.op) || insn.op == Op::Halt;
        if (!ends_block)
            continue;
        if (insn.target >= 0) {
            const auto target = static_cast<std::uint32_t>(insn.target);
            if (target >= begin && target < end)
                leaders.insert(target);
        }
        if (i + 1 < end)
            leaders.insert(i + 1);
    }

    blocks_.clear();
    blockIndex_.assign(end - begin, -1);
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        BasicBlock bb;
        bb.first = *it;
        bb.last = (next == leaders.end() ? end : *next) - 1;
        const int id = static_cast<int>(blocks_.size());
        for (std::uint32_t i = bb.first; i <= bb.last; ++i)
            blockIndex_[i - begin] = id;
        blocks_.push_back(bb);
    }

    // Per-block facts.
    for (BasicBlock &bb : blocks_) {
        for (std::uint32_t i = bb.first; i <= bb.last; ++i) {
            const isa::Instruction &insn = prog.code[i];
            if (isa::opIsFence(insn.op))
                bb.hasFence = true;
            if (insn.op == Op::Call)
                bb.hasCall = true;
            if (insn.op == Op::JmpReg || insn.op == Op::Ret)
                bb.hasIndirect = true;
            if (isa::opWritesMemory(insn.op))
                ++bb.storeOps;
            if (isa::opReadsMemory(insn.op))
                ++bb.loadOps;
        }
    }
}

void
Cfg::buildEdges(const isa::Program &prog)
{
    const std::uint32_t end = segment_.end;
    for (int id = 0; id < static_cast<int>(blocks_.size()); ++id) {
        BasicBlock &bb = blocks_[id];
        const isa::Instruction &last = prog.code[bb.last];
        auto add_edge = [&](int to) {
            if (to < 0)
                return;
            bb.succs.push_back(to);
            blocks_[to].preds.push_back(id);
        };
        auto target_block = [&]() {
            return last.target >= 0
                       ? blockOf(static_cast<std::uint32_t>(last.target))
                       : -1;
        };
        const int fallthrough =
            bb.last + 1 < end ? blockOf(bb.last + 1) : -1;

        switch (last.op) {
          case Op::Jmp:
            add_edge(target_block());
            break;
          case Op::Beq:
          case Op::Bne:
          case Op::Blt:
          case Op::Bge:
            add_edge(target_block());
            if (fallthrough != target_block())
                add_edge(fallthrough);
            break;
          case Op::Call:
            // The callee is opaque; control returns to the fallthrough.
            add_edge(fallthrough);
            break;
          case Op::Halt:
          case Op::JmpReg:
          case Op::Ret:
            bb.isExit = true;
            break;
          default:
            add_edge(fallthrough);
            break;
        }
        if (bb.succs.empty())
            bb.isExit = true;
        if (bb.isExit)
            exits_.push_back(id);
    }
}

void
Cfg::computeLoopDepths()
{
    // Iterative DFS from the entry block to find back edges; each back
    // edge u->v defines a natural loop {v} + nodes reaching u without
    // passing v.
    const int n = static_cast<int>(blocks_.size());
    if (n == 0)
        return;

    std::vector<int> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<int, std::size_t>> stack;
    std::vector<std::pair<int, int>> back_edges;

    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[node, edge] = stack.back();
        if (edge < blocks_[node].succs.size()) {
            const int succ = blocks_[node].succs[edge++];
            if (state[succ] == 0) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            } else if (state[succ] == 1) {
                back_edges.emplace_back(node, succ);
            }
        } else {
            state[node] = 2;
            stack.pop_back();
        }
    }

    for (const auto &[tail, header] : back_edges) {
        // Reverse reachability from tail, not crossing header.
        std::vector<bool> in_loop(n, false);
        in_loop[header] = true;
        std::vector<int> work;
        if (!in_loop[tail]) {
            in_loop[tail] = true;
            work.push_back(tail);
        }
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            for (int pred : blocks_[b].preds) {
                if (!in_loop[pred]) {
                    in_loop[pred] = true;
                    work.push_back(pred);
                }
            }
        }
        for (int b = 0; b < n; ++b) {
            if (in_loop[b])
                ++blocks_[b].loopDepth;
        }
    }
}

void
Cfg::computePostDominators()
{
    // Set-based iterative post-dominance over the CFG + a virtual exit.
    const int n = static_cast<int>(blocks_.size());
    ipdom_.assign(n, -1);
    if (n == 0)
        return;

    // pdom[b] as a bool matrix; virtual exit is implicit (every block's
    // paths end there).
    pdomSets_.assign(n, std::vector<bool>(n, true));
    for (int b = 0; b < n; ++b) {
        if (blocks_[b].isExit) {
            std::fill(pdomSets_[b].begin(), pdomSets_[b].end(), false);
            pdomSets_[b][b] = true;
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; --b) {
            if (blocks_[b].isExit)
                continue;
            std::vector<bool> next(n, true);
            if (blocks_[b].succs.empty()) {
                std::fill(next.begin(), next.end(), false);
            } else {
                for (int s : blocks_[b].succs) {
                    for (int x = 0; x < n; ++x)
                        next[x] = next[x] && pdomSets_[s][x];
                }
            }
            next[b] = true;
            if (next != pdomSets_[b]) {
                pdomSets_[b] = std::move(next);
                changed = true;
            }
        }
    }

    // Immediate post-dominator: the strict post-dominator that is
    // post-dominated by every other strict post-dominator.
    for (int b = 0; b < n; ++b) {
        int best = -1;
        for (int c = 0; c < n; ++c) {
            if (c == b || !pdomSets_[b][c])
                continue;
            bool nearest = true;
            for (int d = 0; d < n; ++d) {
                if (d == b || d == c || !pdomSets_[b][d])
                    continue;
                if (!pdomSets_[c][d]) {
                    nearest = false;
                    break;
                }
            }
            if (nearest) {
                best = c;
                break;
            }
        }
        ipdom_[b] = best;
    }
}

bool
Cfg::postDominates(int a, int b) const
{
    if (a < 0 || b < 0)
        return false;
    return pdomSets_[b][a];
}

int
Cfg::commonPostDominator(const std::vector<int> &ids) const
{
    const int n = static_cast<int>(blocks_.size());
    if (ids.empty())
        return -1;
    std::vector<int> candidates;
    for (int c = 0; c < n; ++c) {
        bool ok = true;
        for (int m : ids) {
            if (c == m || !postDominates(c, m)) {
                ok = false;
                break;
            }
        }
        if (ok)
            candidates.push_back(c);
    }
    // Nearest: post-dominated by all other candidates.
    for (int c : candidates) {
        bool nearest = true;
        for (int d : candidates) {
            if (d != c && !postDominates(d, c)) {
                nearest = false;
                break;
            }
        }
        if (nearest)
            return c;
    }
    return -1;
}

} // namespace laser::repair
