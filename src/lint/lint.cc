#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace laser::lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

struct Token
{
    std::string text;
    int line = 0;
    bool ident = false;
};

/** One preprocessor logical line: "#name arg ..." */
struct Directive
{
    int line = 0;
    std::string name;
    std::string arg;
};

struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Directive> directives;
    /** Line -> rules suppressed on that line (see header comment). */
    std::map<int, std::set<std::string>> allows;
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse "laser-lint: allow(rule-a, rule-b)" out of a comment. */
std::set<std::string>
parseAllowComment(const std::string &comment)
{
    std::set<std::string> rules;
    const std::string marker = "laser-lint:";
    std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return rules;
    at = comment.find("allow(", at + marker.size());
    if (at == std::string::npos)
        return rules;
    const std::size_t open = at + 5; // index of '('
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return rules;
    std::string name;
    for (std::size_t i = open + 1; i <= close; ++i) {
        const char c = i < close ? comment[i] : ',';
        if (c == ',' ) {
            if (!name.empty())
                rules.insert(name);
            name.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            name.push_back(c);
        }
    }
    return rules;
}

/**
 * Tokenize C++ source: comments and literals are consumed (comments
 * feed the suppression map), preprocessor logical lines land in
 * `directives`, everything else becomes identifier / punctuation
 * tokens. "::" and "->" are single tokens; other punctuation is one
 * character per token.
 */
LexedFile
lex(const std::string &s)
{
    LexedFile out;
    std::set<std::string> pending; // allows waiting for the next code line
    const std::size_t n = s.size();
    std::size_t i = 0;
    int line = 1;
    bool lineHasToken = false;

    const auto peek = [&](std::size_t k) {
        return i + k < n ? s[i + k] : '\0';
    };
    const auto emit = [&](std::string text, bool ident) {
        if (!pending.empty()) {
            out.allows[line].insert(pending.begin(), pending.end());
            pending.clear();
        }
        out.tokens.push_back({std::move(text), line, ident});
        lineHasToken = true;
    };
    const auto noteAllows = [&](const std::string &comment, int at,
                                bool trailing) {
        const std::set<std::string> rules = parseAllowComment(comment);
        if (rules.empty())
            return;
        out.allows[at].insert(rules.begin(), rules.end());
        if (!trailing)
            pending.insert(rules.begin(), rules.end());
    };
    // Consume a quoted literal starting at s[i] (the opening quote).
    const auto skipQuoted = [&](char quote) {
        ++i; // opening quote
        while (i < n) {
            if (s[i] == '\\' && i + 1 < n) {
                i += 2;
                continue;
            }
            if (s[i] == '\n')
                ++line; // unterminated literal; keep line counts sane
            if (s[i] == quote) {
                ++i;
                return;
            }
            ++i;
        }
    };

    while (i < n) {
        const char c = s[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineHasToken = false;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            std::size_t end = s.find('\n', i);
            if (end == std::string::npos)
                end = n;
            noteAllows(s.substr(i, end - i), line, lineHasToken);
            i = end;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const bool trailing = lineHasToken;
            std::size_t j = i + 2;
            int commentLine = line;
            std::string text;
            while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
                if (s[j] == '\n') {
                    noteAllows(text, commentLine, trailing);
                    text.clear();
                    ++commentLine;
                } else {
                    text.push_back(s[j]);
                }
                ++j;
            }
            noteAllows(text, commentLine, trailing);
            line = commentLine;
            i = j + 1 < n ? j + 2 : n;
            continue;
        }
        if (c == '#' && !lineHasToken) {
            // Preprocessor logical line (with \-continuations).
            const int startLine = line;
            std::string text;
            while (i < n && s[i] != '\n') {
                if (s[i] == '\\' && peek(1) == '\n') {
                    ++line;
                    i += 2;
                    text.push_back(' ');
                    continue;
                }
                // A // comment ends the directive's interesting part.
                if (s[i] == '/' && peek(1) == '/')
                    break;
                text.push_back(s[i]);
                ++i;
            }
            while (i < n && s[i] != '\n')
                ++i;
            std::istringstream in(text.substr(1)); // past '#'
            Directive d;
            d.line = startLine;
            in >> d.name >> d.arg;
            out.directives.push_back(std::move(d));
            continue;
        }
        if (c == '"') {
            skipQuoted('"');
            continue;
        }
        if (c == '\'') {
            skipQuoted('\'');
            continue;
        }
        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(s[j]))
                ++j;
            std::string word = s.substr(i, j - i);
            i = j;
            // String-literal prefixes: R"( raw strings (span.cc uses
            // them), u8/u/U/L prefixes, and their raw combinations.
            if (i < n && s[i] == '"') {
                const bool raw = !word.empty() && word.back() == 'R';
                const std::string stem =
                    raw ? word.substr(0, word.size() - 1) : word;
                const bool prefix = stem.empty() || stem == "u8" ||
                                    stem == "u" || stem == "U" ||
                                    stem == "L";
                if (prefix && raw) {
                    // R"delim( ... )delim"
                    ++i; // opening quote
                    std::string delim;
                    while (i < n && s[i] != '(')
                        delim.push_back(s[i++]);
                    const std::string close = ")" + delim + "\"";
                    const std::size_t end = s.find(close, i);
                    const std::size_t stop =
                        end == std::string::npos ? n : end + close.size();
                    for (std::size_t k = i; k < stop && k < n; ++k)
                        if (s[k] == '\n')
                            ++line;
                    i = stop;
                    continue;
                }
                if (prefix && !stem.empty()) {
                    skipQuoted('"');
                    continue;
                }
            }
            emit(std::move(word), true);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n &&
                   (identChar(s[j]) || s[j] == '.' ||
                    (s[j] == '\'' && j + 1 < n && identChar(s[j + 1]))))
                ++j;
            i = j;
            // Number values never matter to the rules; drop them.
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            emit("::", false);
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            emit("->", false);
            i += 2;
            continue;
        }
        emit(std::string(1, c), false);
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const char *kUncheckedStatus = "unchecked-status";
const char *kNodiscardStatus = "nodiscard-status";
const char *kRawMutex = "raw-mutex";
const char *kRawNewDelete = "raw-new-delete";
const char *kIncludeGuard = "include-guard";
const char *kHeaderHygiene = "header-hygiene";
const char *kRawFdClose = "raw-fd-close";

bool
isHeader(const std::string &path)
{
    return path.size() >= 2 &&
           path.compare(path.size() - 2, 2, ".h") == 0;
}

/** Status-bearing return types whose values must never be dropped. */
bool
isStatusType(const std::string &text)
{
    return text == "TraceStatus" || text == "MigrateFileResult";
}

/**
 * Collect the names of functions declared to return a status type:
 * the pattern `<StatusType> <identifier> (` outside type definitions
 * and qualified (out-of-line) definitions.
 */
void
collectStatusFns(const LexedFile &f, std::set<std::string> *fns)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!t[i].ident || !isStatusType(t[i].text))
            continue;
        if (i > 0 && (t[i - 1].text == "class" ||
                      t[i - 1].text == "struct" ||
                      t[i - 1].text == "enum" || t[i - 1].text == "::" ||
                      t[i - 1].text == "." || t[i - 1].text == "->"))
            continue;
        if (!t[i + 1].ident || t[i + 2].text != "(")
            continue;
        fns->insert(t[i + 1].text);
    }
}

/** Keywords that can open a statement but never start a call chain. */
bool
isStatementKeyword(const std::string &w)
{
    static const std::set<std::string> kw = {
        "if",     "while",    "for",       "switch",  "return",
        "throw",  "case",     "goto",      "using",   "namespace",
        "break",  "continue", "default",   "public",  "private",
        "protected", "template", "typename", "operator", "catch",
        "try",    "new",      "delete",    "sizeof",  "alignof",
        "static_assert", "typedef", "co_return", "co_await",
        "co_yield", "else", "do", "struct", "class", "enum", "union",
        "static", "const", "constexpr", "inline", "extern", "friend",
        "virtual", "explicit", "auto", "void",
    };
    return kw.count(w) > 0;
}

void
checkUncheckedStatus(const std::string &path, const LexedFile &f,
                     const std::set<std::string> &statusFns,
                     std::vector<Finding> *out)
{
    const std::vector<Token> &t = f.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (!t[i].ident || isStatementKeyword(t[i].text))
            continue;
        if (i > 0) {
            const std::string &prev = t[i - 1].text;
            const bool start = prev == ";" || prev == "{" ||
                               prev == "}" || prev == ")" ||
                               prev == "else" || prev == "do";
            if (!start)
                continue;
        }
        // Walk the call chain: id ((:: | . | ->) id)* (
        std::size_t j = i;
        std::string callee = t[i].text;
        while (j + 2 < n && (t[j + 1].text == "::" ||
                             t[j + 1].text == "." ||
                             t[j + 1].text == "->") &&
               t[j + 2].ident) {
            j += 2;
            callee = t[j].text;
        }
        if (j + 1 >= n || t[j + 1].text != "(")
            continue;
        if (!statusFns.count(callee))
            continue;
        // Find the matching ')' and require an immediate ';' — i.e. the
        // whole statement is just this call, its result dropped.
        int depth = 0;
        std::size_t k = j + 1;
        for (; k < n; ++k) {
            if (t[k].text == "(")
                ++depth;
            else if (t[k].text == ")" && --depth == 0)
                break;
        }
        if (k + 1 < n && t[k + 1].text == ";")
            out->push_back(
                {path, t[j].line, kUncheckedStatus,
                 "result of status-returning call '" + callee +
                     "' is silently dropped; propagate it, branch on "
                     "it, or log-and-discard with a suppression"});
    }
}

void
checkNodiscardStatus(const std::string &path, const LexedFile &f,
                     std::vector<Finding> *out)
{
    if (!isHeader(path))
        return;
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!t[i].ident || !isStatusType(t[i].text))
            continue;
        if (i > 0 && (t[i - 1].text == "class" ||
                      t[i - 1].text == "struct" ||
                      t[i - 1].text == "enum" || t[i - 1].text == "::" ||
                      t[i - 1].text == "." || t[i - 1].text == "->"))
            continue;
        if (!t[i + 1].ident || t[i + 2].text != "(")
            continue;
        // Scan the declaration-specifier prefix for [[nodiscard]].
        bool found = false;
        static const std::set<std::string> prefix = {
            "[",      "]",         "virtual", "static",
            "inline", "constexpr", "explicit", "friend",
            "nodiscard", "maybe_unused",
        };
        for (std::size_t j = i; j-- > 0;) {
            if (t[j].text == "nodiscard") {
                found = true;
                break;
            }
            if (!prefix.count(t[j].text))
                break;
        }
        if (!found)
            out->push_back(
                {path, t[i].line, kNodiscardStatus,
                 "declaration of '" + t[i + 1].text + "' returns " +
                     t[i].text + " without [[nodiscard]]"});
    }
}

void
checkRawMutex(const std::string &path, const LexedFile &f,
              std::vector<Finding> *out)
{
    static const std::set<std::string> banned = {
        "mutex",          "timed_mutex",
        "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex",   "shared_timed_mutex",
        "condition_variable", "condition_variable_any",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
    };
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].text == "std" && t[i + 1].text == "::" &&
                banned.count(t[i + 2].text))
            out->push_back(
                {path, t[i].line, kRawMutex,
                 "raw std::" + t[i + 2].text +
                     " is invisible to -Wthread-safety; use "
                     "util::Mutex / util::MutexLock / util::CondVar "
                     "(util/mutex.h)"});
    }
}

void
checkRawNewDelete(const std::string &path, const LexedFile &f,
                  std::vector<Finding> *out)
{
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident)
            continue;
        const bool isNew = t[i].text == "new";
        const bool isDelete = t[i].text == "delete";
        if (!isNew && !isDelete)
            continue;
        if (i > 0 && t[i - 1].text == "operator")
            continue; // operator new/delete declaration
        if (isDelete && i > 0 && t[i - 1].text == "=")
            continue; // deleted special member
        out->push_back(
            {path, t[i].line, kRawNewDelete,
             std::string("raw '") + (isNew ? "new" : "delete") +
                 "' expression; use containers or smart pointers"});
    }
}

/** Directories whose descriptors must be owned by util::UniqueFd. */
bool
inFdRuleScope(const std::string &path)
{
    static const std::vector<std::string> dirs = {"src/obs/",
                                                  "src/util/", "tools/"};
    for (const std::string &d : dirs)
        if (path.size() > d.size() && path.compare(0, d.size(), d) == 0)
            return true;
    return false;
}

void
checkRawFdClose(const std::string &path, const LexedFile &f,
                std::vector<Finding> *out)
{
    if (!inFdRuleScope(path))
        return;
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident || t[i].text != "close" ||
                t[i + 1].text != "(")
            continue;
        if (i > 0) {
            const std::string &prev = t[i - 1].text;
            if (prev == "." || prev == "->")
                continue; // member call on an owning object
            if (prev == "::") {
                if (i > 1 && t[i - 2].ident)
                    continue; // Foo::close — qualified, not the libc call
            } else if (t[i - 1].ident) {
                // `return close(fd)` is still the libc call; any other
                // identifier prefix is a declaration (`void close(`).
                static const std::set<std::string> callCtx = {
                    "return", "else", "do",
                    "co_return", "co_await", "co_yield",
                };
                if (!callCtx.count(prev))
                    continue;
            }
        }
        out->push_back(
            {path, t[i].line, kRawFdClose,
             "raw close() of a file descriptor; own it with "
             "util::UniqueFd (util/fd.h) so early returns cannot "
             "leak or double-close it"});
    }
}

/** LASER_<SUBPATH>_H guard expected for @p path. */
std::string
expectedGuard(const std::string &path)
{
    std::vector<std::string> comps;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty() && cur != ".")
                comps.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        comps.push_back(cur);
    // Components after the last known top-level dir; src/ is the
    // include root (guards omit it), the other trees keep their name
    // in the filename convention (bench/bench_common.h).
    std::size_t begin = 0;
    for (std::size_t i = 0; i < comps.size(); ++i)
        if (comps[i] == "src" || comps[i] == "tools" ||
                comps[i] == "bench" || comps[i] == "tests")
            begin = i + 1;
    if (begin >= comps.size())
        begin = comps.size() > 1 ? comps.size() - 1 : 0;
    std::string guard = "LASER";
    for (std::size_t i = begin; i < comps.size(); ++i) {
        guard.push_back('_');
        for (char c : comps[i]) {
            if (c == '.' && i + 1 == comps.size())
                break; // drop the extension
            guard.push_back(
                std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : '_');
        }
    }
    guard += "_H";
    return guard;
}

void
checkIncludeGuard(const std::string &path, const LexedFile &f,
                  std::vector<Finding> *out)
{
    if (!isHeader(path))
        return;
    const std::string expected = expectedGuard(path);
    const std::vector<Directive> &d = f.directives;
    if (d.size() < 2 || d[0].name != "ifndef" || d[1].name != "define" ||
            d[0].arg != d[1].arg) {
        out->push_back({path, d.empty() ? 1 : d[0].line, kIncludeGuard,
                        "header must open with the canonical "
                        "#ifndef/#define " +
                            expected + " guard pair"});
        return;
    }
    if (d[0].arg != expected) {
        out->push_back({path, d[0].line, kIncludeGuard,
                        "include guard '" + d[0].arg +
                            "' does not match the path-derived name '" +
                            expected + "'"});
        return;
    }
    if (d.back().name != "endif")
        out->push_back({path, d.back().line, kIncludeGuard,
                        "include guard is not closed by a trailing "
                        "#endif"});
}

void
checkHeaderHygiene(const std::string &path, const LexedFile &f,
                   std::vector<Finding> *out)
{
    if (!isHeader(path))
        return;
    const std::vector<Token> &t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
        if (t[i].text == "using" && t[i + 1].text == "namespace")
            out->push_back({path, t[i].line, kHeaderHygiene,
                            "'using namespace' in a header leaks into "
                            "every includer"});
}

} // namespace

// ---------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------

std::string
Finding::str() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " +
           message;
}

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {kUncheckedStatus,
         "status-returning call used as a bare statement (result "
         "silently dropped)"},
        {kNodiscardStatus,
         "status-returning declaration in a header lacks [[nodiscard]]"},
        {kRawMutex,
         "raw std mutex/lock/condvar outside util/mutex.h (invisible "
         "to -Wthread-safety)"},
        {kRawNewDelete,
         "raw new/delete expression (use containers / smart pointers)"},
        {kIncludeGuard,
         "header guard missing or not the canonical LASER_<PATH>_H "
         "pair"},
        {kHeaderHygiene, "'using namespace' at header scope"},
        {kRawFdClose,
         "bare close() of a file descriptor under src/obs/, src/util/ "
         "or tools/ (own it with util::UniqueFd)"},
    };
    return kRules;
}

bool
isRule(const std::string &name)
{
    for (const RuleInfo &r : rules())
        if (name == r.name)
            return true;
    return false;
}

std::vector<Finding>
lintFiles(const std::vector<SourceFile> &files, const Options &options)
{
    // Pass 1: lex everything once and collect the status-returning
    // function names that parameterize unchecked-status.
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    std::set<std::string> statusFns;
    for (const SourceFile &f : files) {
        lexed.push_back(lex(f.content));
        collectStatusFns(lexed.back(), &statusFns);
    }

    std::set<std::string> enabled;
    for (const std::string &r : options.enabledRules)
        enabled.insert(r);
    const auto runs = [&](const char *rule) {
        return enabled.empty() || enabled.count(rule) > 0;
    };

    // Pass 2: every rule over every file.
    std::vector<Finding> all;
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &path = files[i].path;
        const LexedFile &f = lexed[i];
        std::vector<Finding> raw;
        if (runs(kUncheckedStatus))
            checkUncheckedStatus(path, f, statusFns, &raw);
        if (runs(kNodiscardStatus))
            checkNodiscardStatus(path, f, &raw);
        if (runs(kRawMutex))
            checkRawMutex(path, f, &raw);
        if (runs(kRawNewDelete))
            checkRawNewDelete(path, f, &raw);
        if (runs(kIncludeGuard))
            checkIncludeGuard(path, f, &raw);
        if (runs(kHeaderHygiene))
            checkHeaderHygiene(path, f, &raw);
        if (runs(kRawFdClose))
            checkRawFdClose(path, f, &raw);
        for (Finding &finding : raw) {
            const auto it = f.allows.find(finding.line);
            if (it != f.allows.end() && it->second.count(finding.rule))
                continue; // suppressed
            all.push_back(std::move(finding));
        }
    }
    std::sort(all.begin(), all.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return all;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const Options &options)
{
    return lintFiles({{path, content}}, options);
}

std::vector<std::string>
collectFiles(const std::string &root)
{
    std::vector<std::string> out;
    for (const char *top : {"src", "tools", "bench", "tests"}) {
        const fs::path dir = fs::path(root) / top;
        std::error_code ec;
        fs::recursive_directory_iterator it(dir, ec), end;
        for (; !ec && it != end; it.increment(ec)) {
            if (it->is_directory() &&
                    it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            out.push_back(
                fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
loadFile(const std::string &root, const std::string &relPath,
         SourceFile *out)
{
    std::ifstream in(fs::path(root) / relPath, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out->path = relPath;
    out->content = buf.str();
    return true;
}

} // namespace laser::lint
