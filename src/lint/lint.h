/**
 * @file
 * laser_lint engine: a dependency-free, token-level checker enforcing
 * this repository's C++ invariants — the ones past PRs fixed by hand
 * and CI now keeps fixed (see tools/laser_lint.cc for the CLI).
 *
 * Rules (rule names are stable; they appear in output and suppression
 * comments):
 *
 *   unchecked-status   A call to a TraceStatus- or MigrateFileResult-
 *                      returning function used as a bare statement: the
 *                      status is silently dropped. Propagate it, branch
 *                      on it, or suppress with a justification.
 *   nodiscard-status   A header declares a TraceStatus/MigrateFileResult
 *                      returning function without [[nodiscard]], so the
 *                      compiler cannot flag dropped calls.
 *   raw-mutex          std::mutex / std::condition_variable /
 *                      std::lock_guard / std::unique_lock (and friends)
 *                      used outside util/mutex.h. Unannotated locks are
 *                      invisible to -Wthread-safety; use util::Mutex /
 *                      util::MutexLock / util::CondVar.
 *   raw-new-delete     Raw new / delete expressions. Use standard
 *                      containers and smart pointers (`= delete` and
 *                      `operator new` declarations are exempt).
 *   include-guard      A header's first two preprocessor directives must
 *                      be the canonical #ifndef/#define pair derived
 *                      from its path (LASER_<SUBPATH>_H), closed by a
 *                      trailing #endif.
 *   header-hygiene     `using namespace` in a header leaks into every
 *                      includer.
 *   raw-fd-close       A bare close() call (plain or `::`-qualified)
 *                      in the fd-owning trees src/obs/, src/util/ and
 *                      tools/. Descriptors there must be owned by
 *                      util::UniqueFd (util/fd.h); member `.close()` /
 *                      `->close()` calls and close() declarations are
 *                      exempt.
 *
 * Suppression: a comment `laser-lint: allow(rule-a, rule-b)` silences
 * the listed rules on its own line and on the next line of code, so it
 * works both trailing (`stmt; // laser-lint: allow(raw-new-delete)`)
 * and as a (possibly multi-line) comment directly above the offending
 * line. Every suppression should carry a justification after the
 * closing parenthesis.
 *
 * The checker lexes real C++ (line comments, block comments, string /
 * char / raw-string literals, preprocessor logical lines) but does not
 * parse it; rules are token-pattern based. That keeps the tool
 * dependency-free and fast, at the cost of documented blind spots: a
 * status call discarded through `(void)`, a comma operator, or a
 * ternary arm is not flagged.
 */

#ifndef LASER_LINT_LINT_H
#define LASER_LINT_LINT_H

#include <string>
#include <vector>

namespace laser::lint {

/** One input file: a path (used for messages + path-derived rules) and
 *  its full contents. */
struct SourceFile
{
    std::string path;
    std::string content;
};

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    /** The machine-readable "file:line: rule: message" form. */
    std::string str() const;
};

/** Rule metadata for --list-rules. */
struct RuleInfo
{
    const char *name;
    const char *summary;
};

/** All rules, in reporting order. */
const std::vector<RuleInfo> &rules();

/** True if @p name names a known rule. */
bool isRule(const std::string &name);

struct Options
{
    /** Rules to run; empty runs all. Unknown names are ignored
     *  (validate with isRule() first for a friendly error). */
    std::vector<std::string> enabledRules;
};

/**
 * Lint a set of files as one program: a first pass over the headers
 * collects the status-returning function names that parameterize
 * unchecked-status, then every file is checked against every enabled
 * rule. Findings are sorted by (file, line, rule).
 */
std::vector<Finding> lintFiles(const std::vector<SourceFile> &files,
                               const Options &options = {});

/** Convenience: lint one in-memory file (tests use this heavily). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content,
                                const Options &options = {});

/**
 * Collect the repository's lintable files: *.h and *.cc under
 * src/ tools/ bench/ tests/ of @p root, skipping any directory named
 * "lint_fixtures" (those are deliberate violations used by the lint's
 * own tests). Returned paths are relative to @p root, sorted.
 */
std::vector<std::string> collectFiles(const std::string &root);

/**
 * Read @p relPath (relative to @p root) into a SourceFile whose path is
 * the relative form. Returns false (and fills nothing) on I/O error.
 */
bool loadFile(const std::string &root, const std::string &relPath,
              SourceFile *out);

} // namespace laser::lint

#endif // LASER_LINT_LINT_H
