/**
 * @file
 * LASERDETECT configuration and report types, shared by the streaming
 * detector, the mergeable shard pipeline and the replay layers.
 *
 * DetectorConfig is split conceptually in two: the knobs that shape the
 * *digest* (none — stages 1-5 of the pipeline are config-independent,
 * which is what makes one digest reusable across every configuration)
 * and the knobs consumed by the rate scan and report builder (all of
 * them). See detector_state.h for the consequences.
 */

#ifndef LASER_DETECT_TYPES_H
#define LASER_DETECT_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace laser::detect {

/** Contention type reported per source line (Table 2). */
enum class ContentionType : std::uint8_t {
    Unknown,
    TrueSharing,
    FalseSharing,
};

/** Printable name ("TS", "FS", "unknown"). */
const char *contentionTypeName(ContentionType type);

/** Detector tuning knobs. */
struct DetectorConfig
{
    /**
     * Reporting rate threshold in HITM events per (represented) second;
     * the paper's default is 1K HITMs/sec (Section 7.1).
     */
    double rateThreshold = 1000.0;
    /** Sample-after value used to scale record counts to event counts. */
    std::uint32_t sav = 19;
    /** False-sharing event rate that triggers online repair. */
    double repairFsRateThreshold = 3'500.0;
    /**
     * Fallback repair trigger: a raw HITM rate so high that repair is
     * attempted even when addresses are too noisy to type the contention
     * (the linear_regression write-write case).
     */
    double repairHitmRateThreshold = 16'000.0;
    /** Cycles between online rate checks. */
    std::uint64_t rateCheckInterval = 150'000;
    /** Classification evidence floor: fewer events => Unknown. */
    std::uint64_t minClassifiedEvents = 8;
    /** ...and as a fraction of the line's records. */
    double minClassifiedFraction = 0.02;
};

/** Per-source-line finding. */
struct LineReport
{
    isa::SourceLoc loc;
    std::string location; ///< "file:line"
    bool library = false;
    std::uint64_t records = 0;
    /** Estimated HITM events/sec (records * SAV / seconds). */
    double hitmRate = 0.0;
    std::uint64_t tsEvents = 0;
    std::uint64_t fsEvents = 0;
    ContentionType type = ContentionType::Unknown;
};

/** Full detection output. */
struct DetectionReport
{
    /** Lines above the rate threshold, sorted by rate, descending. */
    std::vector<LineReport> lines;
    std::uint64_t totalRecords = 0;
    std::uint64_t droppedPcFilter = 0;
    std::uint64_t droppedStackData = 0;
    double seconds = 0.0;
    bool repairRequested = false;
    std::uint64_t repairTriggerCycle = 0;
    /** App-code instruction indices implicated in the repair request. */
    std::vector<std::uint32_t> repairPcs;
    /** Detector-process CPU cycles (Figure 12). */
    std::uint64_t detectorCycles = 0;

    /** Find a reported line by exact location string; nullptr if none. */
    const LineReport *findLine(const std::string &location) const;
};

/**
 * Field-exact equality of two reports, including line order and repair
 * PCs — the invariant checked between serial and shard-merged replays.
 */
bool reportsIdentical(const DetectionReport &a, const DetectionReport &b);

} // namespace laser::detect

#endif // LASER_DETECT_TYPES_H
