/**
 * @file
 * LASERDETECT: the HITM record-processing pipeline (Section 4, Figure 4).
 *
 * Records stream in from the driver; each passes through:
 *  1. PC filtering against the parsed /proc maps (application/library
 *     PCs kept, everything else dropped as spurious);
 *  2. stack-data filtering (thread stacks are not shared);
 *  3. aggregation by PC and source line (rate threshold applied at
 *     reporting time; adjustable offline without rerunning);
 *  4. load/store-set decoding of the record's PC;
 *  5. the cache-line model, yielding true-/false-sharing events
 *     attributed to the incoming record's source line;
 *  6. a periodic rate check that invokes LASERREPAIR when false sharing
 *     is significant (Section 4.4).
 *
 * The pipeline is deliberately robust to the record errors Section 3
 * characterizes: wrong data addresses never affect source-location
 * aggregation, and small PC skids usually stay within the same source
 * line. When data addresses are too noisy to classify (the write-write
 * pattern of linear_regression at -O3), a line's contention type is
 * reported as Unknown rather than guessed.
 *
 * This header keeps the classic streaming facade. The pipeline itself
 * is factored into detect/pipeline.h (DetectorContext +
 * DetectorPipeline, an analysis::RecordSink) over the mergeable
 * detect/detector_state.h, which is what sharded parallel replay
 * (trace/parallel_replay.h) builds on.
 */

#ifndef LASER_DETECT_DETECTOR_H
#define LASER_DETECT_DETECTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/pipeline.h"
#include "detect/types.h"
#include "isa/program.h"
#include "mem/address_space.h"
#include "pebs/record.h"
#include "sim/timing.h"

namespace laser::detect {

/**
 * The streaming detector: a DetectorPipeline that owns its context.
 * Convenient for one-shot live runs; replay paths share one
 * DetectorContext across many pipelines instead.
 */
class Detector
{
  public:
    Detector(const isa::Program &prog, const mem::AddressSpace &space,
             std::string maps_text, const sim::TimingModel &timing,
             DetectorConfig cfg = {},
             int line_bytes = CacheLineModel::kDefaultLineBytes);

    /** Push one record through the pipeline. */
    void processRecord(const pebs::PebsRecord &rec)
    {
        pipeline_.onRecord(rec);
    }

    /** Push a whole stream (restores canonical cycle order first). */
    void processAll(const std::vector<pebs::PebsRecord> &recs);

    /** Finalize and build the report. @p total_cycles is the run length. */
    DetectionReport finish(std::uint64_t total_cycles) const
    {
        return pipeline_.finish(total_cycles);
    }

    /** True once the online rate check has requested repair. */
    bool repairRequested() const { return pipeline_.repairRequested(); }

    /** The sink to hand to an analysis-stream driver. */
    analysis::RecordSink &sink() { return pipeline_; }

  private:
    std::unique_ptr<DetectorContext> ctx_;
    DetectorPipeline pipeline_;
};

} // namespace laser::detect

#endif // LASER_DETECT_DETECTOR_H
