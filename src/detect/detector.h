/**
 * @file
 * LASERDETECT: the HITM record-processing pipeline (Section 4, Figure 4).
 *
 * Records stream in from the driver; each passes through:
 *  1. PC filtering against the parsed /proc maps (application/library
 *     PCs kept, everything else dropped as spurious);
 *  2. stack-data filtering (thread stacks are not shared);
 *  3. aggregation by PC and source line (rate threshold applied at
 *     reporting time; adjustable offline without rerunning);
 *  4. load/store-set decoding of the record's PC;
 *  5. the cache-line model, yielding true-/false-sharing events
 *     attributed to the incoming record's source line;
 *  6. a periodic rate check that invokes LASERREPAIR when false sharing
 *     is significant (Section 4.4).
 *
 * The pipeline is deliberately robust to the record errors Section 3
 * characterizes: wrong data addresses never affect source-location
 * aggregation, and small PC skids usually stay within the same source
 * line. When data addresses are too noisy to classify (the write-write
 * pattern of linear_regression at -O3), a line's contention type is
 * reported as Unknown rather than guessed.
 */

#ifndef LASER_DETECT_DETECTOR_H
#define LASER_DETECT_DETECTOR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/cacheline_model.h"
#include "detect/maps_filter.h"
#include "isa/decode.h"
#include "isa/program.h"
#include "mem/address_space.h"
#include "pebs/record.h"
#include "sim/timing.h"

namespace laser::detect {

/** Contention type reported per source line (Table 2). */
enum class ContentionType : std::uint8_t {
    Unknown,
    TrueSharing,
    FalseSharing,
};

/** Printable name ("TS", "FS", "unknown"). */
const char *contentionTypeName(ContentionType type);

/** Detector tuning knobs. */
struct DetectorConfig
{
    /**
     * Reporting rate threshold in HITM events per (represented) second;
     * the paper's default is 1K HITMs/sec (Section 7.1).
     */
    double rateThreshold = 1000.0;
    /** Sample-after value used to scale record counts to event counts. */
    std::uint32_t sav = 19;
    /** False-sharing event rate that triggers online repair. */
    double repairFsRateThreshold = 3'500.0;
    /**
     * Fallback repair trigger: a raw HITM rate so high that repair is
     * attempted even when addresses are too noisy to type the contention
     * (the linear_regression write-write case).
     */
    double repairHitmRateThreshold = 16'000.0;
    /** Cycles between online rate checks. */
    std::uint64_t rateCheckInterval = 150'000;
    /** Classification evidence floor: fewer events => Unknown. */
    std::uint64_t minClassifiedEvents = 8;
    /** ...and as a fraction of the line's records. */
    double minClassifiedFraction = 0.02;
};

/** Per-source-line finding. */
struct LineReport
{
    isa::SourceLoc loc;
    std::string location; ///< "file:line"
    bool library = false;
    std::uint64_t records = 0;
    /** Estimated HITM events/sec (records * SAV / seconds). */
    double hitmRate = 0.0;
    std::uint64_t tsEvents = 0;
    std::uint64_t fsEvents = 0;
    ContentionType type = ContentionType::Unknown;
};

/** Full detection output. */
struct DetectionReport
{
    /** Lines above the rate threshold, sorted by rate, descending. */
    std::vector<LineReport> lines;
    std::uint64_t totalRecords = 0;
    std::uint64_t droppedPcFilter = 0;
    std::uint64_t droppedStackData = 0;
    double seconds = 0.0;
    bool repairRequested = false;
    std::uint64_t repairTriggerCycle = 0;
    /** App-code instruction indices implicated in the repair request. */
    std::vector<std::uint32_t> repairPcs;
    /** Detector-process CPU cycles (Figure 12). */
    std::uint64_t detectorCycles = 0;

    /** Find a reported line by exact location string; nullptr if none. */
    const LineReport *findLine(const std::string &location) const;
};

/** The streaming detector. */
class Detector
{
  public:
    Detector(const isa::Program &prog, const mem::AddressSpace &space,
             std::string maps_text, const sim::TimingModel &timing,
             DetectorConfig cfg = {});

    /** Push one record through the pipeline. */
    void processRecord(const pebs::PebsRecord &rec);

    /** Push a whole stream. */
    void processAll(const std::vector<pebs::PebsRecord> &recs);

    /** Finalize and build the report. @p total_cycles is the run length. */
    DetectionReport finish(std::uint64_t total_cycles);

    /** True once the online rate check has requested repair. */
    bool repairRequested() const { return repairRequested_; }

  private:
    struct PcStats
    {
        std::uint64_t records = 0;
        std::uint64_t ts = 0;
        std::uint64_t fs = 0;
    };

    void rateCheck(std::uint64_t now_cycle);

    const isa::Program &prog_;
    const mem::AddressSpace &space_;
    MapsFilter maps_;
    isa::LoadStoreSets sets_;
    sim::TimingModel timing_;
    DetectorConfig cfg_;

    std::unordered_map<std::uint32_t, PcStats> pcStats_;
    CacheLineModel lineModel_;

    std::uint64_t totalRecords_ = 0;
    std::uint64_t droppedPc_ = 0;
    std::uint64_t droppedStack_ = 0;
    std::uint64_t fsEvents_ = 0;
    std::uint64_t tsEvents_ = 0;

    // Online repair-trigger state.
    std::uint64_t windowStart_ = 0;
    std::uint64_t windowRecords_ = 0;
    std::uint64_t windowFs_ = 0;
    std::uint64_t windowTs_ = 0;
    bool repairRequested_ = false;
    std::uint64_t repairTriggerCycle_ = 0;
};

} // namespace laser::detect

#endif // LASER_DETECT_DETECTOR_H
