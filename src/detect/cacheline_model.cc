#include "detect/cacheline_model.h"

#include <algorithm>
#include <bit>

namespace laser::detect {

namespace {

bool
validLineBytes(int line_bytes)
{
    return line_bytes >= 8 && line_bytes <= 128 &&
           std::has_single_bit(static_cast<unsigned>(line_bytes));
}

} // namespace

CacheLineModel::CacheLineModel(int line_bytes)
    : lineBytes_(validLineBytes(line_bytes) ? line_bytes
                                            : kDefaultLineBytes)
{
}

std::uint64_t
CacheLineModel::byteMask(std::uint64_t addr, int size, int line_bytes)
{
    if (size <= 0 || !validLineBytes(line_bytes))
        return 0;
    const int offset =
        static_cast<int>(addr & static_cast<std::uint64_t>(line_bytes - 1));
    const int end = std::min(offset + size, line_bytes);
    // Lines wider than 64 bytes track the footprint at line_bytes/64-byte
    // granules so it still fits one 64-bit word.
    const int granule = line_bytes > 64 ? line_bytes / 64 : 1;
    const int first = offset / granule;
    const int last = (end - 1) / granule;
    const int nbits = last - first + 1;
    const std::uint64_t bits =
        nbits >= 64 ? ~0ULL : (std::uint64_t(1) << nbits) - 1;
    return bits << first;
}

SharingOutcome
CacheLineModel::classify(std::uint64_t prev_mask, bool prev_write,
                         std::uint64_t mask, bool is_write)
{
    if (mask == 0 || prev_mask == 0)
        return SharingOutcome::None;
    if (!prev_write && !is_write)
        return SharingOutcome::None;
    return (prev_mask & mask) != 0 ? SharingOutcome::TrueSharing
                                   : SharingOutcome::FalseSharing;
}

SharingOutcome
CacheLineModel::access(std::uint64_t addr, int size, bool is_write)
{
    const std::uint64_t mask = byteMask(addr, size, lineBytes_);
    if (mask == 0)
        return SharingOutcome::None; // empty footprint: no state change

    const std::uint64_t line =
        addr / static_cast<std::uint64_t>(lineBytes_);
    auto it = lines_.find(line);
    if (it == lines_.end()) {
        lines_.emplace(line, LastAccess{mask, is_write});
        return SharingOutcome::None;
    }

    LastAccess &prev = it->second;
    const SharingOutcome outcome =
        classify(prev.byteMask, prev.wasWrite, mask, is_write);
    prev.byteMask = mask;
    prev.wasWrite = is_write;
    return outcome;
}

} // namespace laser::detect
