#include "detect/cacheline_model.h"

namespace laser::detect {

SharingOutcome
CacheLineModel::access(std::uint64_t addr, int size, bool is_write)
{
    const std::uint64_t line = addr / kLineBytes;
    const int offset = static_cast<int>(addr % kLineBytes);
    const int clipped = std::min(size, kLineBytes - offset);
    const std::uint64_t mask =
        (clipped >= 64 ? ~0ULL
                       : (((std::uint64_t(1) << clipped) - 1) << offset));

    auto it = lines_.find(line);
    if (it == lines_.end()) {
        lines_.emplace(line, LastAccess{mask, is_write});
        return SharingOutcome::None;
    }

    LastAccess &prev = it->second;
    SharingOutcome outcome = SharingOutcome::None;
    if (prev.wasWrite || is_write) {
        outcome = (prev.byteMask & mask) != 0 ? SharingOutcome::TrueSharing
                                              : SharingOutcome::FalseSharing;
    }
    prev.byteMask = mask;
    prev.wasWrite = is_write;
    return outcome;
}

} // namespace laser::detect
