#include "detect/cacheline_model.h"

#include <algorithm>

namespace laser::detect {

std::uint64_t
CacheLineModel::byteMask(std::uint64_t addr, int size)
{
    const int offset = static_cast<int>(addr % kLineBytes);
    const int clipped = std::min(size, kLineBytes - offset);
    return clipped >= 64 ? ~0ULL
                         : (((std::uint64_t(1) << clipped) - 1) << offset);
}

SharingOutcome
CacheLineModel::classify(std::uint64_t prev_mask, bool prev_write,
                         std::uint64_t mask, bool is_write)
{
    if (!prev_write && !is_write)
        return SharingOutcome::None;
    return (prev_mask & mask) != 0 ? SharingOutcome::TrueSharing
                                   : SharingOutcome::FalseSharing;
}

SharingOutcome
CacheLineModel::access(std::uint64_t addr, int size, bool is_write)
{
    const std::uint64_t line = addr / kLineBytes;
    const std::uint64_t mask = byteMask(addr, size);

    auto it = lines_.find(line);
    if (it == lines_.end()) {
        lines_.emplace(line, LastAccess{mask, is_write});
        return SharingOutcome::None;
    }

    LastAccess &prev = it->second;
    const SharingOutcome outcome =
        classify(prev.byteMask, prev.wasWrite, mask, is_write);
    prev.byteMask = mask;
    prev.wasWrite = is_write;
    return outcome;
}

} // namespace laser::detect
