#include "detect/detector_state.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/timing.h"

namespace laser::detect {

void
DetectorState::mergeFrom(DetectorState &&next)
{
    const std::uint64_t offset = rateEvents.size();

    // Boundary reconciliation: the serial pass would have classified the
    // first access to each line in `next` against this state's last
    // access to that line. Patch `next`'s own counters and events first
    // so the wholesale fold below stays simple.
    for (auto &[lineAddr, ls] : next.lines) {
        auto it = lines.find(lineAddr);
        if (it == lines.end()) {
            ls.firstEvent += offset;
            lines.emplace(lineAddr, ls);
            continue;
        }
        LineState &acc = it->second;
        const SharingOutcome outcome = CacheLineModel::classify(
            acc.lastMask, acc.lastWrite, ls.firstMask, ls.firstWrite);
        if (outcome != SharingOutcome::None) {
            next.rateEvents[ls.firstEvent].outcome = outcome;
            PcStats &ps = next.pcStats[ls.firstPc];
            if (outcome == SharingOutcome::TrueSharing) {
                ++ps.ts;
                ++next.tsEvents;
            } else {
                ++ps.fs;
                ++next.fsEvents;
            }
        }
        acc.lastMask = ls.lastMask;
        acc.lastWrite = ls.lastWrite;
    }

    for (const auto &[pc, ps] : next.pcStats) {
        PcStats &dst = pcStats[pc];
        dst.records += ps.records;
        dst.ts += ps.ts;
        dst.fs += ps.fs;
    }
    totalRecords += next.totalRecords;
    droppedPc += next.droppedPc;
    droppedStack += next.droppedStack;
    tsEvents += next.tsEvents;
    fsEvents += next.fsEvents;
    rateEvents.insert(rateEvents.end(), next.rateEvents.begin(),
                      next.rateEvents.end());
}

void
RateScanState::step(std::uint64_t cycle, SharingOutcome outcome,
                    const DetectorConfig &cfg)
{
    ++windowRecords;
    if (outcome == SharingOutcome::TrueSharing)
        ++windowTs;
    else if (outcome == SharingOutcome::FalseSharing)
        ++windowFs;

    if (repairRequested || cycle < windowStart + cfg.rateCheckInterval)
        return;

    const double secs = sim::representedSeconds(cycle - windowStart);
    if (secs > 0.0) {
        const double fs_rate = double(windowFs) * cfg.sav / secs;
        const double hitm_rate = double(windowRecords) * cfg.sav / secs;
        const bool classified_fs =
            fs_rate >= cfg.repairFsRateThreshold && windowFs >= windowTs;
        // Fallback for write-write contention whose record addresses are
        // too noisy to classify (Section 7.4.1, linear_regression): the
        // sheer HITM rate warrants a repair attempt only when almost
        // nothing classified (so the evidence cannot point to true
        // sharing).
        const bool unclassifiable =
            (windowTs + windowFs) * 12 < windowRecords;
        const bool unclassified_storm =
            hitm_rate >= cfg.repairHitmRateThreshold && unclassifiable &&
            windowTs <= std::max<std::uint64_t>(8, 4 * windowFs);
        if (classified_fs || unclassified_storm) {
            repairRequested = true;
            repairTriggerCycle = cycle;
        }
    }
    // One epoch (rate-check window) closed; its span in cycles is the
    // detection latency granularity the online repair trigger works at.
    static obs::Histogram &epoch_cycles =
        obs::Registry::global().histogram("detect.epoch_cycles");
    epoch_cycles.record(double(cycle - windowStart));
    windowStart = cycle;
    windowRecords = 0;
    windowFs = 0;
    windowTs = 0;
}

RateScanState
scanRateEvents(const std::vector<RateEvent> &events,
               const DetectorConfig &cfg)
{
    RateScanState scan;
    for (const RateEvent &ev : events)
        scan.step(ev.cycle, ev.outcome, cfg);
    return scan;
}

} // namespace laser::detect
