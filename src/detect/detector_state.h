/**
 * @file
 * Mergeable detector state: everything LASERDETECT accumulates while
 * digesting a record stream, factored so that per-time-window shards of
 * one stream can be digested independently and merged back into exactly
 * the state a serial pass would have produced.
 *
 * Three observations make this work:
 *
 *  1. Stages 1-5 of the pipeline (PC/stack filtering, per-PC
 *     aggregation, load/store-set decode, the cache-line model) never
 *     read the DetectorConfig. The digest is therefore a pure,
 *     config-independent function of the stream — one digest serves
 *     every threshold/SAV/repair configuration (report-many).
 *
 *  2. The cache-line model is a per-line *last-access* model: after the
 *     first access to a line, a shard's per-line state is identical to
 *     the serial pass's. The only divergence is the classification of
 *     each line's first access within a shard, which the serial pass
 *     would have classified against the previous shard's last access.
 *     DetectorState records that first access (mask, write-ness, PC,
 *     rate-event index), and mergeFrom() reclassifies it — restoring
 *     per-PC and per-window TS/FS counts to their exact serial values.
 *
 *  3. The online repair trigger (Section 4.4) is a sequential scan over
 *     (cycle, outcome) pairs of the filtered stream. Shards collect
 *     those pairs as RateEvents; after the window-order merge patches
 *     outcomes, scanRateEvents() replays the serial state machine over
 *     the concatenation, preserving online repair-trigger semantics.
 */

#ifndef LASER_DETECT_DETECTOR_STATE_H
#define LASER_DETECT_DETECTOR_STATE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/cacheline_model.h"
#include "detect/types.h"

namespace laser::detect {

/**
 * One filtered record's contribution to the rate scan: its cycle and
 * its sharing classification. Collected in shard digests; the serial
 * streaming pipeline runs the scan inline instead of collecting.
 */
struct RateEvent
{
    std::uint64_t cycle = 0;
    SharingOutcome outcome = SharingOutcome::None;
};

/** The accumulated digest of (a shard of) a record stream. */
struct DetectorState
{
    struct PcStats
    {
        std::uint64_t records = 0;
        std::uint64_t ts = 0;
        std::uint64_t fs = 0;
    };

    /** Per-cache-line model state plus the merge fix-up bookkeeping. */
    struct LineState
    {
        std::uint64_t lastMask = 0;
        bool lastWrite = false;
        /** First access to this line within this state's stream span. */
        std::uint64_t firstMask = 0;
        bool firstWrite = false;
        std::uint32_t firstPc = 0;
        /** Index of that access's RateEvent (valid when collected). */
        std::uint64_t firstEvent = 0;
    };

    std::unordered_map<std::uint32_t, PcStats> pcStats;
    std::unordered_map<std::uint64_t, LineState> lines;
    std::uint64_t totalRecords = 0;
    std::uint64_t droppedPc = 0;
    std::uint64_t droppedStack = 0;
    std::uint64_t tsEvents = 0;
    std::uint64_t fsEvents = 0;
    /** (cycle, outcome) per filtered record, in stream order. */
    std::vector<RateEvent> rateEvents;

    /**
     * Absorb @p next, the digest of the records immediately following
     * this state's span. Reclassifies each line's first access in
     * @p next against this state's last access to the same line
     * (patching @p next's counters and rate events in place first),
     * then folds counters and concatenates rate events. Associative, so
     * shards may be merged pairwise or left-to-right — but always in
     * stream (time-window) order.
     */
    void mergeFrom(DetectorState &&next);
};

/** The Section 4.4 online repair-trigger state machine. */
struct RateScanState
{
    std::uint64_t windowStart = 0;
    std::uint64_t windowRecords = 0;
    std::uint64_t windowFs = 0;
    std::uint64_t windowTs = 0;
    bool repairRequested = false;
    std::uint64_t repairTriggerCycle = 0;

    /** Account one filtered record, then run the periodic rate check. */
    void step(std::uint64_t cycle, SharingOutcome outcome,
              const DetectorConfig &cfg);
};

/**
 * Replay the online repair-trigger scan over a merged event stream —
 * the sequential merge-time pass that gives sharded replay the exact
 * serial repair semantics.
 */
RateScanState scanRateEvents(const std::vector<RateEvent> &events,
                             const DetectorConfig &cfg);

} // namespace laser::detect

#endif // LASER_DETECT_DETECTOR_STATE_H
