#include "detect/detector.h"

#include <algorithm>
#include <map>

namespace laser::detect {

const char *
contentionTypeName(ContentionType type)
{
    switch (type) {
      case ContentionType::Unknown:      return "unknown";
      case ContentionType::TrueSharing:  return "TS";
      case ContentionType::FalseSharing: return "FS";
    }
    return "???";
}

const LineReport *
DetectionReport::findLine(const std::string &location) const
{
    for (const LineReport &lr : lines) {
        if (lr.location == location)
            return &lr;
    }
    return nullptr;
}

Detector::Detector(const isa::Program &prog,
                   const mem::AddressSpace &space, std::string maps_text,
                   const sim::TimingModel &timing, DetectorConfig cfg)
    : prog_(prog),
      space_(space),
      maps_(maps_text),
      sets_(prog),
      timing_(timing),
      cfg_(cfg)
{
}

void
Detector::rateCheck(std::uint64_t now_cycle)
{
    if (repairRequested_ || now_cycle < windowStart_ + cfg_.rateCheckInterval)
        return;

    const double secs =
        sim::representedSeconds(now_cycle - windowStart_);
    if (secs > 0.0) {
        const double fs_rate =
            double(windowFs_) * cfg_.sav / secs;
        const double hitm_rate =
            double(windowRecords_) * cfg_.sav / secs;
        const bool classified_fs = fs_rate >= cfg_.repairFsRateThreshold &&
                                   windowFs_ >= windowTs_;
        // Fallback for write-write contention whose record addresses are
        // too noisy to classify (Section 7.4.1, linear_regression): the
        // sheer HITM rate warrants a repair attempt only when almost
        // nothing classified (so the evidence cannot point to true
        // sharing).
        const bool unclassifiable =
            (windowTs_ + windowFs_) * 12 < windowRecords_;
        const bool unclassified_storm =
            hitm_rate >= cfg_.repairHitmRateThreshold && unclassifiable &&
            windowTs_ <= std::max<std::uint64_t>(8, 4 * windowFs_);
        if (classified_fs || unclassified_storm) {
            repairRequested_ = true;
            repairTriggerCycle_ = now_cycle;
        }
    }
    windowStart_ = now_cycle;
    windowRecords_ = 0;
    windowFs_ = 0;
    windowTs_ = 0;
}

void
Detector::processRecord(const pebs::PebsRecord &rec)
{
    ++totalRecords_;

    // Stage 1: PC filter against the process maps.
    const PcClass pc_class = maps_.classifyPc(rec.pc);
    if (pc_class == PcClass::Other) {
        ++droppedPc_;
        return;
    }

    // Stage 2: stack data addresses are ignored.
    if (maps_.classifyData(rec.dataAddr) == DataClass::Stack) {
        ++droppedStack_;
        return;
    }

    // Stage 3: aggregate by PC (line aggregation happens at reporting).
    const std::int64_t index = space_.pcToIndex(rec.pc);
    if (index < 0) {
        // Executable mapping but between instructions; treat as spurious.
        ++droppedPc_;
        return;
    }
    PcStats &ps = pcStats_[static_cast<std::uint32_t>(index)];
    ++ps.records;
    ++windowRecords_;

    // Stage 4+5: decode the PC and run the cache-line model.
    const isa::MemAccessInfo mi =
        sets_.lookup(static_cast<std::uint32_t>(index));
    if (mi.isLoad || mi.isStore) {
        // Instructions in both sets are treated as stores; the record
        // carries one address, so this is a documented inaccuracy
        // (Section 4.3).
        const bool is_write = mi.isStore;
        const SharingOutcome outcome =
            lineModel_.access(rec.dataAddr, mi.size, is_write);
        if (outcome == SharingOutcome::TrueSharing) {
            ++ps.ts;
            ++tsEvents_;
            ++windowTs_;
        } else if (outcome == SharingOutcome::FalseSharing) {
            ++ps.fs;
            ++fsEvents_;
            ++windowFs_;
        }
    }

    // Stage 6: periodic repair-rate check (Section 4.4).
    rateCheck(rec.cycle);
}

void
Detector::processAll(const std::vector<pebs::PebsRecord> &recs)
{
    // The driver drains whole per-core buffers at a time, so the raw
    // stream arrives in same-core bursts. Records carry timestamps;
    // processing them in time order restores the interleaving the
    // cache-line model needs to tell false from true sharing.
    std::vector<pebs::PebsRecord> ordered(recs);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const pebs::PebsRecord &a,
                        const pebs::PebsRecord &b) {
                         return a.cycle < b.cycle;
                     });
    for (const pebs::PebsRecord &rec : ordered)
        processRecord(rec);
}

DetectionReport
Detector::finish(std::uint64_t total_cycles)
{
    DetectionReport report;
    report.totalRecords = totalRecords_;
    report.droppedPcFilter = droppedPc_;
    report.droppedStackData = droppedStack_;
    report.seconds = sim::representedSeconds(total_cycles);
    report.repairRequested = repairRequested_;
    report.repairTriggerCycle = repairTriggerCycle_;
    report.detectorCycles =
        totalRecords_ * std::uint64_t(timing_.detectorPerRecord);

    // Aggregate per-PC stats into per-source-line findings.
    struct LineAgg
    {
        std::uint64_t records = 0;
        std::uint64_t ts = 0;
        std::uint64_t fs = 0;
    };
    std::map<isa::SourceLoc, LineAgg> by_line;
    for (const auto &[index, ps] : pcStats_) {
        const isa::SourceLoc loc = prog_.locOf(index);
        LineAgg &agg = by_line[loc];
        agg.records += ps.records;
        agg.ts += ps.ts;
        agg.fs += ps.fs;
    }

    for (const auto &[loc, agg] : by_line) {
        LineReport lr;
        lr.loc = loc;
        lr.location = prog_.locString(loc);
        lr.library = loc.file < prog_.files.size() &&
                     prog_.files[loc.file].isLibrary;
        lr.records = agg.records;
        lr.hitmRate = report.seconds > 0.0
                          ? double(agg.records) * cfg_.sav / report.seconds
                          : 0.0;
        lr.tsEvents = agg.ts;
        lr.fsEvents = agg.fs;

        const std::uint64_t classified = agg.ts + agg.fs;
        if (classified < cfg_.minClassifiedEvents ||
                double(classified) <
                    cfg_.minClassifiedFraction * double(agg.records)) {
            lr.type = ContentionType::Unknown;
        } else if (agg.fs > agg.ts) {
            lr.type = ContentionType::FalseSharing;
        } else {
            lr.type = ContentionType::TrueSharing;
        }

        if (lr.hitmRate >= cfg_.rateThreshold)
            report.lines.push_back(std::move(lr));
    }

    // Tie-break equal rates on location so the report order is stable
    // across runs and identical between live and trace-replayed passes.
    std::sort(report.lines.begin(), report.lines.end(),
              [](const LineReport &a, const LineReport &b) {
                  if (a.hitmRate != b.hitmRate)
                      return a.hitmRate > b.hitmRate;
                  return a.location < b.location;
              });

    // PCs handed to LASERREPAIR: hot application-code PCs. Only memory
    // operations can contend, so non-memory PCs (record-skid artifacts)
    // are excluded before the static analysis sees them.
    if (repairRequested_) {
        std::uint64_t max_records = 0;
        for (const auto &[index, ps] : pcStats_)
            max_records = std::max(max_records, ps.records);
        for (const auto &[index, ps] : pcStats_) {
            if (ps.records * 4 < max_records)
                continue;
            const isa::MemAccessInfo mi = sets_.lookup(index);
            if (!mi.isLoad && !mi.isStore)
                continue;
            const isa::Segment *seg = prog_.segmentOf(index);
            if (seg && !seg->isLibrary)
                report.repairPcs.push_back(index);
        }
        std::sort(report.repairPcs.begin(), report.repairPcs.end());
    }
    return report;
}

} // namespace laser::detect
