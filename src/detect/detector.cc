#include "detect/detector.h"

namespace laser::detect {

const char *
contentionTypeName(ContentionType type)
{
    switch (type) {
      case ContentionType::Unknown:      return "unknown";
      case ContentionType::TrueSharing:  return "TS";
      case ContentionType::FalseSharing: return "FS";
    }
    return "???";
}

const LineReport *
DetectionReport::findLine(const std::string &location) const
{
    for (const LineReport &lr : lines) {
        if (lr.location == location)
            return &lr;
    }
    return nullptr;
}

bool
reportsIdentical(const DetectionReport &a, const DetectionReport &b)
{
    if (a.totalRecords != b.totalRecords ||
            a.droppedPcFilter != b.droppedPcFilter ||
            a.droppedStackData != b.droppedStackData ||
            a.seconds != b.seconds ||
            a.repairRequested != b.repairRequested ||
            a.repairTriggerCycle != b.repairTriggerCycle ||
            a.repairPcs != b.repairPcs ||
            a.detectorCycles != b.detectorCycles ||
            a.lines.size() != b.lines.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.lines.size(); ++i) {
        const LineReport &la = a.lines[i];
        const LineReport &lb = b.lines[i];
        if (la.loc != lb.loc || la.location != lb.location ||
                la.library != lb.library || la.records != lb.records ||
                la.hitmRate != lb.hitmRate ||
                la.tsEvents != lb.tsEvents ||
                la.fsEvents != lb.fsEvents || la.type != lb.type) {
            return false;
        }
    }
    return true;
}

Detector::Detector(const isa::Program &prog,
                   const mem::AddressSpace &space, std::string maps_text,
                   const sim::TimingModel &timing, DetectorConfig cfg,
                   int line_bytes)
    : ctx_(std::make_unique<DetectorContext>(prog, space,
                                             std::move(maps_text),
                                             timing, line_bytes)),
      pipeline_(*ctx_, cfg, DetectorPipeline::Mode::Streaming)
{
}

void
Detector::processAll(const std::vector<pebs::PebsRecord> &recs)
{
    // The driver drains whole per-core buffers at a time, so the raw
    // stream arrives in same-core bursts. Records carry timestamps;
    // processing them in time order restores the interleaving the
    // cache-line model needs to tell false from true sharing.
    analysis::drainSorted(recs, pipeline_);
}

} // namespace laser::detect
