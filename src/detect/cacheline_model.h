/**
 * @file
 * The LASERDETECT cache-line model (Figure 5).
 *
 * Each tracked line remembers the type (read/write) and byte footprint
 * (bitmap) of its previous access. When a new access arrives, true
 * sharing is flagged if it overlaps the previous access and at least one
 * of the two is a write; false sharing if they touch disjoint bytes of
 * the same line (again with a write involved); read-read pairs are not
 * contention. Lines live in a hash table so only the small number of
 * contended lines consume space (Section 4.3).
 *
 * The line size is a parameter and must agree with the simulated
 * machine's CacheGeometry::lineBytes — detector classification and
 * coherence line indexing disagreeing would silently mistype every
 * event (the construction sites assert the two match). Degenerate
 * accesses (size <= 0, e.g. a prefetch or a corrupted record) have an
 * empty byte footprint and classify as SharingOutcome::None — an empty
 * footprint can neither truly nor falsely share.
 */

#ifndef LASER_DETECT_CACHELINE_MODEL_H
#define LASER_DETECT_CACHELINE_MODEL_H

#include <cstdint>
#include <unordered_map>

namespace laser::detect {

/** Classification of one modeled access against the line's previous one. */
enum class SharingOutcome : std::uint8_t {
    None,         ///< first access, read-read, or empty footprint
    TrueSharing,  ///< overlapping bytes, at least one write
    FalseSharing, ///< disjoint bytes of the same line, at least one write
};

/** Figure 5's per-line last-access model. */
class CacheLineModel
{
  public:
    /** Default line size; matches CacheGeometry's default. */
    static constexpr int kDefaultLineBytes = 64;

    /** @p line_bytes must be a power of two in [8, 128] (the simulated
     *  geometry's range); lines wider than 64 bytes are tracked at
     *  2-byte granularity so the footprint still fits a 64-bit mask. */
    explicit CacheLineModel(int line_bytes = kDefaultLineBytes);

    /**
     * Byte footprint of a @p size-byte access at @p addr within its
     * line; accesses that would cross the line boundary are clipped.
     * Degenerate sizes (<= 0) yield the empty mask.
     */
    static std::uint64_t byteMask(std::uint64_t addr, int size,
                                  int line_bytes = kDefaultLineBytes);

    /**
     * The Figure 5 decision, exposed statically so shard merging can
     * reclassify a shard's first access to a line against the previous
     * shard's last access: contention needs a write on either side and
     * a non-empty footprint on both; then overlapping bytes mean true
     * sharing, disjoint bytes false sharing.
     */
    static SharingOutcome classify(std::uint64_t prev_mask,
                                   bool prev_write, std::uint64_t mask,
                                   bool is_write);

    /**
     * Model one access of @p size bytes at @p addr; accesses that would
     * cross the line boundary are clipped to the line. Empty-footprint
     * accesses return None and leave the line's state untouched.
     */
    SharingOutcome access(std::uint64_t addr, int size, bool is_write);

    /** The configured line size in bytes. */
    int lineBytes() const { return lineBytes_; }

    /** Number of lines currently tracked. */
    std::size_t linesTracked() const { return lines_.size(); }

    /** Drop all state (used between detection windows in tests). */
    void clear() { lines_.clear(); }

  private:
    struct LastAccess
    {
        std::uint64_t byteMask = 0;
        bool wasWrite = false;
    };

    int lineBytes_;
    std::unordered_map<std::uint64_t, LastAccess> lines_;
};

} // namespace laser::detect

#endif // LASER_DETECT_CACHELINE_MODEL_H
