/**
 * @file
 * The LASERDETECT cache-line model (Figure 5).
 *
 * Each tracked line remembers the type (read/write) and byte footprint
 * (bitmap) of its previous access. When a new access arrives, true
 * sharing is flagged if it overlaps the previous access and at least one
 * of the two is a write; false sharing if they touch disjoint bytes of
 * the same line (again with a write involved); read-read pairs are not
 * contention. Lines live in a hash table so only the small number of
 * contended lines consume space (Section 4.3).
 */

#ifndef LASER_DETECT_CACHELINE_MODEL_H
#define LASER_DETECT_CACHELINE_MODEL_H

#include <cstdint>
#include <unordered_map>

namespace laser::detect {

/** Classification of one modeled access against the line's previous one. */
enum class SharingOutcome : std::uint8_t {
    None,         ///< first access to the line, or read-read
    TrueSharing,  ///< overlapping bytes, at least one write
    FalseSharing, ///< disjoint bytes of the same line, at least one write
};

/** Figure 5's per-line last-access model. */
class CacheLineModel
{
  public:
    static constexpr int kLineBytes = 64;

    /**
     * Byte footprint of a @p size-byte access at @p addr within its
     * line; accesses that would cross the line boundary are clipped.
     */
    static std::uint64_t byteMask(std::uint64_t addr, int size);

    /**
     * The Figure 5 decision, exposed statically so shard merging can
     * reclassify a shard's first access to a line against the previous
     * shard's last access: contention needs a write on either side; then
     * overlapping bytes mean true sharing, disjoint bytes false sharing.
     */
    static SharingOutcome classify(std::uint64_t prev_mask,
                                   bool prev_write, std::uint64_t mask,
                                   bool is_write);

    /**
     * Model one access of @p size bytes at @p addr; accesses that would
     * cross the line boundary are clipped to the line.
     */
    SharingOutcome access(std::uint64_t addr, int size, bool is_write);

    /** Number of lines currently tracked. */
    std::size_t linesTracked() const { return lines_.size(); }

    /** Drop all state (used between detection windows in tests). */
    void clear() { lines_.clear(); }

  private:
    struct LastAccess
    {
        std::uint64_t byteMask = 0;
        bool wasWrite = false;
    };

    std::unordered_map<std::uint64_t, LastAccess> lines_;
};

} // namespace laser::detect

#endif // LASER_DETECT_CACHELINE_MODEL_H
