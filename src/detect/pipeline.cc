#include "detect/pipeline.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"

namespace laser::detect {

namespace {

/**
 * Pipeline counters. Handles resolve once; the hot path never touches
 * them — onRecord bumps plain DetectorState fields and publishMetrics
 * flushes the deltas in bulk (bench_obs_overhead measures the margin).
 */
struct PipelineMetrics
{
    obs::Counter &records;
    obs::Counter &ts;
    obs::Counter &fs;

    static PipelineMetrics &
    get()
    {
        static PipelineMetrics m{
            obs::Registry::global().counter("detect.records_ingested"),
            obs::Registry::global().counter("detect.hitm_classified.ts"),
            obs::Registry::global().counter("detect.hitm_classified.fs"),
        };
        return m;
    }
};

} // namespace

DetectorContext::DetectorContext(const isa::Program &prog,
                                 const mem::AddressSpace &space,
                                 std::string maps_text,
                                 const sim::TimingModel &timing,
                                 int line_bytes)
    : prog(prog),
      space(space),
      maps(std::move(maps_text)),
      sets(prog),
      timing(timing),
      lineBytes(CacheLineModel(line_bytes).lineBytes())
{
}

DetectorPipeline::DetectorPipeline(const DetectorContext &ctx,
                                   DetectorConfig cfg, Mode mode)
    : ctx_(ctx), cfg_(cfg), mode_(mode)
{
}

DetectorPipeline::~DetectorPipeline() { publishMetrics(); }

void
DetectorPipeline::publishMetrics() const
{
    PipelineMetrics &m = PipelineMetrics::get();
    if (state_.totalRecords > pubRecords_)
        m.records.inc(state_.totalRecords - pubRecords_);
    if (state_.tsEvents > pubTs_)
        m.ts.inc(state_.tsEvents - pubTs_);
    if (state_.fsEvents > pubFs_)
        m.fs.inc(state_.fsEvents - pubFs_);
    pubRecords_ = state_.totalRecords;
    pubTs_ = state_.tsEvents;
    pubFs_ = state_.fsEvents;
}

void
DetectorPipeline::onRecord(const pebs::PebsRecord &rec)
{
    ++state_.totalRecords;

    // Stage 1: PC filter against the process maps.
    const PcClass pc_class = ctx_.maps.classifyPc(rec.pc);
    if (pc_class == PcClass::Other) {
        ++state_.droppedPc;
        return;
    }

    // Stage 2: stack data addresses are ignored.
    if (ctx_.maps.classifyData(rec.dataAddr) == DataClass::Stack) {
        ++state_.droppedStack;
        return;
    }

    // Stage 3: aggregate by PC (line aggregation happens at reporting).
    const std::int64_t index = ctx_.space.pcToIndex(rec.pc);
    if (index < 0) {
        // Executable mapping but between instructions; treat as spurious.
        ++state_.droppedPc;
        return;
    }
    const std::uint32_t pc_index = static_cast<std::uint32_t>(index);
    DetectorState::PcStats &ps = state_.pcStats[pc_index];
    ++ps.records;

    // Stage 4+5: decode the PC and run the cache-line model.
    SharingOutcome outcome = SharingOutcome::None;
    const isa::MemAccessInfo mi = ctx_.sets.lookup(pc_index);
    if (mi.isLoad || mi.isStore) {
        // Instructions in both sets are treated as stores; the record
        // carries one address, so this is a documented inaccuracy
        // (Section 4.3).
        const bool is_write = mi.isStore;
        const std::uint64_t line =
            rec.dataAddr / static_cast<std::uint64_t>(ctx_.lineBytes);
        const std::uint64_t mask =
            CacheLineModel::byteMask(rec.dataAddr, mi.size,
                                     ctx_.lineBytes);

        auto [it, inserted] = state_.lines.try_emplace(line);
        DetectorState::LineState &ls = it->second;
        if (inserted) {
            // First touch of this line in this span: unclassifiable here;
            // remembered so a window-order merge can reclassify it
            // against the preceding span's last access.
            ls.firstMask = mask;
            ls.firstWrite = is_write;
            ls.firstPc = pc_index;
            ls.firstEvent = state_.rateEvents.size();
        } else {
            outcome = CacheLineModel::classify(ls.lastMask, ls.lastWrite,
                                               mask, is_write);
        }
        ls.lastMask = mask;
        ls.lastWrite = is_write;

        if (outcome == SharingOutcome::TrueSharing) {
            ++ps.ts;
            ++state_.tsEvents;
        } else if (outcome == SharingOutcome::FalseSharing) {
            ++ps.fs;
            ++state_.fsEvents;
        }
    }

    // Stage 6: periodic repair-rate check (Section 4.4) — online when
    // streaming, deferred to the merge-time scan when digesting a shard.
    if (mode_ == Mode::Streaming)
        scan_.step(rec.cycle, outcome, cfg_);
    else
        state_.rateEvents.push_back({rec.cycle, outcome});
}

DetectionReport
DetectorPipeline::finish(std::uint64_t total_cycles) const
{
    publishMetrics();
    return buildReport(ctx_, cfg_, state_, scan_, total_cycles);
}

DetectionReport
buildReport(const DetectorContext &ctx, const DetectorConfig &cfg,
            const DetectorState &state, const RateScanState &scan,
            std::uint64_t total_cycles)
{
    DetectionReport report;
    report.totalRecords = state.totalRecords;
    report.droppedPcFilter = state.droppedPc;
    report.droppedStackData = state.droppedStack;
    report.seconds = sim::representedSeconds(total_cycles);
    report.repairRequested = scan.repairRequested;
    report.repairTriggerCycle = scan.repairTriggerCycle;
    report.detectorCycles =
        state.totalRecords * std::uint64_t(ctx.timing.detectorPerRecord);

    // Aggregate per-PC stats into per-source-line findings.
    struct LineAgg
    {
        std::uint64_t records = 0;
        std::uint64_t ts = 0;
        std::uint64_t fs = 0;
    };
    std::map<isa::SourceLoc, LineAgg> by_line;
    for (const auto &[index, ps] : state.pcStats) {
        const isa::SourceLoc loc = ctx.prog.locOf(index);
        LineAgg &agg = by_line[loc];
        agg.records += ps.records;
        agg.ts += ps.ts;
        agg.fs += ps.fs;
    }

    for (const auto &[loc, agg] : by_line) {
        LineReport lr;
        lr.loc = loc;
        lr.location = ctx.prog.locString(loc);
        lr.library = loc.file < ctx.prog.files.size() &&
                     ctx.prog.files[loc.file].isLibrary;
        lr.records = agg.records;
        lr.hitmRate = report.seconds > 0.0
                          ? double(agg.records) * cfg.sav / report.seconds
                          : 0.0;
        lr.tsEvents = agg.ts;
        lr.fsEvents = agg.fs;

        const std::uint64_t classified = agg.ts + agg.fs;
        if (classified < cfg.minClassifiedEvents ||
                double(classified) <
                    cfg.minClassifiedFraction * double(agg.records)) {
            lr.type = ContentionType::Unknown;
        } else if (agg.fs > agg.ts) {
            lr.type = ContentionType::FalseSharing;
        } else {
            lr.type = ContentionType::TrueSharing;
        }

        if (lr.hitmRate >= cfg.rateThreshold)
            report.lines.push_back(std::move(lr));
    }

    // Tie-break equal rates on location so the report order is stable
    // across runs and identical between live and trace-replayed passes.
    std::sort(report.lines.begin(), report.lines.end(),
              [](const LineReport &a, const LineReport &b) {
                  if (a.hitmRate != b.hitmRate)
                      return a.hitmRate > b.hitmRate;
                  return a.location < b.location;
              });

    // PCs handed to LASERREPAIR: hot application-code PCs. Only memory
    // operations can contend, so non-memory PCs (record-skid artifacts)
    // are excluded before the static analysis sees them.
    if (scan.repairRequested) {
        std::uint64_t max_records = 0;
        for (const auto &[index, ps] : state.pcStats)
            max_records = std::max(max_records, ps.records);
        for (const auto &[index, ps] : state.pcStats) {
            if (ps.records * 4 < max_records)
                continue;
            const isa::MemAccessInfo mi = ctx.sets.lookup(index);
            if (!mi.isLoad && !mi.isStore)
                continue;
            const isa::Segment *seg = ctx.prog.segmentOf(index);
            if (seg && !seg->isLibrary)
                report.repairPcs.push_back(index);
        }
        std::sort(report.repairPcs.begin(), report.repairPcs.end());
    }
    return report;
}

} // namespace laser::detect
