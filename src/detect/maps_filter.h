/**
 * @file
 * /proc/<pid>/maps parser and record filter — the first two stages of the
 * LASERDETECT pipeline (Section 4.1).
 *
 * The filter classifies record PCs as application, library or other code
 * (spurious records with PCs outside the application and its libraries
 * are dropped) and recognizes thread-stack data addresses (ignored, as
 * stacks are unlikely to be shared between threads).
 *
 * It deliberately works from the rendered maps *text*, not from simulator
 * internals: the detector is a separate process in the paper and this is
 * the interface it actually has.
 */

#ifndef LASER_DETECT_MAPS_FILTER_H
#define LASER_DETECT_MAPS_FILTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace laser::detect {

/** PC classification per the pipeline's first stage. */
enum class PcClass : std::uint8_t { Application, Library, Other };

/** Data-address classification per the pipeline's second stage. */
enum class DataClass : std::uint8_t {
    Stack,
    Heap,
    Globals,
    Kernel,
    Unmapped,
    Code,
};

/** Parsed view of one maps line. */
struct MapsEntry
{
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    bool executable = false;
    std::string path;
};

/** Parser + classifier over a /proc maps snapshot. */
class MapsFilter
{
  public:
    /** Parse the maps text; malformed lines are skipped. */
    explicit MapsFilter(const std::string &maps_text);

    /** Classify an instruction pointer. */
    PcClass classifyPc(std::uint64_t pc) const;

    /** Classify a data address. */
    DataClass classifyData(std::uint64_t addr) const;

    /** Parsed entries (for tests). */
    const std::vector<MapsEntry> &entries() const { return entries_; }

  private:
    const MapsEntry *find(std::uint64_t addr) const;

    std::vector<MapsEntry> entries_;
};

} // namespace laser::detect

#endif // LASER_DETECT_MAPS_FILTER_H
