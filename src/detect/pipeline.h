/**
 * @file
 * The thin streaming pipeline over DetectorState, and the shared report
 * builder.
 *
 * DetectorContext holds everything a pipeline needs that is derived
 * from the program and its address space — the parsed /proc maps, the
 * load/store sets, the timing model. It is immutable after construction
 * and safe to share across concurrent shard pipelines, so a parallel
 * replay parses the maps and decodes the program exactly once.
 *
 * DetectorPipeline implements analysis::RecordSink: the live
 * ExperimentRunner path and trace::TraceReplayer both drive it through
 * the same interface. In Streaming mode it runs the Section 4.4 rate
 * check online (the classic Detector behaviour); in Shard mode it
 * collects RateEvents instead, deferring repair semantics to the
 * merge-time sequential scan.
 */

#ifndef LASER_DETECT_PIPELINE_H
#define LASER_DETECT_PIPELINE_H

#include <cstdint>
#include <string>

#include "analysis/sink.h"
#include "detect/cacheline_model.h"
#include "detect/detector_state.h"
#include "detect/maps_filter.h"
#include "detect/types.h"
#include "isa/decode.h"
#include "isa/program.h"
#include "mem/address_space.h"
#include "sim/timing.h"

namespace laser::detect {

/** Shared, immutable per-program replay environment. */
struct DetectorContext
{
    const isa::Program &prog;
    const mem::AddressSpace &space;
    MapsFilter maps;
    isa::LoadStoreSets sets;
    sim::TimingModel timing;
    /**
     * Cache line size the detector classifies against; must equal the
     * simulated machine's CacheGeometry::lineBytes or every line index
     * and byte footprint would silently disagree with the coherence
     * events being classified (invalid values fall back to the default).
     */
    int lineBytes;

    DetectorContext(const isa::Program &prog,
                    const mem::AddressSpace &space, std::string maps_text,
                    const sim::TimingModel &timing,
                    int line_bytes = CacheLineModel::kDefaultLineBytes);
};

/** One pass of stages 1-6 over (a shard of) a record stream. */
class DetectorPipeline final : public analysis::RecordSink
{
  public:
    enum class Mode : std::uint8_t {
        /** Online rate check per record; no RateEvents collected. */
        Streaming,
        /** Collect RateEvents; rate semantics applied at merge time. */
        Shard,
    };

    explicit DetectorPipeline(const DetectorContext &ctx,
                              DetectorConfig cfg = {},
                              Mode mode = Mode::Streaming);
    ~DetectorPipeline() override;

    /** Push one record through stages 1-5 (and 6 when streaming). */
    void onRecord(const pebs::PebsRecord &rec) override;

    /** True once the online rate check has requested repair. */
    bool repairRequested() const { return scan_.repairRequested; }

    const DetectorState &state() const { return state_; }

    DetectorState
    takeState()
    {
        publishMetrics();
        return std::move(state_);
    }

    /** Streaming-mode finalize: build the report from the inline scan. */
    DetectionReport finish(std::uint64_t total_cycles) const;

    const DetectorContext &context() const { return ctx_; }
    const DetectorConfig &config() const { return cfg_; }

  private:
    /**
     * Publish the delta since the last publish into the process
     * registry (detect.records_ingested and friends). The hot path
     * only bumps plain state_ fields; atomics are touched here, at
     * takeState()/finish()/destruction, so instrumentation cost on the
     * digest path is amortized to O(1) per pipeline instead of O(1)
     * per record.
     */
    void publishMetrics() const;

    const DetectorContext &ctx_;
    DetectorConfig cfg_;
    Mode mode_;
    DetectorState state_;
    RateScanState scan_;
    mutable std::uint64_t pubRecords_ = 0;
    mutable std::uint64_t pubTs_ = 0;
    mutable std::uint64_t pubFs_ = 0;
};

/**
 * Build the DetectionReport from a digested state and a completed rate
 * scan. Pure: serial and shard-merged paths call the same function, so
 * their reports can only differ if their states differ.
 */
DetectionReport buildReport(const DetectorContext &ctx,
                            const DetectorConfig &cfg,
                            const DetectorState &state,
                            const RateScanState &scan,
                            std::uint64_t total_cycles);

} // namespace laser::detect

#endif // LASER_DETECT_PIPELINE_H
