#include "detect/maps_filter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace laser::detect {

MapsFilter::MapsFilter(const std::string &maps_text)
{
    std::istringstream in(maps_text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        unsigned long long start = 0, end = 0;
        char perms[8] = {};
        unsigned offset = 0, dev_major = 0, dev_minor = 0, inode = 0;
        char path[256] = {};
        const int n = std::sscanf(
            line.c_str(), "%llx-%llx %7s %x %x:%x %u %255s", &start, &end,
            perms, &offset, &dev_major, &dev_minor, &inode, path);
        if (n < 7)
            continue;
        MapsEntry e;
        e.start = start;
        e.end = end;
        e.executable = perms[2] == 'x';
        e.path = n >= 8 ? path : "";
        entries_.push_back(e);
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const MapsEntry &a, const MapsEntry &b) {
                  return a.start < b.start;
              });
}

const MapsEntry *
MapsFilter::find(std::uint64_t addr) const
{
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), addr,
        [](std::uint64_t a, const MapsEntry &e) { return a < e.start; });
    if (it == entries_.begin())
        return nullptr;
    --it;
    return (addr >= it->start && addr < it->end) ? &*it : nullptr;
}

PcClass
MapsFilter::classifyPc(std::uint64_t pc) const
{
    const MapsEntry *e = find(pc);
    if (!e || !e->executable)
        return PcClass::Other;
    if (e->path.rfind("/app/", 0) == 0)
        return PcClass::Application;
    if (e->path.rfind("/usr/lib/", 0) == 0 ||
            e->path.rfind("/lib/", 0) == 0) {
        return PcClass::Library;
    }
    return PcClass::Other;
}

DataClass
MapsFilter::classifyData(std::uint64_t addr) const
{
    // Kernel addresses never appear in a process maps file.
    if (addr >= 0xffff'8000'0000'0000ULL)
        return DataClass::Kernel;
    const MapsEntry *e = find(addr);
    if (!e)
        return DataClass::Unmapped;
    if (e->path.rfind("[stack", 0) == 0)
        return DataClass::Stack;
    if (e->path == "[heap]")
        return DataClass::Heap;
    if (e->executable)
        return DataClass::Code;
    return DataClass::Globals;
}

} // namespace laser::detect
