/**
 * @file
 * Parallel sweep runner: fans (workload x scheme x config) experiment
 * jobs across cores and serves monitored runs from a content-addressed
 * trace cache — simulate once, replay many.
 *
 * A capture request is keyed by trace::configHash() of its full
 * configuration. On a key hit the cached trace is returned without
 * touching the machine simulator; misses run the simulation (at most
 * once per key, even under concurrent requests) and populate the cache.
 * With a cache directory configured, traces also persist across
 * processes as <hash>.ltrace files, so a second sweep over the same
 * configuration performs zero machine runs.
 */

#ifndef LASER_CORE_SWEEP_RUNNER_H
#define LASER_CORE_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/detector.h"
#include "trace/capture.h"
#include "trace/trace.h"
#include "trace/trace_file.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "workloads/workload.h"

namespace laser::core {

/**
 * Cache / execution counters (cumulative over the runner's lifetime).
 * Every increment is mirrored into the global obs registry
 * (sweep.machine_runs, sweep.cache_hits.memory, sweep.cache_hits.disk,
 * sweep.inflight_dedup, trace.cache.bytes_read/written), which is what
 * tools and benches export; the struct remains the per-runner view so
 * concurrent runners in one process stay separable.
 */
struct SweepStats
{
    std::uint64_t machineRuns = 0;     ///< actual simulations executed
    std::uint64_t memoryCacheHits = 0; ///< served from the in-memory cache
    std::uint64_t diskCacheHits = 0;   ///< loaded from the cache directory

    std::uint64_t
    captures() const
    {
        return machineRuns + memoryCacheHits + diskCacheHits;
    }

    /** Fraction of capture requests served without a simulation. */
    double
    cacheHitRate() const
    {
        const std::uint64_t total = captures();
        return total ? double(memoryCacheHits + diskCacheHits) /
                           double(total)
                     : 0.0;
    }
};

class SweepRunner
{
  public:
    struct Config
    {
        /** Worker threads; 0 selects the hardware concurrency. */
        int numWorkers = 0;
        /** Trace cache directory; empty keeps the cache in memory only. */
        std::string cacheDir;
    };

    SweepRunner();
    explicit SweepRunner(Config cfg);

    /**
     * Capture (or fetch from cache) the monitored run of @p workload
     * under @p opt, materialized. Concurrent requests for the same
     * configuration are coalesced into a single simulation.
     */
    std::shared_ptr<const trace::Trace>
    capture(const workloads::WorkloadDef &workload,
            const trace::CaptureOptions &opt);

    /**
     * Like capture(), but returns the run as an open seekable
     * trace::TraceFile instead of a materialized Trace: a disk cache
     * hit validates only the header, meta sections and block index —
     * record blocks stay encoded until replay cursors pull them — so
     * serving a warm sweep costs O(meta + index) reads and replay
     * memory stays O(block x shards). Without a cache directory the
     * encoded image is held in memory and cursored the same way.
     */
    std::shared_ptr<const trace::TraceFile>
    captureFile(const workloads::WorkloadDef &workload,
                const trace::CaptureOptions &opt);

    /** Fan fn(0..n-1) across the worker pool (blocking). */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        pool_.parallelFor(n, fn);
    }

    /** The shared worker pool (nested parallelFor is deadlock-free). */
    util::ThreadPool &pool() { return pool_; }

    SweepStats stats() const;
    int workers() const { return pool_.workers(); }
    const Config &config() const { return cfg_; }

    /** Cache-file path for a key (empty when no cacheDir is set). */
    std::string cachePath(std::uint64_t key) const;

  private:
    struct Entry;
    struct FileEntry;

    std::shared_ptr<const trace::Trace>
    loadOrRun(std::uint64_t key, const workloads::WorkloadDef &workload,
              const trace::CaptureOptions &opt);

    std::shared_ptr<const trace::TraceFile>
    loadOrRunFile(std::uint64_t key,
                  const workloads::WorkloadDef &workload,
                  const trace::CaptureOptions &opt);

    Config cfg_;
    util::ThreadPool pool_;
    mutable util::Mutex mu_;
    /**
     * Key -> coalescing slot. The maps are guarded; the *slots* escape
     * the lock deliberately — a slot's payload is published through its
     * std::once_flag, so concurrent captures of the same key block in
     * std::call_once instead of serializing the whole cache (see the
     * Entry definition in sweep_runner.cc).
     */
    std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> cache_
        GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, std::shared_ptr<FileEntry>>
        fileCache_ GUARDED_BY(mu_);
    SweepStats stats_ GUARDED_BY(mu_);
};

/** One row of a threshold sweep: accuracy totals at one threshold. */
struct ThresholdSweepRow
{
    double threshold = 0.0;
    int falseNegatives = 0;
    int falsePositives = 0;
};

/** Outcome + timing of a capture-once/replay-many threshold sweep. */
struct ThresholdSweepResult
{
    std::vector<ThresholdSweepRow> rows;
    /** Simulations this sweep actually ran (0 when fully cached). */
    std::uint64_t machineRuns = 0;
    std::size_t captures = 0; ///< capture requests (runs + cache hits)
    std::size_t replays = 0;  ///< detector replays performed
    /** Time-window shards per trace digest (1 = serial pipelines). */
    int shardsPerDigest = 1;
    double captureSeconds = 0.0;
    /** Sharded, config-independent stream digests (one per workload). */
    double digestSeconds = 0.0;
    /** Per-configuration rate scans + report builds. */
    double replaySeconds = 0.0;

    /** Per-pass cost ratio: one simulation vs one sweep-point replay. */
    double replaySpeedup() const;
};

/**
 * Figure 9 workhorse: capture each workload's monitored run once (in
 * parallel, cache-served when possible), digest each trace once through
 * sharded parallel replay (the digest is config-independent), then
 * derive every threshold point from the merged digest and tally false
 * negatives/positives against the known-bug database.
 *
 * @p shards 0 picks a digest width that spreads the workloads' shard
 * jobs over the runner's workers.
 */
ThresholdSweepResult
thresholdSweep(SweepRunner &runner,
               const std::vector<const workloads::WorkloadDef *> &defs,
               const std::vector<double> &thresholds,
               const trace::CaptureOptions &opt = {}, int shards = 0);

} // namespace laser::core

#endif // LASER_CORE_SWEEP_RUNNER_H
