#include "core/experiment.h"

#include <algorithm>

#include "detect/pipeline.h"

namespace laser::core {

namespace {

/**
 * Drive a scheme's analysis stream in canonical cycle order into the
 * live analyzer and, when configured, the capture tee — the same
 * analysis::RecordSink plumbing trace replay uses.
 */
void
driveAnalysis(const std::vector<pebs::PebsRecord> &records,
              analysis::RecordSink *live, analysis::RecordSink *capture)
{
    analysis::TeeSink tee;
    if (live)
        tee.add(live);
    if (capture)
        tee.add(capture);
    analysis::drainSorted(records, tee);
}

} // namespace

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Native:          return "native";
      case Scheme::Laser:           return "laser";
      case Scheme::LaserDetectOnly: return "laser-detect";
      case Scheme::VTune:           return "vtune";
      case Scheme::SheriffDetect:   return "sheriff-detect";
      case Scheme::SheriffProtect:  return "sheriff-protect";
      case Scheme::ManualFix:       return "manual-fix";
    }
    return "???";
}

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg) : cfg_(cfg)
{
    cfg_.detector.sav = cfg_.sav;
}

workloads::BuildOptions
ExperimentRunner::makeOptions(double scale, bool manual_fix,
                              std::uint64_t heap_shift) const
{
    workloads::BuildOptions opt;
    opt.manualFix = manual_fix;
    opt.heapPerturbation = heap_shift;
    opt.numThreads = cfg_.numThreads;
    opt.inputSeed = cfg_.inputSeed;
    opt.scale = scale;
    return opt;
}

RunResult
ExperimentRunner::run(const workloads::WorkloadDef &workload,
                      Scheme scheme, double scale)
{
    switch (scheme) {
      case Scheme::Native:
        return runNative(workload, scale, false);
      case Scheme::ManualFix:
        return runNative(workload, scale, true);
      case Scheme::Laser:
        return runLaser(workload, scale, true);
      case Scheme::LaserDetectOnly:
        return runLaser(workload, scale, false);
      case Scheme::VTune:
        return runVTune(workload, scale);
      case Scheme::SheriffDetect:
        return runSheriff(workload, scale, true);
      case Scheme::SheriffProtect:
        return runSheriff(workload, scale, false);
    }
    return {};
}

RunResult
ExperimentRunner::runNative(const workloads::WorkloadDef &w, double scale,
                            bool manual_fix)
{
    RunResult result;
    result.scheme = manual_fix ? Scheme::ManualFix : Scheme::Native;

    workloads::WorkloadBuild build =
        w.build(makeOptions(scale, manual_fix, 0));
    sim::MachineConfig mc;
    mc.numCores = cfg_.numThreads;
    mc.timing = cfg_.timing;
    mc.protocol = cfg_.protocol;
    mc.geometry = cfg_.geometry;
    mc.seed = cfg_.machineSeed;
    sim::Machine machine(std::move(build.program), mc);
    build.applyTo(machine);
    result.stats = machine.run();
    result.runtimeCycles = result.stats.cycles;
    return result;
}

RunResult
ExperimentRunner::runLaser(const workloads::WorkloadDef &w, double scale,
                           bool with_repair)
{
    RunResult result;
    result.scheme = with_repair ? Scheme::Laser : Scheme::LaserDetectOnly;

    // Phase 1: monitored run. The detector forks the application, which
    // shifts the heap layout (Section 7.4.2).
    workloads::WorkloadBuild build =
        w.build(makeOptions(scale, false, cfg_.laserHeapShift));
    sim::MachineConfig mc;
    mc.numCores = cfg_.numThreads;
    mc.timing = cfg_.timing;
    mc.protocol = cfg_.protocol;
    mc.geometry = cfg_.geometry;
    mc.seed = cfg_.machineSeed;
    sim::Machine machine(std::move(build.program), mc);
    build.applyTo(machine);

    pebs::PebsConfig pc;
    pc.sav = cfg_.sav;
    pebs::PebsMonitor monitor(machine.addressSpace(),
                              machine.program().size(), cfg_.timing, pc);
    machine.setPmuSink(&monitor);
    result.stats = machine.run();
    monitor.finish();
    result.pebs = monitor.stats();

    // LASERDETECT consumes the stream through the scheme-agnostic sink
    // interface — the identical pipeline a trace replay drives.
    detect::DetectorContext ctx(machine.program(),
                                machine.addressSpace(),
                                machine.addressSpace().renderProcMaps(),
                                cfg_.timing,
                                static_cast<int>(cfg_.geometry.lineBytes));
    detect::DetectorPipeline pipeline(ctx, cfg_.detector);
    driveAnalysis(monitor.records(), &pipeline, cfg_.captureSink);
    result.detection = pipeline.finish(result.stats.cycles);
    result.runtimeCycles = result.stats.cycles;

    if (!with_repair || !result.detection.repairRequested)
        return result;

    // Phase 2: repair attempt. LASERREPAIR analyzes the binary at the
    // contending PCs; if the plan is profitable, the remainder of the
    // execution runs Pin-instrumented.
    repair::Repairer repairer(machine.program(), cfg_.repair);
    result.plan = repairer.analyze(result.detection.repairPcs);
    if (!result.plan.applied)
        return result;

    isa::Program instrumented = repairer.instrument(result.plan);
    sim::MachineConfig rmc = mc;
    rmc.timing.base += cfg_.timing.pinBaseOverhead;
    workloads::WorkloadBuild rebuild =
        w.build(makeOptions(scale, false, cfg_.laserHeapShift));
    sim::Machine repaired(std::move(instrumented), rmc);
    rebuild.applyTo(repaired);
    pebs::PebsMonitor rmonitor(repaired.addressSpace(),
                               repaired.program().size(), cfg_.timing,
                               pc);
    repaired.setPmuSink(&rmonitor);
    const sim::MachineStats rstats = repaired.run();
    rmonitor.finish();

    result.repairApplied = true;
    const double f =
        result.stats.cycles == 0
            ? 1.0
            : std::min(1.0, double(result.detection.repairTriggerCycle) /
                                double(result.stats.cycles));
    result.repairTriggerFraction = f;
    result.runtimeCycles = static_cast<std::uint64_t>(
        f * double(result.stats.cycles) +
        double(cfg_.timing.pinAttachCost) +
        (1.0 - f) * double(rstats.cycles));
    return result;
}

RunResult
ExperimentRunner::runVTune(const workloads::WorkloadDef &w, double scale)
{
    RunResult result;
    result.scheme = Scheme::VTune;

    workloads::WorkloadBuild build = w.build(makeOptions(scale, false, 0));
    sim::MachineConfig mc;
    mc.numCores = cfg_.numThreads;
    mc.timing = cfg_.timing;
    mc.protocol = cfg_.protocol;
    mc.geometry = cfg_.geometry;
    mc.seed = cfg_.machineSeed;
    sim::Machine machine(std::move(build.program), mc);
    build.applyTo(machine);

    baselines::VTuneModel vtune(machine.program(), machine.addressSpace(),
                                cfg_.timing, cfg_.vtune);
    machine.setPmuSink(&vtune);
    result.stats = machine.run();
    result.vtune = vtune.finish(result.stats.cycles);
    result.runtimeCycles = result.stats.cycles;
    if (cfg_.captureSink)
        driveAnalysis(vtune.records(), nullptr, cfg_.captureSink);
    return result;
}

RunResult
ExperimentRunner::runSheriff(const workloads::WorkloadDef &w,
                             double scale, bool detect_mode)
{
    RunResult result;
    result.scheme =
        detect_mode ? Scheme::SheriffDetect : Scheme::SheriffProtect;

    switch (w.info.sheriff) {
      case workloads::SheriffCompat::Crash:
        result.crashed = true;
        result.crashReason = "runtime error";
        return result;
      case workloads::SheriffCompat::Incompatible:
        result.crashed = true;
        result.crashReason = "unsupported pthreads/OpenMP constructs";
        return result;
      case workloads::SheriffCompat::WorksSmallInput:
        scale *= cfg_.sheriffSmallScale;
        break;
      case workloads::SheriffCompat::Works:
        break;
    }

    workloads::WorkloadBuild build = w.build(makeOptions(scale, false, 0));
    sim::MachineConfig mc;
    mc.numCores = cfg_.numThreads;
    mc.timing = cfg_.timing;
    mc.protocol = cfg_.protocol;
    mc.geometry = cfg_.geometry;
    mc.seed = cfg_.machineSeed;
    mc.threadsAsProcesses = true;
    mc.trackDirtyPages = true;
    sim::Machine machine(std::move(build.program), mc);
    build.applyTo(machine);

    baselines::SheriffConfig sc = cfg_.sheriff;
    sc.detectMode = detect_mode;
    // Buffer the sync stream only when something will consume it.
    baselines::SheriffModel sheriff(sc, cfg_.captureSink != nullptr);
    machine.setPmuSink(&sheriff);
    result.stats = machine.run();
    result.sheriff = sheriff.finish();
    result.runtimeCycles = result.stats.cycles;
    if (cfg_.captureSink)
        driveAnalysis(sheriff.records(), nullptr, cfg_.captureSink);

    // Sheriff-Detect's object-granularity findings are encoded from
    // Table 1/2 (see DESIGN.md): when it catches a bug it reports the
    // object's allocation site, not the contending code.
    if (detect_mode && w.info.sheriffDetectsBug)
        result.sheriff.reportedSites.push_back(
            w.info.sheriffReportLocation);
    return result;
}

} // namespace laser::core
