/**
 * @file
 * Accuracy evaluation against the known-performance-bug database
 * (Section 7.1, Tables 1 and 2).
 *
 * A reported source line counts as identifying a bug when it falls on
 * the bug's canonical line (±1, absorbing instruction skid) or any of
 * its related lines (the rest of the contending loop). Reported lines
 * matching no bug are false positives; bugs matched by no reported line
 * are false negatives.
 */

#ifndef LASER_CORE_ACCURACY_H
#define LASER_CORE_ACCURACY_H

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "workloads/workload.h"

namespace laser::core {

/** FN/FP tally for one tool on one workload. */
struct AccuracyResult
{
    int falseNegatives = 0;
    int falsePositives = 0;
    /** Locations counted as false positives. */
    std::vector<std::string> fpLocations;
    /** Bugs that were missed. */
    std::vector<std::string> missedBugs;
};

/** Split "file:line" into its parts; returns false on malformed input. */
bool parseLocation(const std::string &location, std::string *file,
                   std::uint32_t *line);

/**
 * True if @p reported matches @p canonical within @p tolerance lines
 * (same file).
 */
bool locationsMatch(const std::string &reported,
                    const std::string &canonical,
                    std::uint32_t tolerance = 1);

/** Evaluate a list of reported locations against the bug database. */
AccuracyResult evaluateAccuracy(const workloads::WorkloadInfo &info,
                                const std::vector<std::string> &reported);

/** Convenience: extract locations from a LASER detection report. */
std::vector<std::string>
reportLocations(const detect::DetectionReport &report);

/**
 * The contention type LASER reports for a workload's bug: the type of
 * the hottest reported line matching the bug (Table 2).
 */
detect::ContentionType
reportedTypeForBug(const workloads::WorkloadInfo &info,
                   const detect::DetectionReport &report);

} // namespace laser::core

#endif // LASER_CORE_ACCURACY_H
