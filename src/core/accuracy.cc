#include "core/accuracy.h"

#include <cstdlib>

namespace laser::core {

bool
parseLocation(const std::string &location, std::string *file,
              std::uint32_t *line)
{
    const std::size_t colon = location.rfind(':');
    if (colon == std::string::npos || colon + 1 >= location.size())
        return false;
    *file = location.substr(0, colon);
    *line = static_cast<std::uint32_t>(
        std::strtoul(location.c_str() + colon + 1, nullptr, 10));
    return true;
}

bool
locationsMatch(const std::string &reported, const std::string &canonical,
               std::uint32_t tolerance)
{
    std::string rfile, cfile;
    std::uint32_t rline = 0, cline = 0;
    if (!parseLocation(reported, &rfile, &rline) ||
            !parseLocation(canonical, &cfile, &cline)) {
        return false;
    }
    if (rfile != cfile)
        return false;
    const std::uint32_t lo = cline > tolerance ? cline - tolerance : 0;
    return rline >= lo && rline <= cline + tolerance;
}

AccuracyResult
evaluateAccuracy(const workloads::WorkloadInfo &info,
                 const std::vector<std::string> &reported)
{
    AccuracyResult result;

    auto matches_bug = [&](const std::string &loc,
                           const workloads::KnownBug &bug) {
        if (locationsMatch(loc, bug.location))
            return true;
        for (const std::string &rel : bug.relatedLocations) {
            if (locationsMatch(loc, rel))
                return true;
        }
        return false;
    };

    for (const workloads::KnownBug &bug : info.bugs) {
        bool found = false;
        for (const std::string &loc : reported) {
            if (matches_bug(loc, bug)) {
                found = true;
                break;
            }
        }
        if (!found) {
            ++result.falseNegatives;
            result.missedBugs.push_back(bug.location);
        }
    }

    for (const std::string &loc : reported) {
        bool matches_any = false;
        for (const workloads::KnownBug &bug : info.bugs) {
            if (matches_bug(loc, bug)) {
                matches_any = true;
                break;
            }
        }
        if (!matches_any) {
            ++result.falsePositives;
            result.fpLocations.push_back(loc);
        }
    }
    return result;
}

std::vector<std::string>
reportLocations(const detect::DetectionReport &report)
{
    std::vector<std::string> out;
    out.reserve(report.lines.size());
    for (const detect::LineReport &lr : report.lines)
        out.push_back(lr.location);
    return out;
}

detect::ContentionType
reportedTypeForBug(const workloads::WorkloadInfo &info,
                   const detect::DetectionReport &report)
{
    for (const detect::LineReport &lr : report.lines) {
        for (const workloads::KnownBug &bug : info.bugs) {
            if (locationsMatch(lr.location, bug.location))
                return lr.type;
            for (const std::string &rel : bug.relatedLocations) {
                if (locationsMatch(lr.location, rel))
                    return lr.type;
            }
        }
    }
    return detect::ContentionType::Unknown;
}

} // namespace laser::core
