#include "core/sweep_runner.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <mutex> // std::call_once / std::once_flag only
#include <stdexcept>

#include "core/accuracy.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/parallel_replay.h"
#include "trace/replay.h"

namespace laser::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
    return buf;
}

/** Registry handles for the sweep counters (resolved once). */
struct SweepMetrics
{
    obs::Counter &machineRuns;
    obs::Counter &memoryHits;
    obs::Counter &diskHits;
    obs::Counter &inflightDedup;
    obs::Counter &bytesRead;
    obs::Counter &bytesWritten;
    obs::Histogram &captureSeconds;

    static SweepMetrics &
    get()
    {
        static SweepMetrics m{
            obs::Registry::global().counter("sweep.machine_runs"),
            obs::Registry::global().counter("sweep.cache_hits.memory"),
            obs::Registry::global().counter("sweep.cache_hits.disk"),
            obs::Registry::global().counter("sweep.inflight_dedup"),
            obs::Registry::global().counter("trace.cache.bytes_read"),
            obs::Registry::global().counter("trace.cache.bytes_written"),
            obs::Registry::global().histogram("sweep.capture_seconds"),
        };
        return m;
    }
};

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t n = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(n);
}

} // namespace

/**
 * One cache slot. The once-flag coalesces concurrent captures of the
 * same configuration: the first requester simulates (or loads from
 * disk), everyone else blocks until the trace is ready.
 */
struct SweepRunner::Entry
{
    std::once_flag once;
    /** Set after the once-callable finished (dedup accounting only). */
    std::atomic<bool> ready{false};
    std::shared_ptr<const trace::Trace> trace;
};

/** A cache slot of the seekable-file flavor (captureFile()). */
struct SweepRunner::FileEntry
{
    std::once_flag once;
    std::atomic<bool> ready{false};
    std::shared_ptr<const trace::TraceFile> file;
};

SweepRunner::SweepRunner() : SweepRunner(Config{}) {}

SweepRunner::SweepRunner(Config cfg)
    : cfg_(std::move(cfg)), pool_(cfg_.numWorkers)
{
    if (!cfg_.cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.cacheDir, ec);
        // An unwritable directory degrades to cache misses, not errors.
    }
}

std::string
SweepRunner::cachePath(std::uint64_t key) const
{
    if (cfg_.cacheDir.empty())
        return {};
    return cfg_.cacheDir + "/" + hexKey(key) + trace::kTraceExtension;
}

std::shared_ptr<const trace::Trace>
SweepRunner::loadOrRun(std::uint64_t key,
                       const workloads::WorkloadDef &workload,
                       const trace::CaptureOptions &opt)
{
    SweepMetrics &metrics = SweepMetrics::get();
    const std::string path = cachePath(key);
    if (!path.empty()) {
        LASER_SPAN("sweep.disk_load");
        trace::TraceReader reader;
        if (reader.readFile(path) == trace::TraceStatus::Ok &&
                trace::configHash(reader.trace().meta) == key) {
            // Touch the file so mtime-LRU eviction (laser_trace cache
            // gc) treats last-modified as last-used.
            std::error_code ec;
            std::filesystem::last_write_time(
                path, std::filesystem::file_time_type::clock::now(), ec);
            metrics.diskHits.inc();
            metrics.bytesRead.inc(fileBytes(path));
            util::MutexLock lock(&mu_);
            ++stats_.diskCacheHits;
            return std::make_shared<trace::Trace>(reader.takeTrace());
        }
        // Missing, corrupt or stale cache file: fall through and rerun
        // (the fresh capture overwrites it).
    }

    std::shared_ptr<trace::Trace> trace;
    const auto start = std::chrono::steady_clock::now();
    {
        LASER_SPAN("sweep.simulate");
        trace = std::make_shared<trace::Trace>(
            trace::captureTrace(workload, opt));
    }
    metrics.machineRuns.inc();
    metrics.captureSeconds.record(secondsSince(start));
    {
        util::MutexLock lock(&mu_);
        ++stats_.machineRuns;
    }
    if (!path.empty()) {
        // Deliberate discard-with-accounting: cache population is
        // best-effort (a failed write just means a re-simulation next
        // sweep), but the failure must not be silent — it lands in the
        // trace.cache.write_failures counter every exporter surfaces.
        if (trace::writeTraceFile(*trace, path) ==
                trace::TraceStatus::Ok) {
            metrics.bytesWritten.inc(fileBytes(path));
        } else {
            static obs::Counter &write_failures =
                obs::Registry::global().counter(
                    "trace.cache.write_failures");
            write_failures.inc();
        }
    }
    return trace;
}

std::shared_ptr<const trace::TraceFile>
SweepRunner::loadOrRunFile(std::uint64_t key,
                           const workloads::WorkloadDef &workload,
                           const trace::CaptureOptions &opt)
{
    SweepMetrics &metrics = SweepMetrics::get();
    const std::string path = cachePath(key);
    if (!path.empty()) {
        LASER_SPAN("sweep.disk_open");
        auto file = std::make_shared<trace::TraceFile>();
        // Warm path: validates header + meta + index only; record
        // blocks stay on disk until a replay cursor decodes them (the
        // config-hash check is free — the hash sits in the header and
        // open() verifies it against the config section).
        if (file->open(path) == trace::TraceStatus::Ok &&
                file->storedConfigHash() == key) {
            std::error_code ec;
            std::filesystem::last_write_time(
                path, std::filesystem::file_time_type::clock::now(), ec);
            metrics.diskHits.inc();
            util::MutexLock lock(&mu_);
            ++stats_.diskCacheHits;
            return file;
        }
        // Missing, corrupt, stale or pre-v3 cache file: fall through
        // and rerun (the fresh capture overwrites it).
    }

    trace::Trace captured;
    const auto start = std::chrono::steady_clock::now();
    {
        LASER_SPAN("sweep.simulate");
        captured = trace::captureTrace(workload, opt);
    }
    metrics.machineRuns.inc();
    metrics.captureSeconds.record(secondsSince(start));
    {
        util::MutexLock lock(&mu_);
        ++stats_.machineRuns;
    }
    auto file = std::make_shared<trace::TraceFile>();
    if (!path.empty()) {
        if (trace::writeTraceFile(captured, path) ==
                trace::TraceStatus::Ok) {
            metrics.bytesWritten.inc(fileBytes(path));
            if (file->open(path) == trace::TraceStatus::Ok)
                return file;
            // The file vanished or was clobbered between write and
            // open (e.g. a concurrent gc); serve the in-memory image
            // instead.
        } else {
            // Best-effort cache population; surfaced, never fatal.
            static obs::Counter &write_failures =
                obs::Registry::global().counter(
                    "trace.cache.write_failures");
            write_failures.inc();
        }
    }
    trace::TraceWriter writer(captured.meta);
    writer.appendAll(captured.records);
    if (file->openBytes(writer.finalize()) != trace::TraceStatus::Ok)
        throw std::runtime_error(
            "captureFile: freshly encoded trace failed to open: " +
            file->error());
    return file;
}

std::shared_ptr<const trace::TraceFile>
SweepRunner::captureFile(const workloads::WorkloadDef &workload,
                         const trace::CaptureOptions &opt)
{
    const std::uint64_t key =
        trace::configHash(trace::makeCaptureMeta(workload, opt));

    std::shared_ptr<FileEntry> entry;
    bool created = false;
    {
        util::MutexLock lock(&mu_);
        std::shared_ptr<FileEntry> &slot = fileCache_[key];
        if (!slot) {
            slot = std::make_shared<FileEntry>();
            created = true;
        }
        entry = slot;
    }
    if (!created) {
        SweepMetrics &metrics = SweepMetrics::get();
        metrics.memoryHits.inc();
        if (!entry->ready.load(std::memory_order_acquire))
            metrics.inflightDedup.inc();
        util::MutexLock lock(&mu_);
        ++stats_.memoryCacheHits;
    }

    std::call_once(entry->once, [&] {
        entry->file = loadOrRunFile(key, workload, opt);
        entry->ready.store(true, std::memory_order_release);
    });
    return entry->file;
}

std::shared_ptr<const trace::Trace>
SweepRunner::capture(const workloads::WorkloadDef &workload,
                     const trace::CaptureOptions &opt)
{
    const std::uint64_t key =
        trace::configHash(trace::makeCaptureMeta(workload, opt));

    std::shared_ptr<Entry> entry;
    bool created = false;
    {
        util::MutexLock lock(&mu_);
        std::shared_ptr<Entry> &slot = cache_[key];
        if (!slot) {
            slot = std::make_shared<Entry>();
            created = true;
        }
        entry = slot;
    }
    if (!created) {
        SweepMetrics &metrics = SweepMetrics::get();
        metrics.memoryHits.inc();
        // A hit on an entry whose capture is still running means this
        // request was coalesced with an in-flight identical one.
        if (!entry->ready.load(std::memory_order_acquire))
            metrics.inflightDedup.inc();
        util::MutexLock lock(&mu_);
        ++stats_.memoryCacheHits;
    }

    std::call_once(entry->once, [&] {
        entry->trace = loadOrRun(key, workload, opt);
        entry->ready.store(true, std::memory_order_release);
    });
    return entry->trace;
}

SweepStats
SweepRunner::stats() const
{
    util::MutexLock lock(&mu_);
    return stats_;
}

// ---------------------------------------------------------------------
// Threshold sweep
// ---------------------------------------------------------------------

double
ThresholdSweepResult::replaySpeedup() const
{
    if (machineRuns == 0 || replays == 0)
        return 0.0;
    const double per_sim = captureSeconds / double(machineRuns);
    // A sweep point costs its rate scan + report build plus its share of
    // the one-time digest.
    const double per_replay =
        (digestSeconds + replaySeconds) / double(replays);
    return per_replay > 0.0 ? per_sim / per_replay : 0.0;
}

ThresholdSweepResult
thresholdSweep(SweepRunner &runner,
               const std::vector<const workloads::WorkloadDef *> &defs,
               const std::vector<double> &thresholds,
               const trace::CaptureOptions &opt, int shards)
{
    ThresholdSweepResult result;
    const std::size_t nw = defs.size();
    const std::size_t nt = thresholds.size();
    result.captures = nw;
    result.replays = nw * nt;
    if (nw == 0)
        return result;
    if (shards <= 0) {
        // Spread nw digests' shard jobs over the pool (+1: the calling
        // thread drains the queue too).
        shards = std::max<int>(
            1, (runner.workers() + 1 + static_cast<int>(nw) - 1) /
                   static_cast<int>(nw));
    }
    result.shardsPerDigest = shards;

    const SweepStats before = runner.stats();

    // Phase 1: one monitored simulation per workload (cache permitting),
    // fanned across the pool, plus one replay environment each. Traces
    // are served as seekable files, never materialized: the digest
    // phase streams them block-at-a-time through shard cursors.
    std::vector<std::shared_ptr<const trace::TraceFile>> traces(nw);
    std::vector<std::unique_ptr<trace::TraceReplayer>> replayers(nw);
    const auto capture_start = std::chrono::steady_clock::now();
    {
        LASER_SPAN("sweep.phase.capture");
        runner.parallelFor(nw, [&](std::size_t i) {
            traces[i] = runner.captureFile(*defs[i], opt);
            replayers[i] = std::make_unique<trace::TraceReplayer>(
                traces[i]->meta(), *traces[i]);
            if (!replayers[i]->ok())
                throw std::runtime_error("thresholdSweep: " +
                                         replayers[i]->error());
        });
    }
    result.captureSeconds = secondsSince(capture_start);
    result.machineRuns = runner.stats().machineRuns - before.machineRuns;

    // Phase 2: digest each trace once — sharded by time window across
    // the pool. The digest is config-independent, so this is the only
    // pass over the record streams the whole sweep makes.
    std::vector<std::unique_ptr<trace::ParallelReplayer>> digests(nw);
    const auto digest_start = std::chrono::steady_clock::now();
    {
        LASER_SPAN("sweep.phase.digest");
        runner.parallelFor(nw, [&](std::size_t i) {
            trace::ParallelReplayer::Options popt;
            popt.shards = shards;
            // Nested parallelFor: shard jobs queue on the shared pool
            // and this worker helps drain them, so digests overlap
            // freely.
            popt.pool = &runner.pool();
            digests[i] = std::make_unique<trace::ParallelReplayer>(
                *replayers[i], popt);
        });
    }
    result.digestSeconds = secondsSince(digest_start);

    // Phase 3: every sweep point is a rate scan + report build over the
    // merged digest (report-many).
    std::vector<std::vector<ThresholdSweepRow>> cells(
        nt, std::vector<ThresholdSweepRow>(nw));
    const auto replay_start = std::chrono::steady_clock::now();
    {
        LASER_SPAN("sweep.phase.replay");
        runner.parallelFor(nw * nt, [&](std::size_t job) {
            const std::size_t wi = job / nt;
            const std::size_t ti = job % nt;
            detect::DetectorConfig cfg;
            cfg.rateThreshold = thresholds[ti];
            cfg.sav = opt.sav;
            const detect::DetectionReport report =
                digests[wi]->replay(cfg);
            const AccuracyResult acc = evaluateAccuracy(
                defs[wi]->info, reportLocations(report));
            cells[ti][wi].falseNegatives = acc.falseNegatives;
            cells[ti][wi].falsePositives = acc.falsePositives;
        });
    }
    result.replaySeconds = secondsSince(replay_start);

    for (std::size_t ti = 0; ti < nt; ++ti) {
        ThresholdSweepRow row;
        row.threshold = thresholds[ti];
        for (const ThresholdSweepRow &cell : cells[ti]) {
            row.falseNegatives += cell.falseNegatives;
            row.falsePositives += cell.falsePositives;
        }
        result.rows.push_back(row);
    }
    return result;
}

} // namespace laser::core
