/**
 * @file
 * Experiment harness: runs a workload under one of the evaluated schemes
 * and produces runtime + detection results (the machinery behind every
 * table and figure of Section 7).
 *
 * Schemes:
 *  - Native: no monitoring (the normalization baseline).
 *  - Laser: the full system (Figure 8). The detector process forks the
 *    application; the fork/attach shifts the initial heap break (the
 *    lu_ncb layout coincidence). PEBS monitoring runs with SAV=19; if
 *    the online rate check requests repair, the run is re-executed with
 *    the Pin-instrumented binary and the modeled runtime composes the
 *    pre-trigger monitored phase, the Pin attach cost and the repaired
 *    remainder.
 *  - LaserDetectOnly: monitoring without repair (overhead studies).
 *  - VTune: interrupt-per-event profiling baseline.
 *  - SheriffDetect / SheriffProtect: threads-as-processes baselines
 *    (subject to the Table 1 compatibility matrix).
 *  - ManualFix: the source-level fix guided by LASER's report.
 */

#ifndef LASER_CORE_EXPERIMENT_H
#define LASER_CORE_EXPERIMENT_H

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/sink.h"
#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "detect/detector.h"
#include "pebs/monitor.h"
#include "repair/repairer.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace laser::core {

/** Evaluated system configuration. */
enum class Scheme : std::uint8_t {
    Native,
    Laser,
    LaserDetectOnly,
    VTune,
    SheriffDetect,
    SheriffProtect,
    ManualFix,
};

const char *schemeName(Scheme scheme);

/** Harness configuration. */
struct ExperimentConfig
{
    std::uint32_t sav = 19;
    detect::DetectorConfig detector{};
    repair::RepairConfig repair{};
    sim::TimingModel timing{};
    /** Coherence backend the simulated machine runs (protocol sweeps). */
    sim::ProtocolKind protocol = sim::ProtocolKind::Mesi;
    /** Simulated cache geometry; lineBytes also drives the detector. */
    sim::CacheGeometry geometry{};
    baselines::VTuneConfig vtune{};
    baselines::SheriffConfig sheriff{};
    int numThreads = 4;
    /** Heap shift introduced by the LASER fork/attach (Section 7.4.2). */
    std::uint64_t laserHeapShift = 48;
    /** Input scale used when Sheriff needs simlarge (Figure 14 "*"). */
    double sheriffSmallScale = 0.4;
    std::uint64_t inputSeed = 0x5eed;
    /** Machine timing-jitter seed (vary to average across "runs"). */
    std::uint64_t machineSeed = 0x1a5e2;
    /**
     * Optional tee: each run's canonical analysis-record stream (the
     * LASER PEBS samples, the VTune interrupt-per-event stream, the
     * Sheriff sync commits — in cycle order) is also driven into this
     * sink. Point it at a trace::TraceWriter to capture any scheme's
     * run for offline replay. Not owned; must outlive the runner calls.
     */
    analysis::RecordSink *captureSink = nullptr;
};

/** Result of one run. */
struct RunResult
{
    Scheme scheme = Scheme::Native;
    /** Modeled wall-clock runtime in cycles. */
    std::uint64_t runtimeCycles = 0;
    /** True when the scheme cannot run this workload (Sheriff). */
    bool crashed = false;
    /** Why it crashed ("x") or is incompatible ("i"). */
    std::string crashReason;

    sim::MachineStats stats;
    pebs::PebsStats pebs;
    detect::DetectionReport detection;       ///< Laser schemes
    baselines::VTuneReport vtune;            ///< VTune scheme
    baselines::SheriffReport sheriff;        ///< Sheriff schemes
    repair::RepairPlan plan;                 ///< Laser (repair attempt)
    bool repairApplied = false;
    /** Fraction of the run before the repair trigger fired. */
    double repairTriggerFraction = 1.0;

    double seconds() const { return sim::representedSeconds(runtimeCycles); }
};

/** Runs workloads under schemes. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig cfg = {});

    /**
     * Run @p workload under @p scheme. @p scale overrides the input
     * scale (1.0 = native inputs).
     */
    RunResult run(const workloads::WorkloadDef &workload, Scheme scheme,
                  double scale = 1.0);

    const ExperimentConfig &config() const { return cfg_; }

  private:
    RunResult runNative(const workloads::WorkloadDef &w, double scale,
                        bool manual_fix);
    RunResult runLaser(const workloads::WorkloadDef &w, double scale,
                       bool with_repair);
    RunResult runVTune(const workloads::WorkloadDef &w, double scale);
    RunResult runSheriff(const workloads::WorkloadDef &w, double scale,
                         bool detect_mode);

    workloads::BuildOptions
    makeOptions(double scale, bool manual_fix,
                std::uint64_t heap_shift) const;

    ExperimentConfig cfg_;
};

} // namespace laser::core

#endif // LASER_CORE_EXPERIMENT_H
