#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace laser {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_line = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << " " << cell
               << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << "\n";
        return os.str();
    };

    auto render_sep = [&]() {
        std::ostringstream os;
        os << "+";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
        return os.str();
    };

    std::ostringstream out;
    out << render_sep();
    out << render_line(headers_);
    out << render_sep();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
                separators_.end()) {
            out << render_sep();
        }
        out << render_line(rows_[r]);
    }
    out << render_sep();
    return out.str();
}

std::string
fmtDouble(double v, int places)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, v);
    return buf;
}

std::string
fmtTimes(double v, int places)
{
    return fmtDouble(v, places) + "x";
}

std::string
fmtPercent(double fraction, int places)
{
    return fmtDouble(fraction * 100.0, places) + "%";
}

std::string
fmtCount(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
humanBytes(std::uint64_t bytes)
{
    if (bytes < 1024)
        return std::to_string(bytes) + " B";
    double v = static_cast<double>(bytes);
    std::size_t unit = 0;
    static const char *const names[] = {"B",   "KiB", "MiB",
                                        "GiB", "TiB", "PiB"};
    while (v >= 1024.0 && unit + 1 < sizeof names / sizeof names[0]) {
        v /= 1024.0;
        ++unit;
    }
    return fmtDouble(v, 1) + " " + names[unit];
}

} // namespace laser
