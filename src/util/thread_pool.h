/**
 * @file
 * Minimal fixed-size worker pool with a blocking parallelFor primitive,
 * used by the sweep runner to fan experiment jobs across cores.
 *
 * The calling thread participates in draining the queue while it waits,
 * so a pool of N workers applies N+1 threads to a batch and nested
 * parallelFor calls cannot deadlock.
 */

#ifndef LASER_UTIL_THREAD_POOL_H
#define LASER_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace laser::util {

class ThreadPool
{
  public:
    /** @p workers 0 selects the hardware concurrency. */
    explicit ThreadPool(int workers = 0)
    {
        int n = workers > 0
                    ? workers
                    : static_cast<int>(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        threads_.reserve(n);
        for (int i = 0; i < n; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until every call has
     * completed. The first exception thrown by any call is rethrown here
     * (after the whole batch has drained).
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;

        struct Batch
        {
            std::mutex mu;
            std::condition_variable done;
            std::size_t remaining;
            std::exception_ptr error;
        };
        auto batch = std::make_shared<Batch>();
        batch->remaining = n;

        {
            std::lock_guard<std::mutex> lock(mu_);
            for (std::size_t i = 0; i < n; ++i) {
                // fn is captured by reference: parallelFor does not
                // return until every task has finished running it.
                queue_.push_back([batch, &fn, i] {
                    try {
                        fn(i);
                    } catch (...) {
                        std::lock_guard<std::mutex> lk(batch->mu);
                        if (!batch->error)
                            batch->error = std::current_exception();
                    }
                    std::lock_guard<std::mutex> lk(batch->mu);
                    if (--batch->remaining == 0)
                        batch->done.notify_all();
                });
            }
        }
        cv_.notify_all();

        // Help drain until nothing is queued, then wait for stragglers.
        for (;;) {
            std::function<void()> task;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!queue_.empty()) {
                    task = std::move(queue_.front());
                    queue_.pop_front();
                }
            }
            if (task) {
                task();
                continue;
            }
            break;
        }
        {
            std::unique_lock<std::mutex> lk(batch->mu);
            batch->done.wait(lk, [&] { return batch->remaining == 0; });
            if (batch->error)
                std::rethrow_exception(batch->error);
        }
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

} // namespace laser::util

#endif // LASER_UTIL_THREAD_POOL_H
