/**
 * @file
 * Minimal fixed-size worker pool with a blocking parallelFor primitive,
 * used by the sweep runner to fan experiment jobs across cores.
 *
 * The calling thread participates in draining the queue while it waits,
 * so a pool of N workers applies N+1 threads to a batch and nested
 * parallelFor calls cannot deadlock.
 *
 * All shared state (the task queue, the stop flag, a batch's completion
 * counters) is GUARDED_BY its mutex and locked through util::MutexLock,
 * so Clang's -Wthread-safety analysis proves the locking discipline at
 * compile time (see util/annotations.h).
 *
 * Observability (global obs registry):
 *   pool.tasks_completed        counter, one per executed task
 *   pool.exceptions_suppressed  counter, batch exceptions beyond the
 *                               first (the rethrown one)
 *   pool.queue_depth            gauge, tasks currently queued
 *   pool.queue_wait_seconds     histogram, enqueue -> dequeue latency
 *   pool.task_seconds           histogram, task run time
 *   pool.worker_idle_seconds    histogram, per idle episode (a worker
 *                               waking from an empty queue)
 * Metric recording happens outside the pool lock: the striped
 * counters/histograms are lock-free, but keeping them out of the
 * critical section keeps the lock hold times bounded by queue work
 * alone.
 */

#ifndef LASER_UTIL_THREAD_POOL_H
#define LASER_UTIL_THREAD_POOL_H

#include <chrono>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace laser::util {

class ThreadPool
{
  public:
    /** @p workers 0 selects the hardware concurrency. */
    explicit ThreadPool(int workers = 0)
    {
        int n = workers > 0
                    ? workers
                    : static_cast<int>(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        threads_.reserve(n);
        for (int i = 0; i < n; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            MutexLock lock(&mu_);
            stop_ = true;
        }
        cv_.notifyAll();
        for (std::thread &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until every call has
     * completed. The first exception thrown by any call is rethrown here
     * (after the whole batch has drained); further exceptions from the
     * same batch are counted in pool.exceptions_suppressed and noted in
     * the rethrown message when the first one derives from
     * std::exception.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;

        struct Batch
        {
            explicit Batch(std::size_t n_tasks) : remaining(n_tasks) {}
            Mutex mu;
            CondVar done;
            std::size_t remaining GUARDED_BY(mu);
            std::exception_ptr error GUARDED_BY(mu);
            std::size_t suppressed GUARDED_BY(mu) = 0;
        };
        auto batch = std::make_shared<Batch>(n);

        {
            MutexLock lock(&mu_);
            for (std::size_t i = 0; i < n; ++i) {
                // fn is captured by reference: parallelFor does not
                // return until every task has finished running it.
                queue_.push_back({[batch, &fn, i] {
                                      try {
                                          fn(i);
                                      } catch (...) {
                                          MutexLock lk(&batch->mu);
                                          if (!batch->error)
                                              batch->error =
                                                  std::current_exception();
                                          else
                                              ++batch->suppressed;
                                      }
                                      bool last = false;
                                      {
                                          MutexLock lk(&batch->mu);
                                          last = --batch->remaining == 0;
                                      }
                                      if (last)
                                          batch->done.notifyAll();
                                  },
                                  clock::now()});
            }
        }
        // Advisory gauge; updated just after the enqueue critical
        // section rather than inside it.
        queueDepthGauge().add(double(n));
        cv_.notifyAll();

        // Help drain until nothing is queued, then wait for stragglers.
        for (;;) {
            Task task;
            {
                MutexLock lock(&mu_);
                if (!queue_.empty()) {
                    task = std::move(queue_.front());
                    queue_.pop_front();
                }
            }
            if (task.fn) {
                runTask(task);
                continue;
            }
            break;
        }
        std::size_t suppressed = 0;
        std::exception_ptr error;
        {
            MutexLock lk(&batch->mu);
            while (batch->remaining != 0)
                batch->done.wait(batch->mu);
            error = batch->error;
            suppressed = batch->suppressed;
        }
        if (!error)
            return;
        if (suppressed > 0) {
            static obs::Counter &suppressed_counter =
                obs::Registry::global().counter(
                    "pool.exceptions_suppressed");
            suppressed_counter.inc(suppressed);
            // Append a note for std::exceptions (the common case); a
            // foreign exception type is rethrown untouched below.
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                throw std::runtime_error(
                    std::string(e.what()) + " [" +
                    std::to_string(suppressed) +
                    " additional exception(s) from the same parallelFor "
                    "batch suppressed]");
            } catch (...) {
            }
        }
        std::rethrow_exception(error);
    }

    /**
     * Enqueue one fire-and-forget task (the stats server's connection
     * handlers, etc.); returns immediately. Exceptions the task throws
     * are swallowed into pool.exceptions_suppressed — a post()ed task
     * has no caller left to rethrow into. Tasks still queued when the
     * pool is destroyed are drained by the workers before they join.
     */
    void
    post(std::function<void()> fn)
    {
        {
            MutexLock lock(&mu_);
            queue_.push_back(
                {[fn = std::move(fn)] {
                     try {
                         fn();
                     } catch (...) {
                         static obs::Counter &suppressed =
                             obs::Registry::global().counter(
                                 "pool.exceptions_suppressed");
                         suppressed.inc();
                     }
                 },
                 clock::now()});
        }
        queueDepthGauge().add(1.0);
        cv_.notifyOne();
    }

  private:
    using clock = std::chrono::steady_clock;

    struct Task
    {
        std::function<void()> fn;
        clock::time_point enqueued{};
    };

    // Handle accessors: resolved once, then each call is one relaxed
    // atomic on a thread-striped slot.
    static obs::Gauge &
    queueDepthGauge()
    {
        static obs::Gauge &g =
            obs::Registry::global().gauge("pool.queue_depth");
        return g;
    }

    void
    runTask(Task &task)
    {
        static obs::Counter &completed =
            obs::Registry::global().counter("pool.tasks_completed");
        static obs::Histogram &queue_wait =
            obs::Registry::global().histogram("pool.queue_wait_seconds");
        static obs::Histogram &task_seconds =
            obs::Registry::global().histogram("pool.task_seconds");

        const auto start = clock::now();
        queueDepthGauge().add(-1.0);
        queue_wait.record(
            std::chrono::duration<double>(start - task.enqueued).count());
        task.fn();
        completed.inc();
        task_seconds.record(
            std::chrono::duration<double>(clock::now() - start).count());
    }

    void
    workerLoop()
    {
        static obs::Histogram &idle_seconds =
            obs::Registry::global().histogram("pool.worker_idle_seconds");
        for (;;) {
            Task task;
            bool stopping = false;
            double idle = 0.0;
            {
                MutexLock lock(&mu_);
                const auto idle_start = clock::now();
                while (!stop_ && queue_.empty())
                    cv_.wait(mu_);
                idle = std::chrono::duration<double>(clock::now() -
                                                     idle_start)
                           .count();
                if (stop_ && queue_.empty()) {
                    stopping = true;
                } else {
                    task = std::move(queue_.front());
                    queue_.pop_front();
                }
            }
            // Sub-microsecond "waits" are just the predicate check on a
            // busy queue, not idleness. Recorded outside the pool lock.
            if (idle >= 1e-6)
                idle_seconds.record(idle);
            if (stopping)
                return;
            runTask(task);
        }
    }

    Mutex mu_;
    CondVar cv_;
    std::deque<Task> queue_ GUARDED_BY(mu_);
    bool stop_ GUARDED_BY(mu_) = false;
    /** Written only by the constructor; joined by the destructor. */
    std::vector<std::thread> threads_;
};

} // namespace laser::util

#endif // LASER_UTIL_THREAD_POOL_H
