/**
 * @file
 * Minimal fixed-size worker pool with a blocking parallelFor primitive,
 * used by the sweep runner to fan experiment jobs across cores.
 *
 * The calling thread participates in draining the queue while it waits,
 * so a pool of N workers applies N+1 threads to a batch and nested
 * parallelFor calls cannot deadlock.
 *
 * Observability (global obs registry):
 *   pool.tasks_completed        counter, one per executed task
 *   pool.exceptions_suppressed  counter, batch exceptions beyond the
 *                               first (the rethrown one)
 *   pool.queue_depth            gauge, tasks currently queued
 *   pool.queue_wait_seconds     histogram, enqueue -> dequeue latency
 *   pool.task_seconds           histogram, task run time
 *   pool.worker_idle_seconds    histogram, per idle episode (a worker
 *                               waking from an empty queue)
 */

#ifndef LASER_UTIL_THREAD_POOL_H
#define LASER_UTIL_THREAD_POOL_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace laser::util {

class ThreadPool
{
  public:
    /** @p workers 0 selects the hardware concurrency. */
    explicit ThreadPool(int workers = 0)
    {
        int n = workers > 0
                    ? workers
                    : static_cast<int>(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        threads_.reserve(n);
        for (int i = 0; i < n; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until every call has
     * completed. The first exception thrown by any call is rethrown here
     * (after the whole batch has drained); further exceptions from the
     * same batch are counted in pool.exceptions_suppressed and noted in
     * the rethrown message when the first one derives from
     * std::exception.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;

        struct Batch
        {
            std::mutex mu;
            std::condition_variable done;
            std::size_t remaining;
            std::exception_ptr error;
            std::size_t suppressed = 0;
        };
        auto batch = std::make_shared<Batch>();
        batch->remaining = n;

        {
            std::lock_guard<std::mutex> lock(mu_);
            for (std::size_t i = 0; i < n; ++i) {
                // fn is captured by reference: parallelFor does not
                // return until every task has finished running it.
                queue_.push_back({[batch, &fn, i] {
                                      try {
                                          fn(i);
                                      } catch (...) {
                                          std::lock_guard<std::mutex> lk(
                                              batch->mu);
                                          if (!batch->error)
                                              batch->error =
                                                  std::current_exception();
                                          else
                                              ++batch->suppressed;
                                      }
                                      std::lock_guard<std::mutex> lk(
                                          batch->mu);
                                      if (--batch->remaining == 0)
                                          batch->done.notify_all();
                                  },
                                  clock::now()});
            }
            queueDepthGauge().add(double(n));
        }
        cv_.notify_all();

        // Help drain until nothing is queued, then wait for stragglers.
        for (;;) {
            Task task;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (!queue_.empty()) {
                    task = std::move(queue_.front());
                    queue_.pop_front();
                }
            }
            if (task.fn) {
                runTask(task);
                continue;
            }
            break;
        }
        std::size_t suppressed = 0;
        std::exception_ptr error;
        {
            std::unique_lock<std::mutex> lk(batch->mu);
            batch->done.wait(lk, [&] { return batch->remaining == 0; });
            error = batch->error;
            suppressed = batch->suppressed;
        }
        if (!error)
            return;
        if (suppressed > 0) {
            static obs::Counter &suppressed_counter =
                obs::Registry::global().counter(
                    "pool.exceptions_suppressed");
            suppressed_counter.inc(suppressed);
            // Append a note for std::exceptions (the common case); a
            // foreign exception type is rethrown untouched below.
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                throw std::runtime_error(
                    std::string(e.what()) + " [" +
                    std::to_string(suppressed) +
                    " additional exception(s) from the same parallelFor "
                    "batch suppressed]");
            } catch (...) {
            }
        }
        std::rethrow_exception(error);
    }

  private:
    using clock = std::chrono::steady_clock;

    struct Task
    {
        std::function<void()> fn;
        clock::time_point enqueued{};
    };

    // Handle accessors: resolved once, then each call is one relaxed
    // atomic on a thread-striped slot.
    static obs::Gauge &
    queueDepthGauge()
    {
        static obs::Gauge &g =
            obs::Registry::global().gauge("pool.queue_depth");
        return g;
    }

    void
    runTask(Task &task)
    {
        static obs::Counter &completed =
            obs::Registry::global().counter("pool.tasks_completed");
        static obs::Histogram &queue_wait =
            obs::Registry::global().histogram("pool.queue_wait_seconds");
        static obs::Histogram &task_seconds =
            obs::Registry::global().histogram("pool.task_seconds");

        const auto start = clock::now();
        queueDepthGauge().add(-1.0);
        queue_wait.record(
            std::chrono::duration<double>(start - task.enqueued).count());
        task.fn();
        completed.inc();
        task_seconds.record(
            std::chrono::duration<double>(clock::now() - start).count());
    }

    void
    workerLoop()
    {
        static obs::Histogram &idle_seconds =
            obs::Registry::global().histogram("pool.worker_idle_seconds");
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                const auto idle_start = clock::now();
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                const double idle =
                    std::chrono::duration<double>(clock::now() -
                                                  idle_start)
                        .count();
                // Sub-microsecond "waits" are just the predicate check
                // on a busy queue, not idleness.
                if (idle >= 1e-6)
                    idle_seconds.record(idle);
                if (stop_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            runTask(task);
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> queue_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

} // namespace laser::util

#endif // LASER_UTIL_THREAD_POOL_H
