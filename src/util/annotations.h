/**
 * @file
 * Clang thread-safety (capability) annotation macros.
 *
 * Clang's `-Wthread-safety` analysis proves at compile time that every
 * access to a `GUARDED_BY(mu)` member happens with `mu` held, on every
 * control-flow path — not just the interleavings a TSan run happens to
 * schedule. The macros below expand to the corresponding Clang
 * attributes and to nothing on other compilers, so annotated code
 * builds everywhere and is *checked* wherever Clang builds it (the CI
 * `static-analysis` job, or locally with
 * `cmake -DLASER_THREAD_SAFETY=ON` under clang++).
 *
 * Usage is the standard capability vocabulary (the spelling Abseil and
 * the Clang documentation use):
 *
 *   - annotate shared state with `GUARDED_BY(mu_)`;
 *   - annotate functions that must be called with a lock held with
 *     `REQUIRES(mu_)`;
 *   - lock through `util::Mutex` / `util::MutexLock` (util/mutex.h),
 *     whose operations carry `ACQUIRE`/`RELEASE` so the analysis can
 *     track them (raw `std::mutex` is banned by `laser_lint`);
 *   - mark deliberate lock-free fast paths with
 *     `NO_THREAD_SAFETY_ANALYSIS` *plus a comment justifying why the
 *     access is safe* (e.g. synchronized by `std::call_once` or by a
 *     thread-pool batch barrier).
 *
 * New shared state must be annotated; see CONTRIBUTING.md.
 */

#ifndef LASER_UTIL_ANNOTATIONS_H
#define LASER_UTIL_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LASER_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LASER_THREAD_ANNOTATION_
#define LASER_THREAD_ANNOTATION_(x) // no-op off Clang
#endif

/** A type that represents a lock (util::Mutex). */
#define CAPABILITY(x) LASER_THREAD_ANNOTATION_(capability(x))

/** An RAII type that holds a capability for its lifetime. */
#define SCOPED_CAPABILITY LASER_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only with @p x held. */
#define GUARDED_BY(x) LASER_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define PT_GUARDED_BY(x) LASER_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function callable only with the listed capabilities held. */
#define REQUIRES(...)                                                    \
    LASER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function callable only with the capabilities held shared. */
#define REQUIRES_SHARED(...)                                             \
    LASER_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capability (and does not release it). */
#define ACQUIRE(...)                                                     \
    LASER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define RELEASE(...)                                                     \
    LASER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p ret. */
#define TRY_ACQUIRE(...)                                                 \
    LASER_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called with the capabilities held. */
#define EXCLUDES(...) LASER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Assert (at runtime) that the capability is held. */
#define ASSERT_CAPABILITY(x) LASER_THREAD_ANNOTATION_(assert_capability(x))

/** Function returning a reference to the capability guarding it. */
#define RETURN_CAPABILITY(x) LASER_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Opt a function body out of the analysis. Reserved for deliberate
 * lock-free fast paths; every use must carry a justification comment.
 */
#define NO_THREAD_SAFETY_ANALYSIS                                        \
    LASER_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // LASER_UTIL_ANNOTATIONS_H
