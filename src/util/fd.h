/**
 * @file
 * RAII ownership for raw POSIX file descriptors (sockets, O_APPEND
 * ledger fds, ...). The laser_lint raw-fd-close rule flags any bare
 * close() call under src/obs/, src/util/ and tools/ — descriptors there
 * must be owned by a UniqueFd so early returns and exceptions cannot
 * leak them.
 */

#ifndef LASER_UTIL_FD_H
#define LASER_UTIL_FD_H

#include <unistd.h>
#include <utility>

namespace laser::util {

/** Move-only owner of one fd; closes it on destruction/reset. */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}
    UniqueFd(UniqueFd &&other) noexcept : fd_(other.release()) {}

    UniqueFd &
    operator=(UniqueFd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    ~UniqueFd() { reset(); }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing; returns the fd (or -1). */
    int release() { return std::exchange(fd_, -1); }

    /** Close the current fd (if any) and adopt @p fd. */
    void
    reset(int fd = -1)
    {
        if (fd_ >= 0)
            // laser-lint: allow(raw-fd-close) — the one sanctioned
            // close site; everything else owns fds through UniqueFd
            ::close(fd_);
        fd_ = fd;
    }

  private:
    int fd_ = -1;
};

} // namespace laser::util

#endif // LASER_UTIL_FD_H
