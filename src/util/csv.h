/**
 * @file
 * Minimal CSV writer so experiment harnesses can dump machine-readable
 * results next to their human-readable tables.
 */

#ifndef LASER_UTIL_CSV_H
#define LASER_UTIL_CSV_H

#include <string>
#include <vector>

namespace laser {

/** Accumulates rows and writes an RFC-4180-ish CSV file. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; short rows are padded with empty fields. */
    void addRow(std::vector<std::string> cells);

    /** Render to a string (header first). */
    std::string render() const;

    /** Write to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    static std::string escape(const std::string &field);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace laser

#endif // LASER_UTIL_CSV_H
