/**
 * @file
 * Capability-annotated locking primitives: the only sanctioned way to
 * lock in this codebase.
 *
 * util::Mutex wraps std::mutex and carries the Clang `capability`
 * attribute, so `-Wthread-safety` can prove that every access to a
 * `GUARDED_BY(mu_)` member holds the right lock (see
 * util/annotations.h). util::MutexLock is the scoped holder;
 * util::CondVar pairs with Mutex for waiting. Raw std::mutex /
 * std::condition_variable / std::lock_guard / std::unique_lock are
 * banned outside this file by the `raw-mutex` rule of laser_lint —
 * an unannotated lock is invisible to the analysis, which silently
 * un-checks every member it guards.
 *
 * The wrappers are zero-cost: every method is an inline forward to the
 * std primitive underneath.
 */

#ifndef LASER_UTIL_MUTEX_H
#define LASER_UTIL_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace laser::util {

class CondVar;

/** Standard exclusive mutex, visible to the capability analysis. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_; // laser-lint: allow(raw-mutex) — the wrapped primitive
};

/**
 * RAII lock holder (the std::lock_guard of this codebase): acquires on
 * construction, releases on destruction, and tells the analysis so.
 *
 *     util::MutexLock lock(&mu_);
 *     guarded_member = ...; // provably safe
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex *mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
    ~MutexLock() RELEASE() { mu_->unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex *const mu_;
};

/**
 * Condition variable over util::Mutex.
 *
 * The capability analysis cannot model a wait's release-and-reacquire,
 * so wait() is declared REQUIRES(mu) — callers must hold the lock, the
 * invariant std::condition_variable demands anyway — and its body opts
 * out of the analysis. Use the explicit-loop form so the predicate's
 * guarded reads stay inside the caller's locked scope where the
 * analysis can see them:
 *
 *     util::MutexLock lock(&mu_);
 *     while (!ready_)   // ready_ is GUARDED_BY(mu_): checked
 *         cv_.wait(mu_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu, block, and reacquire before return. */
    void
    wait(Mutex &mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS
    {
        // Justification: wait() releases and reacquires mu through the
        // adopt/release dance below; the net effect (mu held on entry,
        // held again on return) matches the REQUIRES contract, which is
        // what callers are checked against.
        // laser-lint: allow(raw-mutex) — adopting the wrapped primitive
        std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
        cv_.wait(lk);
        lk.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_; // laser-lint: allow(raw-mutex)
};

} // namespace laser::util

#endif // LASER_UTIL_MUTEX_H
