/**
 * @file
 * Small statistics helpers shared by the experiment harnesses.
 *
 * The paper reports performance as "the average of 10 runs, after excluding
 * the slowest and fastest runs" (Section 7); trimmedMean implements exactly
 * that estimator. Normalized-runtime summaries use the geometric mean, as
 * in Figure 10.
 */

#ifndef LASER_UTIL_STATS_H
#define LASER_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace laser {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty sample. Requires all values > 0. */
double geomean(const std::vector<double> &xs);

/**
 * Mean after dropping the single smallest and single largest value,
 * matching the paper's benchmarking methodology. Falls back to the plain
 * mean for samples with fewer than 3 elements.
 */
double trimmedMean(std::vector<double> xs);

/** Population standard deviation; 0 for samples smaller than 2. */
double stddev(const std::vector<double> &xs);

/** Median (average of middle two for even sizes); 0 for empty samples. */
double median(std::vector<double> xs);

/**
 * Linear-interpolated quantile for @p q in [0, 1] (q=0.5 matches
 * median); 0 for empty samples. Used by the regression gate's IQR
 * computation (obs/ledger.h).
 */
double quantile(std::vector<double> xs, double q);

/** Minimum; 0 for an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0 for an empty sample. */
double maxOf(const std::vector<double> &xs);

} // namespace laser

#endif // LASER_UTIL_STATS_H
