#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace laser {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

std::string
CsvWriter::render() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << escape(cells[i]);
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << render();
    return static_cast<bool>(out);
}

} // namespace laser
