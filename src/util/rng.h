/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic decision in the LASER reproduction (PEBS record
 * imprecision, scheduler tie-breaking, workload input synthesis) draws from
 * an explicitly-seeded Rng so that every experiment is bit-reproducible.
 * The generator is xoshiro256** seeded through SplitMix64, which is both
 * fast and statistically strong enough for simulation purposes.
 */

#ifndef LASER_UTIL_RNG_H
#define LASER_UTIL_RNG_H

#include <cstdint>
#include <limits>

namespace laser {

/** SplitMix64 step; used to expand a single seed into a full state. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** deterministic random number generator.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used
 * with standard distributions, though the inline helpers below are
 * preferred because their output is platform-independent.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x1a5e21a5e2ULL) { reseed(seed); }

    /** Re-initialize the full state from a single seed value. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit output. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). Returns 0 when bound == 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Lemire's multiply-shift rejection-free reduction is biased by at
        // most 2^-64 for our bounds, which is irrelevant for simulation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /** Uniform integer in the closed interval [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Derive an independent child generator (for per-component streams). */
    Rng
    fork()
    {
        return Rng(operator()() ^ 0x9e3779b97f4a7c15ULL);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace laser

#endif // LASER_UTIL_RNG_H
