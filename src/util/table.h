/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every bench binary reproduces one of the paper's tables or figures and
 * prints a "paper vs measured" table; TablePrinter keeps that output
 * consistent and readable across all of them.
 */

#ifndef LASER_UTIL_TABLE_H
#define LASER_UTIL_TABLE_H

#include <string>
#include <vector>

namespace laser {

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 * @code
 *   TablePrinter t({"benchmark", "paper", "measured"});
 *   t.addRow({"kmeans", "1.22", "1.19"});
 *   std::cout << t.render();
 * @endcode
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator line before the next row. */
    void addSeparator();

    /** Render the complete table, including a header separator. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Format a double with the given number of decimal places. */
std::string fmtDouble(double v, int places = 2);

/** Format a value as a multiplier, e.g. "1.19x". */
std::string fmtTimes(double v, int places = 2);

/** Format a fraction as a percentage, e.g. 0.02 -> "2.0%". */
std::string fmtPercent(double fraction, int places = 1);

/** Format an integer count with thousands separators. */
std::string fmtCount(std::uint64_t v);

/**
 * Format a byte count human-readably with binary units, e.g.
 * 1536 -> "1.5 KiB", 42 -> "42 B". One decimal place above bytes.
 */
std::string humanBytes(std::uint64_t bytes);

} // namespace laser

#endif // LASER_UTIL_TABLE_H
