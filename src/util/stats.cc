#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace laser {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
trimmedMean(std::vector<double> xs)
{
    if (xs.size() < 3)
        return mean(xs);
    std::sort(xs.begin(), xs.end());
    double sum = 0.0;
    for (std::size_t i = 1; i + 1 < xs.size(); ++i)
        sum += xs[i];
    return sum / static_cast<double>(xs.size() - 2);
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    q = std::min(std::max(q, 0.0), 1.0);
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= xs.size())
        return xs.back();
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

} // namespace laser
