/**
 * @file
 * Splash2x workload kernels. The interesting ones for LASER:
 *
 *  - lu_ncb: the paper's novel false-sharing find — the non-contiguous
 *    `a` array's 800-byte per-thread chunks leave every chunk boundary
 *    mid-line when malloc returns offset 16 (mod 64). The LASER-attach
 *    heap shift (+48) re-aligns half the boundaries, which is exactly
 *    the "coincidental change in memory layout" that made lu_ncb 30%
 *    faster under LASER (Section 7.4.2); a barrier inside the sweep
 *    loop is what makes the region unanalyzable for LASERREPAIR.
 *  - volrend: true sharing on the tile-queue counter lock.
 *  - water_nsquared: SPLASH macro-expanded inline locks at many call
 *    sites — lots of total HITM traffic (LASER ~10% overhead, Sheriff
 *    ~5x) with no single line above the report threshold.
 */

#include "workloads/common.h"
#include "workloads/suites.h"

namespace laser::workloads {

using namespace laser::isa;

// -----------------------------------------------------------------------
// Generic compute-with-barriers kernel used by several members of the
// suite (they differ in compute mix, phase count and sync density).
// -----------------------------------------------------------------------

namespace {

struct PhasedParams
{
    std::string name;
    std::string file;
    std::int64_t phases = 8;
    std::int64_t inner = 200;
    int loads = 2;
    int arith = 4;
    int stores = 1;
    int baseLine = 30;
};

WorkloadBuild
buildPhased(const BuildOptions &opt, const PhasedParams &pp)
{
    Ctx ctx(pp.name, pp.file, opt);
    Asm &a = ctx.a;
    const std::uint64_t data = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 32768 + 4096, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 64; ++i)
        ctx.init64(data + 8ull * i, i * 17 + 5);

    a.at(pp.baseLine).tid(R1);
    a.movi(R5, ctx.scaled(pp.phases));
    Asm::Label phase = a.here();
    a.at(pp.baseLine + 4);
    emitThreadAddr(a, R2, R1, data, 32768, R3);
    a.at(pp.baseLine + 6);
    emitPrivateWork(a, R2, R4, pp.inner, pp.loads, pp.arith, pp.stores,
                    16);
    a.at(pp.baseLine + 14);
    emitBarrier(ctx, barrier);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, phase);
    a.at(pp.baseLine + 18).halt();
    return ctx.finish();
}

} // namespace

// -----------------------------------------------------------------------
// barnes
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildBarnes(const BuildOptions &opt)
{
    Ctx ctx("barnes", "barnes.c", opt);
    Asm &a = ctx.a;
    const std::int64_t bodies = ctx.scaled(450);
    const std::int64_t cells = 64;
    const std::uint64_t cell_locks = ctx.heap.allocAligned(cells * 64, 64);
    const std::uint64_t tree = ctx.heap.allocAligned(cells * 64, 64);
    const std::uint64_t barrier = ctx.allocBarrier();

    a.at(40).tid(R1);
    a.muli(R9, R1, 61);
    a.addi(R9, R9, 17);
    a.movi(R5, bodies);
    // Tree build: lock a pseudo-random cell, insert, unlock.
    Asm::Label insert = a.here();
    a.at(44).add(R9, R9, R5);
    a.muli(R6, R9, 64);
    a.movi(R7, (cells - 1) * 64);
    a.andr(R6, R6, R7);
    a.movi(R2, static_cast<std::int64_t>(cell_locks));
    a.add(R2, R2, R6);
    a.movi(R3, static_cast<std::int64_t>(tree));
    a.add(R3, R3, R6);
    a.at(48);
    emitInlineTtsAcquire(a, R2, R7);
    a.at(50).load(R6, R3, 0, 8);
    a.addi(R6, R6, 1);
    a.store(R3, 0, R6, 8);
    a.at(52);
    emitInlineRelease(a, R2);
    // Force computation (private, multiply heavy).
    for (int r = 0; r < 14; ++r) {
        a.at(56 + (r % 3)).mul(R6, R9, R9);
        a.addi(R6, R6, 3 + r);
        a.mul(R6, R6, R9);
        a.shri(R6, R6, 2);
        a.mul(R6, R6, R6);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, insert);
    a.at(62);
    emitBarrier(ctx, barrier);
    a.at(64).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeBarnes()
{
    WorkloadDef def;
    def.info.name = "barnes";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildBarnes;
    return def;
}

// -----------------------------------------------------------------------
// fft
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildFft(const BuildOptions &opt)
{
    Ctx ctx("fft", "fft.c", opt);
    Asm &a = ctx.a;
    const std::int64_t phases = 6;
    const std::int64_t elems = ctx.scaled(550);
    const std::uint64_t data = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 16384, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 64; ++i)
        ctx.init64(data + 8ull * i, i + 1);

    a.at(30).tid(R1);
    a.movi(R5, phases);
    Asm::Label phase = a.here();
    // Butterfly compute on the local partition.
    a.at(34);
    emitThreadAddr(a, R2, R1, data, 16384, R3);
    emitPrivateWork(a, R2, R4, elems, 2, 5, 2, 16);
    // Transpose: read one block written by the next thread (brief HITM
    // burst at each phase boundary, too sparse to cross any threshold).
    a.at(44).addi(R6, R1, 1);
    a.movi(R7, opt.numThreads - 1);
    a.andr(R6, R6, R7);
    emitThreadAddr(a, R2, R6, data, 16384, R3);
    a.movi(R4, 8);
    Asm::Label tr = a.here();
    a.at(47).load(R6, R2, 0, 8);
    a.addi(R2, R2, 64);
    a.mul(R7, R6, R6);
    a.addi(R7, R7, 5);
    a.subi(R4, R4, 1);
    a.bne(R4, R0, tr);
    a.at(50);
    emitBarrier(ctx, barrier);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, phase);
    a.at(54).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeFft()
{
    WorkloadDef def;
    def.info.name = "fft";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildFft;
    return def;
}

// -----------------------------------------------------------------------
// fmm / ocean / lu_cb (phased compute kernels)
// -----------------------------------------------------------------------

WorkloadDef
makeFmm()
{
    WorkloadDef def;
    def.info.name = "fmm";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = [](const BuildOptions &opt) {
        PhasedParams pp;
        pp.name = "fmm";
        pp.file = "fmm.c";
        pp.phases = 7;
        pp.inner = 260;
        pp.arith = 7;
        pp.baseLine = 70;
        return buildPhased(opt, pp);
    };
    return def;
}

WorkloadDef
makeLuCb()
{
    WorkloadDef def;
    def.info.name = "lu_cb";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::WorksSmallInput;
    def.build = [](const BuildOptions &opt) {
        PhasedParams pp;
        pp.name = "lu_cb";
        pp.file = "lu_cb.c";
        pp.phases = 14;
        pp.inner = 150;
        pp.loads = 2;
        pp.arith = 5;
        pp.stores = 2;
        pp.baseLine = 120;
        return buildPhased(opt, pp);
    };
    return def;
}

WorkloadDef
makeOceanCp()
{
    WorkloadDef def;
    def.info.name = "ocean_cp";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = [](const BuildOptions &opt) {
        PhasedParams pp;
        pp.name = "ocean_cp";
        pp.file = "ocean_cp.c";
        pp.phases = 9;
        pp.inner = 210;
        pp.loads = 3;
        pp.arith = 4;
        pp.stores = 1;
        pp.baseLine = 200;
        return buildPhased(opt, pp);
    };
    return def;
}

WorkloadDef
makeOceanNcp()
{
    WorkloadDef def;
    def.info.name = "ocean_ncp";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = [](const BuildOptions &opt) {
        PhasedParams pp;
        pp.name = "ocean_ncp";
        pp.file = "ocean_ncp.c";
        pp.phases = 9;
        pp.inner = 230;
        pp.loads = 3;
        pp.arith = 3;
        pp.stores = 2;
        pp.baseLine = 230;
        return buildPhased(opt, pp);
    };
    return def;
}

// -----------------------------------------------------------------------
// lu_ncb
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildLuNcb(const BuildOptions &opt)
{
    Ctx ctx("lu_ncb", "lu_ncb.c", opt);
    Asm &a = ctx.a;

    const std::int64_t steps = ctx.scaled(30);
    const std::int64_t chunk_elems = 100; // 800 bytes
    const std::int64_t chunks_per_thread = 3;
    const std::int64_t passes_per_step = 4;
    // The non-contiguous-block layout. Native: chunk size 800 bytes, so
    // with malloc's offset-16 start every chunk boundary is mid-line.
    // Manual fix: pad chunks to 832 (a line multiple) and align the
    // array (Section 7.4.2: 36% faster).
    const std::int64_t chunk_bytes = opt.manualFix ? 832 : 800;
    const std::int64_t total_chunks =
        chunks_per_thread * opt.numThreads;
    const std::uint64_t array =
        opt.manualFix
            ? ctx.heap.allocAligned(
                  std::uint64_t(chunk_bytes) * total_chunks, 64)
            : ctx.heap.alloc(std::uint64_t(chunk_bytes) * total_chunks);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 32; ++i)
        ctx.init64(array + 8ull * i, i + 3);

    a.at(140).tid(R1);
    a.movi(R5, steps);
    Asm::Label step = a.here();
    {
        // Sweep my (interleaved) chunks: thread t owns chunks
        // t, t+T, t+2T, ... — neighbours own adjacent chunks, so every
        // mid-line chunk boundary is falsely shared.
        a.at(144).movi(R4, chunks_per_thread);
        a.muli(R2, R1, chunk_bytes);
        a.movi(R3, static_cast<std::int64_t>(array));
        a.add(R2, R2, R3);
        Asm::Label chunk = a.here();
        {
            // LU re-sweeps each chunk several times per step (daxpy per
            // eliminated column); every pass re-contends the boundary
            // lines with the neighbouring owner.
            a.mov(R11, R2);
            a.movi(R10, passes_per_step);
            Asm::Label pass = a.here();
            // Each pass updates the leading and trailing edge regions of
            // the chunk (the daxpy working set of the current column
            // range) — both edges sit on the falsely-shared boundary
            // lines when malloc leaves the array unaligned.
            for (int edge = 0; edge < 2; ++edge) {
                if (edge == 0)
                    a.mov(R2, R11);
                else
                    a.addi(R2, R11, (chunk_elems - 25) * 8);
                a.movi(R6, 25);
                Asm::Label elem = a.here();
                // a[i] = a[i] * l + pivot (the contending sweep,
                // lu_ncb.c:155).
                a.at(154).load(R7, R2, 0, 8);
                a.at(155).muli(R7, R7, 3);
                a.addi(R7, R7, 1);
                a.mul(R8, R7, R7);
                a.addi(R8, R8, 7);
                a.shri(R8, R8, 1);
                a.at(156).store(R2, 0, R7, 8);
                a.addi(R2, R2, 8);
                a.subi(R6, R6, 1);
                a.bne(R6, R0, elem);
            }
            a.addi(R2, R11, chunk_elems * 8);
            a.subi(R10, R10, 1);
            a.bne(R10, R0, pass);
        }
        // Hop to my next chunk (skip the other threads' chunks).
        a.at(160).addi(R2, R2,
                       (opt.numThreads - 1) * chunk_bytes +
                           (chunk_bytes - chunk_elems * 8));
        a.subi(R4, R4, 1);
        a.bne(R4, R0, chunk);
        // Pivot-row broadcast read: genuine read-write sharing with the
        // pivot owner (reported by LASER; not in the bug database — the
        // paper's lu_ncb false positive).
        a.at(120).movi(R3, static_cast<std::int64_t>(array));
        a.movi(R4, 12);
        Asm::Label piv = a.here();
        a.at(122).load(R7, R3, 0, 8);
        a.addi(R3, R3, 8);
        a.subi(R4, R4, 1);
        a.bne(R4, R0, piv);
        // The barrier inside the step loop: the opaque call that makes
        // LASERREPAIR decline the region (Section 7.4.2).
        a.at(165);
        emitBarrier(ctx, barrier);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, step);
    a.at(170).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeLuNcb()
{
    WorkloadDef def;
    def.info.name = "lu_ncb";
    def.info.suite = Suite::Splash2x;
    def.info.bugs.push_back(
        {"lu_ncb.c:155", BugType::FalseSharing,
         "non-contiguous 800-byte chunks of the `a` array leave every "
         "chunk boundary mid-line (Section 7.4.2)",
         {"lu_ncb.c:154", "lu_ncb.c:156", "lu_ncb.c:160",
          "lu_ncb.c:144"}});
    def.info.sheriff = SheriffCompat::WorksSmallInput;
    def.info.hasManualFix = true;
    def.build = buildLuNcb;
    return def;
}

// -----------------------------------------------------------------------
// radiosity
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildRadiosity(const BuildOptions &opt)
{
    Ctx ctx("radiosity", "radiosity.c", opt);
    Asm &a = ctx.a;
    const std::int64_t tasks = ctx.scaled(420);
    const std::uint64_t task_lock = ctx.globals.allocAligned(64, 64);
    const std::uint64_t task_count = task_lock + 8;
    const std::uint64_t patches = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);
    ctx.init64(task_count, 0);

    a.at(80).tid(R1);
    emitThreadAddr(a, R9, R1, patches, 8192, R3);
    Asm::Label loop = a.newLabel();
    Asm::Label done = a.newLabel();
    a.bind(loop);
    // Task dequeue under a lock (moderate contention).
    a.at(84).movi(R2, static_cast<std::int64_t>(task_lock));
    emitInlineTtsAcquire(a, R2, R7);
    a.at(86).load(R4, R2, 8, 8);
    a.addi(R6, R4, 1);
    a.store(R2, 8, R6, 8);
    a.at(88);
    emitInlineRelease(a, R2);
    a.movi(R6, tasks);
    a.bge(R4, R6, done);
    // Radiosity interaction (compute heavy).
    a.at(92);
    emitPrivateWork(a, R9, R5, 110, 2, 7, 1, 8);
    emitThreadAddr(a, R9, R1, patches, 8192, R3);
    a.jmp(loop);
    a.bind(done);
    a.at(98).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeRadiosity()
{
    WorkloadDef def;
    def.info.name = "radiosity";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildRadiosity;
    return def;
}

// -----------------------------------------------------------------------
// radix
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildRadix(const BuildOptions &opt)
{
    Ctx ctx("radix", "radix.c", opt);
    Asm &a = ctx.a;
    const std::int64_t keys = ctx.scaled(2600);
    const std::uint64_t input = ctx.heap.allocAligned(
        std::uint64_t(keys) * opt.numThreads * 8, 64);
    // Global output array: the permute phase scatters stores into
    // ranked positions; neighbouring threads' ranges share lines at the
    // seams (real sharing, just over the threshold: the paper's one
    // radix false positive).
    const std::uint64_t output = ctx.heap.alloc(
        std::uint64_t(keys) * opt.numThreads * 8 + 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 64; ++i)
        ctx.init64(input + 8ull * i, (i * 37 + 11) % 4096);

    a.at(500).tid(R1);
    // Phase 1: local histogram (private).
    emitThreadAddr(a, R2, R1, input, keys * 8, R3);
    a.at(504);
    emitPrivateWork(a, R2, R4, keys / 4, 1, 3, 1, 32);
    a.at(510);
    emitBarrier(ctx, barrier);
    // Phase 2: permute into the (mostly private) output range; every
    // 16th key updates the shared overflow-bucket rank word — genuine
    // low-intensity sharing that lands just over LASER's threshold (the
    // paper's one radix false positive).
    a.at(514).tid(R1);
    emitThreadAddr(a, R2, R1, input, keys * 8, R3);
    a.muli(R9, R1, keys * 8);
    a.movi(R3, static_cast<std::int64_t>(output));
    a.add(R9, R9, R3);
    a.movi(R8, 1);
    a.movi(R5, keys / 2);
    Asm::Label permute = a.here();
    a.at(520).load(R6, R2, 0, 8);
    a.muli(R6, R6, 3);
    a.at(521).store(R9, 0, R6, 8);
    {
        Asm::Label skip = a.newLabel();
        a.movi(R6, 15);
        a.andr(R6, R5, R6);
        a.bne(R6, R0, skip);
        // Shared overflow-bucket rank update (radix.c:522).
        a.movi(R6, static_cast<std::int64_t>(
                       output + std::uint64_t(keys) * opt.numThreads * 8));
        a.at(522).addmem(R6, 0, R8, 8);
        a.bind(skip);
    }
    a.addi(R2, R2, 16);
    a.addi(R9, R9, 16);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, permute);
    a.at(526);
    emitBarrier(ctx, barrier);
    a.at(528).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeRadix()
{
    WorkloadDef def;
    def.info.name = "radix";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::WorksSmallInput;
    def.build = buildRadix;
    return def;
}

// -----------------------------------------------------------------------
// raytrace.splash2x
// -----------------------------------------------------------------------

WorkloadDef
makeRaytraceSplash2x()
{
    WorkloadDef def;
    def.info.name = "raytrace.splash2x";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Works;
    def.build = [](const BuildOptions &opt) {
        // Same traversal kernel as the parsec version, but with a much
        // hotter global ray-id counter: its dispatch lines are LASER's
        // (and Sheriff's) raytrace.splash2x false positives.
        Ctx ctx("raytrace_splash2x", "rltotems.c", opt);
        Asm &a = ctx.a;
        const std::int64_t rays = ctx.scaled(3400);
        const std::uint64_t bvh = ctx.heap.allocAligned(32768, 64);
        const std::uint64_t fb = ctx.heap.allocAligned(
            std::uint64_t(opt.numThreads) * 16384 + 4096, 64);
        const std::uint64_t ray_id = ctx.globals.allocAligned(64, 64);
        for (int i = 0; i < 256; ++i)
            ctx.init64(bvh + 8ull * i, (i * 5 + 1) % 509);

        a.at(18).tid(R1);
        emitThreadAddr(a, R2, R1, fb, 16384, R3);
        a.movi(R9, static_cast<std::int64_t>(bvh));
        a.movi(R5, rays);
        a.movi(R8, 1);
        Asm::Label ray = a.here();
        a.at(22).muli(R6, R5, 8);
        a.movi(R7, 2040);
        a.andr(R6, R6, R7);
        a.add(R6, R9, R6);
        a.at(24).load(R7, R6, 0, 8);
        a.at(25).muli(R7, R7, 8);
        a.movi(R4, 2040);
        a.andr(R7, R7, R4);
        a.add(R7, R9, R7);
        a.at(26).load(R4, R7, 0, 8);
        a.at(28).mul(R4, R4, R4);
        a.addi(R4, R4, 9);
        a.at(30).store(R2, 0, R4, 8);
        // Hot ray-id dispatch: every 16th ray.
        {
            Asm::Label skip = a.newLabel();
            a.at(33).movi(R4, 15);
            a.andr(R6, R5, R4);
            a.bne(R6, R0, skip);
            a.movi(R6, static_cast<std::int64_t>(ray_id));
            a.at(35).fetchadd(R3, R6, 0, R8);
            a.at(36).store(R6, 8, R3, 8);
            a.at(37).addmem(R6, 16, R8, 8);
            a.bind(skip);
        }
        a.subi(R5, R5, 1);
        a.bne(R5, R0, ray);
        a.at(40).halt();
        return ctx.finish();
    };
    return def;
}

// -----------------------------------------------------------------------
// volrend
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildVolrend(const BuildOptions &opt)
{
    Ctx ctx("volrend", "volrend.c", opt);
    Asm &a = ctx.a;
    const std::int64_t tiles = ctx.scaled(1900);
    const std::int64_t batch = opt.manualFix ? 8 : 1;
    // Global->Queue: {lock @0, counter @8} on one line — the true
    // sharing LASER finds (Section 7.4.3). The fix batches increments.
    const std::uint64_t queue = ctx.globals.allocAligned(64, 64);
    const std::uint64_t voxels = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);

    a.at(230).tid(R1);
    emitThreadAddr(a, R9, R1, voxels, 8192, R3);
    a.movi(R2, static_cast<std::int64_t>(queue));
    a.movi(R8, batch);
    Asm::Label loop = a.newLabel();
    Asm::Label done = a.newLabel();
    a.bind(loop);
    // Acquire the queue lock, bump the tile counter (volrend.c:241).
    a.at(240);
    emitInlineTtsAcquire(a, R2, R7);
    a.at(241).load(R4, R2, 8, 8);
    a.add(R6, R4, R8);
    a.at(242).store(R2, 8, R6, 8);
    a.at(243);
    emitInlineRelease(a, R2);
    a.movi(R6, tiles);
    a.bge(R4, R6, done);
    // Render `batch` tiles (private ray casting).
    for (int b = 0; b < batch; ++b) {
        a.at(250);
        emitPrivateWork(a, R9, R5, 7, 2, 5, 1, 8);
        emitThreadAddr(a, R9, R1, voxels, 8192, R3);
    }
    a.jmp(loop);
    a.bind(done);
    a.at(258).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeVolrend()
{
    WorkloadDef def;
    def.info.name = "volrend";
    def.info.suite = Suite::Splash2x;
    def.info.bugs.push_back(
        {"volrend.c:241", BugType::TrueSharing,
         "lock-protected Global->Queue counter bumped per tile "
         "(Section 7.4.3); batching reduces HITMs 10x, no speedup",
         {"volrend.c:240", "volrend.c:242", "volrend.c:243"}});
    def.info.sheriff = SheriffCompat::Crash;
    def.info.hasManualFix = true;
    def.build = buildVolrend;
    return def;
}

// -----------------------------------------------------------------------
// water_nsquared / water_spatial
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildWater(const BuildOptions &opt, const std::string &name,
           const std::string &file, int lock_sites,
           std::int64_t interactions, int compute_rounds)
{
    Ctx ctx(name, file, opt);
    Asm &a = ctx.a;
    const std::int64_t mol_count = 32;
    const std::uint64_t mol_locks =
        ctx.heap.allocAligned(mol_count * 64, 64);
    const std::uint64_t mols = ctx.heap.allocAligned(mol_count * 64, 64);
    const std::uint64_t barrier = ctx.allocBarrier();

    a.at(20).tid(R1);
    a.muli(R9, R1, 53);
    a.addi(R9, R9, 7);
    a.movi(R5, ctx.scaled(interactions));
    Asm::Label inter = a.here();
    // Each interaction updates one pseudo-random molecule under its
    // lock; the macro-expanded lock sites live at distinct source lines
    // (SPLASH ANL macros), so no single line concentrates the HITMs.
    a.at(24).add(R9, R9, R5);
    a.muli(R6, R9, 64);
    a.movi(R7, (mol_count - 1) * 64);
    a.andr(R6, R6, R7);
    a.movi(R2, static_cast<std::int64_t>(mol_locks));
    a.add(R2, R2, R6);
    a.movi(R3, static_cast<std::int64_t>(mols));
    a.add(R3, R3, R6);
    // Dispatch on interaction index to one of `lock_sites` inlined
    // LOCK/UNLOCK macro expansions.
    std::vector<Asm::Label> sites;
    std::vector<Asm::Label> joins;
    Asm::Label join = a.newLabel();
    for (int s = 0; s < lock_sites; ++s)
        sites.push_back(a.newLabel());
    a.movi(R7, lock_sites - 1);
    a.andr(R4, R5, R7);
    for (int s = 0; s < lock_sites - 1; ++s) {
        a.movi(R7, s);
        a.beq(R4, R7, sites[s]);
    }
    a.jmp(sites[lock_sites - 1]);
    for (int s = 0; s < lock_sites; ++s) {
        a.bind(sites[s]);
        const int line = 100 + 10 * s;
        a.at(line);
        emitInlineTtsAcquire(a, R2, R7);
        a.at(line + 2).load(R6, R3, 0, 8);
        a.addi(R6, R6, 1);
        a.store(R3, 0, R6, 8);
        a.at(line + 4);
        emitInlineRelease(a, R2);
        a.jmp(join);
    }
    a.bind(join);
    // Pairwise force compute (private).
    for (int r = 0; r < compute_rounds; ++r) {
        a.at(60 + r).mul(R6, R9, R9);
        a.addi(R6, R6, r + 1);
        a.mul(R6, R6, R9);
        a.shri(R6, R6, 3);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, inter);
    a.at(70);
    emitBarrier(ctx, barrier);
    a.at(72).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeWaterNsquared()
{
    WorkloadDef def;
    def.info.name = "water_nsquared";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::Works;
    def.build = [](const BuildOptions &opt) {
        return buildWater(opt, "water_nsquared", "water_ns.c", 16, 2600,
                          14);
    };
    return def;
}

WorkloadDef
makeWaterSpatial()
{
    WorkloadDef def;
    def.info.name = "water_spatial";
    def.info.suite = Suite::Splash2x;
    def.info.sheriff = SheriffCompat::WorksSmallInput;
    def.build = [](const BuildOptions &opt) {
        return buildWater(opt, "water_spatial", "water_sp.c", 4, 280,
                          40);
    };
    return def;
}

} // namespace laser::workloads
