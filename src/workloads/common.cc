#include "workloads/common.h"

namespace laser::workloads {

using namespace laser::isa;

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Phoenix:  return "phoenix";
      case Suite::Parsec:   return "parsec";
      case Suite::Splash2x: return "splash2x";
    }
    return "???";
}

const char *
bugTypeName(BugType type)
{
    return type == BugType::FalseSharing ? "FS" : "TS";
}

const char *
sheriffCompatName(SheriffCompat compat)
{
    switch (compat) {
      case SheriffCompat::Works:           return "works";
      case SheriffCompat::WorksSmallInput: return "works*";
      case SheriffCompat::Crash:           return "x";
      case SheriffCompat::Incompatible:    return "i";
    }
    return "???";
}

void
emitBarrier(Ctx &ctx, std::uint64_t barrier_addr)
{
    ctx.a.movi(R12, static_cast<std::int64_t>(barrier_addr));
    ctx.a.callLib(LibFn::BarrierWait);
}

void
emitInlineTtsAcquire(Asm &a, Reg addr_reg, Reg scratch)
{
    Asm::Label retry = a.here();
    Asm::Label spin = a.newLabel();
    Asm::Label done = a.newLabel();
    a.load(scratch, addr_reg, 0, 8);
    a.bne(scratch, R0, spin);
    a.movi(scratch, 1);
    a.markSync(a.cas(scratch, addr_reg, 0, R0), SyncKind::LockAcquire);
    a.beq(scratch, R0, done);
    a.bind(spin);
    a.pause();
    a.jmp(retry);
    a.bind(done);
}

void
emitInlineSpinAcquire(Asm &a, Reg addr_reg, Reg scratch)
{
    Asm::Label retry = a.here();
    Asm::Label done = a.newLabel();
    a.movi(scratch, 1);
    a.markSync(a.cas(scratch, addr_reg, 0, R0), SyncKind::LockAcquire);
    a.beq(scratch, R0, done);
    a.pause();
    a.jmp(retry);
    a.bind(done);
}

void
emitInlineRelease(Asm &a, Reg addr_reg)
{
    a.markSync(a.store(addr_reg, 0, R0, 8), SyncKind::LockRelease);
}

void
emitThreadAddr(Asm &a, Reg dst, Reg tid_reg, std::uint64_t base,
               std::int64_t stride, Reg scratch)
{
    a.muli(scratch, tid_reg, stride);
    a.movi(dst, static_cast<std::int64_t>(base));
    a.add(dst, dst, scratch);
}

void
emitPrivateWork(Asm &a, Reg data_reg, Reg counter_reg, std::int64_t iters,
                int loads, int arith, int stores, std::int64_t stride)
{
    a.movi(counter_reg, iters);
    Asm::Label loop = a.here();
    // Interleave loads with arithmetic (as a scheduling compiler would);
    // back-to-back loads are penalized by profilers that sample loads.
    int arith_left = arith;
    for (int i = 0; i < loads; ++i) {
        a.load(R6, data_reg, 8 * i, 8);
        if (arith_left > 0) {
            a.addi(R7, R6, i + 1);
            --arith_left;
        }
    }
    for (int i = 0; i < arith_left; ++i) {
        if (i % 3 == 2)
            a.mul(R7, R6, R6);
        else
            a.addi(R7, R6, i + 1);
    }
    for (int i = 0; i < stores; ++i)
        a.store(data_reg, 8 * i, R7, 8);
    if (stride != 0)
        a.addi(data_reg, data_reg, stride);
    a.subi(counter_reg, counter_reg, 1);
    a.bne(counter_reg, R0, loop);
}

} // namespace laser::workloads
