/**
 * @file
 * Workload framework: the reproduction's Phoenix / Parsec / Splash2x
 * benchmark suites (Section 7).
 *
 * Each workload is an IR kernel that reproduces the *sharing structure*
 * of the original benchmark — who writes which bytes of which lines, how
 * allocation decides layout, how much synchronization runs — plus
 * ground-truth metadata: the known performance bugs (the database of
 * Section 7.1, assembled from this paper and its prior work), Sheriff
 * compatibility (Table 1 / Figure 14), and the manual-fix variant used
 * for Figures 11/14.
 */

#ifndef LASER_WORKLOADS_WORKLOAD_H
#define LASER_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "sim/machine.h"

namespace laser::workloads {

/** Source benchmark suite. */
enum class Suite : std::uint8_t { Phoenix, Parsec, Splash2x };

const char *suiteName(Suite suite);

/** Ground-truth contention type of a known bug. */
enum class BugType : std::uint8_t { FalseSharing, TrueSharing };

const char *bugTypeName(BugType type);

/** One entry of the known-performance-bug database. */
struct KnownBug
{
    /** Canonical "file:line" of the contending source code. */
    std::string location;
    BugType type = BugType::FalseSharing;
    std::string description;
    /**
     * Additional lines that are part of the same bug (the contending
     * loop spans several statements); reports matching any of these do
     * not count as false positives.
     */
    std::vector<std::string> relatedLocations;
};

/** Sheriff compatibility per Table 1 / Figure 14. */
enum class SheriffCompat : std::uint8_t {
    Works,           ///< runs with native inputs
    WorksSmallInput, ///< runs only with simlarge inputs (the * of Fig 14)
    Crash,           ///< runtime error ("x" in Table 1)
    Incompatible,    ///< unsupported pthreads/OpenMP ("i" in Table 1)
};

const char *sheriffCompatName(SheriffCompat compat);

/** Static description of one workload. */
struct WorkloadInfo
{
    std::string name;
    Suite suite = Suite::Phoenix;
    std::vector<KnownBug> bugs;
    SheriffCompat sheriff = SheriffCompat::Works;
    /**
     * Whether Sheriff-Detect's object-granularity sampling reports the
     * bug (encoded from Table 1/2; Sheriff's internal heuristics are out
     * of reproduction scope — see DESIGN.md).
     */
    bool sheriffDetectsBug = false;
    /** What Sheriff-Detect reports when it does (allocation site). */
    std::string sheriffReportLocation;
    /** Has a manual-fix variant (Figures 11/14). */
    bool hasManualFix = false;
};

/** Options for building one workload instance. */
struct BuildOptions
{
    /** Build the manually-fixed variant (padding/alignment/restructure). */
    bool manualFix = false;
    /**
     * Initial-heap-break shift in bytes; must match the machine's
     * MachineConfig::heapPerturbation (LASER attach shifts layout).
     */
    std::uint64_t heapPerturbation = 0;
    int numThreads = 4;
    /** Input-synthesis seed. */
    std::uint64_t inputSeed = 0x5eed;
    /**
     * Work scale factor (1.0 = default "native" input). The Sheriff
     * comparison uses smaller inputs for some workloads (Figure 14).
     */
    double scale = 1.0;
};

/** A built workload: program + initial memory image. */
struct WorkloadBuild
{
    isa::Program program;

    struct MemInit
    {
        std::uint64_t addr;
        std::uint8_t size;
        std::uint64_t value;
    };
    std::vector<MemInit> inits;

    /** Write the initial memory image into a machine. */
    void
    applyTo(sim::Machine &m) const
    {
        for (const MemInit &mi : inits)
            m.memory().write(mi.addr, mi.size, mi.value);
    }
};

/** A registered workload: metadata + builder. */
struct WorkloadDef
{
    WorkloadInfo info;
    std::function<WorkloadBuild(const BuildOptions &)> build;
};

/** All 35 workload configurations, in Table 1 order. */
const std::vector<WorkloadDef> &allWorkloads();

/** Lookup by name; nullptr if unknown. */
const WorkloadDef *findWorkload(const std::string &name);

/** The nine workloads with known performance bugs (Table 2). */
std::vector<const WorkloadDef *> buggyWorkloads();

} // namespace laser::workloads

#endif // LASER_WORKLOADS_WORKLOAD_H
