/**
 * @file
 * PARSEC 3.0 workload kernels. The interesting ones for LASER:
 *
 *  - dedup: the paper's novel true-sharing find — every pipeline queue
 *    is protected by a single lock, serializing enqueue/dequeue
 *    (Section 7.4.2); its per-line HITM rates sit between LASER's 1K/s
 *    threshold and VTune's 2K/s, which is why VTune misses it (Table 1).
 *  - bodytrack: true sharing in TicketDispenser::getTicket().
 *  - streamcluster: work_mem[] padded for 32-byte lines, insufficient
 *    for 64-byte lines (Section 7.4.3).
 *  - x264: reference-frame sharing spread thinly across many source
 *    lines — enough total HITM traffic to cost LASER ~15% monitoring
 *    overhead (Figure 12) without any single line crossing the
 *    reporting threshold.
 */

#include "workloads/common.h"
#include "workloads/suites.h"

namespace laser::workloads {

using namespace laser::isa;

// -----------------------------------------------------------------------
// blackscholes
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildBlackscholes(const BuildOptions &opt)
{
    Ctx ctx("blackscholes", "blackscholes.c", opt);
    Asm &a = ctx.a;
    const std::int64_t options = ctx.scaled(5200);
    const std::uint64_t data = ctx.heap.allocAligned(
        std::uint64_t(options) * opt.numThreads * 40 + 4096, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 40; ++i)
        ctx.init64(data + 8ull * i, 90 + i);

    a.at(30).tid(R1);
    emitThreadAddr(a, R2, R1, data, options * 40, R3);
    a.at(32).movi(R4, options);
    Asm::Label loop = a.here();
    a.at(35).load(R6, R2, 0, 8);  // spot
    a.addi(R6, R6, 1);
    a.at(36).load(R7, R2, 8, 8);  // strike
    a.at(38).mul(R8, R6, R6);
    a.mul(R8, R8, R7);
    a.addi(R8, R8, 42);
    a.mul(R8, R8, R6);
    a.shri(R8, R8, 3);
    a.at(41).store(R2, 32, R8, 8); // private price
    a.addi(R2, R2, 40);
    a.subi(R4, R4, 1);
    a.bne(R4, R0, loop);
    a.at(45);
    emitBarrier(ctx, barrier);
    a.at(46).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeBlackscholes()
{
    WorkloadDef def;
    def.info.name = "blackscholes";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildBlackscholes;
    return def;
}

// -----------------------------------------------------------------------
// bodytrack
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildBodytrack(const BuildOptions &opt)
{
    Ctx ctx("bodytrack", "TicketDispenser.cpp", opt);
    Asm &a = ctx.a;

    const std::int64_t tickets = ctx.scaled(2600);
    // Ticket dispenser object: counter plus a lastIssued bookkeeping
    // word on the same line (both contended).
    const std::uint64_t dispenser = ctx.globals.allocAligned(64, 64);
    // Shared observation accumulator updated per particle batch
    // (secondary, real contention -> Table 1 false positives).
    const std::uint64_t accum = ctx.globals.allocAligned(64, 64);
    const std::uint64_t frame = ctx.heap.allocAligned(65536, 64);
    for (int i = 0; i < 128; ++i)
        ctx.init64(frame + 8ull * i, i * 3 + 1);

    a.file("bodytrack.cpp").at(20).tid(R1);
    a.movi(R2, static_cast<std::int64_t>(dispenser));
    a.movi(R9, static_cast<std::int64_t>(accum));
    emitThreadAddr(a, R5, R1, frame + 8192, 2048, R3);
    a.movi(R8, 1);

    Asm::Label loop = a.newLabel();
    Asm::Label done = a.newLabel();
    a.bind(loop);
    // TicketDispenser::getTicket(): the true-sharing bug.
    a.file("TicketDispenser.cpp").at(42).fetchadd(R4, R2, 0, R8);
    a.at(43).store(R2, 8, R4, 8); // lastIssued bookkeeping
    a.movi(R6, tickets);
    a.bge(R4, R6, done);

    // Particle-weight work: loads from the (read-shared) frame plus
    // private stores.
    a.file("bodytrack.cpp").at(60);
    a.movi(R7, static_cast<std::int64_t>(frame));
    a.muli(R6, R4, 8);
    a.movi(R3, 1016);
    a.andr(R6, R6, R3);
    a.add(R7, R7, R6);
    a.movi(R3, 26);
    Asm::Label work = a.here();
    a.at(64).load(R6, R7, 0, 8);
    a.at(65).mul(R6, R6, R6);
    a.addi(R6, R6, 7);
    a.mul(R6, R6, R6);
    a.at(66).store(R5, 0, R6, 8);
    a.subi(R3, R3, 1);
    a.bne(R3, R0, work);
    // Shared accumulator updates every 4th ticket (secondary, real
    // contention: the Table 1 false positives).
    {
        Asm::Label skip = a.newLabel();
        a.movi(R3, 3);
        a.andr(R3, R4, R3);
        a.bne(R3, R0, skip);
        a.at(72).addmem(R9, 0, R8, 8);
        a.at(73).addmem(R9, 8, R8, 8);
        a.bind(skip);
    }
    a.jmp(loop);
    a.bind(done);
    a.at(80).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeBodytrack()
{
    WorkloadDef def;
    def.info.name = "bodytrack";
    def.info.suite = Suite::Parsec;
    def.info.bugs.push_back(
        {"TicketDispenser.cpp:42", BugType::TrueSharing,
         "getTicket(): all workers fetch-and-add one counter; "
         "fundamental to load balancing (Section 7.4.2)",
         {"TicketDispenser.cpp:43"}});
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildBodytrack;
    return def;
}

// -----------------------------------------------------------------------
// canneal
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildCanneal(const BuildOptions &opt)
{
    Ctx ctx("canneal", "canneal.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t moves = ctx.scaled(2200);
    const std::int64_t elements = 512;
    const std::uint64_t netlist = ctx.heap.allocAligned(elements * 64, 64);
    for (int i = 0; i < elements; ++i)
        ctx.init64(netlist + 64ull * i, i);

    a.at(30).tid(R1);
    a.muli(R9, R1, 127); // per-thread walk stride
    a.addi(R9, R9, 31);
    a.at(32).movi(R4, moves);
    a.movi(R2, static_cast<std::int64_t>(netlist));
    a.movi(R5, 0);
    Asm::Label loop = a.here();
    // Pick a pseudo-random element; swap (CAS) only every 4th move;
    // contention is migratory and rare (512 elements, 4 threads).
    a.at(36).add(R5, R5, R9);
    a.at(37).muli(R6, R5, 64);
    a.movi(R7, (elements - 1) * 64);
    a.andr(R6, R6, R7);
    a.add(R6, R2, R6);
    {
        Asm::Label skip = a.newLabel();
        a.movi(R7, 3);
        a.andr(R7, R4, R7);
        a.bne(R7, R0, skip);
        a.at(40).load(R7, R6, 0, 8);
        a.at(41).addi(R8, R7, 1);
        a.cas(R8, R6, 0, R7);
        a.bind(skip);
    }
    // Routing-cost estimate (private compute).
    for (int r = 0; r < 4; ++r) {
        a.at(44 + r).mul(R8, R9, R9);
        a.addi(R8, R8, 13 + r);
        a.mul(R8, R8, R9);
        a.shri(R8, R8, 2);
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, loop);
    a.at(50).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeCanneal()
{
    WorkloadDef def;
    def.info.name = "canneal";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildCanneal;
    return def;
}

// -----------------------------------------------------------------------
// dedup
// -----------------------------------------------------------------------

namespace {

/**
 * Pipeline: t0 produces into q1, t1 transforms q1 -> q2, t2/t3 consume
 * q2. Each queue is {lock @0, head @8, tail @16, ring @64..}; the naive
 * build takes the single queue lock around every operation.
 */
WorkloadBuild
buildDedup(const BuildOptions &opt, bool lockfree)
{
    Ctx ctx("dedup", "queue.c", opt);
    Asm &a = ctx.a;

    const std::int64_t items = ctx.scaled(700);
    const std::int64_t ring_mask = 255;
    const std::uint64_t q1 = ctx.heap.allocAligned(64 + 256 * 8, 64);
    const std::uint64_t q2 = ctx.heap.allocAligned(64 + 256 * 8, 64);
    const std::uint64_t chunks = ctx.heap.allocAligned(65536, 64);
    for (int i = 0; i < 256; ++i)
        ctx.init64(chunks + 8ull * i, 0x517e0000 + i);

    // --- helpers -------------------------------------------------------
    // enqueue(q in R2, value in R6): returns with slot written.
    auto emit_enqueue = [&](std::uint64_t q) {
        a.movi(R2, static_cast<std::int64_t>(q));
        if (!lockfree) {
            a.file("queue.c").at(31);
            emitInlineTtsAcquire(a, R2, R7);
            a.at(33).load(R8, R2, 16, 8); // tail
            a.muli(R9, R8, 8);
            a.movi(R3, ring_mask * 8);
            a.andr(R9, R9, R3);
            a.addi(R9, R9, 64);
            a.add(R9, R2, R9);
            a.store(R9, 0, R6, 8);
            a.addi(R8, R8, 1);
            a.at(34).store(R2, 16, R8, 8);
            a.at(35);
            emitInlineRelease(a, R2);
        } else {
            // Lock-free (Boost-like): fetch-add the tail ticket.
            a.file("queue.c").at(131).movi(R8, 1);
            a.fetchadd(R8, R2, 16, R8);
            a.muli(R9, R8, 8);
            a.movi(R3, ring_mask * 8);
            a.andr(R9, R9, R3);
            a.addi(R9, R9, 64);
            a.add(R9, R2, R9);
            a.at(133).store(R9, 0, R6, 8);
        }
    };
    // dequeue(q in R2) -> R6; spins until head < tail.
    auto emit_dequeue = [&](std::uint64_t q) {
        a.movi(R2, static_cast<std::int64_t>(q));
        if (!lockfree) {
            // Lock-free peek before taking the lock (double-checked),
            // so waiting consumers do not hammer the lock line.
            Asm::Label retry = a.here();
            {
                Asm::Label ready = a.newLabel();
                a.file("queue.c").at(40);
                a.load(R8, R2, 8, 8);
                a.load(R9, R2, 16, 8);
                a.blt(R8, R9, ready);
                for (int p = 0; p < 20; ++p)
                    a.pause();
                a.jmp(retry);
                a.bind(ready);
            }
            a.file("queue.c").at(41);
            emitInlineTtsAcquire(a, R2, R7);
            a.at(43).load(R8, R2, 8, 8);  // head
            a.load(R9, R2, 16, 8);        // tail
            Asm::Label got = a.newLabel();
            a.blt(R8, R9, got);
            a.at(44);
            emitInlineRelease(a, R2);
            // Back off while the queue is empty instead of hammering
            // the lock line.
            for (int p = 0; p < 12; ++p)
                a.pause();
            a.jmp(retry);
            a.bind(got);
            a.at(46).muli(R9, R8, 8);
            a.movi(R3, ring_mask * 8);
            a.andr(R9, R9, R3);
            a.addi(R9, R9, 64);
            a.add(R9, R2, R9);
            a.load(R6, R9, 0, 8);
            a.addi(R8, R8, 1);
            a.at(47).store(R2, 8, R8, 8);
            a.at(48);
            emitInlineRelease(a, R2);
        } else {
            a.file("queue.c").at(141);
            Asm::Label retry = a.here();
            a.load(R8, R2, 8, 8);
            a.load(R9, R2, 16, 8);
            Asm::Label got = a.newLabel();
            a.blt(R8, R9, got);
            for (int p = 0; p < 12; ++p)
                a.pause();
            a.jmp(retry);
            a.bind(got);
            a.at(143).addi(R9, R8, 1);
            a.mov(R3, R9);
            a.mov(R9, R8);
            // CAS head: claim the slot.
            a.mov(R4, R3);
            a.movi(R3, 8);
            // desired in R4, expected in R8
            a.cas(R4, R2, 8, R8);
            a.bne(R4, R8, retry);
            a.at(145).muli(R9, R8, 8);
            a.movi(R3, ring_mask * 8);
            a.andr(R9, R9, R3);
            a.addi(R9, R9, 64);
            a.add(R9, R2, R9);
            a.load(R6, R9, 0, 8);
        }
    };
    // Per-item transform work (compression model).
    auto emit_work = [&](int rounds, int base_line) {
        a.file("dedup.c").at(base_line).movi(R4, rounds);
        Asm::Label w = a.here();
        a.at(base_line + 1).load(R7, R5, 0, 8);
        a.at(base_line + 2).mul(R7, R7, R7);
        a.addi(R7, R7, 3);
        a.shri(R7, R7, 1);
        a.at(base_line + 3).store(R5, 8, R7, 8);
        a.subi(R4, R4, 1);
        a.bne(R4, R0, w);
    };

    Asm::Label stage1 = a.newLabel();
    Asm::Label stage2 = a.newLabel();
    Asm::Label consume = a.newLabel();
    a.file("dedup.c").at(20).tid(R1);
    emitThreadAddr(a, R5, R1, chunks + 16384, 2048, R3);
    a.movi(R9, 1);
    a.beq(R1, R9, stage2);
    a.movi(R9, 0);
    a.bne(R1, R9, consume);
    a.jmp(stage1);

    // --- t0: producer --------------------------------------------------
    a.bind(stage1);
    a.at(30).movi(R11, items); // r11: counter (enqueue clobbers r3-r9)
    {
        Asm::Label loop = a.here();
        a.mov(R6, R11);
        emit_work(14, 32);
        a.mov(R6, R11);
        emit_enqueue(q1);
        a.file("dedup.c").at(38).subi(R11, R11, 1);
        a.bne(R11, R0, loop);
    }
    // Sentinel values so downstream stages terminate.
    a.movi(R6, -1);
    emit_enqueue(q1);
    a.file("dedup.c").at(40).halt();

    // --- t1: transform q1 -> q2 ----------------------------------------
    a.bind(stage2);
    {
        Asm::Label loop = a.here();
        emit_dequeue(q1);
        a.file("dedup.c").at(50).movi(R3, -1);
        Asm::Label out = a.newLabel();
        a.beq(R6, R3, out);
        a.mov(R11, R6);
        emit_work(6, 52);
        a.mov(R6, R11);
        emit_enqueue(q2);
        a.jmp(loop);
        a.bind(out);
        a.movi(R6, -1);
        emit_enqueue(q2); // forward sentinel (twice, one per consumer)
        a.movi(R6, -1);
        emit_enqueue(q2);
        a.file("dedup.c").at(58).halt();
    }

    // --- t2/t3: consumers ----------------------------------------------
    a.bind(consume);
    {
        Asm::Label loop = a.here();
        emit_dequeue(q2);
        a.file("dedup.c").at(60).movi(R3, -1);
        Asm::Label out = a.newLabel();
        a.beq(R6, R3, out);
        emit_work(6, 62);
        a.jmp(loop);
        a.bind(out);
        a.at(68).halt();
    }
    return ctx.finish();
}

} // namespace

WorkloadDef
makeDedup()
{
    WorkloadDef def;
    def.info.name = "dedup";
    def.info.suite = Suite::Parsec;
    def.info.bugs.push_back(
        {"queue.c:31", BugType::TrueSharing,
         "single lock per pipeline queue serializes enqueue/dequeue "
         "(Section 7.4.2); fixed with a lock-free queue",
         {"queue.c:33", "queue.c:34", "queue.c:35", "queue.c:41",
          "queue.c:43", "queue.c:44", "queue.c:46", "queue.c:47",
          "queue.c:48"}});
    def.info.sheriff = SheriffCompat::Incompatible; // spin locks
    def.info.hasManualFix = true;
    def.build = [](const BuildOptions &opt) {
        return buildDedup(opt, opt.manualFix);
    };
    return def;
}

// -----------------------------------------------------------------------
// facesim
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildFacesim(const BuildOptions &opt)
{
    Ctx ctx("facesim", "facesim.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t frames = ctx.scaled(12);
    const std::uint64_t mesh = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 16384 + 4096, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 64; ++i)
        ctx.init64(mesh + 8ull * i, i + 11);

    a.at(20).tid(R1);
    a.movi(R5, frames);
    Asm::Label frame = a.here();
    a.at(24);
    emitThreadAddr(a, R2, R1, mesh, 16384, R3);
    emitPrivateWork(a, R2, R4, 220, 2, 5, 1, 16);
    a.at(30);
    emitBarrier(ctx, barrier);
    a.at(32);
    emitThreadAddr(a, R2, R1, mesh, 16384, R3);
    emitPrivateWork(a, R2, R4, 140, 1, 7, 1, 16);
    a.at(38);
    emitBarrier(ctx, barrier);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, frame);
    a.at(42).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeFacesim()
{
    WorkloadDef def;
    def.info.name = "facesim";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildFacesim;
    return def;
}

// -----------------------------------------------------------------------
// ferret
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildFerret(const BuildOptions &opt)
{
    Ctx ctx("ferret", "ferret.c", opt);
    Asm &a = ctx.a;
    const std::int64_t queries = ctx.scaled(220);
    const std::uint64_t work = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);
    // A lightly-contended work counter (rates stay below thresholds).
    const std::uint64_t counter = ctx.globals.allocAligned(64, 64);
    for (int i = 0; i < 32; ++i)
        ctx.init64(work + 8ull * i, 21 + i);

    a.at(25).tid(R1);
    emitThreadAddr(a, R2, R1, work, 8192, R3);
    a.movi(R9, static_cast<std::int64_t>(counter));
    a.movi(R8, 1);
    a.movi(R5, queries);
    Asm::Label q = a.here();
    // Image-similarity stage: compute heavy per query.
    a.at(30);
    emitPrivateWork(a, R2, R4, 90, 2, 8, 1, 8);
    emitThreadAddr(a, R2, R1, work, 8192, R3);
    // Rank aggregation every 4th query (stays below thresholds).
    {
        Asm::Label skip = a.newLabel();
        a.movi(R6, 3);
        a.andr(R6, R5, R6);
        a.bne(R6, R0, skip);
        a.at(40).fetchadd(R6, R9, 0, R8);
        a.bind(skip);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, q);
    a.at(45).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeFerret()
{
    WorkloadDef def;
    def.info.name = "ferret";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildFerret;
    return def;
}

// -----------------------------------------------------------------------
// fluidanimate
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildFluidanimate(const BuildOptions &opt)
{
    Ctx ctx("fluidanimate", "fluidanimate.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t steps = ctx.scaled(170);
    const std::int64_t cells = 128;
    // One fine-grained lock per cell, line-padded.
    const std::uint64_t locks = ctx.heap.allocAligned(cells * 64, 64);
    const std::uint64_t grid = ctx.heap.allocAligned(cells * 64, 64);

    a.at(30).tid(R1);
    a.muli(R9, R1, 37);
    a.addi(R9, R9, 11);
    a.movi(R5, steps);
    Asm::Label step = a.here();
    // Pick a cell, compute forces privately, lock it, update, unlock.
    a.at(34).add(R9, R9, R5);
    a.muli(R6, R9, 64);
    a.movi(R7, (cells - 1) * 64);
    a.andr(R6, R6, R7);
    a.movi(R2, static_cast<std::int64_t>(locks));
    a.add(R2, R2, R6);
    a.movi(R3, static_cast<std::int64_t>(grid));
    a.add(R3, R3, R6);
    for (int r = 0; r < 18; ++r) {
        a.at(38).mul(R8, R9, R9);
        a.addi(R8, R8, 5 + r);
        a.mul(R8, R8, R9);
        a.shri(R8, R8, 1);
    }
    a.at(42);
    emitInlineTtsAcquire(a, R2, R7);
    a.at(44).load(R6, R3, 0, 8);
    a.add(R6, R6, R8);
    a.store(R3, 0, R6, 8);
    a.at(46);
    emitInlineRelease(a, R2);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, step);
    a.at(50).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeFluidanimate()
{
    WorkloadDef def;
    def.info.name = "fluidanimate";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Crash;
    def.build = buildFluidanimate;
    return def;
}

// -----------------------------------------------------------------------
// freqmine
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildFreqmine(const BuildOptions &opt)
{
    Ctx ctx("freqmine", "freqmine.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t transactions = ctx.scaled(1600);
    const std::uint64_t tree = ctx.heap.allocAligned(32768, 64);
    const std::uint64_t out = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);
    for (int i = 0; i < 256; ++i)
        ctx.init64(tree + 8ull * i, (i * 7 + 3) % 251);

    a.at(22).tid(R1);
    emitThreadAddr(a, R2, R1, out, 8192, R3);
    a.movi(R9, static_cast<std::int64_t>(tree));
    a.movi(R5, transactions);
    Asm::Label t = a.here();
    // FP-tree walk: chase a few read-shared nodes, then a private store.
    a.at(26).andr(R6, R5, R5);
    a.muli(R6, R5, 8);
    a.movi(R7, 2040);
    a.andr(R6, R6, R7);
    a.add(R6, R9, R6);
    a.at(28).load(R7, R6, 0, 8);
    a.at(29).muli(R7, R7, 8);
    a.movi(R8, 2040);
    a.andr(R7, R7, R8);
    a.add(R7, R9, R7);
    a.at(30).load(R8, R7, 0, 8);
    a.at(31).addi(R8, R8, 1);
    a.at(32).store(R2, 0, R8, 8);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, t);
    a.at(36).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeFreqmine()
{
    WorkloadDef def;
    def.info.name = "freqmine";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Incompatible; // OpenMP
    def.build = buildFreqmine;
    return def;
}

// -----------------------------------------------------------------------
// raytrace (parsec)
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildRaytrace(const BuildOptions &opt, const std::string &name,
              const std::string &file, std::int64_t rays_scale,
              std::int64_t counter_period)
{
    Ctx ctx(name, file, opt);
    Asm &a = ctx.a;
    const std::int64_t rays = ctx.scaled(rays_scale);
    const std::uint64_t bvh = ctx.heap.allocAligned(32768, 64);
    const std::uint64_t framebuffer = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 16384 + 4096, 64);
    // Global ray-id counter: frequent in splash2x raytrace (its Table 1
    // false positives), rare in the parsec version.
    const std::uint64_t ray_id = ctx.globals.allocAligned(64, 64);
    for (int i = 0; i < 256; ++i)
        ctx.init64(bvh + 8ull * i, (i * 5 + 1) % 509);

    a.at(18).tid(R1);
    emitThreadAddr(a, R2, R1, framebuffer, 16384, R3);
    a.movi(R9, static_cast<std::int64_t>(bvh));
    a.movi(R5, rays);
    a.movi(R8, 1);
    Asm::Label ray = a.here();
    // BVH traversal: dependent loads through the read-shared tree.
    a.at(22).muli(R6, R5, 8);
    a.movi(R7, 2040);
    a.andr(R6, R6, R7);
    a.add(R6, R9, R6);
    a.at(24).load(R7, R6, 0, 8);
    a.at(25).muli(R7, R7, 8);
    a.movi(R4, 2040);
    a.andr(R7, R7, R4);
    a.add(R7, R9, R7);
    a.at(26).load(R4, R7, 0, 8);
    a.at(28).mul(R4, R4, R4);
    a.addi(R4, R4, 9);
    a.at(30).store(R2, 0, R4, 8);
    // Periodic global ray-id bump.
    a.movi(R4, counter_period);
    a.movi(R7, 0);
    {
        Asm::Label skip = a.newLabel();
        a.at(33).andr(R6, R5, R4);
        a.bne(R6, R7, skip);
        a.movi(R6, static_cast<std::int64_t>(ray_id));
        a.at(35).fetchadd(R3, R6, 0, R8);
        a.at(36).store(R6, 8, R3, 8); // last-dispatched bookkeeping
        a.bind(skip);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, ray);
    a.at(40).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeRaytraceParsec()
{
    WorkloadDef def;
    def.info.name = "raytrace.parsec";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Incompatible;
    def.build = [](const BuildOptions &opt) {
        return buildRaytrace(opt, "raytrace_parsec", "rtview.cpp", 2800,
                             255);
    };
    return def;
}

// -----------------------------------------------------------------------
// streamcluster
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildStreamcluster(const BuildOptions &opt)
{
    Ctx ctx("streamcluster", "streamcluster.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t points = ctx.scaled(2400);
    // work_mem: per-thread slots padded to 32 bytes — enough for the
    // 32-byte lines the code was written for, not for our 64-byte lines
    // (Section 7.4.3). The fix doubles the stride.
    const std::int64_t stride = opt.manualFix ? 64 : 32;
    const std::uint64_t work_mem = ctx.heap.allocAligned(
        std::uint64_t(stride) * opt.numThreads, 64);
    const std::uint64_t coords = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 64; ++i)
        ctx.init64(coords + 8ull * i, i * 13 + 7);

    a.at(640).tid(R1);
    emitThreadAddr(a, R2, R1, work_mem, stride, R3);
    emitThreadAddr(a, R9, R1, coords, 8192, R3);
    a.movi(R5, points);
    Asm::Label pt = a.here();
    // Distance/gain computation (private).
    a.at(645).load(R6, R9, 0, 8);
    a.addi(R6, R6, 3);
    a.at(646).load(R7, R9, 8, 8);
    a.sub(R6, R6, R7);
    a.mul(R6, R6, R6);
    a.addi(R6, R6, 1);
    a.mul(R7, R6, R6);
    a.shri(R7, R7, 2);
    a.add(R6, R6, R7);
    a.mul(R7, R6, R6);
    a.shri(R7, R7, 3);
    a.add(R6, R6, R7);
    // The falsely-shared gain accumulation (streamcluster.cpp:653).
    a.at(653).addmem(R2, 0, R6, 8);
    a.addi(R9, R9, 8);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, pt);
    a.at(660);
    emitBarrier(ctx, barrier);
    a.at(662).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeStreamcluster()
{
    WorkloadDef def;
    def.info.name = "streamcluster";
    def.info.suite = Suite::Parsec;
    def.info.bugs.push_back(
        {"streamcluster.cpp:653", BugType::FalseSharing,
         "work_mem padded for 32-byte lines; insufficient for 64-byte "
         "lines (Section 7.4.3)",
         {"streamcluster.cpp:654", "streamcluster.cpp:645",
          "streamcluster.cpp:646"}});
    def.info.sheriff = SheriffCompat::Crash;
    def.info.hasManualFix = true;
    def.build = buildStreamcluster;
    return def;
}

// -----------------------------------------------------------------------
// swaptions
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildSwaptions(const BuildOptions &opt)
{
    Ctx ctx("swaptions", "swaptions.cpp", opt);
    Asm &a = ctx.a;
    const std::int64_t sims = ctx.scaled(950);
    const std::uint64_t paths = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192 + 4096, 64);
    for (int i = 0; i < 16; ++i)
        ctx.init64(paths + 8ull * i, i + 2);

    a.at(28).tid(R1);
    emitThreadAddr(a, R2, R1, paths, 8192, R3);
    a.movi(R5, sims);
    Asm::Label sim = a.here();
    // HJM path simulation: multiply-heavy private compute.
    a.at(32).load(R6, R2, 0, 8);
    a.at(34).mul(R7, R6, R6);
    a.mul(R7, R7, R6);
    a.addi(R7, R7, 17);
    a.mul(R7, R7, R6);
    a.shri(R7, R7, 4);
    a.mul(R7, R7, R7);
    a.addi(R7, R7, 3);
    a.at(38).store(R2, 8, R7, 8);
    a.subi(R5, R5, 1);
    a.bne(R5, R0, sim);
    a.at(42).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeSwaptions()
{
    WorkloadDef def;
    def.info.name = "swaptions";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildSwaptions;
    return def;
}

// -----------------------------------------------------------------------
// vips
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildVips(const BuildOptions &opt)
{
    Ctx ctx("vips", "vips.c", opt);
    Asm &a = ctx.a;
    const std::int64_t tiles = ctx.scaled(420);
    const std::uint64_t input = ctx.heap.allocAligned(65536, 64);
    const std::uint64_t output = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 16384 + 4096, 64);
    for (int i = 0; i < 128; ++i)
        ctx.init64(input + 8ull * i, (i * 3 + 2) % 255);

    a.at(50).tid(R1);
    emitThreadAddr(a, R2, R1, output, 16384, R3);
    a.movi(R9, static_cast<std::int64_t>(input));
    a.movi(R5, tiles);
    Asm::Label tile = a.here();
    {
        a.movi(R4, 10);
        Asm::Label px = a.here();
        a.at(54).load(R6, R9, 0, 8); // read-shared input
        a.addi(R6, R6, 1);
        a.at(55).load(R7, R9, 8, 8);
        a.add(R6, R6, R7);
        a.muli(R6, R6, 3);
        a.shri(R6, R6, 2);
        a.at(57).store(R2, 0, R6, 8); // private output
        a.addi(R2, R2, 8);
        a.subi(R4, R4, 1);
        a.bne(R4, R0, px);
        emitThreadAddr(a, R2, R1, output, 16384, R3);
    }
    a.subi(R5, R5, 1);
    a.bne(R5, R0, tile);
    a.at(62).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeVips()
{
    WorkloadDef def;
    def.info.name = "vips";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Incompatible;
    def.build = buildVips;
    return def;
}

// -----------------------------------------------------------------------
// x264
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildX264(const BuildOptions &opt)
{
    Ctx ctx("x264", "x264.c", opt);
    Asm &a = ctx.a;
    const std::int64_t mbs = ctx.scaled(1600);
    constexpr int kSites = 64;
    // Reference rows: each thread writes its own row band (every 8th
    // macroblock) and reads the band of the previous thread (load HITM
    // after each remote write), spread across 64 inter-prediction
    // "functions" so no single source line crosses the report threshold
    // while the *total* HITM traffic costs LASER ~15% of monitoring
    // overhead (Figure 12; Table 1: no reports).
    const std::uint64_t ref = ctx.heap.allocAligned(
        std::uint64_t(opt.numThreads) * 8192, 64);

    a.at(100).tid(R1);
    emitThreadAddr(a, R2, R1, ref, 8192, R3);
    // Previous thread's band (wraps around).
    a.addi(R4, R1, opt.numThreads - 1);
    a.movi(R6, opt.numThreads - 1);
    a.andr(R4, R4, R6);
    emitThreadAddr(a, R9, R4, ref, 8192, R3);
    a.movi(R5, mbs);
    Asm::Label mb = a.here();
    Asm::Label no_store = a.newLabel();
    for (int site = 0; site < kSites; ++site) {
        a.at(120 + 4 * site).load(R6, R9, 128 * site, 8);
        a.at(121 + 4 * site).mul(R7, R6, R6);
        a.addi(R7, R7, site + 1);
        a.shri(R7, R7, 1);
        a.addi(R7, R7, 3);
    }
    // Reference update burst every 16th macroblock.
    a.at(380).movi(R6, 15);
    a.andr(R6, R5, R6);
    a.bne(R6, R0, no_store);
    for (int site = 0; site < kSites; ++site)
        a.at(122 + 4 * site).store(R2, 128 * site, R7, 8);
    a.bind(no_store);
    a.at(390).subi(R5, R5, 1);
    a.bne(R5, R0, mb);
    a.at(395).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeX264()
{
    WorkloadDef def;
    def.info.name = "x264";
    def.info.suite = Suite::Parsec;
    def.info.sheriff = SheriffCompat::Incompatible;
    def.build = buildX264;
    return def;
}

} // namespace laser::workloads
