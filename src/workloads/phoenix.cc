/**
 * @file
 * Phoenix 1.0 workload kernels (Section 7 of the paper; Ranger et al.,
 * HPCA'07). Each kernel reproduces the benchmark's sharing structure:
 *
 *  - linear_regression: the Figure 2 bug — an array of 64-byte lreg_args
 *    structs that malloc leaves unaligned, with per-iteration stores of
 *    the running sums (the -O3 "partial register caching" behaviour
 *    converts its read-write false sharing into write-write).
 *  - histogram / histogram': contiguous per-thread bin arrays whose
 *    boundary lines are shared; whether the false sharing materializes
 *    depends entirely on the input's pixel distribution.
 *  - kmeans: true sharing on the global `modified` flag plus migratory
 *    contention on main-thread-allocated sum objects handed to workers.
 *  - reverse_index / word_count: false sharing on the use_len[] array of
 *    adjacent per-thread counters.
 *  - matrix_multiply, pca, string_match: contention-free baselines.
 */

#include "workloads/common.h"
#include "workloads/suites.h"

namespace laser::workloads {

using namespace laser::isa;

// -----------------------------------------------------------------------
// linear_regression
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildLinearRegression(const BuildOptions &opt)
{
    Ctx ctx("linear_regression", "lreg.c", opt);
    Asm &a = ctx.a;

    const std::int64_t points_per_thread = ctx.scaled(2600);
    const std::uint64_t points = ctx.heap.alloc(
        std::uint64_t(points_per_thread) * opt.numThreads * 16);
    // lreg_args array: tid@0 points@8 num_elems@16 SX@24 SY@32 SXX@40
    // SYY@48 SXY@56 — 64 bytes/element. Plain malloc leaves it at offset
    // 16 (mod 64) so every element straddles two lines (Figure 2); the
    // manual fix aligns it to a line boundary (Section 7.4.1).
    const std::uint64_t args =
        opt.manualFix
            ? ctx.heap.allocAligned(64ull * opt.numThreads, 64)
            : ctx.heap.alloc(64ull * opt.numThreads);

    // Input: a few deterministic (x, y) points; the kernel's results are
    // checked by tests.
    for (int t = 0; t < opt.numThreads; ++t) {
        for (int i = 0; i < 4; ++i) {
            const std::uint64_t p =
                points + (std::uint64_t(t) * points_per_thread + i) * 16;
            ctx.init64(p, 2 + i);
            ctx.init64(p + 8, 3 + i);
        }
    }

    a.at(20).tid(R1);
    // r2 = &args[tid]
    a.at(22);
    emitThreadAddr(a, R2, R1, args, 64, R3);
    // r4 = my points chunk, r5 = count
    a.at(24);
    emitThreadAddr(a, R4, R1, points, points_per_thread * 16, R3);
    a.at(25).movi(R5, points_per_thread);
    // Running sums live in registers (the -O3 behaviour), but every
    // iteration still stores them back to the struct.
    a.movi(R3, 0);  // SX
    a.movi(R9, 0);  // SY
    a.movi(R10, 0); // SXX
    a.movi(R11, 0); // SYY
    a.movi(R12, 0); // SXY

    Asm::Label loop = a.here();
    a.at(40).load(R6, R4, 0, 8);  // x
    a.at(43).add(R3, R3, R6);
    a.at(41).load(R7, R4, 8, 8);  // y
    a.at(44).add(R9, R9, R7);
    a.at(45).mul(R8, R6, R6);
    a.add(R10, R10, R8);
    a.at(46).mul(R8, R7, R7);
    a.add(R11, R11, R8);
    a.at(47).mul(R8, R6, R7);
    a.add(R12, R12, R8);
    // The write-write false sharing: five stores per iteration into the
    // unaligned struct (lreg.c:50-54).
    a.at(50).store(R2, 24, R3, 8);
    a.at(51).store(R2, 32, R9, 8);
    a.at(52).store(R2, 40, R10, 8);
    a.at(53).store(R2, 48, R11, 8);
    a.at(54).store(R2, 56, R12, 8);
    a.at(56).addi(R4, R4, 16);
    a.at(57).subi(R5, R5, 1);
    a.at(58).bne(R5, R0, loop);
    a.at(60).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeLinearRegression()
{
    WorkloadDef def;
    def.info.name = "linear_regression";
    def.info.suite = Suite::Phoenix;
    def.info.bugs.push_back(
        {"lreg.c:52", BugType::FalseSharing,
         "per-iteration stores of SX..SXY into the unaligned lreg_args "
         "array (Figure 2)",
         {"lreg.c:50", "lreg.c:51", "lreg.c:53", "lreg.c:54", "lreg.c:40",
          "lreg.c:41", "lreg.c:43", "lreg.c:44", "lreg.c:45", "lreg.c:46",
          "lreg.c:47", "lreg.c:56", "lreg.c:57", "lreg.c:58"}});
    def.info.sheriff = SheriffCompat::Works;
    def.info.sheriffDetectsBug = false; // Table 1: Sheriff-Detect FN
    def.info.hasManualFix = true;
    def.build = buildLinearRegression;
    return def;
}

// -----------------------------------------------------------------------
// histogram / histogram'
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildHistogram(const BuildOptions &opt, bool alt_input)
{
    Ctx ctx(alt_input ? "histogram_alt" : "histogram", "histogram.c", opt);
    Asm &a = ctx.a;

    const std::int64_t pixels_per_thread = ctx.scaled(26000);
    const std::uint64_t image = ctx.heap.alloc(
        std::uint64_t(pixels_per_thread) * opt.numThreads);
    // Per-thread bin arrays, contiguous: 256 4-byte bins each. Plain
    // malloc puts the block at offset 16 (mod 64), so each boundary line
    // holds thread t's bins 252-255 and thread t+1's bins 0-11. The
    // manual fix pads each array to a line multiple and aligns the block.
    const std::int64_t stride = opt.manualFix ? 1088 : 1024;
    const std::uint64_t counters =
        opt.manualFix
            ? ctx.heap.allocAligned(std::uint64_t(stride) * opt.numThreads,
                                    64)
            : ctx.heap.alloc(std::uint64_t(stride) * opt.numThreads);

    // Input synthesis: the default image avoids the boundary bins
    // entirely; the alternative image (histogram') concentrates on them.
    for (std::int64_t i = 0;
         i < pixels_per_thread * opt.numThreads; ++i) {
        std::uint8_t pixel;
        if (alt_input) {
            // 95% of pixels land in the falsely-shared boundary bins.
            if (ctx.rng.chance(0.95)) {
                pixel = ctx.rng.chance(0.5)
                            ? std::uint8_t(252 + ctx.rng.below(4))
                            : std::uint8_t(ctx.rng.below(4));
            } else {
                pixel = std::uint8_t(16 + ctx.rng.below(224));
            }
        } else {
            pixel = std::uint8_t(16 + ctx.rng.below(224));
        }
        ctx.init8(image + std::uint64_t(i), pixel);
    }

    a.at(20).tid(R1);
    a.at(22);
    emitThreadAddr(a, R2, R1, counters, stride, R3);
    a.at(24);
    emitThreadAddr(a, R4, R1, image, pixels_per_thread, R3);
    a.at(25).movi(R5, pixels_per_thread);
    a.movi(R9, 1);

    Asm::Label loop = a.here();
    a.at(33).load(R6, R4, 0, 1);   // pixel
    a.at(34).shli(R7, R6, 2);      // bin byte offset
    a.add(R7, R2, R7);
    // The contending increment (histogram.c:35): an RMW, so its HITMs
    // are load-class and PEBS reports them precisely.
    a.at(35).addmem(R7, 0, R9, 4);
    a.at(36).addi(R4, R4, 1);
    a.at(37).subi(R5, R5, 1);
    a.at(38).bne(R5, R0, loop);
    a.at(40).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeHistogram()
{
    WorkloadDef def;
    def.info.name = "histogram";
    def.info.suite = Suite::Phoenix;
    def.info.sheriff = SheriffCompat::Works;
    def.build = [](const BuildOptions &opt) {
        return buildHistogram(opt, false);
    };
    return def;
}

WorkloadDef
makeHistogramAlt()
{
    WorkloadDef def;
    def.info.name = "histogram'";
    def.info.suite = Suite::Phoenix;
    def.info.bugs.push_back(
        {"histogram.c:35", BugType::FalseSharing,
         "unpadded per-thread bin arrays: boundary lines are falsely "
         "shared when the input hits edge bins",
         {"histogram.c:33", "histogram.c:34", "histogram.c:36",
          "histogram.c:37", "histogram.c:38"}});
    def.info.sheriff = SheriffCompat::Works;
    def.info.sheriffDetectsBug = false; // Table 1: Sheriff-Detect FN
    def.info.hasManualFix = true;
    def.build = [](const BuildOptions &opt) {
        return buildHistogram(opt, true);
    };
    return def;
}

// -----------------------------------------------------------------------
// kmeans
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildKmeans(const BuildOptions &opt)
{
    Ctx ctx("kmeans", "kmeans.c", opt);
    Asm &a = ctx.a;

    const std::int64_t rounds = ctx.scaled(110);
    const std::int64_t items_per_round = 12;
    const int workers = opt.numThreads - 1;

    // The global `modified` flag (true sharing; Section 2's example).
    const std::uint64_t modified = ctx.globals.allocAligned(64, 64);
    // Per-worker mailboxes, line-padded: {ready flag, object ptr, done}.
    const std::uint64_t mailboxes = ctx.globals.allocAligned(
        64ull * opt.numThreads, 64);
    // Sum objects: allocated round by round by the main thread and
    // handed off — the migratory contention of Section 7.4.2. 40-byte
    // objects packed by malloc.
    const std::uint64_t sums = ctx.heap.alloc(
        std::uint64_t(rounds) * workers * 48);
    // Private points for the distance computation.
    const std::uint64_t points = ctx.heap.alloc(
        std::uint64_t(opt.numThreads) * 4096);

    Asm::Label worker = a.newLabel();
    a.at(20).tid(R1);
    a.bne(R1, R0, worker);

    // ---------------- main thread (t0): allocate + hand off ----------
    a.at(30).movi(R2, rounds);
    Asm::Label round_loop = a.here();
    {
        // For each worker: initialize a fresh sum object, publish it.
        a.at(32).movi(R3, static_cast<std::int64_t>(sums));
        // object index = (rounds - r2) * workers
        a.movi(R4, rounds);
        a.sub(R4, R4, R2);
        a.muli(R4, R4, workers * 48);
        a.add(R3, R3, R4);
        for (int w = 0; w < workers; ++w) {
            const std::int64_t obj_off = std::int64_t(w) * 48;
            // Initialize the object (these writes put the lines in t0's
            // cache in M state: the worker's first touch is a HITM).
            a.at(34).store(R3, obj_off + 0, R0, 8);
            a.at(35).store(R3, obj_off + 8, R0, 8);
            a.at(36).store(R3, obj_off + 16, R0, 8);
            // Publish into the worker's mailbox.
            a.at(38).movi(R5,
                          static_cast<std::int64_t>(
                              mailboxes + 64ull * (w + 1)));
            a.addi(R6, R3, obj_off);
            a.store(R5, 8, R6, 8);
            a.at(39).movi(R6, 1);
            a.store(R5, 0, R6, 8); // ready flag
        }
        // Wait for all workers to finish the round.
        for (int w = 0; w < workers; ++w) {
            a.at(42).movi(R5,
                          static_cast<std::int64_t>(
                              mailboxes + 64ull * (w + 1)));
            Asm::Label spin = a.here();
            a.load(R6, R5, 16, 8); // done flag
            a.beq(R6, R0, spin);
            a.store(R5, 16, R0, 8);
        }
        // Read `modified` and reset it (main-thread side of the TS).
        a.at(45).movi(R7, static_cast<std::int64_t>(modified));
        a.at(46).load(R6, R7, 0, 4);
        a.at(47).store(R7, 0, R0, 4);
    }
    a.subi(R2, R2, 1);
    a.bne(R2, R0, round_loop);
    a.at(50).halt();

    // ---------------- workers (t1..t3) --------------------------------
    a.bind(worker);
    a.at(60);
    emitThreadAddr(a, R2, R1, mailboxes, 64, R3);
    emitThreadAddr(a, R9, R1, points, 4096, R3);
    a.at(61).movi(R4, rounds);
    a.movi(R8, static_cast<std::int64_t>(modified));
    Asm::Label wround = a.here();
    {
        // Wait for the handoff.
        a.at(63);
        Asm::Label spin = a.here();
        a.load(R5, R2, 0, 8);
        a.beq(R5, R0, spin);
        a.store(R2, 0, R0, 8);
        a.at(64).load(R3, R2, 8, 8); // object pointer

        // Process items: distance compute + sum-object updates.
        a.movi(R5, items_per_round);
        Asm::Label item = a.here();
        {
            // Private distance computation.
            a.at(70).load(R6, R9, 0, 8);
            a.at(71).mul(R7, R6, R6);
            a.addi(R7, R7, 3);
            a.mul(R7, R7, R6);
            a.at(72).load(R6, R9, 8, 8);
            a.mul(R6, R6, R6);
            a.add(R7, R7, R6);
            // Sum-object update: read-write true sharing with t0's
            // initializing writes (migratory, object changes per round).
            a.at(74).load(R6, R3, 0, 8);
            a.add(R6, R6, R7);
            a.at(75).store(R3, 0, R6, 8);
            a.at(76).load(R6, R3, 8, 8);
            a.addi(R6, R6, 1);
            a.at(77).store(R3, 8, R6, 8);
            // The `modified` flag: check-then-set, every item
            // (kmeans.c:80 — the Section 2 true-sharing example).
            a.at(80).load(R6, R8, 0, 4);
            a.at(81).movi(R7, 1);
            a.at(82).store(R8, 0, R7, 4);
        }
        a.subi(R5, R5, 1);
        a.bne(R5, R0, item);
        // Signal completion.
        a.at(85).movi(R6, 1);
        a.store(R2, 16, R6, 8);
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, wround);
    a.at(90).halt();
    return ctx.finish();
}

/** Manual fix: sums on the worker stack, `modified` cached (one write). */
WorkloadBuild
buildKmeansFixed(const BuildOptions &opt)
{
    Ctx ctx("kmeans", "kmeans.c", opt);
    Asm &a = ctx.a;

    const std::int64_t rounds = ctx.scaled(110);
    const std::int64_t items_per_round = 12;
    const std::uint64_t modified = ctx.globals.allocAligned(64, 64);
    const std::uint64_t mailboxes =
        ctx.globals.allocAligned(64ull * opt.numThreads, 64);
    const std::uint64_t points =
        ctx.heap.alloc(std::uint64_t(opt.numThreads) * 4096);

    Asm::Label worker = a.newLabel();
    a.at(20).tid(R1);
    a.bne(R1, R0, worker);

    // Main thread: only the handoff flags remain (no object init).
    a.at(30).movi(R2, rounds);
    Asm::Label round_loop = a.here();
    for (int w = 1; w < opt.numThreads; ++w) {
        a.at(38).movi(R5,
                      static_cast<std::int64_t>(mailboxes + 64ull * w));
        a.movi(R6, 1);
        a.store(R5, 0, R6, 8);
    }
    for (int w = 1; w < opt.numThreads; ++w) {
        a.at(42).movi(R5,
                      static_cast<std::int64_t>(mailboxes + 64ull * w));
        Asm::Label spin = a.here();
        a.load(R6, R5, 16, 8);
        a.beq(R6, R0, spin);
        a.store(R5, 16, R0, 8);
    }
    a.movi(R7, static_cast<std::int64_t>(modified));
    a.at(46).load(R6, R7, 0, 4);
    a.at(47).store(R7, 0, R0, 4);
    a.subi(R2, R2, 1);
    a.bne(R2, R0, round_loop);
    a.at(50).halt();

    // Workers: sums on the stack (r15), single modified write per round.
    a.bind(worker);
    a.at(60);
    emitThreadAddr(a, R2, R1, mailboxes, 64, R3);
    emitThreadAddr(a, R9, R1, points, 4096, R3);
    a.at(61).movi(R4, rounds);
    a.movi(R8, static_cast<std::int64_t>(modified));
    Asm::Label wround = a.here();
    {
        a.at(63);
        Asm::Label spin = a.here();
        a.load(R5, R2, 0, 8);
        a.beq(R5, R0, spin);
        a.store(R2, 0, R0, 8);
        // Stack-allocated sum object.
        a.at(64).subi(R3, R15, 64);
        a.store(R3, 0, R0, 8);
        a.store(R3, 8, R0, 8);

        a.movi(R5, items_per_round);
        Asm::Label item = a.here();
        {
            a.at(70).load(R6, R9, 0, 8);
            a.at(71).mul(R7, R6, R6);
            a.addi(R7, R7, 3);
            a.mul(R7, R7, R6);
            a.at(72).load(R6, R9, 8, 8);
            a.mul(R6, R6, R6);
            a.add(R7, R7, R6);
            a.at(74).load(R6, R3, 0, 8);
            a.add(R6, R6, R7);
            a.at(75).store(R3, 0, R6, 8);
            a.at(76).load(R6, R3, 8, 8);
            a.addi(R6, R6, 1);
            a.at(77).store(R3, 8, R6, 8);
        }
        a.subi(R5, R5, 1);
        a.bne(R5, R0, item);
        // Single modified write per round (the Section 2 rewrite).
        a.at(80).movi(R7, 1);
        a.at(82).store(R8, 0, R7, 4);
        a.at(85).movi(R6, 1);
        a.store(R2, 16, R6, 8);
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, wround);
    a.at(90).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeKmeans()
{
    WorkloadDef def;
    def.info.name = "kmeans";
    def.info.suite = Suite::Phoenix;
    // The paper's Table 2 lists the ground-truth type as FS while the
    // Section 7.4.2 text describes the contention as read-write true
    // sharing; we follow Table 2 so the type-accuracy comparison keeps
    // the paper's shape (LASER reports TS for kmeans: a mismatch).
    def.info.bugs.push_back(
        {"kmeans.c:82", BugType::FalseSharing,
         "redundant per-item writes to the global `modified` flag plus "
         "migratory contention on handed-off sum objects",
         {"kmeans.c:80", "kmeans.c:81"}});
    def.info.sheriff = SheriffCompat::Crash;
    def.info.hasManualFix = true;
    def.build = [](const BuildOptions &opt) {
        return opt.manualFix ? buildKmeansFixed(opt) : buildKmeans(opt);
    };
    return def;
}

// -----------------------------------------------------------------------
// matrix_multiply
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildMatrixMultiply(const BuildOptions &opt)
{
    Ctx ctx("matrix_multiply", "mm.c", opt);
    Asm &a = ctx.a;

    const std::int64_t n = 24;
    const std::int64_t cells = ctx.scaled(n * n / opt.numThreads);
    const std::uint64_t am = ctx.heap.allocAligned(n * n * 8, 64);
    const std::uint64_t bm = ctx.heap.allocAligned(n * n * 8, 64);
    const std::uint64_t cm = ctx.heap.allocAligned(
        (n * n + 64) * 8 * opt.numThreads, 64);
    for (int i = 0; i < 16; ++i) {
        ctx.init64(am + 8ull * i, i + 1);
        ctx.init64(bm + 8ull * i, 2 * i + 1);
    }

    a.at(18).tid(R1);
    emitThreadAddr(a, R2, R1, cm, (n * n + 64) * 8, R3);
    a.at(20).movi(R4, cells);
    a.movi(R5, static_cast<std::int64_t>(am));
    a.movi(R8, static_cast<std::int64_t>(bm));
    Asm::Label cell = a.here();
    {
        a.movi(R9, 0);
        a.movi(R6, n);
        Asm::Label inner = a.here();
        a.at(24).load(R7, R5, 0, 8);   // A row element (read-shared)
        a.addi(R5, R5, 8);             // interleaved address update
        a.at(25).load(R3, R8, 0, 8);   // B column element (read-shared)
        a.at(26).mul(R7, R7, R3);
        a.add(R9, R9, R7);
        a.addi(R8, R8, 8);
        a.subi(R6, R6, 1);
        a.bne(R6, R0, inner);
        // Private C store.
        a.at(29).store(R2, 0, R9, 8);
        a.addi(R2, R2, 8);
        a.movi(R5, static_cast<std::int64_t>(am));
        a.movi(R8, static_cast<std::int64_t>(bm));
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, cell);
    a.at(34).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeMatrixMultiply()
{
    WorkloadDef def;
    def.info.name = "matrix_multiply";
    def.info.suite = Suite::Phoenix;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildMatrixMultiply;
    return def;
}

// -----------------------------------------------------------------------
// pca
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildPca(const BuildOptions &opt)
{
    Ctx ctx("pca", "pca.c", opt);
    Asm &a = ctx.a;

    const std::int64_t rows = ctx.scaled(200);
    const std::uint64_t matrix = ctx.heap.allocAligned(rows * 32 * 8, 64);
    const std::uint64_t means = ctx.heap.allocAligned(
        64ull * opt.numThreads, 64);
    const std::uint64_t barrier = ctx.allocBarrier();
    for (int i = 0; i < 32; ++i)
        ctx.init64(matrix + 8ull * i, 5 + i);

    a.at(15).tid(R1);
    emitThreadAddr(a, R2, R1, matrix,
                   rows / opt.numThreads * 32 * 8, R3);
    emitThreadAddr(a, R9, R1, means, 64, R3);

    // Phase 1: per-row means (private accumulation, padded output).
    a.at(20).movi(R4, rows / opt.numThreads);
    Asm::Label row = a.here();
    {
        a.movi(R5, 32);
        a.movi(R6, 0);
        Asm::Label col = a.here();
        a.at(23).load(R7, R2, 0, 8);
        a.add(R6, R6, R7);
        a.addi(R2, R2, 8);
        a.subi(R5, R5, 1);
        a.bne(R5, R0, col);
        a.at(27).store(R9, 0, R6, 8);
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, row);

    a.at(30);
    emitBarrier(ctx, barrier);

    // Phase 2: covariance-ish pass over the same rows.
    a.at(35).tid(R1);
    emitThreadAddr(a, R2, R1, matrix,
                   rows / opt.numThreads * 32 * 8, R3);
    a.movi(R4, rows / opt.numThreads * 8);
    Asm::Label cov = a.here();
    {
        a.at(38).load(R6, R2, 0, 8);
        a.addi(R6, R6, 2);
        a.at(39).load(R7, R2, 8, 8);
        a.mul(R6, R6, R7);
        a.at(40).load(R7, R9, 0, 8);
        a.sub(R6, R6, R7);
        a.at(41).store(R9, 8, R6, 8);
        a.addi(R2, R2, 32);
    }
    a.subi(R4, R4, 1);
    a.bne(R4, R0, cov);
    a.at(45).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makePca()
{
    WorkloadDef def;
    def.info.name = "pca";
    def.info.suite = Suite::Phoenix;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildPca;
    return def;
}

// -----------------------------------------------------------------------
// reverse_index / word_count (the use_len[] pattern)
// -----------------------------------------------------------------------

namespace {

/**
 * Common core of reverse_index and word_count: scan a private chunk of a
 * shared read-only buffer, hash, and increment a per-thread slot of the
 * unpadded use_len[] array every @p items_per_bump items.
 */
WorkloadBuild
buildUseLenKernel(const std::string &name, const std::string &file,
                  const BuildOptions &opt, std::int64_t items,
                  std::int64_t items_per_bump, int extra_arith)
{
    Ctx ctx(name, file, opt);
    Asm &a = ctx.a;

    const std::uint64_t text =
        ctx.heap.alloc(std::uint64_t(items) * opt.numThreads * 8);
    // use_len: one 4-byte counter per thread, all in one cache line
    // (the bug); fixed: one line per counter.
    const std::int64_t stride = opt.manualFix ? 64 : 4;
    const std::uint64_t use_len =
        opt.manualFix
            ? ctx.heap.allocAligned(64ull * opt.numThreads, 64)
            : ctx.heap.alloc(4ull * opt.numThreads);

    a.at(60).tid(R1);
    emitThreadAddr(a, R2, R1, text, items * 8, R3);
    emitThreadAddr(a, R9, R1, use_len, stride, R3);
    a.at(62).movi(R4, items);
    a.movi(R5, items_per_bump);
    a.movi(R8, 1);

    Asm::Label loop = a.here();
    a.at(70).load(R6, R2, 0, 8);
    a.at(71).muli(R7, R6, 31);
    a.xorr(R7, R7, R6);
    for (int i = 0; i < extra_arith; ++i)
        a.at(72).addi(R7, R7, i + 7);
    a.addi(R2, R2, 8);
    a.subi(R5, R5, 1);
    Asm::Label no_bump = a.newLabel();
    a.bne(R5, R0, no_bump);
    // The contending increment (<file>:88): RMW on the shared line.
    a.at(88).addmem(R9, 0, R8, 4);
    a.at(89).movi(R5, items_per_bump);
    a.bind(no_bump);
    a.at(92).subi(R4, R4, 1);
    a.bne(R4, R0, loop);
    a.at(95).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeReverseIndex()
{
    WorkloadDef def;
    def.info.name = "reverse_index";
    def.info.suite = Suite::Phoenix;
    def.info.bugs.push_back(
        {"reverse_index.c:88", BugType::FalseSharing,
         "adjacent per-thread use_len[] counters share one line",
         {"reverse_index.c:89", "reverse_index.c:92"}});
    def.info.sheriff = SheriffCompat::Works;
    def.info.sheriffDetectsBug = true;
    // Sheriff reports only the allocation site inside the program's
    // malloc wrapper (Section 7.1), which is unhelpful and counts as a
    // false positive.
    def.info.sheriffReportLocation = "malloc_wrapper.c:12";
    def.info.hasManualFix = true;
    def.build = [](const BuildOptions &opt) {
        return buildUseLenKernel("reverse_index", "reverse_index.c", opt,
                                 9000, 12, 2);
    };
    return def;
}

WorkloadDef
makeWordCount()
{
    WorkloadDef def;
    def.info.name = "word_count";
    def.info.suite = Suite::Phoenix;
    // word_count's use_len false sharing is real but does not affect
    // performance (Section 7.4.3); the bug database therefore has no
    // entry, and LASER's (correct) report counts as its one Table 1
    // false positive.
    def.info.sheriff = SheriffCompat::Crash;
    def.build = [](const BuildOptions &opt) {
        return buildUseLenKernel("word_count", "word_count.c", opt, 11000,
                                 20, 4);
    };
    return def;
}

// -----------------------------------------------------------------------
// string_match
// -----------------------------------------------------------------------

namespace {

WorkloadBuild
buildStringMatch(const BuildOptions &opt)
{
    Ctx ctx("string_match", "string_match.c", opt);
    Asm &a = ctx.a;

    const std::int64_t keys = ctx.scaled(42000);
    const std::uint64_t buffer =
        ctx.heap.alloc(std::uint64_t(keys) * opt.numThreads * 8);
    for (int i = 0; i < 64; ++i)
        ctx.init64(buffer + 8ull * i, 0x6b65795f6b657930ULL + i);

    a.at(12).tid(R1);
    emitThreadAddr(a, R2, R1, buffer, keys * 8, R3);
    a.at(14).movi(R4, keys);
    a.movi(R8, 0x6b65795f6b657931LL); // "key_key1"
    a.movi(R9, 0);

    // The memory-op-saturated scan loop that makes VTune's per-sample
    // interrupts so expensive on this benchmark (Figure 10: ~7x).
    Asm::Label loop = a.here();
    a.at(20).load(R6, R2, 0, 8);
    a.at(21).load(R7, R2, 8, 8);
    a.at(22).xorr(R6, R6, R8);
    Asm::Label miss = a.newLabel();
    a.bne(R6, R0, miss);
    a.addi(R9, R9, 1);
    a.bind(miss);
    a.at(25).addi(R2, R2, 16);
    a.subi(R4, R4, 2);
    a.bne(R4, R0, loop);
    a.at(28).halt();
    return ctx.finish();
}

} // namespace

WorkloadDef
makeStringMatch()
{
    WorkloadDef def;
    def.info.name = "string_match";
    def.info.suite = Suite::Phoenix;
    def.info.sheriff = SheriffCompat::Works;
    def.build = buildStringMatch;
    return def;
}

} // namespace laser::workloads
