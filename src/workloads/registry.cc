#include "workloads/workload.h"

#include "workloads/suites.h"

namespace laser::workloads {

const std::vector<WorkloadDef> &
allWorkloads()
{
    // Table 1 order.
    static const std::vector<WorkloadDef> defs = [] {
        std::vector<WorkloadDef> v;
        v.push_back(makeBarnes());
        v.push_back(makeBlackscholes());
        v.push_back(makeBodytrack());
        v.push_back(makeCanneal());
        v.push_back(makeDedup());
        v.push_back(makeFacesim());
        v.push_back(makeFerret());
        v.push_back(makeFft());
        v.push_back(makeFluidanimate());
        v.push_back(makeFmm());
        v.push_back(makeFreqmine());
        v.push_back(makeHistogram());
        v.push_back(makeHistogramAlt());
        v.push_back(makeKmeans());
        v.push_back(makeLinearRegression());
        v.push_back(makeLuCb());
        v.push_back(makeLuNcb());
        v.push_back(makeMatrixMultiply());
        v.push_back(makeOceanCp());
        v.push_back(makeOceanNcp());
        v.push_back(makePca());
        v.push_back(makeRadiosity());
        v.push_back(makeRadix());
        v.push_back(makeRaytraceParsec());
        v.push_back(makeRaytraceSplash2x());
        v.push_back(makeReverseIndex());
        v.push_back(makeStreamcluster());
        v.push_back(makeStringMatch());
        v.push_back(makeSwaptions());
        v.push_back(makeVips());
        v.push_back(makeVolrend());
        v.push_back(makeWaterNsquared());
        v.push_back(makeWaterSpatial());
        v.push_back(makeWordCount());
        v.push_back(makeX264());
        return v;
    }();
    return defs;
}

const WorkloadDef *
findWorkload(const std::string &name)
{
    for (const WorkloadDef &def : allWorkloads()) {
        if (def.info.name == name)
            return &def;
    }
    return nullptr;
}

std::vector<const WorkloadDef *>
buggyWorkloads()
{
    std::vector<const WorkloadDef *> out;
    for (const WorkloadDef &def : allWorkloads()) {
        if (!def.info.bugs.empty())
            out.push_back(&def);
    }
    return out;
}

} // namespace laser::workloads
