/**
 * @file
 * Shared infrastructure for workload builders: an allocation-aware build
 * context and emitters for the synchronization idioms the suites use
 * (inline SPLASH-style macro locks, barriers, thread partitioning).
 */

#ifndef LASER_WORKLOADS_COMMON_H
#define LASER_WORKLOADS_COMMON_H

#include <cstdint>
#include <string>

#include "isa/assembler.h"
#include "mem/address_space.h"
#include "mem/allocator.h"
#include "util/rng.h"
#include "workloads/workload.h"

namespace laser::workloads {

/**
 * Build context for one workload instance.
 *
 * The heap allocator mirrors the machine's exactly (same base, same
 * perturbation), so addresses embedded in the generated code match the
 * layout the allocator would have produced at run time — this is what
 * lets the LASER-attach layout shift change a workload's false-sharing
 * behaviour (lu_ncb, Section 7.4.2).
 */
class Ctx
{
  public:
    Ctx(const std::string &program_name, const std::string &main_file,
        const BuildOptions &opt)
        : a(program_name, main_file),
          heap(mem::Layout::kHeapBase, mem::Layout::kHeapSize),
          globals(mem::Layout::kGlobalsBase, mem::Layout::kGlobalsSize),
          rng(opt.inputSeed),
          opt(opt)
    {
        heap.perturb(opt.heapPerturbation);
    }

    /** Scale an iteration count by the input-size factor. */
    std::int64_t
    scaled(std::int64_t n) const
    {
        const auto v = static_cast<std::int64_t>(double(n) * opt.scale);
        return v > 1 ? v : 1;
    }

    /** Record an initial 64-bit memory value. */
    void
    init64(std::uint64_t addr, std::uint64_t value)
    {
        inits.push_back({addr, 8, value});
    }

    /** Record an initial 32-bit memory value. */
    void
    init32(std::uint64_t addr, std::uint32_t value)
    {
        inits.push_back({addr, 4, value});
    }

    /** Record an initial byte. */
    void
    init8(std::uint64_t addr, std::uint8_t value)
    {
        inits.push_back({addr, 1, value});
    }

    /**
     * Allocate and initialize a barrier object in globals (cache-line
     * aligned so the barrier itself does not falsely share).
     */
    std::uint64_t
    allocBarrier()
    {
        const std::uint64_t addr = globals.allocAligned(24, 64);
        init64(addr + 16, static_cast<std::uint64_t>(opt.numThreads));
        return addr;
    }

    /** Finalize into a WorkloadBuild. */
    WorkloadBuild
    finish()
    {
        WorkloadBuild out;
        out.program = a.finalize();
        out.inits = std::move(inits);
        return out;
    }

    isa::Asm a;
    mem::BumpAllocator heap;
    mem::BumpAllocator globals;
    std::vector<WorkloadBuild::MemInit> inits;
    laser::Rng rng;
    BuildOptions opt;
};

// -----------------------------------------------------------------------
// Emitters. All leave the runtime-library registers (r10-r14) free unless
// stated otherwise; callers pass the registers to use.
// -----------------------------------------------------------------------

/** Emit "r12 = barrier; call barrier_wait" (clobbers r10-r14). */
void emitBarrier(Ctx &ctx, std::uint64_t barrier_addr);

/**
 * Emit an inline test-and-test-and-set lock acquire on [addr_reg]
 * (SPLASH-style macro-expanded lock; clobbers @p scratch). All emitted
 * instructions carry the current source-line cursor.
 */
void emitInlineTtsAcquire(isa::Asm &a, isa::Reg addr_reg,
                          isa::Reg scratch);

/** Emit an inline naive CAS spin-lock acquire (clobbers @p scratch). */
void emitInlineSpinAcquire(isa::Asm &a, isa::Reg addr_reg,
                           isa::Reg scratch);

/** Emit an inline lock release (store 0). */
void emitInlineRelease(isa::Asm &a, isa::Reg addr_reg);

/**
 * Emit "dst = base + tid * stride" using @p scratch; tid must already be
 * in @p tid_reg.
 */
void emitThreadAddr(isa::Asm &a, isa::Reg dst, isa::Reg tid_reg,
                    std::uint64_t base, std::int64_t stride,
                    isa::Reg scratch);

/**
 * Emit a private compute loop: @p iters iterations of (@p loads loads
 * from [data_reg], @p arith register ops, @p stores stores back),
 * walking data_reg by @p stride bytes per iteration. Touches only
 * memory private to the thread; used as the "realistic surrounding
 * work" of every kernel. Clobbers r6-r9 and @p counter_reg.
 */
void emitPrivateWork(isa::Asm &a, isa::Reg data_reg, isa::Reg counter_reg,
                     std::int64_t iters, int loads, int arith, int stores,
                     std::int64_t stride);

} // namespace laser::workloads

#endif // LASER_WORKLOADS_COMMON_H
