/**
 * @file
 * Per-suite workload builder declarations; registry.cc assembles them
 * into the Table 1 list.
 */

#ifndef LASER_WORKLOADS_SUITES_H
#define LASER_WORKLOADS_SUITES_H

#include "workloads/workload.h"

namespace laser::workloads {

// Phoenix
WorkloadDef makeHistogram();
WorkloadDef makeHistogramAlt(); ///< histogram' — the FS-inducing input
WorkloadDef makeKmeans();
WorkloadDef makeLinearRegression();
WorkloadDef makeMatrixMultiply();
WorkloadDef makePca();
WorkloadDef makeReverseIndex();
WorkloadDef makeStringMatch();
WorkloadDef makeWordCount();

// Parsec
WorkloadDef makeBlackscholes();
WorkloadDef makeBodytrack();
WorkloadDef makeCanneal();
WorkloadDef makeDedup();
WorkloadDef makeFacesim();
WorkloadDef makeFerret();
WorkloadDef makeFluidanimate();
WorkloadDef makeFreqmine();
WorkloadDef makeRaytraceParsec();
WorkloadDef makeStreamcluster();
WorkloadDef makeSwaptions();
WorkloadDef makeVips();
WorkloadDef makeX264();

// Splash2x
WorkloadDef makeBarnes();
WorkloadDef makeFft();
WorkloadDef makeFmm();
WorkloadDef makeLuCb();
WorkloadDef makeLuNcb();
WorkloadDef makeOceanCp();
WorkloadDef makeOceanNcp();
WorkloadDef makeRadiosity();
WorkloadDef makeRadix();
WorkloadDef makeRaytraceSplash2x();
WorkloadDef makeVolrend();
WorkloadDef makeWaterNsquared();
WorkloadDef makeWaterSpatial();

} // namespace laser::workloads

#endif // LASER_WORKLOADS_SUITES_H
