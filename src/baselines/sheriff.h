/**
 * @file
 * Sheriff model (Liu & Berger, OOPSLA'11) — the paper's detection and
 * repair baseline (Sections 5, 7.3).
 *
 * Sheriff executes threads as processes: each thread works on private
 * pages and diffs/commits them at synchronization points. The machine's
 * threadsAsProcesses mode provides the execution semantics (no
 * coherence for non-atomic accesses — which is also why Sheriff-Protect
 * "fixes" false sharing even when Sheriff-Detect reports nothing); this
 * sink charges the commit costs:
 *
 *  - per sync operation: a fixed process-isolation cost plus a per-dirty-
 *    page twin-diff cost (this is why sync-intensive workloads like
 *    water_nsquared slow down ~5x, Figure 14);
 *  - Sheriff-Detect additionally write-protects pages periodically and
 *    pays fault costs on first writes.
 *
 * Compatibility (crashes, unsupported pthreads/OpenMP) and whether
 * Sheriff-Detect's object-granularity heuristics catch a bug are encoded
 * from Table 1/2 in the workload metadata; Sheriff's internal detection
 * heuristics are out of reproduction scope (see DESIGN.md).
 */

#ifndef LASER_BASELINES_SHERIFF_H
#define LASER_BASELINES_SHERIFF_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/types.h"
#include "pebs/record.h"
#include "sim/hitm.h"

namespace laser::baselines {

/** Sheriff cost-model tuning. */
struct SheriffConfig
{
    /** Fixed cost per synchronization operation (process handoff). */
    std::uint64_t syncBaseCost = 2500;
    /** Twin-page diff + commit cost per dirty page. */
    std::uint64_t perDirtyPageCost = 4200;
    /** Extra per-sync cost in Sheriff-Detect (periodic protection). */
    std::uint64_t detectExtraCost = 2600;
    /** Detect mode (adds protection costs) vs Protect mode. */
    bool detectMode = false;
};

/** Commit cost of one sync operation under @p cfg (model and replay). */
inline std::uint64_t
sheriffSyncCost(const SheriffConfig &cfg, std::uint64_t dirty_pages)
{
    std::uint64_t cost =
        cfg.syncBaseCost + dirty_pages * cfg.perDirtyPageCost;
    if (cfg.detectMode)
        cost += cfg.detectExtraCost;
    return cost;
}

/** Sheriff-Detect output: falsely-shared objects by allocation site. */
struct SheriffReport
{
    /** Allocation sites of objects reported as falsely shared. */
    std::vector<std::string> reportedSites;
    std::uint64_t syncOps = 0;
    std::uint64_t dirtyPagesCommitted = 0;
    /** Commit cycles this model charged to the application. */
    std::uint64_t chargedCycles = 0;
};

/**
 * Encode one sync operation as an analysis record so Sheriff runs can
 * stream through the scheme-agnostic sink/trace plumbing: pc carries the
 * sync kind, dataAddr the dirty-page count.
 */
inline pebs::PebsRecord
encodeSheriffSync(int core, isa::SyncKind kind, std::uint64_t dirty_pages,
                  std::uint64_t cycle)
{
    pebs::PebsRecord rec;
    rec.pc = static_cast<std::uint64_t>(kind);
    rec.dataAddr = dirty_pages;
    rec.core = core;
    rec.cycle = cycle;
    return rec;
}

/** Decode the dirty-page count of an encoded sync record. */
inline std::uint64_t
sheriffSyncDirtyPages(const pebs::PebsRecord &rec)
{
    return rec.dataAddr;
}

/** The cost-charging sink. */
class SheriffModel : public sim::PmuSink
{
  public:
    /**
     * @p capture_stream buffers each sync op as an analysis record for
     * trace capture; leave it off on live runs with no capture sink —
     * sync-heavy workloads commit tens of thousands of times.
     */
    explicit SheriffModel(SheriffConfig cfg = {},
                          bool capture_stream = false)
        : cfg_(cfg), captureStream_(capture_stream)
    {
    }

    std::uint64_t
    onSync(int core, isa::SyncKind kind, std::uint64_t dirty_pages,
           std::uint64_t cycle) override
    {
        ++syncOps_;
        dirtyPages_ += dirty_pages;
        const std::uint64_t cost = sheriffSyncCost(cfg_, dirty_pages);
        charged_ += cost;
        if (captureStream_)
            records_.push_back(
                encodeSheriffSync(core, kind, dirty_pages, cycle));
        return cost;
    }

    SheriffReport
    finish() const
    {
        SheriffReport r;
        r.syncOps = syncOps_;
        r.dirtyPagesCommitted = dirtyPages_;
        r.chargedCycles = charged_;
        return r;
    }

    /**
     * Sync stream in delivery order (sort before writing); empty unless
     * constructed with capture_stream.
     */
    const std::vector<pebs::PebsRecord> &records() const
    {
        return records_;
    }

  private:
    SheriffConfig cfg_;
    bool captureStream_ = false;
    std::uint64_t syncOps_ = 0;
    std::uint64_t dirtyPages_ = 0;
    std::uint64_t charged_ = 0;
    std::vector<pebs::PebsRecord> records_;
};

/** Rebuild a SheriffReport offline from an encoded sync stream. */
inline SheriffReport
replaySheriffStream(const std::vector<pebs::PebsRecord> &records,
                    const SheriffConfig &cfg)
{
    SheriffReport r;
    for (const pebs::PebsRecord &rec : records) {
        ++r.syncOps;
        const std::uint64_t dirty = sheriffSyncDirtyPages(rec);
        r.dirtyPagesCommitted += dirty;
        r.chargedCycles += sheriffSyncCost(cfg, dirty);
    }
    return r;
}

} // namespace laser::baselines

#endif // LASER_BASELINES_SHERIFF_H
