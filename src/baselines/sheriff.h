/**
 * @file
 * Sheriff model (Liu & Berger, OOPSLA'11) — the paper's detection and
 * repair baseline (Sections 5, 7.3).
 *
 * Sheriff executes threads as processes: each thread works on private
 * pages and diffs/commits them at synchronization points. The machine's
 * threadsAsProcesses mode provides the execution semantics (no
 * coherence for non-atomic accesses — which is also why Sheriff-Protect
 * "fixes" false sharing even when Sheriff-Detect reports nothing); this
 * sink charges the commit costs:
 *
 *  - per sync operation: a fixed process-isolation cost plus a per-dirty-
 *    page twin-diff cost (this is why sync-intensive workloads like
 *    water_nsquared slow down ~5x, Figure 14);
 *  - Sheriff-Detect additionally write-protects pages periodically and
 *    pays fault costs on first writes.
 *
 * Compatibility (crashes, unsupported pthreads/OpenMP) and whether
 * Sheriff-Detect's object-granularity heuristics catch a bug are encoded
 * from Table 1/2 in the workload metadata; Sheriff's internal detection
 * heuristics are out of reproduction scope (see DESIGN.md).
 */

#ifndef LASER_BASELINES_SHERIFF_H
#define LASER_BASELINES_SHERIFF_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/types.h"
#include "sim/hitm.h"

namespace laser::baselines {

/** Sheriff cost-model tuning. */
struct SheriffConfig
{
    /** Fixed cost per synchronization operation (process handoff). */
    std::uint64_t syncBaseCost = 2500;
    /** Twin-page diff + commit cost per dirty page. */
    std::uint64_t perDirtyPageCost = 4200;
    /** Extra per-sync cost in Sheriff-Detect (periodic protection). */
    std::uint64_t detectExtraCost = 2600;
    /** Detect mode (adds protection costs) vs Protect mode. */
    bool detectMode = false;
};

/** Sheriff-Detect output: falsely-shared objects by allocation site. */
struct SheriffReport
{
    /** Allocation sites of objects reported as falsely shared. */
    std::vector<std::string> reportedSites;
    std::uint64_t syncOps = 0;
    std::uint64_t dirtyPagesCommitted = 0;
};

/** The cost-charging sink. */
class SheriffModel : public sim::PmuSink
{
  public:
    explicit SheriffModel(SheriffConfig cfg = {}) : cfg_(cfg) {}

    std::uint64_t
    onSync(int core, isa::SyncKind kind,
           std::uint64_t dirty_pages) override
    {
        (void)core;
        (void)kind;
        ++syncOps_;
        dirtyPages_ += dirty_pages;
        std::uint64_t cost =
            cfg_.syncBaseCost + dirty_pages * cfg_.perDirtyPageCost;
        if (cfg_.detectMode)
            cost += cfg_.detectExtraCost;
        return cost;
    }

    SheriffReport
    finish() const
    {
        SheriffReport r;
        r.syncOps = syncOps_;
        r.dirtyPagesCommitted = dirtyPages_;
        return r;
    }

  private:
    SheriffConfig cfg_;
    std::uint64_t syncOps_ = 0;
    std::uint64_t dirtyPages_ = 0;
};

} // namespace laser::baselines

#endif // LASER_BASELINES_SHERIFF_H
