/**
 * @file
 * VTune Amplifier XE model (the paper's profiling baseline, Section 7).
 *
 * Modeled properties, per the paper's measurements:
 *  - interrupt-per-HITM-event collection ("configures the PEBS mechanism
 *    to raise an interrupt after each HITM event for improved accuracy,
 *    which has significant performance ramifications", Section 7.1) —
 *    every HITM charges an interrupt cost to the triggering core;
 *  - heavy memory-access sampling that penalizes load-saturated loops
 *    (string_match's ~7x in Figure 10): back-to-back loads keep the PEBS
 *    buffers saturated and every SAV-th such load pays a full interrupt;
 *  - raw source-line reporting: no maps filter, no stack filter, no
 *    load/store-set decoding, no TS/FS typing; a flat rate threshold
 *    (2K HITMs/sec, the paper's "fair" setting) is applied offline;
 *  - records outside any known mapping are attributed to the nearest
 *    symbol (i.e., some application line) instead of being dropped.
 */

#ifndef LASER_BASELINES_VTUNE_H
#define LASER_BASELINES_VTUNE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.h"
#include "mem/address_space.h"
#include "pebs/monitor.h"
#include "sim/hitm.h"
#include "sim/timing.h"

namespace laser::baselines {

/** VTune model tuning. */
struct VTuneConfig
{
    /** Reporting threshold, HITM events/sec (Section 7.1). */
    double rateThreshold = 2000.0;
    /**
     * Interrupt cost charged per HITM event (amortized per event; small
     * because the compressed kernels inflate event densities ~3000x
     * relative to the paper's minute-long runs).
     */
    std::uint64_t eventCost = 100;
    /** General time/memory sampling: every Nth memory op pays this. */
    std::uint64_t memopSav = 199;
    std::uint64_t memopCost = 1000;
    /** Back-to-back load window (cycles) that keeps PEBS saturated. */
    std::uint64_t hotLoadWindow = 4;
    /** Every Nth saturated load pays a full interrupt. */
    std::uint64_t hotLoadSav = 23;
    std::uint64_t hotLoadCost = 14000;
    std::uint64_t seed = 0x77e1'0001;
};

/** One reported line. */
struct VTuneLine
{
    std::string location;
    std::uint64_t records = 0;
    double hitmRate = 0.0;
};

/** VTune analysis output. */
struct VTuneReport
{
    std::vector<VTuneLine> lines;
    std::uint64_t hitmEvents = 0;
};

/**
 * VTune's offline aggregation: raw per-line rates over the recorded
 * stream with the flat threshold applied. Pure function of the stream,
 * shared by the live model and trace replay — re-tuning the reporting
 * threshold never needs a rerun.
 */
VTuneReport aggregateVTune(const isa::Program &prog,
                           const mem::AddressSpace &space,
                           const std::vector<pebs::PebsRecord> &records,
                           std::uint64_t hitm_events,
                           std::uint64_t total_cycles,
                           const VTuneConfig &cfg);

/** The profiling sink + offline report builder. */
class VTuneModel : public sim::PmuSink
{
  public:
    VTuneModel(const isa::Program &prog, const mem::AddressSpace &space,
               const sim::TimingModel &timing, VTuneConfig cfg = {});

    std::uint64_t onHitm(const sim::HitmEvent &event) override;
    std::uint64_t onMemop(int core, std::uint32_t pc_index, bool is_write,
                          std::uint64_t cycle) override;

    /** Build the report after the run. */
    VTuneReport finish(std::uint64_t total_cycles);

    /**
     * Interrupt-per-event record stream in delivery order (capturable;
     * valid after finish() has drained the sampler).
     */
    const std::vector<pebs::PebsRecord> &records() const
    {
        return sampler_.records();
    }

  private:
    const isa::Program &prog_;
    const mem::AddressSpace &space_;
    VTuneConfig cfg_;
    pebs::PebsMonitor sampler_; ///< shares the PEBS imprecision engine
    std::vector<std::uint64_t> lastLoadCycle_;
    std::vector<std::uint64_t> hotLoads_;
    std::vector<std::uint64_t> memops_;
    std::uint64_t hitmEvents_ = 0;
};

} // namespace laser::baselines

#endif // LASER_BASELINES_VTUNE_H
