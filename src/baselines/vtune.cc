#include "baselines/vtune.h"

#include <algorithm>
#include <map>

namespace laser::baselines {

namespace {

pebs::PebsConfig
samplerConfig(const VTuneConfig &cfg)
{
    pebs::PebsConfig pc;
    pc.sav = 1;             // interrupt after every event
    pc.chargeCosts = false; // VTune's costs are charged by this model
    pc.seed = cfg.seed;
    return pc;
}

} // namespace

VTuneModel::VTuneModel(const isa::Program &prog,
                       const mem::AddressSpace &space,
                       const sim::TimingModel &timing, VTuneConfig cfg)
    : prog_(prog),
      space_(space),
      cfg_(cfg),
      sampler_(space, prog.size(), timing, samplerConfig(cfg)),
      lastLoadCycle_(space.numThreads(), 0),
      hotLoads_(space.numThreads(), 0),
      memops_(space.numThreads(), 0)
{
}

std::uint64_t
VTuneModel::onHitm(const sim::HitmEvent &event)
{
    ++hitmEvents_;
    sampler_.onHitm(event);
    return cfg_.eventCost;
}

std::uint64_t
VTuneModel::onMemop(int core, std::uint32_t pc_index, bool is_write,
                    std::uint64_t cycle)
{
    (void)pc_index;
    std::uint64_t cost = 0;
    // General memory-access sampling: uniform overhead proportional to
    // memory-op density.
    if (++memops_[core] % cfg_.memopSav == 0)
        cost += cfg_.memopCost;
    if (is_write)
        return cost;
    const std::uint64_t last = lastLoadCycle_[core];
    lastLoadCycle_[core] = cycle;
    if (cycle - last > cfg_.hotLoadWindow)
        return cost;
    // Back-to-back loads saturate the PEBS buffers; every Nth pays a
    // full interrupt (string_match's Figure 10 behaviour).
    if (++hotLoads_[core] % cfg_.hotLoadSav == 0)
        cost += cfg_.hotLoadCost;
    return cost;
}

VTuneReport
aggregateVTune(const isa::Program &prog, const mem::AddressSpace &space,
               const std::vector<pebs::PebsRecord> &records,
               std::uint64_t hitm_events, std::uint64_t total_cycles,
               const VTuneConfig &cfg)
{
    VTuneReport report;
    report.hitmEvents = hitm_events;
    const double seconds = sim::representedSeconds(total_cycles);
    if (seconds <= 0.0)
        return report;

    // Raw aggregation: no filtering; unresolvable PCs are attributed to
    // the "nearest symbol" (deterministically pseudo-random line).
    std::map<isa::SourceLoc, std::uint64_t> by_line;
    for (const pebs::PebsRecord &rec : records) {
        std::int64_t index = space.pcToIndex(rec.pc);
        if (index < 0)
            index = static_cast<std::int64_t>(
                (rec.pc / isa::kInsnBytes) % prog.size());
        ++by_line[prog.locOf(static_cast<std::uint32_t>(index))];
    }
    for (const auto &[loc, count] : by_line) {
        const double rate = double(count) / seconds;
        if (rate >= cfg.rateThreshold) {
            report.lines.push_back(
                {prog.locString(loc), count, rate});
        }
    }
    std::sort(report.lines.begin(), report.lines.end(),
              [](const VTuneLine &a, const VTuneLine &b) {
                  if (a.hitmRate != b.hitmRate)
                      return a.hitmRate > b.hitmRate;
                  return a.location < b.location;
              });
    return report;
}

VTuneReport
VTuneModel::finish(std::uint64_t total_cycles)
{
    sampler_.finish();
    return aggregateVTune(prog_, space_, sampler_.records(), hitmEvents_,
                          total_cycles, cfg_);
}

} // namespace laser::baselines
