/**
 * @file
 * Sharded parallel replay: split one trace's canonical record stream
 * into contiguous cycle windows, digest each window with an independent
 * DetectorPipeline on a thread pool, merge the shard states in window
 * order, and build the report once.
 *
 * Each shard pulls its window through its own RecordCursor, so a
 * file-backed replay (TraceReplayer over a trace::TraceFile) holds one
 * decoded columnar block per shard — O(block x shards) record memory —
 * instead of the materialized trace. The split is by record index
 * (computed from the source's record count), so exactly the same
 * records land in the same shards as a materialized split would and
 * the serial-identity invariant is unaffected by the streaming.
 *
 * The merged DetectionReport is — by construction, and enforced by
 * tests over every registered workload — identical to the serial
 * replay's: per-line cache-line state is reconciled across shard
 * boundaries and the online repair-trigger semantics are preserved by a
 * sequential merge-time rate scan (see detect/detector_state.h for the
 * argument).
 *
 * Because the digest is config-independent, it runs once per trace and
 * is reused by every replay(cfg) call: a threshold sweep over a
 * captured trace pays the stream cost once and each additional
 * configuration costs only a rate scan plus report aggregation
 * (digest-once / report-many).
 */

#ifndef LASER_TRACE_PARALLEL_REPLAY_H
#define LASER_TRACE_PARALLEL_REPLAY_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "detect/detector_state.h"
#include "detect/pipeline.h"
#include "detect/types.h"
#include "trace/replay.h"
#include "util/thread_pool.h"

namespace laser::trace {

class ParallelReplayer
{
  public:
    struct Options
    {
        /** Number of time-window shards; clamped to [1, record count]. */
        int shards = 4;
        /**
         * Pool to digest shards on; nullptr runs shards on a transient
         * pool sized to the shard count.
         */
        util::ThreadPool *pool = nullptr;
    };

    /**
     * Digests the trace immediately (sharded, in parallel). @p env must
     * outlive the replayer.
     */
    explicit ParallelReplayer(const TraceReplayer &env);
    ParallelReplayer(const TraceReplayer &env, Options opt);

    /**
     * Build the report for one configuration from the merged digest.
     * Cheap relative to the digest: a sequential rate scan over the
     * merged events plus report aggregation.
     */
    detect::DetectionReport
    replay(const detect::DetectorConfig &cfg) const;

    /** Shards actually used after clamping. */
    int shards() const { return shards_; }

    /** Records digested (after filtering: state().totalRecords). */
    const detect::DetectorState &state() const { return merged_; }

  private:
    const TraceReplayer *env_;
    int shards_ = 1;
    detect::DetectorState merged_;
};

/** Outcome of one serial-vs-sharded comparison run. */
struct ShardedReplayCheck
{
    int shards = 1;
    bool identical = false;
    /** First threshold whose reports diverged (when !identical). */
    double mismatchThreshold = 0.0;
    double serialSeconds = 0.0;
    double shardedSeconds = 0.0;
    /** Serial reports, one per threshold (callers print/reuse these). */
    std::vector<detect::DetectionReport> serialReports;

    double
    speedup() const
    {
        return shardedSeconds > 0.0 ? serialSeconds / shardedSeconds
                                    : 0.0;
    }
};

/**
 * The identity invariant as a runtime check: replay @p env serially at
 * each threshold (sav from the capture config), then replay the same
 * thresholds from one @p shards-way digest, and compare reports
 * field-exactly. Shared by `laser_trace replay --shards` and
 * bench_fig09 so tool and bench cannot diverge on what "identical"
 * means.
 */
ShardedReplayCheck
checkShardedReplay(const TraceReplayer &env,
                   const std::vector<double> &thresholds, int shards,
                   util::ThreadPool *pool = nullptr);

/**
 * One-shot sharded detection replay of a captured laser-detect trace at
 * the capture SAV with every other knob at its default — the
 * repair-decision / accuracy convenience the benches share. Pass the
 * already-busy pool (e.g. SweepRunner::pool()) so shard jobs queue
 * there instead of spawning a transient pool per call. Throws
 * std::runtime_error when the trace's workload is unknown.
 */
detect::DetectionReport replayDetection(const Trace &trace, int shards,
                                        util::ThreadPool *pool = nullptr);

} // namespace laser::trace

#endif // LASER_TRACE_PARALLEL_REPLAY_H
