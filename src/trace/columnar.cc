#include "trace/columnar.h"

#include <algorithm>
#include <bit>

#include "trace/wire.h"

namespace laser::trace::columnar {

namespace {

using wire::ByteReader;
using wire::ByteWriter;

/** Bits needed to represent @p v (0 for 0). */
unsigned
bitsFor(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v));
}

/** LSB-first fixed-width bit packer; pad bits in the last byte are 0. */
struct BitWriter
{
    std::vector<std::uint8_t> &out;
    std::uint8_t acc = 0;
    unsigned n = 0;

    explicit BitWriter(std::vector<std::uint8_t> &o) : out(o) {}

    void
    put(std::uint64_t v, unsigned width)
    {
        unsigned done = 0;
        while (done < width) {
            const unsigned take = std::min(width - done, 8u - n);
            const std::uint64_t bits =
                (v >> done) & ((1ull << take) - 1);
            acc |= static_cast<std::uint8_t>(bits << n);
            n += take;
            done += take;
            if (n == 8) {
                out.push_back(acc);
                acc = 0;
                n = 0;
            }
        }
    }

    void
    flush()
    {
        if (n > 0) {
            out.push_back(acc);
            acc = 0;
            n = 0;
        }
    }
};

/** Strict LSB-first unpacker over a fixed byte range. */
struct BitReader
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    unsigned n = 0;
    bool ok = true;

    BitReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::uint64_t
    get(unsigned width)
    {
        std::uint64_t v = 0;
        unsigned done = 0;
        while (done < width) {
            if (p >= end) {
                ok = false;
                return 0;
            }
            const unsigned take = std::min(width - done, 8u - n);
            v |= static_cast<std::uint64_t>(
                     (*p >> n) & ((1u << take) - 1))
                 << done;
            n += take;
            done += take;
            if (n == 8) {
                ++p;
                n = 0;
            }
        }
        return v;
    }

    /** All bytes consumed, with zero padding bits in the last byte. */
    bool
    finished()
    {
        if (!ok)
            return false;
        if (n > 0) {
            if ((*p >> n) != 0)
                return false;
            ++p;
            n = 0;
        }
        return p == end;
    }
};

// -- DeltaVar ---------------------------------------------------------

void
encodeDeltaVar(const std::vector<std::uint64_t> &vals,
               std::vector<std::uint8_t> *out)
{
    ByteWriter w(*out);
    std::uint64_t prev = 0;
    for (std::uint64_t v : vals) {
        w.zig(static_cast<std::int64_t>(v - prev));
        prev = v;
    }
}

bool
decodeDeltaVar(const std::uint8_t *data, std::size_t size,
               std::size_t count, std::vector<std::uint64_t> *out)
{
    ByteReader r(data, size);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        prev += static_cast<std::uint64_t>(r.zig());
        if (!r.ok)
            return false;
        out->push_back(prev);
    }
    return r.remaining() == 0;
}

// -- ForPack ----------------------------------------------------------

void
encodeForPack(const std::vector<std::uint64_t> &vals,
              std::vector<std::uint8_t> *out)
{
    ByteWriter w(*out);
    if (vals.empty())
        return;
    const std::uint64_t base =
        *std::min_element(vals.begin(), vals.end());
    const std::uint64_t top =
        *std::max_element(vals.begin(), vals.end());
    const unsigned width = bitsFor(top - base);
    w.var(base);
    w.u8(static_cast<std::uint8_t>(width));
    BitWriter bits(*out);
    for (std::uint64_t v : vals)
        bits.put(v - base, width);
    bits.flush();
}

bool
decodeForPack(const std::uint8_t *data, std::size_t size,
              std::size_t count, std::vector<std::uint64_t> *out)
{
    if (count == 0)
        return size == 0;
    ByteReader r(data, size);
    const std::uint64_t base = r.var();
    const unsigned width = r.u8();
    if (!r.ok || width > 64)
        return false;
    BitReader bits(r.p, r.remaining());
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t v = bits.get(width);
        if (!bits.ok)
            return false;
        out->push_back(base + v);
    }
    return bits.finished();
}

// -- DictPack ---------------------------------------------------------

/** Distinct sorted values of @p vals. */
std::vector<std::uint64_t>
buildDict(const std::vector<std::uint64_t> &vals)
{
    std::vector<std::uint64_t> dict(vals);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    return dict;
}

constexpr std::uint8_t kDictSubPacked = 0;
constexpr std::uint8_t kDictSubRle = 1;

void
encodeDictPack(const std::vector<std::uint64_t> &vals,
               std::vector<std::uint8_t> *out)
{
    ByteWriter w(*out);
    if (vals.empty())
        return;
    const std::vector<std::uint64_t> dict = buildDict(vals);
    w.var(dict.size());
    for (std::size_t i = 0; i < dict.size(); ++i)
        w.var(i == 0 ? dict[0] : dict[i] - dict[i - 1]);

    std::vector<std::uint64_t> indices;
    indices.reserve(vals.size());
    for (std::uint64_t v : vals)
        indices.push_back(static_cast<std::uint64_t>(
            std::lower_bound(dict.begin(), dict.end(), v) -
            dict.begin()));

    // Sub-encoding: bit-packed indices vs RLE runs, whichever is
    // smaller (deterministic: packed wins ties).
    std::vector<std::uint8_t> packed;
    {
        const unsigned width = bitsFor(dict.size() - 1);
        BitWriter bits(packed);
        for (std::uint64_t idx : indices)
            bits.put(idx, width);
        bits.flush();
    }
    std::vector<std::uint8_t> rle;
    {
        ByteWriter rw(rle);
        for (std::size_t i = 0; i < indices.size();) {
            std::size_t j = i;
            while (j < indices.size() && indices[j] == indices[i])
                ++j;
            rw.var(indices[i]);
            rw.var(j - i);
            i = j;
        }
    }
    if (packed.size() <= rle.size()) {
        w.u8(kDictSubPacked);
        out->insert(out->end(), packed.begin(), packed.end());
    } else {
        w.u8(kDictSubRle);
        out->insert(out->end(), rle.begin(), rle.end());
    }
}

bool
decodeDictPack(const std::uint8_t *data, std::size_t size,
               std::size_t count, std::vector<std::uint64_t> *out)
{
    if (count == 0)
        return size == 0;
    ByteReader r(data, size);
    const std::uint64_t dict_size = r.var();
    // Each dictionary entry takes >= 1 byte; bound the reserve.
    if (!r.ok || dict_size == 0 || dict_size > r.remaining() + 1)
        return false;
    std::vector<std::uint64_t> dict;
    dict.reserve(static_cast<std::size_t>(dict_size));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < dict_size; ++i) {
        const std::uint64_t d = r.var();
        if (!r.ok)
            return false;
        // Entries are strictly increasing (delta >= 1 past the first);
        // equal entries would make the encoding non-canonical.
        if (i > 0 && d == 0)
            return false;
        prev = i == 0 ? d : prev + d;
        dict.push_back(prev);
    }
    const std::uint8_t sub = r.u8();
    if (!r.ok)
        return false;
    if (sub == kDictSubPacked) {
        const unsigned width = bitsFor(dict.size() - 1);
        BitReader bits(r.p, r.remaining());
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t idx = bits.get(width);
            if (!bits.ok || idx >= dict.size())
                return false;
            out->push_back(dict[static_cast<std::size_t>(idx)]);
        }
        return bits.finished();
    }
    if (sub == kDictSubRle) {
        std::size_t total = 0;
        std::uint64_t prev_idx = dict.size(); // sentinel: no previous
        while (total < count) {
            const std::uint64_t idx = r.var();
            const std::uint64_t run = r.var();
            if (!r.ok || idx >= dict.size() || run == 0 ||
                    run > count - total)
                return false;
            // Adjacent runs of the same index are non-canonical.
            if (idx == prev_idx)
                return false;
            prev_idx = idx;
            out->insert(out->end(), static_cast<std::size_t>(run),
                        dict[static_cast<std::size_t>(idx)]);
            total += static_cast<std::size_t>(run);
        }
        return r.remaining() == 0;
    }
    return false;
}

// -- DeltaForPack -----------------------------------------------------

/**
 * Deltas are packed in mini-blocks of 128 with a per-group base and bit
 * width, so one outlier delta (a phase change, a tile seam) widens only
 * its own group instead of the whole block. A constant-stride group
 * (width 0) costs just its base varint — the common case for sampled
 * cycle columns.
 */
constexpr std::size_t kDeltaGroup = 128;

void
encodeDeltaForPack(const std::vector<std::uint64_t> &vals,
                   std::vector<std::uint8_t> *out)
{
    ByteWriter w(*out);
    if (vals.empty())
        return;
    w.var(vals[0]);
    if (vals.size() == 1)
        return;
    std::vector<std::uint64_t> deltas;
    deltas.reserve(vals.size() - 1);
    for (std::size_t i = 1; i < vals.size(); ++i)
        deltas.push_back(wire::zigzagEncode(
            static_cast<std::int64_t>(vals[i] - vals[i - 1])));
    for (std::size_t g = 0; g < deltas.size(); g += kDeltaGroup) {
        const std::size_t n =
            std::min(kDeltaGroup, deltas.size() - g);
        const std::uint64_t base = *std::min_element(
            deltas.begin() + g, deltas.begin() + g + n);
        const std::uint64_t top = *std::max_element(
            deltas.begin() + g, deltas.begin() + g + n);
        const unsigned width = bitsFor(top - base);
        w.var(base);
        w.u8(static_cast<std::uint8_t>(width));
        BitWriter bits(*out);
        for (std::size_t i = 0; i < n; ++i)
            bits.put(deltas[g + i] - base, width);
        bits.flush(); // per-group byte alignment keeps decode strict
    }
}

bool
decodeDeltaForPack(const std::uint8_t *data, std::size_t size,
                   std::size_t count, std::vector<std::uint64_t> *out)
{
    if (count == 0)
        return size == 0;
    ByteReader r(data, size);
    std::uint64_t prev = r.var();
    if (!r.ok)
        return false;
    out->push_back(prev);
    std::size_t remaining = count - 1;
    while (remaining > 0) {
        const std::size_t n = std::min(kDeltaGroup, remaining);
        const std::uint64_t base = r.var();
        const unsigned width = r.u8();
        if (!r.ok || width > 64)
            return false;
        const std::size_t group_bytes = (n * width + 7) / 8;
        if (group_bytes > r.remaining())
            return false;
        BitReader bits(r.p, group_bytes);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t packed = bits.get(width);
            if (!bits.ok)
                return false;
            prev += static_cast<std::uint64_t>(
                wire::zigzagDecode(base + packed));
            out->push_back(prev);
        }
        if (!bits.finished()) // nonzero padding bits
            return false;
        r.skip(group_bytes);
        remaining -= n;
    }
    return r.remaining() == 0;
}

} // namespace

const char *
codecName(ColumnCodec codec)
{
    switch (codec) {
      case ColumnCodec::DeltaVar:     return "delta-var";
      case ColumnCodec::ForPack:      return "for-pack";
      case ColumnCodec::DictPack:     return "dict-pack";
      case ColumnCodec::DeltaForPack: return "delta-for-pack";
    }
    return "???";
}

const char *
columnName(std::size_t column)
{
    switch (column) {
      case kColPc:    return "pc";
      case kColAddr:  return "data_addr";
      case kColCore:  return "core";
      case kColCycle: return "cycle";
    }
    return "???";
}

void
encodeColumn(ColumnCodec codec, const std::vector<std::uint64_t> &vals,
             std::vector<std::uint8_t> *out)
{
    switch (codec) {
      case ColumnCodec::DeltaVar:     encodeDeltaVar(vals, out); return;
      case ColumnCodec::ForPack:      encodeForPack(vals, out); return;
      case ColumnCodec::DictPack:     encodeDictPack(vals, out); return;
      case ColumnCodec::DeltaForPack: encodeDeltaForPack(vals, out); return;
    }
}

bool
decodeColumn(ColumnCodec codec, const std::uint8_t *data,
             std::size_t size, std::size_t count,
             std::vector<std::uint64_t> *out)
{
    out->clear();
    out->reserve(count);
    switch (codec) {
      case ColumnCodec::DeltaVar:
        return decodeDeltaVar(data, size, count, out);
      case ColumnCodec::ForPack:
        return decodeForPack(data, size, count, out);
      case ColumnCodec::DictPack:
        return decodeDictPack(data, size, count, out);
      case ColumnCodec::DeltaForPack:
        return decodeDeltaForPack(data, size, count, out);
    }
    return false;
}

ColumnCodec
chooseCodec(const std::vector<std::uint64_t> &vals,
            std::vector<std::uint8_t> *out)
{
    ColumnCodec best = ColumnCodec::DeltaVar;
    std::vector<std::uint8_t> best_bytes;
    encodeColumn(best, vals, &best_bytes);

    const auto consider = [&](ColumnCodec codec) {
        std::vector<std::uint8_t> bytes;
        encodeColumn(codec, vals, &bytes);
        // Strictly smaller wins: ties keep the lowest codec id, so the
        // choice is deterministic and the file image reproducible.
        if (bytes.size() < best_bytes.size()) {
            best = codec;
            best_bytes = std::move(bytes);
        }
    };
    consider(ColumnCodec::ForPack);
    // DictPack is worth trying even at high cardinality: address
    // columns cluster in a few tight regions, so the sorted dictionary
    // deltas stay small while the record-order deltas jump across
    // regions. The O(n log n) dictionary build is bounded by the block
    // size.
    consider(ColumnCodec::DictPack);
    consider(ColumnCodec::DeltaForPack);

    out->insert(out->end(), best_bytes.begin(), best_bytes.end());
    return best;
}

// ---------------------------------------------------------------------
// BlockIndex
// ---------------------------------------------------------------------

std::uint64_t
BlockIndex::blobBytes() const
{
    std::uint64_t n = 0;
    for (const BlockInfo &b : blocks)
        n += b.blobBytes();
    return n;
}

void
BlockIndex::encode(std::vector<std::uint8_t> *out) const
{
    const std::size_t start = out->size();
    ByteWriter w(*out);
    w.var(records);
    w.var(blobOffset);
    w.u64(metaChecksum);
    w.var(blocks.size());
    std::uint64_t prev_first = 0;
    for (const BlockInfo &b : blocks) {
        w.var(b.records);
        // Cycle ranges are zigzag deltas: canonical streams never
        // regress, but finalize() must also encode the non-monotonic
        // streams the reader's rejection paths are tested with.
        w.zig(static_cast<std::int64_t>(b.firstCycle - prev_first));
        w.zig(static_cast<std::int64_t>(b.lastCycle - b.firstCycle));
        prev_first = b.firstCycle;
        for (std::size_t c = 0; c < kColumnCount; ++c) {
            w.u8(static_cast<std::uint8_t>(b.codec[c]));
            w.var(b.columnBytes[c]);
        }
        w.u64(b.checksum);
    }
    w.u64(wire::fnv1a(out->data() + start, out->size() - start));
}

bool
BlockIndex::decode(const std::uint8_t *data, std::size_t size,
                   std::string *err)
{
    *this = {};
    if (size < 8) {
        *err = "block index shorter than its checksum";
        return false;
    }
    ByteReader trailer(data + size - 8, 8);
    const std::uint64_t stored_sum = trailer.u64();
    if (wire::fnv1a(data, size - 8) != stored_sum) {
        *err = "block index checksum mismatch";
        return false;
    }

    ByteReader r(data, size - 8);
    records = r.var();
    blobOffset = r.var();
    metaChecksum = r.u64();
    const std::uint64_t block_count = r.var();
    // A block entry occupies >= 16 bytes (3 varints, 4 codec/size
    // pairs, a u64 checksum); bound the reserve against bomb counts.
    if (!r.ok || block_count > r.remaining() / 16 + 1) {
        *err = "block index ends mid-structure";
        return false;
    }
    blocks.reserve(static_cast<std::size_t>(block_count));
    std::uint64_t prev_first = 0;
    std::uint64_t first_record = 0;
    std::uint64_t blob_offset = 0;
    for (std::uint64_t i = 0; i < block_count; ++i) {
        BlockInfo b;
        b.firstRecord = first_record;
        b.blobOffset = blob_offset;
        b.records = r.var();
        b.firstCycle =
            prev_first + static_cast<std::uint64_t>(r.zig());
        b.lastCycle =
            b.firstCycle + static_cast<std::uint64_t>(r.zig());
        prev_first = b.firstCycle;
        for (std::size_t c = 0; c < kColumnCount; ++c) {
            const std::uint8_t codec = r.u8();
            if (r.ok && codec >= kCodecCount) {
                *err = "block " + std::to_string(i) +
                       " has unknown codec id " + std::to_string(codec);
                return false;
            }
            b.codec[c] = static_cast<ColumnCodec>(codec);
            b.columnBytes[c] = r.var();
        }
        b.checksum = r.u64();
        if (!r.ok) {
            *err = "block index ends mid-structure";
            return false;
        }
        if (b.records == 0) {
            *err = "block " + std::to_string(i) + " declares 0 records";
            return false;
        }
        if (b.records > kMaxBlockRecords) {
            *err = "block " + std::to_string(i) + " declares " +
                   std::to_string(b.records) +
                   " records (max " + std::to_string(kMaxBlockRecords) +
                   ")";
            return false;
        }
        first_record += b.records;
        blob_offset += b.blobBytes();
        blocks.push_back(b);
    }
    if (r.remaining() != 0) {
        *err = "trailing bytes after block index entries";
        return false;
    }
    if (first_record != records) {
        *err = "block record counts sum to " +
               std::to_string(first_record) + ", index declares " +
               std::to_string(records);
        return false;
    }
    return true;
}

bool
BlockIndex::cyclesOrdered() const
{
    std::uint64_t prev_last = 0;
    for (const BlockInfo &b : blocks) {
        if (b.lastCycle < b.firstCycle || b.firstCycle < prev_last)
            return false;
        prev_last = b.lastCycle;
    }
    return true;
}

void
BlockIndex::blocksForCycles(std::uint64_t begin, std::uint64_t end,
                            std::size_t *first_block,
                            std::size_t *end_block) const
{
    // First block whose lastCycle >= begin (earlier blocks end before
    // the window opens)...
    *first_block = static_cast<std::size_t>(
        std::lower_bound(blocks.begin(), blocks.end(), begin,
                         [](const BlockInfo &b, std::uint64_t c) {
                             return b.lastCycle < c;
                         }) -
        blocks.begin());
    // ...up to the first block whose firstCycle >= end (it and later
    // blocks start after the half-open window closes).
    *end_block = static_cast<std::size_t>(
        std::lower_bound(blocks.begin(), blocks.end(), end,
                         [](const BlockInfo &b, std::uint64_t c) {
                             return b.firstCycle < c;
                         }) -
        blocks.begin());
    if (*end_block < *first_block)
        *end_block = *first_block;
}

std::size_t
BlockIndex::blockForRecord(std::uint64_t record) const
{
    return static_cast<std::size_t>(
        std::upper_bound(blocks.begin(), blocks.end(), record,
                         [](std::uint64_t rec, const BlockInfo &b) {
                             return rec < b.firstRecord + b.records;
                         }) -
        blocks.begin());
}

} // namespace laser::trace::columnar
