/**
 * @file
 * Pull-based record streaming: the cursor/source abstraction that lets
 * replay consume a trace's record stream without materializing it.
 *
 * A RecordCursor yields records one at a time in canonical (cycle)
 * order; a RecordSource hands out cursors over sub-ranges of the stream
 * — by global record index (how ParallelReplayer splits shards, so
 * sharded replay stays bit-identical to serial) or by cycle window (how
 * seek-style replay works). Two implementations exist: the trivial
 * MemoryRecordSource over an already-decoded record vector, and the
 * seekable trace::TraceFile (trace/trace_file.h) which decodes one
 * columnar block at a time, so a shard's working set is O(block), not
 * O(trace).
 *
 * The module keeps process-global accounting of decoded-but-unconsumed
 * records across all live cursors (bufferedRecordsLive()/Peak()); the
 * replay-memory regression test asserts the peak stays under
 * O(block x shards) where the materialize-everything path would hold
 * the whole trace.
 */

#ifndef LASER_TRACE_SOURCE_H
#define LASER_TRACE_SOURCE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/sink.h"
#include "pebs/record.h"
#include "trace/trace.h"

namespace laser::trace {

/** Records currently decoded into cursor block buffers, process-wide. */
std::size_t bufferedRecordsLive();
/** High-water mark of bufferedRecordsLive() since the last reset. */
std::size_t bufferedRecordsPeak();
/** Reset the peak to the current live count (test isolation). */
void resetBufferedRecordsPeak();

namespace detail {

/** Cursor implementations report their block buffers through these. */
void addBufferedRecords(std::size_t n);
void subBufferedRecords(std::size_t n);

} // namespace detail

/**
 * Single-pass pull iterator over a record stream. next() returns false
 * at end-of-stream *or* on a decode error — check status() after the
 * stream ends to tell the two apart (Ok means a clean end).
 */
class RecordCursor
{
  public:
    virtual ~RecordCursor() = default;

    /** Produce the next record; false at end-of-stream or error. */
    virtual bool next(pebs::PebsRecord *rec) = 0;

    /** Ok after a clean end; a typed error if decoding failed. */
    [[nodiscard]] virtual TraceStatus status() const
    {
        return TraceStatus::Ok;
    }

    /** Push every remaining record into @p sink; returns the count. */
    std::uint64_t drain(analysis::RecordSink &sink);
};

/** A record stream that can be cursored over sub-ranges. */
class RecordSource
{
  public:
    virtual ~RecordSource() = default;

    /** Total records in the stream. */
    virtual std::uint64_t recordCount() const = 0;

    /** Cursor over global record indices [first, end). */
    virtual std::unique_ptr<RecordCursor>
    cursorForRecords(std::uint64_t first, std::uint64_t end) const = 0;

    /**
     * Cursor over the half-open cycle window [begin, end). Requires the
     * stream to be in canonical cycle order (every Ok-parsed trace is).
     */
    virtual std::unique_ptr<RecordCursor>
    cursorForCycles(std::uint64_t begin, std::uint64_t end) const = 0;

    /** Cursor over the whole stream. */
    std::unique_ptr<RecordCursor>
    cursor() const
    {
        return cursorForRecords(0, recordCount());
    }
};

/**
 * RecordSource over an already-materialized record vector (non-owning;
 * the vector must outlive the source and its cursors). Cursors cost no
 * extra buffering, so this source does not touch the buffered-records
 * accounting.
 */
class MemoryRecordSource : public RecordSource
{
  public:
    explicit MemoryRecordSource(
        const std::vector<pebs::PebsRecord> &records)
        : records_(&records)
    {
    }

    std::uint64_t recordCount() const override { return records_->size(); }

    std::unique_ptr<RecordCursor>
    cursorForRecords(std::uint64_t first, std::uint64_t end) const override;

    std::unique_ptr<RecordCursor>
    cursorForCycles(std::uint64_t begin, std::uint64_t end) const override;

  private:
    const std::vector<pebs::PebsRecord> *records_;
};

} // namespace laser::trace

#endif // LASER_TRACE_SOURCE_H
