/**
 * @file
 * Columnar record encoding for LSRT v3: per-column block codecs and the
 * seekable footer block index.
 *
 * A v3 trace stores its record stream as fixed-size blocks (the last one
 * ragged). Within a block each record field is a column — pc, data
 * address, core, cycle — and each column is encoded independently with
 * whichever codec compresses it best *for that block*:
 *
 *   DeltaVar      zigzag delta + LEB128 varint (the v2 scheme, per field)
 *   ForPack       frame-of-reference: varint base (min) + fixed-width
 *                 bit-packed offsets — dense cycle/core columns
 *   DictPack      sorted dictionary (delta varints) + either bit-packed
 *                 dictionary indices or RLE runs, whichever is smaller —
 *                 low-cardinality pc/core columns, and address columns
 *                 whose values cluster in a few tight regions
 *   DeltaForPack  first value + zigzag deltas, frame-of-reference
 *                 bit-packed in mini-blocks of 128 (per-group base and
 *                 width, so an outlier delta widens only its group) —
 *                 monotone cycle columns and strided address streams
 *
 * Codec choice is deterministic (smallest encoding wins, ties break to
 * the lowest codec id), so encoding a decoded trace reproduces the
 * original bytes — the byte-exact round-trip guarantee of the format.
 *
 * The BlockIndex is the file's seek structure: per block it records the
 * record count, the cycle range, each column's codec and encoded size
 * (offsets are cumulative) and an FNV-1a checksum of the block's bytes.
 * A reader binary-searches the index for a cycle window and decodes only
 * the overlapping blocks — no prefix decode, no whole-file checksum pass.
 * The index carries its own trailing checksum and a checksum of the
 * meta (config + results) section, so the seek path still verifies every
 * byte it actually reads.
 */

#ifndef LASER_TRACE_COLUMNAR_H
#define LASER_TRACE_COLUMNAR_H

#include <cstdint>
#include <string>
#include <vector>

namespace laser::trace::columnar {

/** Per-block, per-column codec identifier (stable wire values). */
enum class ColumnCodec : std::uint8_t {
    DeltaVar = 0,
    ForPack = 1,
    DictPack = 2,
    DeltaForPack = 3,
};

constexpr std::uint8_t kCodecCount = 4;

/** Printable codec name ("delta-var", "for-pack", ...). */
const char *codecName(ColumnCodec codec);

/** Column order within a block (stable wire order). */
enum Column : std::size_t {
    kColPc = 0,
    kColAddr = 1,
    kColCore = 2,
    kColCycle = 3,
};

constexpr std::size_t kColumnCount = 4;

/** Printable column name ("pc", "data_addr", "core", "cycle"). */
const char *columnName(std::size_t column);

/** Default records per block (overridable per TraceWriter for tests). */
constexpr std::size_t kDefaultBlockRecords = 4096;

/**
 * Hard upper bound on records per block, enforced on both sides:
 * TraceWriter clamps its block size to it and BlockIndex::decode rejects
 * entries beyond it. Bit-packed columns can be sub-byte per record, so
 * without this bound a tiny crafted index could declare counts that
 * decode "successfully" into allocations far beyond the file size.
 */
constexpr std::size_t kMaxBlockRecords = std::size_t{1} << 20;

/** Append @p vals encoded with @p codec to @p out. */
void encodeColumn(ColumnCodec codec,
                  const std::vector<std::uint64_t> &vals,
                  std::vector<std::uint8_t> *out);

/**
 * Strict decode of one column: exactly @p count values from exactly
 * [data, data+size). Any structural violation — short or trailing
 * bytes, non-canonical varints, out-of-range dictionary indices,
 * nonzero padding bits — returns false.
 */
bool decodeColumn(ColumnCodec codec, const std::uint8_t *data,
                  std::size_t size, std::size_t count,
                  std::vector<std::uint64_t> *out);

/**
 * Encode @p vals with every applicable codec and keep the smallest
 * (ties break to the lowest codec id, so the choice — and therefore the
 * file image — is deterministic). The winning bytes are appended to
 * @p out; the winning codec is returned.
 */
ColumnCodec chooseCodec(const std::vector<std::uint64_t> &vals,
                        std::vector<std::uint8_t> *out);

/** One block's index entry. */
struct BlockInfo
{
    /** Derived at build/decode time (not serialized): global index of
     *  the block's first record, and the block's offset in the blob. */
    std::uint64_t firstRecord = 0;
    std::uint64_t blobOffset = 0;

    std::uint64_t records = 0;
    /** Cycle of the block's first / last record. */
    std::uint64_t firstCycle = 0;
    std::uint64_t lastCycle = 0;
    ColumnCodec codec[kColumnCount] = {};
    std::uint64_t columnBytes[kColumnCount] = {};
    /** FNV-1a over the block's encoded bytes (all columns). */
    std::uint64_t checksum = 0;

    std::uint64_t
    blobBytes() const
    {
        std::uint64_t n = 0;
        for (std::size_t c = 0; c < kColumnCount; ++c)
            n += columnBytes[c];
        return n;
    }

    /** Offset of @p column within the block's encoded bytes. */
    std::uint64_t
    columnOffset(std::size_t column) const
    {
        std::uint64_t off = 0;
        for (std::size_t c = 0; c < column; ++c)
            off += columnBytes[c];
        return off;
    }
};

/** The footer seek structure of a v3 trace. */
struct BlockIndex
{
    /** Total records across all blocks. */
    std::uint64_t records = 0;
    /** Offset of the record blob within the payload (= size of the
     *  config + results sections it follows). */
    std::uint64_t blobOffset = 0;
    /** FNV-1a over payload[0, blobOffset): lets the seek path verify
     *  the meta sections without a whole-payload checksum pass. */
    std::uint64_t metaChecksum = 0;
    std::vector<BlockInfo> blocks;

    /** Total encoded record-blob bytes. */
    std::uint64_t blobBytes() const;

    /** Serialize (including the trailing self-checksum) onto @p out. */
    void encode(std::vector<std::uint8_t> *out) const;

    /**
     * Strict decode from exactly [data, data+size): structural
     * violations and self-checksum mismatches return false with a
     * detail message in @p err. Cycle ordering across blocks is *not*
     * checked here (the full parse checks the records themselves; the
     * seek path checks the ranges) — a freshly decoded index is
     * structurally sound but not yet trusted for seeking.
     */
    bool decode(const std::uint8_t *data, std::size_t size,
                std::string *err);

    /** True when block cycle ranges are ordered (seekable). */
    bool cyclesOrdered() const;

    /**
     * Blocks overlapping the half-open cycle window [begin, end):
     * returns [firstBlock, endBlock). Requires cyclesOrdered().
     */
    void blocksForCycles(std::uint64_t begin, std::uint64_t end,
                         std::size_t *first_block,
                         std::size_t *end_block) const;

    /** Block containing global record index @p record. */
    std::size_t blockForRecord(std::uint64_t record) const;
};

} // namespace laser::trace::columnar

#endif // LASER_TRACE_COLUMNAR_H
