#include "trace/replay.h"

namespace laser::trace {

TraceReplayer::TraceReplayer(const Trace &trace) : trace_(&trace)
{
    const workloads::WorkloadDef *def =
        workloads::findWorkload(trace.meta.workload);
    if (!def) {
        error_ = "unknown workload \"" + trace.meta.workload + "\"";
        return;
    }
    workloads::WorkloadBuild build = def->build(trace.meta.build);
    program_ = std::move(build.program);
    space_ = std::make_unique<mem::AddressSpace>(
        program_, trace.meta.machine.numCores);
}

detect::DetectionReport
TraceReplayer::replay(const detect::DetectorConfig &cfg) const
{
    detect::Detector detector(program_, *space_, trace_->meta.mapsText,
                              trace_->meta.machine.timing, cfg);
    detector.processAll(trace_->records);
    return detector.finish(trace_->meta.runtimeCycles);
}

detect::DetectionReport
TraceReplayer::replayAtThreshold(double rate_threshold) const
{
    detect::DetectorConfig cfg;
    cfg.rateThreshold = rate_threshold;
    cfg.sav = trace_->meta.pebs.sav;
    return replay(cfg);
}

} // namespace laser::trace
