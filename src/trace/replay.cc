#include "trace/replay.h"

#include <algorithm>

namespace laser::trace {

TraceReplayer::TraceReplayer(const Trace &trace) : trace_(&trace)
{
    const workloads::WorkloadDef *def =
        workloads::findWorkload(trace.meta.workload);
    if (!def) {
        error_ = "unknown workload \"" + trace.meta.workload + "\"";
        return;
    }
    workloads::WorkloadBuild build = def->build(trace.meta.build);
    program_ = std::move(build.program);
    space_ = std::make_unique<mem::AddressSpace>(
        program_, trace.meta.machine.numCores);
    ctx_ = std::make_unique<detect::DetectorContext>(
        program_, *space_, trace.meta.mapsText,
        trace.meta.machine.timing);
}

void
TraceReplayer::drive(analysis::RecordSink &sink) const
{
    // Stored streams are canonical (cycle-ordered; the reader rejects
    // anything else), but hand-built in-memory traces may not be — the
    // stable sort is a no-op on conforming input.
    analysis::drainSorted(trace_->records, sink);
}

detect::DetectionReport
TraceReplayer::replay(const detect::DetectorConfig &cfg) const
{
    detect::DetectorPipeline pipeline(*ctx_, cfg);
    drive(pipeline);
    return pipeline.finish(trace_->meta.runtimeCycles);
}

detect::DetectionReport
TraceReplayer::replayAtThreshold(double rate_threshold) const
{
    detect::DetectorConfig cfg;
    cfg.rateThreshold = rate_threshold;
    cfg.sav = trace_->meta.pebs.sav;
    return replay(cfg);
}

baselines::VTuneReport
TraceReplayer::replayVTune(const baselines::VTuneConfig &cfg) const
{
    // The interrupt-per-event stream records every HITM (SAV 1), so the
    // stream length is the event count.
    return baselines::aggregateVTune(program_, *space_, trace_->records,
                                     trace_->records.size(),
                                     trace_->meta.runtimeCycles, cfg);
}

baselines::VTuneReport
TraceReplayer::replayVTune() const
{
    return replayVTune(trace_->meta.vtune);
}

SheriffReplay
TraceReplayer::replaySheriff(const baselines::SheriffConfig &cfg) const
{
    SheriffReplay out;
    out.report = baselines::replaySheriffStream(trace_->records, cfg);
    const baselines::SheriffConfig &cap = trace_->meta.sheriff;
    const bool same_costs = cfg.syncBaseCost == cap.syncBaseCost &&
                            cfg.perDirtyPageCost == cap.perDirtyPageCost &&
                            cfg.detectExtraCost == cap.detectExtraCost &&
                            cfg.detectMode == cap.detectMode;
    out.capturedChargedCycles =
        same_costs
            ? out.report.chargedCycles
            : baselines::replaySheriffStream(trace_->records, cap)
                  .chargedCycles;
    // Commit costs are charged per core but the captured runtime is
    // wall-clock; assume the charge spreads evenly across cores, so the
    // wall-clock contribution is chargedCycles / numCores. Exact when
    // the replayed config equals the capture's (the deltas cancel).
    const int cores = std::max(1, trace_->meta.machine.numCores);
    const std::uint64_t captured_wall = out.capturedChargedCycles / cores;
    const std::uint64_t replayed_wall = out.report.chargedCycles / cores;
    const std::uint64_t base =
        trace_->meta.runtimeCycles > captured_wall
            ? trace_->meta.runtimeCycles - captured_wall
            : 0;
    out.estimatedRuntimeCycles = base + replayed_wall;
    return out;
}

SheriffReplay
TraceReplayer::replaySheriff() const
{
    return replaySheriff(trace_->meta.sheriff);
}

} // namespace laser::trace
