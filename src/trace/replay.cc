#include "trace/replay.h"

#include <algorithm>
#include <stdexcept>

namespace laser::trace {

TraceReplayer::TraceReplayer(const Trace &trace)
    : trace_(&trace), meta_(&trace.meta)
{
    // Stored streams are canonical (cycle-ordered; the reader rejects
    // anything else), but hand-built in-memory traces may not be — give
    // them the same stable cycle sort every other driver applies.
    if (std::is_sorted(trace.records.begin(), trace.records.end(),
                       [](const pebs::PebsRecord &a,
                          const pebs::PebsRecord &b) {
                           return a.cycle < b.cycle;
                       })) {
        ownedSource_ = std::make_unique<MemoryRecordSource>(trace.records);
    } else {
        ownedSorted_ = trace.records;
        analysis::sortByCycle(&ownedSorted_);
        ownedSource_ = std::make_unique<MemoryRecordSource>(ownedSorted_);
    }
    source_ = ownedSource_.get();
    buildEnvironment();
}

TraceReplayer::TraceReplayer(const TraceMeta &meta,
                             const RecordSource &source)
    : meta_(&meta), source_(&source)
{
    buildEnvironment();
}

void
TraceReplayer::buildEnvironment()
{
    const workloads::WorkloadDef *def =
        workloads::findWorkload(meta_->workload);
    if (!def) {
        error_ = "unknown workload \"" + meta_->workload + "\"";
        return;
    }
    workloads::WorkloadBuild build = def->build(meta_->build);
    program_ = std::move(build.program);
    space_ = std::make_unique<mem::AddressSpace>(program_,
                                                 meta_->machine.numCores);
    ctx_ = std::make_unique<detect::DetectorContext>(
        program_, *space_, meta_->mapsText, meta_->machine.timing,
        static_cast<int>(meta_->machine.geometry.lineBytes));
}

void
TraceReplayer::drive(analysis::RecordSink &sink) const
{
    const std::unique_ptr<RecordCursor> cur = source_->cursor();
    cur->drain(sink);
    if (cur->status() != TraceStatus::Ok)
        throw std::runtime_error(
            std::string("trace replay: record stream failed: ") +
            traceStatusName(cur->status()));
}

std::vector<pebs::PebsRecord>
TraceReplayer::materializeRecords() const
{
    std::vector<pebs::PebsRecord> records;
    records.reserve(static_cast<std::size_t>(source_->recordCount()));
    const std::unique_ptr<RecordCursor> cur = source_->cursor();
    pebs::PebsRecord rec;
    while (cur->next(&rec))
        records.push_back(rec);
    if (cur->status() != TraceStatus::Ok)
        throw std::runtime_error(
            std::string("trace replay: record stream failed: ") +
            traceStatusName(cur->status()));
    return records;
}

detect::DetectionReport
TraceReplayer::replay(const detect::DetectorConfig &cfg) const
{
    detect::DetectorPipeline pipeline(*ctx_, cfg);
    drive(pipeline);
    return pipeline.finish(meta_->runtimeCycles);
}

detect::DetectionReport
TraceReplayer::replayAtThreshold(double rate_threshold) const
{
    detect::DetectorConfig cfg;
    cfg.rateThreshold = rate_threshold;
    cfg.sav = meta_->pebs.sav;
    return replay(cfg);
}

baselines::VTuneReport
TraceReplayer::replayVTune(const baselines::VTuneConfig &cfg) const
{
    // The interrupt-per-event stream records every HITM (SAV 1), so the
    // stream length is the event count. The baseline aggregators take a
    // vector; file-backed streams materialize here (these streams are a
    // small fraction of a detection stream's length).
    if (trace_)
        return baselines::aggregateVTune(program_, *space_,
                                         trace_->records,
                                         trace_->records.size(),
                                         meta_->runtimeCycles, cfg);
    const std::vector<pebs::PebsRecord> records = materializeRecords();
    return baselines::aggregateVTune(program_, *space_, records,
                                     records.size(), meta_->runtimeCycles,
                                     cfg);
}

baselines::VTuneReport
TraceReplayer::replayVTune() const
{
    return replayVTune(meta_->vtune);
}

SheriffReplay
TraceReplayer::replaySheriffOver(
    const std::vector<pebs::PebsRecord> &records,
    const baselines::SheriffConfig &cfg) const
{
    SheriffReplay out;
    out.report = baselines::replaySheriffStream(records, cfg);
    const baselines::SheriffConfig &cap = meta_->sheriff;
    const bool same_costs = cfg.syncBaseCost == cap.syncBaseCost &&
                            cfg.perDirtyPageCost == cap.perDirtyPageCost &&
                            cfg.detectExtraCost == cap.detectExtraCost &&
                            cfg.detectMode == cap.detectMode;
    out.capturedChargedCycles =
        same_costs
            ? out.report.chargedCycles
            : baselines::replaySheriffStream(records, cap).chargedCycles;
    // Commit costs are charged per core but the captured runtime is
    // wall-clock; assume the charge spreads evenly across cores, so the
    // wall-clock contribution is chargedCycles / numCores. Exact when
    // the replayed config equals the capture's (the deltas cancel).
    const int cores = std::max(1, meta_->machine.numCores);
    const std::uint64_t captured_wall = out.capturedChargedCycles / cores;
    const std::uint64_t replayed_wall = out.report.chargedCycles / cores;
    const std::uint64_t base = meta_->runtimeCycles > captured_wall
                                   ? meta_->runtimeCycles - captured_wall
                                   : 0;
    out.estimatedRuntimeCycles = base + replayed_wall;
    return out;
}

SheriffReplay
TraceReplayer::replaySheriff(const baselines::SheriffConfig &cfg) const
{
    if (trace_)
        return replaySheriffOver(trace_->records, cfg);
    return replaySheriffOver(materializeRecords(), cfg);
}

SheriffReplay
TraceReplayer::replaySheriff() const
{
    return replaySheriff(meta_->sheriff);
}

} // namespace laser::trace
