/**
 * @file
 * Seekable v3 trace reader: verify-and-decode only the bytes a replay
 * actually touches.
 *
 * TraceFile::open() maps the file (openBytes() adopts an in-memory
 * image), validates the fixed header, reads the trailing index offset,
 * decodes and checksum-verifies the footer block index, parses the
 * config/results sections (verified against the index's meta checksum
 * and the header's config hash) — and stops. Record blocks are *not*
 * decoded and the whole-payload checksum is *not* recomputed; that is
 * the point. Cursors then decode blocks on demand:
 *
 *   - cursorForRecords(first, end) binary-searches the index for the
 *     blocks containing that global record range;
 *   - cursorForCycles(begin, end) binary-searches the blocks' cycle
 *     ranges for the window and skips boundary records outside it;
 *
 * each verifying a block's FNV-1a checksum before trusting its bytes,
 * so every byte actually read is still integrity-checked. A cursor
 * holds one decoded block at a time (O(block) memory, reported through
 * the trace/source.h buffered-records accounting) and latches a typed
 * TraceStatus if a block is corrupt mid-stream.
 *
 * Read volume is observable via the obs counters trace.file.bytes_read
 * (header + meta + index on open, plus each decoded block's encoded
 * bytes) and trace.file.blocks_decoded — the windowed-replay acceptance
 * checks are written against them.
 *
 * Only format v3 is seekable; open() returns BadVersion for v1/v2
 * files (upgrade them with `laser_trace migrate`).
 */

#ifndef LASER_TRACE_TRACE_FILE_H
#define LASER_TRACE_TRACE_FILE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/columnar.h"
#include "trace/source.h"
#include "trace/trace.h"

namespace laser::trace {

class TraceFile : public RecordSource
{
  public:
    TraceFile() = default;
    ~TraceFile() override;
    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;

    /** Map @p path read-only and validate header + index + meta. */
    [[nodiscard]] TraceStatus open(const std::string &path);

    /** Adopt a complete file image instead of mapping a file. */
    [[nodiscard]] TraceStatus openBytes(std::vector<std::uint8_t> bytes);

    bool isOpen() const { return open_; }
    /** Detail message for the last non-Ok open ("" after Ok). */
    const std::string &error() const { return error_; }

    const TraceMeta &meta() const { return meta_; }
    const columnar::BlockIndex &index() const { return index_; }
    /** Stored config hash (== configHash(meta()) after an Ok open). */
    std::uint64_t storedConfigHash() const { return configHash_; }
    /** Total payload bytes (compressed size of all sections). */
    std::uint64_t payloadBytes() const { return payloadSize_; }
    /** Bytes of the encoded record blob alone. */
    std::uint64_t recordBlobBytes() const { return index_.blobBytes(); }

    // RecordSource
    std::uint64_t recordCount() const override { return index_.records; }
    std::unique_ptr<RecordCursor>
    cursorForRecords(std::uint64_t first, std::uint64_t end) const override;
    std::unique_ptr<RecordCursor>
    cursorForCycles(std::uint64_t begin, std::uint64_t end) const override;

    /**
     * Decode the whole file into a materialized Trace (meta copy + all
     * records). Equivalent to a full TraceReader parse minus the
     * whole-payload checksum (block checksums cover the same bytes).
     */
    [[nodiscard]] TraceStatus readAll(Trace *out) const;

  private:
    friend class FileCursor;

    [[nodiscard]] TraceStatus fail(TraceStatus status,
                                   std::string detail);
    [[nodiscard]] TraceStatus validate();
    void unmap();

    /** Start of the payload within the mapped image. */
    const std::uint8_t *payload() const { return data_ + kTraceHeaderSize; }
    /** Start of the encoded record blob. */
    const std::uint8_t *blob() const { return payload() + metaSize_; }

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    void *map_ = nullptr; ///< non-null when data_ is an mmap
    std::vector<std::uint8_t> owned_;

    TraceMeta meta_;
    columnar::BlockIndex index_;
    std::uint64_t configHash_ = 0;
    std::size_t metaSize_ = 0;
    std::uint64_t payloadSize_ = 0;
    std::string error_;
    bool open_ = false;
};

} // namespace laser::trace

#endif // LASER_TRACE_TRACE_FILE_H
