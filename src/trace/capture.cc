#include "trace/capture.h"

#include "pebs/monitor.h"
#include "sim/machine.h"

namespace laser::trace {

TraceMeta
makeCaptureMeta(const workloads::WorkloadDef &workload,
                const CaptureOptions &opt)
{
    TraceMeta meta;
    meta.workload = workload.info.name;
    meta.scheme = opt.scheme;

    meta.build.heapPerturbation = opt.heapShift;
    meta.build.numThreads = opt.numThreads;
    meta.build.inputSeed = opt.inputSeed;
    meta.build.scale = opt.scale;

    meta.machine.numCores = opt.numThreads;
    meta.machine.timing = opt.timing;
    meta.machine.seed = opt.machineSeed;
    meta.machine.heapPerturbation = opt.heapShift;

    meta.pebs.sav = opt.sav;
    return meta;
}

Trace
captureTrace(const workloads::WorkloadDef &workload,
             const CaptureOptions &opt)
{
    Trace trace;
    trace.meta = makeCaptureMeta(workload, opt);

    workloads::WorkloadBuild build = workload.build(trace.meta.build);
    sim::Machine machine(std::move(build.program), trace.meta.machine);
    build.applyTo(machine);

    pebs::PebsMonitor monitor(machine.addressSpace(),
                              machine.program().size(), opt.timing,
                              trace.meta.pebs);
    machine.setPmuSink(&monitor);
    trace.meta.stats = machine.run();
    monitor.finish();

    trace.meta.runtimeCycles = trace.meta.stats.cycles;
    trace.meta.mapsText = machine.addressSpace().renderProcMaps();
    trace.records = monitor.records();
    return trace;
}

} // namespace laser::trace
