#include "trace/capture.h"

#include <stdexcept>

#include "analysis/sink.h"
#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "pebs/monitor.h"
#include "sim/machine.h"

namespace laser::trace {

namespace {

bool
isSheriffScheme(const std::string &scheme)
{
    return scheme == "sheriff-detect" || scheme == "sheriff-protect";
}

} // namespace

CaptureOptions
CaptureOptions::forScheme(const std::string &scheme)
{
    CaptureOptions opt;
    opt.scheme = scheme;
    if (scheme == "laser-detect")
        return opt;
    // Only LASER forks/attaches (Section 7.4.2): the baselines and the
    // native reference run the unshifted heap layout.
    opt.heapShift = 0;
    if (scheme == "native")
        opt.sav = 0;
    if (isSheriffScheme(scheme))
        opt.sheriff.detectMode = scheme == "sheriff-detect";
    return opt;
}

TraceMeta
makeCaptureMeta(const workloads::WorkloadDef &workload,
                const CaptureOptions &opt)
{
    TraceMeta meta;
    meta.workload = workload.info.name;
    meta.scheme = opt.scheme;

    meta.build.manualFix = opt.manualFix;
    meta.build.heapPerturbation = opt.heapShift;
    meta.build.numThreads = opt.numThreads;
    meta.build.inputSeed = opt.inputSeed;
    meta.build.scale = opt.scale;

    meta.machine.numCores = opt.numThreads;
    meta.machine.timing = opt.timing;
    meta.machine.protocol = opt.protocol;
    meta.machine.geometry = opt.geometry;
    meta.machine.seed = opt.machineSeed;
    meta.machine.heapPerturbation = opt.heapShift;
    if (isSheriffScheme(opt.scheme)) {
        // Sheriff executes threads as processes and commits dirty pages
        // at sync points (Liu & Berger, OOPSLA'11).
        meta.machine.threadsAsProcesses = true;
        meta.machine.trackDirtyPages = true;
    }

    meta.pebs.sav = opt.scheme == "laser-detect" ? opt.sav : 0;
    meta.vtune = opt.vtune;
    meta.sheriff = opt.sheriff;
    // The scheme is authoritative for detect mode; keep the stored
    // config consistent so offline cost re-estimates use what ran.
    if (isSheriffScheme(opt.scheme))
        meta.sheriff.detectMode = opt.scheme == "sheriff-detect";
    return meta;
}

Trace
captureTrace(const workloads::WorkloadDef &workload,
             const CaptureOptions &opt)
{
    Trace trace;
    trace.meta = makeCaptureMeta(workload, opt);

    workloads::WorkloadBuild build = workload.build(trace.meta.build);
    sim::Machine machine(std::move(build.program), trace.meta.machine);
    build.applyTo(machine);

    const std::string &scheme = opt.scheme;
    if (scheme == "laser-detect") {
        pebs::PebsMonitor monitor(machine.addressSpace(),
                                  machine.program().size(), opt.timing,
                                  trace.meta.pebs);
        machine.setPmuSink(&monitor);
        trace.meta.stats = machine.run();
        monitor.finish();
        trace.records = monitor.records();
    } else if (scheme == "vtune") {
        baselines::VTuneModel vtune(machine.program(),
                                    machine.addressSpace(), opt.timing,
                                    opt.vtune);
        machine.setPmuSink(&vtune);
        trace.meta.stats = machine.run();
        // Drain the sampler (finish's aggregation is replayed offline).
        vtune.finish(trace.meta.stats.cycles);
        trace.records = vtune.records();
    } else if (isSheriffScheme(scheme)) {
        baselines::SheriffModel sheriff(trace.meta.sheriff,
                                        /*capture_stream=*/true);
        machine.setPmuSink(&sheriff);
        trace.meta.stats = machine.run();
        trace.records = sheriff.records();
    } else if (scheme == "native") {
        trace.meta.stats = machine.run();
    } else {
        throw std::invalid_argument("captureTrace: unknown scheme \"" +
                                    scheme + "\"");
    }

    trace.meta.runtimeCycles = trace.meta.stats.cycles;
    trace.meta.mapsText = machine.addressSpace().renderProcMaps();
    // Canonical stream order: per-core buffers arrive in same-core
    // bursts; the stable cycle sort here is the same one every sink's
    // driver applies, so the stored stream replays without re-sorting.
    analysis::sortByCycle(&trace.records);
    return trace;
}

} // namespace laser::trace
