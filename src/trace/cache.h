/**
 * @file
 * Trace-cache maintenance: inventory and size budgeting for long-lived
 * cache directories.
 *
 * A sweep cache grows without bound as configurations churn (every
 * config-hash key is a new <hash>.ltrace file), so production cache
 * directories need eviction. Policy is mtime-LRU: the sweep runner
 * touches a file's mtime on every disk hit, so last-modified order is
 * last-used order, and gcTraceCache() deletes oldest-first until the
 * directory fits the byte budget.
 *
 * Listing reads only each file's fixed-size header (magic, version,
 * config hash) — no payload decode — so inventorying a multi-gigabyte
 * cache stays cheap.
 */

#ifndef LASER_TRACE_CACHE_H
#define LASER_TRACE_CACHE_H

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace laser::trace {

/** One cache file's inventory row. */
struct CacheEntry
{
    std::string path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime{};
    /** Config hash from the header (0 when the header is unreadable). */
    std::uint64_t configHash = 0;
    /** Header status: Ok means magic/version/endianness check out. */
    TraceStatus status = TraceStatus::Ok;
};

/**
 * Read just the header of @p path: magic, version, endianness and the
 * stored config hash. Returns the same typed statuses as a full parse
 * would for those fields.
 */
TraceStatus readTraceHeader(const std::string &path,
                            std::uint64_t *config_hash);

/**
 * Inventory @p dir's trace files (*.ltrace), oldest mtime first —
 * i.e. first-to-evict first. Missing directories yield an empty list.
 */
std::vector<CacheEntry> listTraceCache(const std::string &dir);

/** Outcome of one gc pass. */
struct CacheGcResult
{
    std::size_t scanned = 0;
    std::size_t evicted = 0;
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/**
 * Evict oldest-mtime trace files from @p dir until the remaining
 * *.ltrace bytes fit @p max_bytes. Files that fail to delete are kept
 * and counted in bytesAfter (a concurrent sweep may hold them open on
 * some platforms; eviction is best-effort, correctness never depends on
 * it — a missing cache entry is just a re-simulation).
 */
CacheGcResult gcTraceCache(const std::string &dir,
                           std::uint64_t max_bytes);

} // namespace laser::trace

#endif // LASER_TRACE_CACHE_H
