/**
 * @file
 * Trace-cache maintenance: inventory, size budgeting and format
 * migration for long-lived cache directories.
 *
 * A sweep cache grows without bound as configurations churn (every
 * config-hash key is a new <hash>.ltrace file), so production cache
 * directories need eviction. Policy is mtime-LRU: the sweep runner
 * touches a file's mtime on every disk hit, so last-modified order is
 * last-used order, and gcTraceCache() deletes oldest-first until the
 * directory fits the byte budget.
 *
 * Listing reads only each file's fixed-size header (magic, version,
 * config hash) — no payload decode — so inventorying a multi-gigabyte
 * cache stays cheap. Old format versions are valid inventory (they
 * predate a kTraceVersion bump); migrateTraceCache() upgrades them to
 * the current format and re-keys them to their new config hash.
 *
 * Gc runs concurrently with sweeps using the same directory, so every
 * step tolerates the races that implies: files may vanish between
 * listing and deletion (another gc, or a cache wipe), and a file's
 * mtime may be refreshed by a disk hit after this gc listed it —
 * deletion re-checks the mtime and spares the entry, so a
 * just-used trace is never evicted on stale listing data.
 */

#ifndef LASER_TRACE_CACHE_H
#define LASER_TRACE_CACHE_H

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace laser::trace {

/** One cache file's inventory row. */
struct CacheEntry
{
    std::string path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime{};
    /** Config hash from the header (0 when the header is unreadable). */
    std::uint64_t configHash = 0;
    /** Format version from the header (0 when unreadable). */
    std::uint32_t version = 0;
    /** Header status: Ok means magic/version/endianness check out. */
    TraceStatus status = TraceStatus::Ok;
};

/**
 * Read just the header of @p path: magic, version, endianness and the
 * stored config hash. Returns the same typed statuses as a full parse
 * would for those fields; every supported version (kTraceMinVersion..
 * kTraceVersion) is Ok, with the version reported through @p version
 * when non-null.
 */
[[nodiscard]] TraceStatus readTraceHeader(
    const std::string &path, std::uint64_t *config_hash,
    std::uint32_t *version = nullptr);

/**
 * Inventory @p dir's trace files (*.ltrace), oldest mtime first —
 * i.e. first-to-evict first. Missing directories yield an empty list;
 * files that vanish mid-listing (concurrent gc) are skipped rather
 * than reported with garbage sizes.
 */
[[nodiscard]] std::vector<CacheEntry> listTraceCache(
    const std::string &dir);

/** Outcome of one gc pass. */
struct CacheGcResult
{
    std::size_t scanned = 0;
    std::size_t evicted = 0;
    /** Entries skipped because their mtime changed after listing (a
     *  concurrent disk hit marked them recently-used). */
    std::size_t spared = 0;
    /** Entries already gone by deletion time (concurrent gc/wipe). */
    std::size_t vanished = 0;
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/**
 * Evict oldest-mtime trace files from @p dir until the remaining
 * *.ltrace bytes fit @p max_bytes. Files that fail to delete are kept
 * and counted in bytesAfter (a concurrent sweep may hold them open on
 * some platforms; eviction is best-effort, correctness never depends on
 * it — a missing cache entry is just a re-simulation). An entry whose
 * mtime moved forward since the listing was taken is spared: a
 * concurrent disk hit just used it, so it is no longer the LRU victim
 * the listing claimed.
 */
[[nodiscard]] CacheGcResult gcTraceCache(const std::string &dir,
                                         std::uint64_t max_bytes);

/**
 * The gc pass over a caller-supplied listing (gcTraceCache() is this
 * over listTraceCache(dir)). Exposed so the listing-vs-deletion race
 * window can be exercised deterministically in tests: mutate the
 * directory after building @p entries, then run the pass.
 */
[[nodiscard]] CacheGcResult gcTraceCacheFrom(
    const std::vector<CacheEntry> &entries, std::uint64_t max_bytes);

/** Outcome of migrating one trace file to the current format. */
struct MigrateFileResult
{
    TraceStatus status = TraceStatus::Ok;
    /** True when the file was rewritten (false: already current). */
    bool upgraded = false;
    /** Where the trace lives now (re-keyed files move; see below). */
    std::string newPath;
    std::string error;
};

/**
 * Upgrade @p path to kTraceVersion in place. Already-current files are
 * left untouched. Because the config hash is version-scoped, upgrading
 * re-keys the trace: when the filename is the old hash's hex key (the
 * sweep-cache naming scheme), the upgraded file is written under the
 * new hash's key and the old file is removed; any other filename is
 * rewritten in place. The write is atomic (temp + rename), so a crash
 * mid-migration leaves the original readable.
 */
[[nodiscard]] MigrateFileResult migrateTraceFile(
    const std::string &path);

/** Outcome of one cache-wide migration pass. */
struct CacheMigrateResult
{
    std::size_t scanned = 0;
    std::size_t upgraded = 0;
    std::size_t alreadyCurrent = 0;
    std::size_t failed = 0;
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/** migrateTraceFile() over every *.ltrace in @p dir. */
[[nodiscard]] CacheMigrateResult migrateTraceCache(
    const std::string &dir);

} // namespace laser::trace

#endif // LASER_TRACE_CACHE_H
