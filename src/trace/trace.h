/**
 * @file
 * Durable PEBS trace format: capture a monitored run once, replay the
 * detector many times.
 *
 * The paper stresses that LASERDETECT's thresholds are "adjustable
 * offline without rerunning the program" (Section 4); this module makes
 * that literal. A trace file persists everything a replay needs: the
 * capture configuration (workload + build options + machine + PEBS +
 * baseline-model configuration), the run's results (machine statistics,
 * runtime, the rendered /proc maps text) and the full record stream in
 * canonical (non-decreasing cycle) order — the order every analysis
 * sink consumes, produced by analysis::sortByCycle over the raw
 * driver-delivery stream.
 *
 * File layout (all multi-byte header/trailer fields little-endian):
 *
 *   offset  size  field
 *   0       4     magic "LSRT"
 *   4       4     u32 format version (kTraceVersion)
 *   8       4     u32 endianness marker (kTraceEndianMarker)
 *   12      8     u64 config hash (cache key; FNV-1a of config section)
 *   20      8     u64 payload size in bytes (n)
 *   28      n     payload
 *   28+n    8     u64 FNV-1a checksum of the payload
 *
 * Format v4 payload (columnar; see trace/columnar.h for the codecs):
 *
 *   config section     varint/zigzag-encoded capture configuration
 *   results section    machine stats, runtime, /proc maps text
 *   record blob        records in fixed-size blocks; within a block
 *                      each field (pc / data addr / core / cycle) is a
 *                      column encoded with the per-block codec that
 *                      compresses it best
 *   block index        per block: record count, cycle range, per-column
 *                      codec + encoded size, FNV-1a block checksum;
 *                      carries a checksum of the config+results
 *                      sections and its own trailing self-checksum
 *   u64 index offset   absolute offset of the block index within the
 *                      payload (fixed-width; always the last 8 payload
 *                      bytes)
 *
 * The block index makes the file seekable: trace::TraceFile reads the
 * header, the trailing index offset and the index, binary-searches the
 * blocks for a record range or cycle window, and decodes only the
 * overlapping blocks — no prefix decode and no whole-file checksum pass
 * on the seek path (the meta/index/block checksums cover every byte it
 * reads). A full TraceReader parse remains fully strict: it verifies
 * the whole-payload checksum first and then cross-checks the index
 * against every decoded record.
 *
 * Within the payload, integers are LEB128 varints (signed values
 * zigzag-encoded), doubles are fixed 8-byte IEEE bit patterns, strings
 * are length-prefixed.
 *
 * Older formats still parse (read-side compatibility; `laser_trace
 * migrate` upgrades files in place): v3 lacked the coherence-protocol /
 * cache-geometry tail of the config section (a v3 parse yields the
 * default MESI 64-byte-line configuration), v2 stored records row-wise
 * as interleaved zigzag deltas, v1 additionally lacked the
 * VTune/Sheriff config sections and stored records in driver-delivery
 * order (a v1 parse restores canonical order with
 * analysis::sortByCycle). The
 * config hash is version-scoped — configHashForVersion() reproduces the
 * key an old writer stored — and the write side always emits
 * kTraceVersion.
 *
 * Parsing is strict: wrong magic, foreign endianness, unknown version,
 * short files, checksum/hash mismatches and non-monotonic record cycle
 * streams each yield a typed TraceStatus, never undefined behaviour. A
 * trace that parses Ok round-trips byte-exactly (codec choice is
 * deterministic).
 */

#ifndef LASER_TRACE_TRACE_H
#define LASER_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sink.h"
#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "pebs/monitor.h"
#include "pebs/record.h"
#include "sim/machine.h"
#include "trace/columnar.h"
#include "workloads/workload.h"

namespace laser::trace {

constexpr std::uint32_t kTraceVersion = 4;
/** Oldest version the read side still parses. */
constexpr std::uint32_t kTraceMinVersion = 1;
constexpr char kTraceMagic[4] = {'L', 'S', 'R', 'T'};
constexpr std::uint32_t kTraceEndianMarker = 0x01020304;
/** Canonical trace-file extension (also used by the sweep cache). */
constexpr const char *kTraceExtension = ".ltrace";
/** Fixed header / trailer sizes (see the file-layout table above). */
constexpr std::size_t kTraceHeaderSize = 28;
constexpr std::size_t kTraceTrailerSize = 8;

/** Typed outcome of every trace parse/IO operation. */
enum class TraceStatus : std::uint8_t {
    Ok,
    IoError,       ///< file unreadable/unwritable
    BadMagic,      ///< not a LASER trace
    BadVersion,    ///< produced by an incompatible format version
    BadEndianness, ///< produced on a foreign-endian machine
    Truncated,     ///< stream ends mid-structure
    Corrupt,       ///< checksum/hash mismatch or malformed content
    NonMonotonic,  ///< record cycles decrease (breaks time-window sharding)
};

/** Printable name of a status ("ok", "bad magic", ...). */
const char *traceStatusName(TraceStatus status);

/** Run metadata persisted with every trace. */
struct TraceMeta
{
    // -- Capture configuration; participates in configHash(). ---------
    /** Registered workload name (replay rebuilds the program from it). */
    std::string workload;
    /**
     * Scheme label ("native", "laser-detect", "vtune", "sheriff-detect",
     * "sheriff-protect"); names the stream's record encoding.
     */
    std::string scheme = "laser-detect";
    workloads::BuildOptions build{};
    sim::MachineConfig machine{};
    pebs::PebsConfig pebs{};
    /** Baseline-model configurations (consumed by their schemes only). */
    baselines::VTuneConfig vtune{};
    baselines::SheriffConfig sheriff{};

    // -- Capture results; not hashed. ---------------------------------
    sim::MachineStats stats{};
    /** Modeled wall-clock runtime of the monitored run, cycles. */
    std::uint64_t runtimeCycles = 0;
    /** The /proc/<pid>/maps text the detector's PC filter parses. */
    std::string mapsText;
};

/**
 * Content hash of a capture configuration: the cache key under which a
 * trace is stored. Computable before running anything (only the config
 * section of @p meta is read), and stored in the file header so a cache
 * can index traces without decoding payloads. Version-scoped: bumping
 * kTraceVersion re-keys every cache (`laser_trace migrate` re-keys old
 * cache files to their new hash).
 */
std::uint64_t configHash(const TraceMeta &meta);

/** The config hash a version-@p version writer would have stored. */
std::uint64_t configHashForVersion(const TraceMeta &meta,
                                   std::uint32_t version);

/** A decoded trace: metadata + records in canonical cycle order. */
struct Trace
{
    TraceMeta meta;
    std::vector<pebs::PebsRecord> records;
};

/**
 * Streaming trace encoder (always writes kTraceVersion). Also an
 * analysis::RecordSink, so a capture path can tee one record stream
 * into a live analyzer and a trace file through identical plumbing.
 *
 * Records are buffered per column; every @p block_records appends the
 * writer encodes one block (choosing each column's codec for those
 * records) into the growing record blob, so writer memory is O(block),
 * not O(trace).
 *
 * Appended records must follow the canonical stream contract
 * (non-decreasing cycles; sort raw driver output with
 * analysis::sortByCycle first). A violation is latched: finalize()
 * still encodes the bytes (so the reader's rejection paths can be
 * exercised), but writeFile() refuses with NonMonotonic rather than
 * persist a file every conforming reader would reject.
 *
 * @code
 *   TraceWriter w(meta);
 *   w.appendAll(sorted_records);
 *   w.writeFile("run.ltrace");
 * @endcode
 */
class TraceWriter : public analysis::RecordSink
{
  public:
    explicit TraceWriter(
        TraceMeta meta,
        std::size_t block_records = columnar::kDefaultBlockRecords);

    /** Append one record (encoded block-at-a-time). */
    void append(const pebs::PebsRecord &rec);
    void appendAll(const std::vector<pebs::PebsRecord> &recs);

    /** RecordSink: streams append in arrival order. */
    void onRecord(const pebs::PebsRecord &rec) override { append(rec); }

    /** Complete file image: header + payload + checksum trailer. */
    [[nodiscard]] std::vector<std::uint8_t> finalize() const;

    /** Write the file image atomically (temp file + rename). */
    [[nodiscard]] TraceStatus writeFile(const std::string &path) const;

    /** False once an appended record's cycle went backwards. */
    bool monotonic() const { return monotonic_; }

    const TraceMeta &meta() const { return meta_; }
    std::size_t recordCount() const { return recordCount_; }

  private:
    void flushBlock();

    TraceMeta meta_;
    std::size_t blockRecords_;
    /** Column buffers of the current (unflushed) block. */
    std::vector<std::uint64_t> pending_[columnar::kColumnCount];
    /** Encoded bytes of all flushed blocks. */
    std::vector<std::uint8_t> blob_;
    /** Index entries of all flushed blocks. */
    columnar::BlockIndex index_;
    std::size_t recordCount_ = 0;
    std::uint64_t prevCycle_ = 0;
    bool monotonic_ = true;
};

/** Convenience: encode and write a whole trace. */
[[nodiscard]] TraceStatus writeTraceFile(const Trace &trace,
                                         const std::string &path);

/**
 * Encode @p trace as an older format version (1 or 2) — the row-wise
 * interleaved-delta encodings v3 replaced. Exists for migration tests
 * and for measuring v3's compression against v2; the write path proper
 * always emits kTraceVersion.
 */
std::vector<std::uint8_t> encodeLegacyTrace(const Trace &trace,
                                            std::uint32_t version);

/**
 * Strict trace decoder (reads every supported version; see the header
 * comment for the compatibility rules). All entry points return a
 * TraceStatus; trace() is only meaningful after an Ok parse. error()
 * carries a human-readable detail string for every failure.
 */
class TraceReader
{
  public:
    [[nodiscard]] TraceStatus parse(const std::uint8_t *data,
                                    std::size_t size);
    [[nodiscard]] TraceStatus parse(const std::vector<std::uint8_t> &bytes);
    [[nodiscard]] TraceStatus readFile(const std::string &path);

    const Trace &trace() const { return trace_; }
    /** Move the parsed trace out (reader resets to empty). */
    Trace takeTrace() { return std::move(trace_); }
    /** Format version of the last Ok parse. */
    std::uint32_t version() const { return version_; }
    /** Detail message for the last non-Ok status ("" after Ok). */
    const std::string &error() const { return error_; }

  private:
    [[nodiscard]] TraceStatus fail(TraceStatus status,
                                   std::string detail);
    [[nodiscard]] TraceStatus parseLegacyRecords(
        const std::uint8_t *payload, std::size_t payload_size,
        std::size_t meta_size, std::uint32_t version);
    [[nodiscard]] TraceStatus parseColumnarRecords(
        const std::uint8_t *payload, std::size_t payload_size,
        std::size_t meta_size);

    Trace trace_;
    std::uint32_t version_ = 0;
    std::string error_;
};

namespace detail {

/** Parsed fixed header fields. */
struct HeaderInfo
{
    std::uint32_t version = 0;
    std::uint64_t configHash = 0;
    std::uint64_t payloadSize = 0;
};

/**
 * Validate the fixed 28-byte header (magic, supported version,
 * endianness) and extract its fields. Shared by the full reader, the
 * seekable TraceFile and the cache's header-only inventory so all
 * three reject foreign files identically.
 */
[[nodiscard]] TraceStatus parseTraceHeader(const std::uint8_t *data,
                                           std::size_t size,
                                           HeaderInfo *out,
                                           std::string *err);

/**
 * Parse the config + results sections at the start of a payload
 * (version-dependent: v1 lacks the VTune/Sheriff config blocks).
 * On Ok, *consumed is the meta-section size in bytes.
 */
[[nodiscard]] TraceStatus parseMetaSections(
    const std::uint8_t *payload, std::size_t size, std::uint32_t version,
    TraceMeta *meta, std::size_t *consumed, std::string *err);

} // namespace detail

} // namespace laser::trace

#endif // LASER_TRACE_TRACE_H
