/**
 * @file
 * Durable PEBS trace format: capture a monitored run once, replay the
 * detector many times.
 *
 * The paper stresses that LASERDETECT's thresholds are "adjustable
 * offline without rerunning the program" (Section 4); this module makes
 * that literal. A trace file persists everything a replay needs: the
 * capture configuration (workload + build options + machine + PEBS +
 * baseline-model configuration), the run's results (machine statistics,
 * runtime, the rendered /proc maps text) and the full record stream in
 * canonical (non-decreasing cycle) order — the order every analysis
 * sink consumes, produced by analysis::sortByCycle over the raw
 * driver-delivery stream.
 *
 * File layout (all multi-byte header/trailer fields little-endian):
 *
 *   offset  size  field
 *   0       4     magic "LSRT"
 *   4       4     u32 format version (kTraceVersion)
 *   8       4     u32 endianness marker (kTraceEndianMarker)
 *   12      8     u64 config hash (cache key; FNV-1a of config section)
 *   20      8     u64 payload size in bytes
 *   28      n     payload: config section, results section, records
 *   28+n    8     u64 FNV-1a checksum of the payload
 *
 * Within the payload, integers are LEB128 varints (signed values
 * zigzag-encoded), doubles are fixed 8-byte IEEE bit patterns, strings
 * are length-prefixed. Records are delta-encoded against the previous
 * record (pc / data address / cycle as zigzag deltas), which compresses
 * the hot-loop streams the monitor produces by roughly 4-6x over raw
 * structs.
 *
 * Format v2 additions: the record stream is canonical — records are
 * stored in non-decreasing cycle order (the order every analysis sink
 * consumes), so sharded replay can split a trace into time windows by
 * plain index arithmetic; and the config section carries the VTune and
 * Sheriff model configurations, because v2 traces capture those
 * baseline schemes too (the scheme string names the stream's record
 * encoding).
 *
 * Parsing is strict: wrong magic, foreign endianness, unknown version,
 * short files, checksum/hash mismatches and non-monotonic record cycle
 * streams each yield a typed TraceStatus, never undefined behaviour. A
 * trace that parses Ok round-trips byte-exactly.
 */

#ifndef LASER_TRACE_TRACE_H
#define LASER_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sink.h"
#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "pebs/monitor.h"
#include "pebs/record.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace laser::trace {

constexpr std::uint32_t kTraceVersion = 2;
constexpr char kTraceMagic[4] = {'L', 'S', 'R', 'T'};
constexpr std::uint32_t kTraceEndianMarker = 0x01020304;
/** Canonical trace-file extension (also used by the sweep cache). */
constexpr const char *kTraceExtension = ".ltrace";

/** Typed outcome of every trace parse/IO operation. */
enum class TraceStatus : std::uint8_t {
    Ok,
    IoError,       ///< file unreadable/unwritable
    BadMagic,      ///< not a LASER trace
    BadVersion,    ///< produced by an incompatible format version
    BadEndianness, ///< produced on a foreign-endian machine
    Truncated,     ///< stream ends mid-structure
    Corrupt,       ///< checksum/hash mismatch or malformed content
    NonMonotonic,  ///< record cycles decrease (breaks time-window sharding)
};

/** Printable name of a status ("ok", "bad magic", ...). */
const char *traceStatusName(TraceStatus status);

/** Run metadata persisted with every trace. */
struct TraceMeta
{
    // -- Capture configuration; participates in configHash(). ---------
    /** Registered workload name (replay rebuilds the program from it). */
    std::string workload;
    /**
     * Scheme label ("native", "laser-detect", "vtune", "sheriff-detect",
     * "sheriff-protect"); names the stream's record encoding.
     */
    std::string scheme = "laser-detect";
    workloads::BuildOptions build{};
    sim::MachineConfig machine{};
    pebs::PebsConfig pebs{};
    /** Baseline-model configurations (consumed by their schemes only). */
    baselines::VTuneConfig vtune{};
    baselines::SheriffConfig sheriff{};

    // -- Capture results; not hashed. ---------------------------------
    sim::MachineStats stats{};
    /** Modeled wall-clock runtime of the monitored run, cycles. */
    std::uint64_t runtimeCycles = 0;
    /** The /proc/<pid>/maps text the detector's PC filter parses. */
    std::string mapsText;
};

/**
 * Content hash of a capture configuration: the cache key under which a
 * trace is stored. Computable before running anything (only the config
 * section of @p meta is read), and stored in the file header so a cache
 * can index traces without decoding payloads.
 */
std::uint64_t configHash(const TraceMeta &meta);

/** A decoded trace: metadata + records in driver-delivery order. */
struct Trace
{
    TraceMeta meta;
    std::vector<pebs::PebsRecord> records;
};

/**
 * Streaming trace encoder. Also an analysis::RecordSink, so a capture
 * path can tee one record stream into a live analyzer and a trace file
 * through identical plumbing.
 *
 * Appended records must follow the canonical stream contract
 * (non-decreasing cycles; sort raw driver output with
 * analysis::sortByCycle first). A violation is latched: finalize()
 * still encodes the bytes (so the reader's rejection paths can be
 * exercised), but writeFile() refuses with NonMonotonic rather than
 * persist a file every conforming reader would reject.
 *
 * @code
 *   TraceWriter w(meta);
 *   w.appendAll(sorted_records);
 *   w.writeFile("run.ltrace");
 * @endcode
 */
class TraceWriter : public analysis::RecordSink
{
  public:
    explicit TraceWriter(TraceMeta meta);

    /** Append one record (delta-encoded immediately). */
    void append(const pebs::PebsRecord &rec);
    void appendAll(const std::vector<pebs::PebsRecord> &recs);

    /** RecordSink: streams append in arrival order. */
    void onRecord(const pebs::PebsRecord &rec) override { append(rec); }

    /** Complete file image: header + payload + checksum trailer. */
    std::vector<std::uint8_t> finalize() const;

    /** Write the file image atomically (temp file + rename). */
    TraceStatus writeFile(const std::string &path) const;

    /** False once an appended record's cycle went backwards. */
    bool monotonic() const { return monotonic_; }

    const TraceMeta &meta() const { return meta_; }
    std::size_t recordCount() const { return recordCount_; }

  private:
    TraceMeta meta_;
    std::vector<std::uint8_t> recordBytes_;
    std::size_t recordCount_ = 0;
    pebs::PebsRecord prev_{};
    bool monotonic_ = true;
};

/** Convenience: encode and write a whole trace. */
TraceStatus writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Strict trace decoder. All entry points return a TraceStatus; trace()
 * is only meaningful after an Ok parse. error() carries a human-readable
 * detail string for every failure.
 */
class TraceReader
{
  public:
    TraceStatus parse(const std::uint8_t *data, std::size_t size);
    TraceStatus parse(const std::vector<std::uint8_t> &bytes);
    TraceStatus readFile(const std::string &path);

    const Trace &trace() const { return trace_; }
    /** Move the parsed trace out (reader resets to empty). */
    Trace takeTrace() { return std::move(trace_); }
    /** Detail message for the last non-Ok status ("" after Ok). */
    const std::string &error() const { return error_; }

  private:
    TraceStatus fail(TraceStatus status, std::string detail);

    Trace trace_;
    std::string error_;
};

} // namespace laser::trace

#endif // LASER_TRACE_TRACE_H
