#include "trace/trace_file.h"

#include <algorithm>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "trace/wire.h"

namespace laser::trace {

namespace {

struct FileMetrics
{
    obs::Counter &bytesRead;
    obs::Counter &blocksDecoded;
    obs::Counter &opens;

    static FileMetrics &
    get()
    {
        static FileMetrics m{
            obs::Registry::global().counter("trace.file.bytes_read"),
            obs::Registry::global().counter("trace.file.blocks_decoded"),
            obs::Registry::global().counter("trace.file.opens"),
        };
        return m;
    }
};

} // namespace

/**
 * Cursor over a contiguous block range of an open TraceFile, decoding
 * one block at a time. Emits only records within the global record
 * range [recFirst, recEnd) AND the cycle window [cycleBegin, cycleEnd);
 * callers set the dimension they don't filter on to [0, max].
 */
class FileCursor : public RecordCursor
{
  public:
    FileCursor(const TraceFile *file, std::size_t first_block,
               std::size_t end_block, std::uint64_t rec_first,
               std::uint64_t rec_end, std::uint64_t cycle_begin,
               std::uint64_t cycle_end)
        : file_(file), block_(first_block), endBlock_(end_block),
          recFirst_(rec_first), recEnd_(rec_end),
          cycleBegin_(cycle_begin), cycleEnd_(cycle_end)
    {
    }

    ~FileCursor() override { unloadBlock(); }

    bool
    next(pebs::PebsRecord *rec) override
    {
        using columnar::kColAddr;
        using columnar::kColCore;
        using columnar::kColCycle;
        using columnar::kColPc;

        while (status_ == TraceStatus::Ok) {
            if (!loaded_) {
                if (block_ >= endBlock_ || !loadBlock())
                    return false;
            }
            const columnar::BlockInfo &b = file_->index_.blocks[block_];
            while (pos_ < b.records) {
                const std::uint64_t global = b.firstRecord + pos_;
                if (global >= recEnd_)
                    return false;
                const std::uint64_t cycle = cols_[kColCycle][pos_];
                if (cycle >= cycleEnd_)
                    return false; // sorted: nothing later can match
                if (global < recFirst_ || cycle < cycleBegin_) {
                    ++pos_;
                    continue;
                }
                rec->pc = cols_[kColPc][pos_];
                rec->dataAddr = cols_[kColAddr][pos_];
                rec->core = static_cast<int>(
                    static_cast<std::int64_t>(cols_[kColCore][pos_]));
                rec->cycle = cycle;
                ++pos_;
                return true;
            }
            unloadBlock();
            ++block_;
        }
        return false;
    }

    [[nodiscard]] TraceStatus status() const override { return status_; }

  private:
    bool
    loadBlock()
    {
        const columnar::BlockInfo &b = file_->index_.blocks[block_];
        const std::uint8_t *bp = file_->blob() + b.blobOffset;
        const std::size_t bytes = static_cast<std::size_t>(b.blobBytes());
        if (wire::fnv1a(bp, bytes) != b.checksum) {
            status_ = TraceStatus::Corrupt;
            return false;
        }
        for (std::size_t c = 0; c < columnar::kColumnCount; ++c) {
            if (!columnar::decodeColumn(
                    b.codec[c], bp + b.columnOffset(c),
                    static_cast<std::size_t>(b.columnBytes[c]),
                    static_cast<std::size_t>(b.records), &cols_[c])) {
                status_ = TraceStatus::Corrupt;
                return false;
            }
        }
        // The index's cycle range must describe the records it points
        // at, or window selection would silently skip/include records.
        if (cols_[columnar::kColCycle].front() != b.firstCycle ||
                cols_[columnar::kColCycle].back() != b.lastCycle) {
            status_ = TraceStatus::Corrupt;
            return false;
        }
        FileMetrics::get().bytesRead.inc(bytes);
        FileMetrics::get().blocksDecoded.inc();
        detail::addBufferedRecords(static_cast<std::size_t>(b.records));
        loaded_ = true;
        pos_ = 0;
        return true;
    }

    void
    unloadBlock()
    {
        if (!loaded_)
            return;
        detail::subBufferedRecords(static_cast<std::size_t>(
            file_->index_.blocks[block_].records));
        for (auto &col : cols_)
            col.clear();
        loaded_ = false;
    }

    const TraceFile *file_;
    std::size_t block_;
    std::size_t endBlock_;
    std::uint64_t recFirst_;
    std::uint64_t recEnd_;
    std::uint64_t cycleBegin_;
    std::uint64_t cycleEnd_;
    std::vector<std::uint64_t> cols_[columnar::kColumnCount];
    std::size_t pos_ = 0;
    bool loaded_ = false;
    TraceStatus status_ = TraceStatus::Ok;
};

TraceFile::~TraceFile()
{
    unmap();
}

void
TraceFile::unmap()
{
    if (map_) {
        ::munmap(map_, size_);
        map_ = nullptr;
    }
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = nullptr;
    size_ = 0;
}

TraceStatus
TraceFile::fail(TraceStatus status, std::string detail)
{
    unmap();
    meta_ = {};
    index_ = {};
    configHash_ = 0;
    metaSize_ = 0;
    payloadSize_ = 0;
    open_ = false;
    error_ = std::move(detail);
    return status;
}

TraceStatus
TraceFile::open(const std::string &path)
{
    unmap();
    open_ = false;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(TraceStatus::IoError, "cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return fail(TraceStatus::IoError, "cannot stat " + path);
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        return fail(TraceStatus::Truncated, path + " is empty");
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(TraceStatus::IoError, "cannot map " + path);
    map_ = map;
    data_ = static_cast<const std::uint8_t *>(map);
    size_ = size;
    return validate();
}

TraceStatus
TraceFile::openBytes(std::vector<std::uint8_t> bytes)
{
    unmap();
    open_ = false;
    owned_ = std::move(bytes);
    data_ = owned_.data();
    size_ = owned_.size();
    return validate();
}

TraceStatus
TraceFile::validate()
{
    error_.clear();

    detail::HeaderInfo header;
    std::string err;
    const TraceStatus header_status =
        trace::detail::parseTraceHeader(data_, size_, &header, &err);
    if (header_status != TraceStatus::Ok)
        return fail(header_status, std::move(err));
    if (header.version < 3)
        return fail(TraceStatus::BadVersion,
                    "format v" + std::to_string(header.version) +
                        " has no block index and is not seekable; "
                        "upgrade it with `laser_trace migrate`");
    if (size_ < kTraceHeaderSize + kTraceTrailerSize)
        return fail(TraceStatus::Truncated,
                    "file shorter than header + trailer");
    if (header.payloadSize > size_ - kTraceHeaderSize - kTraceTrailerSize)
        return fail(TraceStatus::Truncated,
                    "payload declares " +
                        std::to_string(header.payloadSize) +
                        " bytes but only " +
                        std::to_string(size_ - kTraceHeaderSize -
                                       kTraceTrailerSize) +
                        " present");
    if (header.payloadSize < size_ - kTraceHeaderSize - kTraceTrailerSize)
        return fail(TraceStatus::Corrupt,
                    "trailing bytes after payload + checksum");
    payloadSize_ = header.payloadSize;
    configHash_ = header.configHash;

    const std::size_t payload_size = static_cast<std::size_t>(payloadSize_);
    if (payload_size < 8)
        return fail(TraceStatus::Truncated,
                    "payload too small for the index offset");
    wire::ByteReader tail(payload() + payload_size - 8, 8);
    const std::uint64_t index_offset = tail.u64();
    if (index_offset > payload_size - 8)
        return fail(TraceStatus::Corrupt,
                    "block index offset out of range");

    if (!index_.decode(payload() + index_offset,
                       payload_size - 8 - index_offset, &err))
        return fail(TraceStatus::Corrupt, "block index: " + err);
    if (index_.blobOffset > index_offset ||
            index_.blobBytes() != index_offset - index_.blobOffset)
        return fail(TraceStatus::Corrupt,
                    "block sizes do not cover the record blob");
    metaSize_ = static_cast<std::size_t>(index_.blobOffset);
    if (index_.metaChecksum != wire::fnv1a(payload(), metaSize_))
        return fail(TraceStatus::Corrupt,
                    "meta-section checksum mismatch");

    std::size_t consumed = 0;
    const TraceStatus meta_status = trace::detail::parseMetaSections(
        payload(), metaSize_, header.version, &meta_, &consumed, &err);
    if (meta_status != TraceStatus::Ok)
        return fail(meta_status, std::move(err));
    if (consumed != metaSize_)
        return fail(TraceStatus::Corrupt,
                    "meta sections do not end at the record blob");
    if (configHashForVersion(meta_, header.version) != header.configHash)
        return fail(TraceStatus::Corrupt,
                    "header config hash does not match config section");
    // Seeking binary-searches block cycle ranges; an unordered index
    // cannot serve a window correctly, so refuse it up front.
    if (!index_.cyclesOrdered())
        return fail(TraceStatus::NonMonotonic,
                    "block cycle ranges are not ordered");

    // Everything read so far: header, meta sections, index, trailing
    // index offset. Record blocks are charged as cursors decode them.
    FileMetrics::get().bytesRead.inc(kTraceHeaderSize + metaSize_ +
                                     (payload_size - index_offset));
    FileMetrics::get().opens.inc();
    open_ = true;
    return TraceStatus::Ok;
}

std::unique_ptr<RecordCursor>
TraceFile::cursorForRecords(std::uint64_t first, std::uint64_t end) const
{
    first = std::min<std::uint64_t>(first, index_.records);
    end = std::clamp(end, first, index_.records);
    if (!open_ || first == end)
        return std::make_unique<FileCursor>(this, 0, 0, 0, 0, 0, 0);
    const std::size_t first_block = index_.blockForRecord(first);
    const std::size_t end_block = index_.blockForRecord(end - 1) + 1;
    return std::make_unique<FileCursor>(
        this, first_block, end_block, first, end, 0,
        ~static_cast<std::uint64_t>(0));
}

std::unique_ptr<RecordCursor>
TraceFile::cursorForCycles(std::uint64_t begin, std::uint64_t end) const
{
    if (!open_ || begin >= end)
        return std::make_unique<FileCursor>(this, 0, 0, 0, 0, 0, 0);
    std::size_t first_block = 0;
    std::size_t end_block = 0;
    index_.blocksForCycles(begin, end, &first_block, &end_block);
    return std::make_unique<FileCursor>(
        this, first_block, end_block, 0, index_.records, begin, end);
}

TraceStatus
TraceFile::readAll(Trace *out) const
{
    out->meta = meta_;
    out->records.clear();
    if (!open_) {
        out->meta = {};
        return TraceStatus::IoError;
    }
    const std::unique_ptr<RecordCursor> cur = cursor();
    pebs::PebsRecord rec;
    while (cur->next(&rec))
        out->records.push_back(rec);
    return cur->status();
}

} // namespace laser::trace
