#include "trace/trace.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace laser::trace {

namespace {

constexpr std::size_t kHeaderSize = 28; // magic + version + endian + hash + payload size
constexpr std::size_t kTrailerSize = 8; // payload checksum

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size,
      std::uint64_t h = 1469598103934665603ull)
{
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append-only little-endian/varint encoder over a caller's buffer. */
struct ByteWriter
{
    std::vector<std::uint8_t> &buf;

    explicit ByteWriter(std::vector<std::uint8_t> &b) : buf(b) {}

    void u8(std::uint8_t v) { buf.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    var(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf.push_back(static_cast<std::uint8_t>(v));
    }

    void zig(std::int64_t v) { var(zigzagEncode(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        var(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    }
};

/** Bounds-checked decoder: any overrun latches ok=false, reads yield 0. */
struct ByteReader
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool ok = true;

    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

    std::uint8_t
    u8()
    {
        if (p >= end) {
            ok = false;
            return 0;
        }
        return *p++;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        if (remaining() < 4) {
            ok = false;
            p = end;
            return 0;
        }
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (remaining() < 8) {
            ok = false;
            p = end;
            return 0;
        }
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    var()
    {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (p >= end) {
                ok = false;
                return 0;
            }
            const std::uint8_t byte = *p++;
            // Reject the tenth byte carrying bits beyond the 64th, and
            // non-canonical zero continuation bytes: both would parse
            // "Ok" into a value that re-encodes to different bytes.
            if ((shift == 63 && (byte & 0xfe)) ||
                    (byte == 0 && shift > 0)) {
                ok = false;
                return 0;
            }
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        ok = false; // > 10 bytes: malformed varint
        return 0;
    }

    std::int64_t zig() { return zigzagDecode(var()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string
    str()
    {
        const std::uint64_t n = var();
        if (!ok || n > remaining()) {
            ok = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p),
                      static_cast<std::size_t>(n));
        p += n;
        return s;
    }
};

void
putTiming(ByteWriter &w, const sim::TimingModel &t)
{
    w.var(t.base);
    w.var(t.pauseCost);
    w.var(t.fenceCost);
    w.var(t.atomicExtra);
    w.var(t.l1Hit);
    w.var(t.llcHit);
    w.var(t.memMiss);
    w.var(t.hitm);
    w.var(t.upgrade);
    w.var(t.rfoShared);
    w.var(t.ssbStore);
    w.var(t.ssbLoadCheck);
    w.var(t.ssbLoadHit);
    w.var(t.ssbFlushBase);
    w.var(t.aliasCheckCost);
    w.var(t.pinBaseOverhead);
    w.var(t.pinAttachCost);
    w.var(t.pebsAssist);
    w.var(t.pmiCost);
    w.var(t.driverPerRecord);
    w.var(t.detectorPerRecord);
}

void
getTiming(ByteReader &r, sim::TimingModel *t)
{
    t->base = static_cast<std::uint32_t>(r.var());
    t->pauseCost = static_cast<std::uint32_t>(r.var());
    t->fenceCost = static_cast<std::uint32_t>(r.var());
    t->atomicExtra = static_cast<std::uint32_t>(r.var());
    t->l1Hit = static_cast<std::uint32_t>(r.var());
    t->llcHit = static_cast<std::uint32_t>(r.var());
    t->memMiss = static_cast<std::uint32_t>(r.var());
    t->hitm = static_cast<std::uint32_t>(r.var());
    t->upgrade = static_cast<std::uint32_t>(r.var());
    t->rfoShared = static_cast<std::uint32_t>(r.var());
    t->ssbStore = static_cast<std::uint32_t>(r.var());
    t->ssbLoadCheck = static_cast<std::uint32_t>(r.var());
    t->ssbLoadHit = static_cast<std::uint32_t>(r.var());
    t->ssbFlushBase = static_cast<std::uint32_t>(r.var());
    t->aliasCheckCost = static_cast<std::uint32_t>(r.var());
    t->pinBaseOverhead = static_cast<std::uint32_t>(r.var());
    t->pinAttachCost = r.var();
    t->pebsAssist = static_cast<std::uint32_t>(r.var());
    t->pmiCost = static_cast<std::uint32_t>(r.var());
    t->driverPerRecord = static_cast<std::uint32_t>(r.var());
    t->detectorPerRecord = static_cast<std::uint32_t>(r.var());
}

/** The hashed config section: workload identity + every knob that can
 *  change the record stream or the modeled runtime. */
void
putConfig(ByteWriter &w, const TraceMeta &m)
{
    w.str(m.workload);
    w.str(m.scheme);

    const workloads::BuildOptions &b = m.build;
    w.boolean(b.manualFix);
    w.var(b.heapPerturbation);
    w.zig(b.numThreads);
    w.var(b.inputSeed);
    w.f64(b.scale);

    const sim::MachineConfig &mc = m.machine;
    w.zig(mc.numCores);
    putTiming(w, mc.timing);
    w.var(mc.seed);
    w.boolean(mc.latencyJitter);
    w.var(mc.maxInstructions);
    w.var(mc.heapPerturbation);
    w.boolean(mc.threadsAsProcesses);
    w.boolean(mc.trackDirtyPages);
    w.zig(mc.ssbMaxEntries);
    w.u8(static_cast<std::uint8_t>(mc.ssbMode));
    w.boolean(mc.recordTsoTrace);

    const pebs::PebsConfig &p = m.pebs;
    w.var(p.sav);
    w.var(p.bufferCapacity);
    w.var(p.seed);
    w.boolean(p.keepGroundTruth);
    w.boolean(p.chargeCosts);
    w.f64(p.loadAddrCorrect);
    w.f64(p.loadPcExact);
    w.f64(p.loadPcAdjacent);
    w.f64(p.storeAddrCorrect);
    w.f64(p.storePcExact);
    w.f64(p.storePcAdjacent);
    w.f64(p.wrongAddrUnmapped);
    w.f64(p.wrongPcInBinary);

    const baselines::VTuneConfig &v = m.vtune;
    w.f64(v.rateThreshold);
    w.var(v.eventCost);
    w.var(v.memopSav);
    w.var(v.memopCost);
    w.var(v.hotLoadWindow);
    w.var(v.hotLoadSav);
    w.var(v.hotLoadCost);
    w.var(v.seed);

    const baselines::SheriffConfig &s = m.sheriff;
    w.var(s.syncBaseCost);
    w.var(s.perDirtyPageCost);
    w.var(s.detectExtraCost);
    w.boolean(s.detectMode);
}

bool
getConfig(ByteReader &r, TraceMeta *m, std::string *err)
{
    m->workload = r.str();
    m->scheme = r.str();

    workloads::BuildOptions &b = m->build;
    b.manualFix = r.boolean();
    b.heapPerturbation = r.var();
    b.numThreads = static_cast<int>(r.zig());
    b.inputSeed = r.var();
    b.scale = r.f64();

    sim::MachineConfig &mc = m->machine;
    mc.numCores = static_cast<int>(r.zig());
    getTiming(r, &mc.timing);
    mc.seed = r.var();
    mc.latencyJitter = r.boolean();
    mc.maxInstructions = r.var();
    mc.heapPerturbation = r.var();
    mc.threadsAsProcesses = r.boolean();
    mc.trackDirtyPages = r.boolean();
    mc.ssbMaxEntries = static_cast<int>(r.zig());
    const std::uint8_t mode = r.u8();
    if (r.ok && mode > static_cast<std::uint8_t>(sim::SsbMode::Fifo)) {
        *err = "invalid SSB mode " + std::to_string(mode);
        return false;
    }
    mc.ssbMode = static_cast<sim::SsbMode>(mode);
    mc.recordTsoTrace = r.boolean();

    pebs::PebsConfig &p = m->pebs;
    p.sav = static_cast<std::uint32_t>(r.var());
    p.bufferCapacity = static_cast<std::uint32_t>(r.var());
    p.seed = r.var();
    p.keepGroundTruth = r.boolean();
    p.chargeCosts = r.boolean();
    p.loadAddrCorrect = r.f64();
    p.loadPcExact = r.f64();
    p.loadPcAdjacent = r.f64();
    p.storeAddrCorrect = r.f64();
    p.storePcExact = r.f64();
    p.storePcAdjacent = r.f64();
    p.wrongAddrUnmapped = r.f64();
    p.wrongPcInBinary = r.f64();

    baselines::VTuneConfig &v = m->vtune;
    v.rateThreshold = r.f64();
    v.eventCost = r.var();
    v.memopSav = r.var();
    v.memopCost = r.var();
    v.hotLoadWindow = r.var();
    v.hotLoadSav = r.var();
    v.hotLoadCost = r.var();
    v.seed = r.var();

    baselines::SheriffConfig &s = m->sheriff;
    s.syncBaseCost = r.var();
    s.perDirtyPageCost = r.var();
    s.detectExtraCost = r.var();
    s.detectMode = r.boolean();
    return true;
}

void
putVarVec(ByteWriter &w, const std::vector<std::uint64_t> &v)
{
    w.var(v.size());
    for (std::uint64_t x : v)
        w.var(x);
}

bool
getVarVec(ByteReader &r, std::vector<std::uint64_t> *v)
{
    const std::uint64_t n = r.var();
    // Each element takes >= 1 byte, so n can never exceed the bytes left;
    // this bounds the reserve against allocation-bomb counts.
    if (!r.ok || n > r.remaining()) {
        r.ok = false;
        return false;
    }
    v->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok; ++i)
        v->push_back(r.var());
    return r.ok;
}

void
putResults(ByteWriter &w, const TraceMeta &m)
{
    const sim::MachineStats &s = m.stats;
    w.var(s.cycles);
    w.var(s.instructions);
    w.var(s.loads);
    w.var(s.stores);
    w.var(s.atomics);
    w.var(s.l1Hits);
    w.var(s.llcHits);
    w.var(s.memMisses);
    w.var(s.upgrades);
    w.var(s.rfos);
    w.var(s.hitmLoads);
    w.var(s.hitmStores);
    w.var(s.syncOps);
    w.var(s.ssbStores);
    w.var(s.ssbLoadHits);
    w.var(s.ssbFlushes);
    w.var(s.ssbFlushedEntries);
    w.var(s.ssbMaxEntriesSeen);
    w.var(s.aliasChecks);
    w.var(s.aliasMisspecs);
    w.boolean(s.truncated);
    putVarVec(w, s.threadCycles);
    putVarVec(w, s.threadInstructions);
    w.var(m.runtimeCycles);
    w.str(m.mapsText);
}

void
getResults(ByteReader &r, TraceMeta *m)
{
    sim::MachineStats &s = m->stats;
    s.cycles = r.var();
    s.instructions = r.var();
    s.loads = r.var();
    s.stores = r.var();
    s.atomics = r.var();
    s.l1Hits = r.var();
    s.llcHits = r.var();
    s.memMisses = r.var();
    s.upgrades = r.var();
    s.rfos = r.var();
    s.hitmLoads = r.var();
    s.hitmStores = r.var();
    s.syncOps = r.var();
    s.ssbStores = r.var();
    s.ssbLoadHits = r.var();
    s.ssbFlushes = r.var();
    s.ssbFlushedEntries = r.var();
    s.ssbMaxEntriesSeen = r.var();
    s.aliasChecks = r.var();
    s.aliasMisspecs = r.var();
    s.truncated = r.boolean();
    getVarVec(r, &s.threadCycles);
    getVarVec(r, &s.threadInstructions);
    m->runtimeCycles = r.var();
    m->mapsText = r.str();
}

void
putRecordDelta(ByteWriter &w, const pebs::PebsRecord &rec,
               const pebs::PebsRecord &prev)
{
    w.zig(static_cast<std::int64_t>(rec.pc - prev.pc));
    w.zig(static_cast<std::int64_t>(rec.dataAddr - prev.dataAddr));
    w.var(static_cast<std::uint64_t>(rec.core));
    w.zig(static_cast<std::int64_t>(rec.cycle - prev.cycle));
}

} // namespace

const char *
traceStatusName(TraceStatus status)
{
    switch (status) {
      case TraceStatus::Ok:            return "ok";
      case TraceStatus::IoError:       return "io error";
      case TraceStatus::BadMagic:      return "bad magic";
      case TraceStatus::BadVersion:    return "version mismatch";
      case TraceStatus::BadEndianness: return "endianness mismatch";
      case TraceStatus::Truncated:     return "truncated";
      case TraceStatus::Corrupt:       return "corrupt";
      case TraceStatus::NonMonotonic:  return "non-monotonic cycles";
    }
    return "???";
}

std::uint64_t
configHash(const TraceMeta &meta)
{
    std::vector<std::uint8_t> bytes;
    ByteWriter w(bytes);
    w.u32(kTraceVersion);
    putConfig(w, meta);
    return fnv1a(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(TraceMeta meta) : meta_(std::move(meta)) {}

void
TraceWriter::append(const pebs::PebsRecord &rec)
{
    if (rec.cycle < prev_.cycle)
        monotonic_ = false;
    // Encodes straight into the member buffer: no per-record allocation.
    ByteWriter w(recordBytes_);
    putRecordDelta(w, rec, prev_);
    prev_ = rec;
    ++recordCount_;
}

void
TraceWriter::appendAll(const std::vector<pebs::PebsRecord> &recs)
{
    for (const pebs::PebsRecord &rec : recs)
        append(rec);
}

std::vector<std::uint8_t>
TraceWriter::finalize() const
{
    std::vector<std::uint8_t> payload_bytes;
    ByteWriter payload(payload_bytes);
    putConfig(payload, meta_);
    putResults(payload, meta_);
    payload.var(recordCount_);
    payload_bytes.insert(payload_bytes.end(), recordBytes_.begin(),
                         recordBytes_.end());

    std::vector<std::uint8_t> out_bytes;
    ByteWriter out(out_bytes);
    out_bytes.reserve(kHeaderSize + payload_bytes.size() + kTrailerSize);
    out_bytes.insert(out_bytes.end(), kTraceMagic, kTraceMagic + 4);
    out.u32(kTraceVersion);
    out.u32(kTraceEndianMarker);
    out.u64(configHash(meta_));
    out.u64(payload_bytes.size());
    out_bytes.insert(out_bytes.end(), payload_bytes.begin(),
                     payload_bytes.end());
    out.u64(fnv1a(payload_bytes.data(), payload_bytes.size()));
    return out_bytes;
}

TraceStatus
TraceWriter::writeFile(const std::string &path) const
{
    // Refuse to persist a stream every conforming reader would reject;
    // sort with analysis::sortByCycle before appending.
    if (!monotonic_)
        return TraceStatus::NonMonotonic;
    const std::vector<std::uint8_t> bytes = finalize();
    // Unique temp name: concurrent writers of the same cache file (two
    // sweeps sharing a cache directory) must not clobber each other's
    // in-progress image before the atomic rename.
    static std::atomic<unsigned> counter{0};
    const std::string tmp = path + ".tmp" +
                            std::to_string(::getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return TraceStatus::IoError;
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !closed ||
            std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return TraceStatus::IoError;
    }
    return TraceStatus::Ok;
}

TraceStatus
writeTraceFile(const Trace &trace, const std::string &path)
{
    TraceWriter writer(trace.meta);
    writer.appendAll(trace.records);
    return writer.writeFile(path);
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

TraceStatus
TraceReader::fail(TraceStatus status, std::string detail)
{
    trace_ = {};
    error_ = std::move(detail);
    return status;
}

TraceStatus
TraceReader::parse(const std::uint8_t *data, std::size_t size)
{
    trace_ = {};
    error_.clear();

    if (size < kHeaderSize + kTrailerSize)
        return fail(TraceStatus::Truncated,
                    "file shorter than header + trailer (" +
                        std::to_string(size) + " bytes)");
    if (std::memcmp(data, kTraceMagic, 4) != 0)
        return fail(TraceStatus::BadMagic, "magic bytes are not \"LSRT\"");

    ByteReader header(data + 4, kHeaderSize - 4);
    const std::uint32_t version = header.u32();
    if (version != kTraceVersion)
        return fail(TraceStatus::BadVersion,
                    "trace version " + std::to_string(version) +
                        ", reader supports " +
                        std::to_string(kTraceVersion));
    const std::uint32_t endian = header.u32();
    if (endian != kTraceEndianMarker)
        return fail(TraceStatus::BadEndianness,
                    "endianness marker mismatch (foreign-endian writer?)");
    const std::uint64_t stored_hash = header.u64();
    const std::uint64_t payload_size = header.u64();

    if (payload_size > size - kHeaderSize - kTrailerSize)
        return fail(TraceStatus::Truncated,
                    "payload declares " + std::to_string(payload_size) +
                        " bytes but only " +
                        std::to_string(size - kHeaderSize - kTrailerSize) +
                        " present");
    if (payload_size < size - kHeaderSize - kTrailerSize)
        return fail(TraceStatus::Corrupt,
                    "trailing bytes after payload + checksum");

    const std::uint8_t *payload = data + kHeaderSize;
    ByteReader trailer(payload + payload_size, kTrailerSize);
    const std::uint64_t stored_sum = trailer.u64();
    const std::uint64_t actual_sum =
        fnv1a(payload, static_cast<std::size_t>(payload_size));
    if (stored_sum != actual_sum)
        return fail(TraceStatus::Corrupt, "payload checksum mismatch");

    ByteReader r(payload, static_cast<std::size_t>(payload_size));
    std::string config_err;
    if (!getConfig(r, &trace_.meta, &config_err)) {
        if (!r.ok)
            return fail(TraceStatus::Truncated,
                        "config section ends mid-structure");
        return fail(TraceStatus::Corrupt, config_err);
    }
    if (!r.ok)
        return fail(TraceStatus::Truncated,
                    "config section ends mid-structure");
    getResults(r, &trace_.meta);
    if (!r.ok)
        return fail(TraceStatus::Truncated,
                    "results section ends mid-structure");

    const std::uint64_t count = r.var();
    // Every record occupies at least 4 payload bytes (4 varint fields),
    // which bounds the reserve below against allocation-bomb counts.
    if (!r.ok || count > r.remaining() / 4)
        return fail(TraceStatus::Truncated,
                    "record count exceeds remaining payload");
    trace_.records.reserve(static_cast<std::size_t>(count));
    pebs::PebsRecord prev{};
    for (std::uint64_t i = 0; i < count; ++i) {
        pebs::PebsRecord rec;
        rec.pc = prev.pc + static_cast<std::uint64_t>(r.zig());
        rec.dataAddr = prev.dataAddr + static_cast<std::uint64_t>(r.zig());
        rec.core = static_cast<int>(r.var());
        rec.cycle = prev.cycle + static_cast<std::uint64_t>(r.zig());
        if (!r.ok)
            return fail(TraceStatus::Truncated,
                        "record stream ends mid-record at index " +
                            std::to_string(i));
        // Canonical streams are non-decreasing in cycle; time-window
        // sharding and every sink's stream contract depend on it.
        if (rec.cycle < prev.cycle)
            return fail(TraceStatus::NonMonotonic,
                        "record " + std::to_string(i) + " cycle " +
                            std::to_string(rec.cycle) +
                            " precedes previous record's cycle " +
                            std::to_string(prev.cycle));
        trace_.records.push_back(rec);
        prev = rec;
    }
    if (r.remaining() != 0)
        return fail(TraceStatus::Corrupt,
                    std::to_string(r.remaining()) +
                        " unconsumed payload bytes after records");

    if (configHash(trace_.meta) != stored_hash)
        return fail(TraceStatus::Corrupt,
                    "header config hash does not match config section");
    return TraceStatus::Ok;
}

TraceStatus
TraceReader::parse(const std::vector<std::uint8_t> &bytes)
{
    return parse(bytes.data(), bytes.size());
}

TraceStatus
TraceReader::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        trace_ = {};
        error_ = "cannot open " + path;
        return TraceStatus::IoError;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        trace_ = {};
        error_ = "read error on " + path;
        return TraceStatus::IoError;
    }
    return parse(bytes);
}

} // namespace laser::trace
