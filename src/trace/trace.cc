#include "trace/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "trace/wire.h"

namespace laser::trace {

namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a;

void
putTiming(ByteWriter &w, const sim::TimingModel &t)
{
    w.var(t.base);
    w.var(t.pauseCost);
    w.var(t.fenceCost);
    w.var(t.atomicExtra);
    w.var(t.l1Hit);
    w.var(t.llcHit);
    w.var(t.memMiss);
    w.var(t.hitm);
    w.var(t.upgrade);
    w.var(t.rfoShared);
    w.var(t.ssbStore);
    w.var(t.ssbLoadCheck);
    w.var(t.ssbLoadHit);
    w.var(t.ssbFlushBase);
    w.var(t.aliasCheckCost);
    w.var(t.pinBaseOverhead);
    w.var(t.pinAttachCost);
    w.var(t.pebsAssist);
    w.var(t.pmiCost);
    w.var(t.driverPerRecord);
    w.var(t.detectorPerRecord);
}

void
getTiming(ByteReader &r, sim::TimingModel *t)
{
    t->base = static_cast<std::uint32_t>(r.var());
    t->pauseCost = static_cast<std::uint32_t>(r.var());
    t->fenceCost = static_cast<std::uint32_t>(r.var());
    t->atomicExtra = static_cast<std::uint32_t>(r.var());
    t->l1Hit = static_cast<std::uint32_t>(r.var());
    t->llcHit = static_cast<std::uint32_t>(r.var());
    t->memMiss = static_cast<std::uint32_t>(r.var());
    t->hitm = static_cast<std::uint32_t>(r.var());
    t->upgrade = static_cast<std::uint32_t>(r.var());
    t->rfoShared = static_cast<std::uint32_t>(r.var());
    t->ssbStore = static_cast<std::uint32_t>(r.var());
    t->ssbLoadCheck = static_cast<std::uint32_t>(r.var());
    t->ssbLoadHit = static_cast<std::uint32_t>(r.var());
    t->ssbFlushBase = static_cast<std::uint32_t>(r.var());
    t->aliasCheckCost = static_cast<std::uint32_t>(r.var());
    t->pinBaseOverhead = static_cast<std::uint32_t>(r.var());
    t->pinAttachCost = r.var();
    t->pebsAssist = static_cast<std::uint32_t>(r.var());
    t->pmiCost = static_cast<std::uint32_t>(r.var());
    t->driverPerRecord = static_cast<std::uint32_t>(r.var());
    t->detectorPerRecord = static_cast<std::uint32_t>(r.var());
}

/** The hashed config section: workload identity + every knob that can
 *  change the record stream or the modeled runtime. Version-dependent:
 *  the VTune/Sheriff blocks joined the section in v2. */
void
putConfig(ByteWriter &w, const TraceMeta &m, std::uint32_t version)
{
    w.str(m.workload);
    w.str(m.scheme);

    const workloads::BuildOptions &b = m.build;
    w.boolean(b.manualFix);
    w.var(b.heapPerturbation);
    w.zig(b.numThreads);
    w.var(b.inputSeed);
    w.f64(b.scale);

    const sim::MachineConfig &mc = m.machine;
    w.zig(mc.numCores);
    putTiming(w, mc.timing);
    w.var(mc.seed);
    w.boolean(mc.latencyJitter);
    w.var(mc.maxInstructions);
    w.var(mc.heapPerturbation);
    w.boolean(mc.threadsAsProcesses);
    w.boolean(mc.trackDirtyPages);
    w.zig(mc.ssbMaxEntries);
    w.u8(static_cast<std::uint8_t>(mc.ssbMode));
    w.boolean(mc.recordTsoTrace);

    const pebs::PebsConfig &p = m.pebs;
    w.var(p.sav);
    w.var(p.bufferCapacity);
    w.var(p.seed);
    w.boolean(p.keepGroundTruth);
    w.boolean(p.chargeCosts);
    w.f64(p.loadAddrCorrect);
    w.f64(p.loadPcExact);
    w.f64(p.loadPcAdjacent);
    w.f64(p.storeAddrCorrect);
    w.f64(p.storePcExact);
    w.f64(p.storePcAdjacent);
    w.f64(p.wrongAddrUnmapped);
    w.f64(p.wrongPcInBinary);

    if (version < 2)
        return;

    const baselines::VTuneConfig &v = m.vtune;
    w.f64(v.rateThreshold);
    w.var(v.eventCost);
    w.var(v.memopSav);
    w.var(v.memopCost);
    w.var(v.hotLoadWindow);
    w.var(v.hotLoadSav);
    w.var(v.hotLoadCost);
    w.var(v.seed);

    const baselines::SheriffConfig &s = m.sheriff;
    w.var(s.syncBaseCost);
    w.var(s.perDirtyPageCost);
    w.var(s.detectExtraCost);
    w.boolean(s.detectMode);

    if (version < 4)
        return;

    // v4: coherence protocol + cache geometry + per-protocol costs.
    // Hashed so trace-cache keys can never collide across protocols or
    // geometries. The Dragon costs live here, NOT in putTiming: adding
    // them there would silently change every v1-v3 config hash.
    w.u8(static_cast<std::uint8_t>(mc.protocol));
    w.var(mc.geometry.lineBytes);
    w.var(mc.geometry.sets);
    w.var(mc.geometry.associativity);
    w.var(mc.timing.dragonHitm);
    w.var(mc.timing.dragonUpdate);
}

bool
getConfig(ByteReader &r, TraceMeta *m, std::uint32_t version,
          std::string *err)
{
    m->workload = r.str();
    m->scheme = r.str();

    workloads::BuildOptions &b = m->build;
    b.manualFix = r.boolean();
    b.heapPerturbation = r.var();
    b.numThreads = static_cast<int>(r.zig());
    b.inputSeed = r.var();
    b.scale = r.f64();

    sim::MachineConfig &mc = m->machine;
    mc.numCores = static_cast<int>(r.zig());
    getTiming(r, &mc.timing);
    mc.seed = r.var();
    mc.latencyJitter = r.boolean();
    mc.maxInstructions = r.var();
    mc.heapPerturbation = r.var();
    mc.threadsAsProcesses = r.boolean();
    mc.trackDirtyPages = r.boolean();
    mc.ssbMaxEntries = static_cast<int>(r.zig());
    const std::uint8_t mode = r.u8();
    if (r.ok && mode > static_cast<std::uint8_t>(sim::SsbMode::Fifo)) {
        *err = "invalid SSB mode " + std::to_string(mode);
        return false;
    }
    mc.ssbMode = static_cast<sim::SsbMode>(mode);
    mc.recordTsoTrace = r.boolean();

    pebs::PebsConfig &p = m->pebs;
    p.sav = static_cast<std::uint32_t>(r.var());
    p.bufferCapacity = static_cast<std::uint32_t>(r.var());
    p.seed = r.var();
    p.keepGroundTruth = r.boolean();
    p.chargeCosts = r.boolean();
    p.loadAddrCorrect = r.f64();
    p.loadPcExact = r.f64();
    p.loadPcAdjacent = r.f64();
    p.storeAddrCorrect = r.f64();
    p.storePcExact = r.f64();
    p.storePcAdjacent = r.f64();
    p.wrongAddrUnmapped = r.f64();
    p.wrongPcInBinary = r.f64();

    if (version < 2)
        return true; // v1 predates the baseline-config blocks

    baselines::VTuneConfig &v = m->vtune;
    v.rateThreshold = r.f64();
    v.eventCost = r.var();
    v.memopSav = r.var();
    v.memopCost = r.var();
    v.hotLoadWindow = r.var();
    v.hotLoadSav = r.var();
    v.hotLoadCost = r.var();
    v.seed = r.var();

    baselines::SheriffConfig &s = m->sheriff;
    s.syncBaseCost = r.var();
    s.perDirtyPageCost = r.var();
    s.detectExtraCost = r.var();
    s.detectMode = r.boolean();

    if (version < 4)
        return true; // v1-v3 predate protocol/geometry; defaults apply

    const std::uint8_t proto = r.u8();
    if (r.ok &&
            proto > static_cast<std::uint8_t>(sim::ProtocolKind::Dragon)) {
        *err = "invalid coherence protocol " + std::to_string(proto);
        return false;
    }
    mc.protocol = static_cast<sim::ProtocolKind>(proto);
    mc.geometry.lineBytes = static_cast<std::uint32_t>(r.var());
    mc.geometry.sets = static_cast<std::uint32_t>(r.var());
    mc.geometry.associativity = static_cast<std::uint32_t>(r.var());
    if (r.ok && !mc.geometry.valid()) {
        *err = "invalid cache line size " +
               std::to_string(mc.geometry.lineBytes);
        return false;
    }
    mc.timing.dragonHitm = static_cast<std::uint32_t>(r.var());
    mc.timing.dragonUpdate = static_cast<std::uint32_t>(r.var());
    return true;
}

void
putVarVec(ByteWriter &w, const std::vector<std::uint64_t> &v)
{
    w.var(v.size());
    for (std::uint64_t x : v)
        w.var(x);
}

bool
getVarVec(ByteReader &r, std::vector<std::uint64_t> *v)
{
    const std::uint64_t n = r.var();
    // Each element takes >= 1 byte, so n can never exceed the bytes left;
    // this bounds the reserve against allocation-bomb counts.
    if (!r.ok || n > r.remaining()) {
        r.ok = false;
        return false;
    }
    v->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok; ++i)
        v->push_back(r.var());
    return r.ok;
}

void
putResults(ByteWriter &w, const TraceMeta &m)
{
    const sim::MachineStats &s = m.stats;
    w.var(s.cycles);
    w.var(s.instructions);
    w.var(s.loads);
    w.var(s.stores);
    w.var(s.atomics);
    w.var(s.l1Hits);
    w.var(s.llcHits);
    w.var(s.memMisses);
    w.var(s.upgrades);
    w.var(s.rfos);
    w.var(s.hitmLoads);
    w.var(s.hitmStores);
    w.var(s.syncOps);
    w.var(s.ssbStores);
    w.var(s.ssbLoadHits);
    w.var(s.ssbFlushes);
    w.var(s.ssbFlushedEntries);
    w.var(s.ssbMaxEntriesSeen);
    w.var(s.aliasChecks);
    w.var(s.aliasMisspecs);
    w.boolean(s.truncated);
    putVarVec(w, s.threadCycles);
    putVarVec(w, s.threadInstructions);
    w.var(m.runtimeCycles);
    w.str(m.mapsText);
}

void
getResults(ByteReader &r, TraceMeta *m)
{
    sim::MachineStats &s = m->stats;
    s.cycles = r.var();
    s.instructions = r.var();
    s.loads = r.var();
    s.stores = r.var();
    s.atomics = r.var();
    s.l1Hits = r.var();
    s.llcHits = r.var();
    s.memMisses = r.var();
    s.upgrades = r.var();
    s.rfos = r.var();
    s.hitmLoads = r.var();
    s.hitmStores = r.var();
    s.syncOps = r.var();
    s.ssbStores = r.var();
    s.ssbLoadHits = r.var();
    s.ssbFlushes = r.var();
    s.ssbFlushedEntries = r.var();
    s.ssbMaxEntriesSeen = r.var();
    s.aliasChecks = r.var();
    s.aliasMisspecs = r.var();
    s.truncated = r.boolean();
    getVarVec(r, &s.threadCycles);
    getVarVec(r, &s.threadInstructions);
    m->runtimeCycles = r.var();
    m->mapsText = r.str();
}

/** The v1/v2 row-wise record encoding (kept for encodeLegacyTrace). */
void
putRecordDelta(ByteWriter &w, const pebs::PebsRecord &rec,
               const pebs::PebsRecord &prev)
{
    w.zig(static_cast<std::int64_t>(rec.pc - prev.pc));
    w.zig(static_cast<std::int64_t>(rec.dataAddr - prev.dataAddr));
    w.var(static_cast<std::uint64_t>(rec.core));
    w.zig(static_cast<std::int64_t>(rec.cycle - prev.cycle));
}

/** Wrap a payload image in header + trailer for @p version. */
std::vector<std::uint8_t>
wrapPayload(const std::vector<std::uint8_t> &payload_bytes,
            std::uint32_t version, std::uint64_t config_hash)
{
    std::vector<std::uint8_t> out_bytes;
    ByteWriter out(out_bytes);
    out_bytes.reserve(kTraceHeaderSize + payload_bytes.size() +
                      kTraceTrailerSize);
    // Byte-wise append: GCC 12's stringop-overflow pass misjudges the
    // range insert of the 4-byte magic array and warns spuriously.
    for (const char c : kTraceMagic)
        out_bytes.push_back(static_cast<std::uint8_t>(c));
    out.u32(version);
    out.u32(kTraceEndianMarker);
    out.u64(config_hash);
    out.u64(payload_bytes.size());
    out_bytes.insert(out_bytes.end(), payload_bytes.begin(),
                     payload_bytes.end());
    out.u64(fnv1a(payload_bytes.data(), payload_bytes.size()));
    return out_bytes;
}

/**
 * Encode one block (the four column buffers) onto @p out, choosing each
 * column's codec, and return its filled index entry (firstRecord and
 * blobOffset left for the caller).
 */
columnar::BlockInfo
encodeBlock(const std::vector<std::uint64_t> cols[columnar::kColumnCount],
            std::vector<std::uint8_t> *out)
{
    columnar::BlockInfo b;
    b.records = cols[columnar::kColCycle].size();
    b.firstCycle = cols[columnar::kColCycle].front();
    b.lastCycle = cols[columnar::kColCycle].back();
    const std::size_t start = out->size();
    for (std::size_t c = 0; c < columnar::kColumnCount; ++c) {
        const std::size_t col_start = out->size();
        b.codec[c] = columnar::chooseCodec(cols[c], out);
        b.columnBytes[c] = out->size() - col_start;
    }
    b.checksum = fnv1a(out->data() + start, out->size() - start);
    return b;
}

} // namespace

const char *
traceStatusName(TraceStatus status)
{
    switch (status) {
      case TraceStatus::Ok:            return "ok";
      case TraceStatus::IoError:       return "io error";
      case TraceStatus::BadMagic:      return "bad magic";
      case TraceStatus::BadVersion:    return "version mismatch";
      case TraceStatus::BadEndianness: return "endianness mismatch";
      case TraceStatus::Truncated:     return "truncated";
      case TraceStatus::Corrupt:       return "corrupt";
      case TraceStatus::NonMonotonic:  return "non-monotonic cycles";
    }
    return "???";
}

std::uint64_t
configHashForVersion(const TraceMeta &meta, std::uint32_t version)
{
    std::vector<std::uint8_t> bytes;
    ByteWriter w(bytes);
    w.u32(version);
    putConfig(w, meta, version);
    return fnv1a(bytes.data(), bytes.size());
}

std::uint64_t
configHash(const TraceMeta &meta)
{
    return configHashForVersion(meta, kTraceVersion);
}

namespace detail {

TraceStatus
parseTraceHeader(const std::uint8_t *data, std::size_t size,
                 HeaderInfo *out, std::string *err)
{
    *out = {};
    err->clear();
    if (size < kTraceHeaderSize) {
        *err = "file shorter than the fixed header (" +
               std::to_string(size) + " bytes)";
        return TraceStatus::Truncated;
    }
    if (std::memcmp(data, kTraceMagic, 4) != 0) {
        *err = "magic bytes are not \"LSRT\"";
        return TraceStatus::BadMagic;
    }
    ByteReader header(data + 4, kTraceHeaderSize - 4);
    out->version = header.u32();
    if (out->version < kTraceMinVersion ||
            out->version > kTraceVersion) {
        *err = "trace version " + std::to_string(out->version) +
               ", reader supports " + std::to_string(kTraceMinVersion) +
               ".." + std::to_string(kTraceVersion);
        return TraceStatus::BadVersion;
    }
    const std::uint32_t endian = header.u32();
    if (endian != kTraceEndianMarker) {
        *err = "endianness marker mismatch (foreign-endian writer?)";
        return TraceStatus::BadEndianness;
    }
    out->configHash = header.u64();
    out->payloadSize = header.u64();
    return TraceStatus::Ok;
}

TraceStatus
parseMetaSections(const std::uint8_t *payload, std::size_t size,
                  std::uint32_t version, TraceMeta *meta,
                  std::size_t *consumed, std::string *err)
{
    *consumed = 0;
    ByteReader r(payload, size);
    std::string config_err;
    if (!getConfig(r, meta, version, &config_err)) {
        if (!r.ok) {
            *err = "config section ends mid-structure";
            return TraceStatus::Truncated;
        }
        *err = config_err;
        return TraceStatus::Corrupt;
    }
    if (!r.ok) {
        *err = "config section ends mid-structure";
        return TraceStatus::Truncated;
    }
    getResults(r, meta);
    if (!r.ok) {
        *err = "results section ends mid-structure";
        return TraceStatus::Truncated;
    }
    *consumed = size - r.remaining();
    return TraceStatus::Ok;
}

} // namespace detail

// ---------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(TraceMeta meta, std::size_t block_records)
    : meta_(std::move(meta)),
      blockRecords_(std::clamp<std::size_t>(block_records, 1,
                                            columnar::kMaxBlockRecords))
{
}

void
TraceWriter::append(const pebs::PebsRecord &rec)
{
    if (rec.cycle < prevCycle_)
        monotonic_ = false;
    pending_[columnar::kColPc].push_back(rec.pc);
    pending_[columnar::kColAddr].push_back(rec.dataAddr);
    pending_[columnar::kColCore].push_back(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.core)));
    pending_[columnar::kColCycle].push_back(rec.cycle);
    prevCycle_ = rec.cycle;
    ++recordCount_;
    if (pending_[columnar::kColCycle].size() >= blockRecords_)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    const std::size_t blob_offset = blob_.size();
    columnar::BlockInfo b = encodeBlock(pending_, &blob_);
    b.firstRecord = recordCount_ - b.records;
    b.blobOffset = blob_offset;
    index_.blocks.push_back(b);
    for (auto &col : pending_)
        col.clear();
}

void
TraceWriter::appendAll(const std::vector<pebs::PebsRecord> &recs)
{
    for (const pebs::PebsRecord &rec : recs)
        append(rec);
}

std::vector<std::uint8_t>
TraceWriter::finalize() const
{
    std::vector<std::uint8_t> payload_bytes;
    ByteWriter payload(payload_bytes);
    putConfig(payload, meta_, kTraceVersion);
    putResults(payload, meta_);

    columnar::BlockIndex index = index_;
    index.records = recordCount_;
    index.blobOffset = payload_bytes.size();
    index.metaChecksum = fnv1a(payload_bytes.data(), payload_bytes.size());

    payload_bytes.insert(payload_bytes.end(), blob_.begin(), blob_.end());
    // The current partial block (finalize() is const, so it cannot be
    // flushed into blob_) encodes straight onto the payload.
    if (!pending_[columnar::kColCycle].empty()) {
        const std::size_t blob_offset = blob_.size();
        columnar::BlockInfo b = encodeBlock(pending_, &payload_bytes);
        b.firstRecord = recordCount_ - b.records;
        b.blobOffset = blob_offset;
        index.blocks.push_back(b);
    }
    const std::uint64_t index_offset = payload_bytes.size();
    index.encode(&payload_bytes);
    payload.u64(index_offset);

    return wrapPayload(payload_bytes, kTraceVersion, configHash(meta_));
}

TraceStatus
TraceWriter::writeFile(const std::string &path) const
{
    // Refuse to persist a stream every conforming reader would reject;
    // sort with analysis::sortByCycle before appending.
    if (!monotonic_)
        return TraceStatus::NonMonotonic;
    const std::vector<std::uint8_t> bytes = finalize();
    // Unique temp name: concurrent writers of the same cache file (two
    // sweeps sharing a cache directory) must not clobber each other's
    // in-progress image before the atomic rename.
    static std::atomic<unsigned> counter{0};
    const std::string tmp = path + ".tmp" +
                            std::to_string(::getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return TraceStatus::IoError;
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !closed ||
            std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return TraceStatus::IoError;
    }
    return TraceStatus::Ok;
}

TraceStatus
writeTraceFile(const Trace &trace, const std::string &path)
{
    TraceWriter writer(trace.meta);
    writer.appendAll(trace.records);
    return writer.writeFile(path);
}

std::vector<std::uint8_t>
encodeLegacyTrace(const Trace &trace, std::uint32_t version)
{
    std::vector<std::uint8_t> payload_bytes;
    ByteWriter payload(payload_bytes);
    putConfig(payload, trace.meta, version);
    putResults(payload, trace.meta);
    payload.var(trace.records.size());
    pebs::PebsRecord prev{};
    for (const pebs::PebsRecord &rec : trace.records) {
        putRecordDelta(payload, rec, prev);
        prev = rec;
    }
    return wrapPayload(payload_bytes, version,
                       configHashForVersion(trace.meta, version));
}

// ---------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------

TraceStatus
TraceReader::fail(TraceStatus status, std::string detail)
{
    trace_ = {};
    version_ = 0;
    error_ = std::move(detail);
    return status;
}

TraceStatus
TraceReader::parseLegacyRecords(const std::uint8_t *payload,
                                std::size_t payload_size,
                                std::size_t meta_size,
                                std::uint32_t version)
{
    ByteReader r(payload + meta_size, payload_size - meta_size);
    const std::uint64_t count = r.var();
    // Every record occupies at least 4 payload bytes (4 varint fields),
    // which bounds the reserve below against allocation-bomb counts.
    if (!r.ok || count > r.remaining() / 4)
        return fail(TraceStatus::Truncated,
                    "record count exceeds remaining payload");
    trace_.records.reserve(static_cast<std::size_t>(count));
    pebs::PebsRecord prev{};
    for (std::uint64_t i = 0; i < count; ++i) {
        pebs::PebsRecord rec;
        rec.pc = prev.pc + static_cast<std::uint64_t>(r.zig());
        rec.dataAddr = prev.dataAddr + static_cast<std::uint64_t>(r.zig());
        rec.core = static_cast<int>(r.var());
        rec.cycle = prev.cycle + static_cast<std::uint64_t>(r.zig());
        if (!r.ok)
            return fail(TraceStatus::Truncated,
                        "record stream ends mid-record at index " +
                            std::to_string(i));
        // Canonical streams (v2+) are non-decreasing in cycle;
        // time-window sharding and every sink's stream contract depend
        // on it. v1 streams are driver-delivery order — sorted below.
        if (version >= 2 && rec.cycle < prev.cycle)
            return fail(TraceStatus::NonMonotonic,
                        "record " + std::to_string(i) + " cycle " +
                            std::to_string(rec.cycle) +
                            " precedes previous record's cycle " +
                            std::to_string(prev.cycle));
        trace_.records.push_back(rec);
        prev = rec;
    }
    if (r.remaining() != 0)
        return fail(TraceStatus::Corrupt,
                    std::to_string(r.remaining()) +
                        " unconsumed payload bytes after records");
    if (version < 2)
        analysis::sortByCycle(&trace_.records);
    return TraceStatus::Ok;
}

TraceStatus
TraceReader::parseColumnarRecords(const std::uint8_t *payload,
                                  std::size_t payload_size,
                                  std::size_t meta_size)
{
    if (payload_size < meta_size + 8)
        return fail(TraceStatus::Truncated,
                    "payload too small for the index offset");
    ByteReader tail(payload + payload_size - 8, 8);
    const std::uint64_t index_offset = tail.u64();
    if (index_offset < meta_size || index_offset > payload_size - 8)
        return fail(TraceStatus::Corrupt,
                    "block index offset out of range");

    columnar::BlockIndex index;
    std::string index_err;
    if (!index.decode(payload + index_offset,
                      payload_size - 8 - index_offset, &index_err))
        return fail(TraceStatus::Corrupt,
                    "block index: " + index_err);
    if (index.blobOffset != meta_size)
        return fail(TraceStatus::Corrupt,
                    "block index blob offset does not match the meta "
                    "sections");
    if (index.metaChecksum != wire::fnv1a(payload, meta_size))
        return fail(TraceStatus::Corrupt,
                    "meta-section checksum mismatch");
    if (index.blobBytes() != index_offset - meta_size)
        return fail(TraceStatus::Corrupt,
                    "block sizes do not cover the record blob");

    const std::uint8_t *blob = payload + meta_size;
    // No up-front reserve of index.records: columnar blocks can be
    // sub-byte per record, so a crafted index could declare counts far
    // beyond the file size; geometric growth caps the damage to the
    // bytes a decode actually yields (per-block counts are bounded by
    // kMaxBlockRecords).
    std::uint64_t prev_cycle = 0;
    std::uint64_t rec_idx = 0;
    std::vector<std::uint64_t> cols[columnar::kColumnCount];
    for (std::size_t bi = 0; bi < index.blocks.size(); ++bi) {
        const columnar::BlockInfo &b = index.blocks[bi];
        const std::uint8_t *bp = blob + b.blobOffset;
        if (wire::fnv1a(bp, static_cast<std::size_t>(b.blobBytes())) !=
                b.checksum)
            return fail(TraceStatus::Corrupt,
                        "block " + std::to_string(bi) +
                            " checksum mismatch");
        for (std::size_t c = 0; c < columnar::kColumnCount; ++c) {
            if (!columnar::decodeColumn(
                    b.codec[c], bp + b.columnOffset(c),
                    static_cast<std::size_t>(b.columnBytes[c]),
                    static_cast<std::size_t>(b.records), &cols[c]))
                return fail(TraceStatus::Corrupt,
                            "block " + std::to_string(bi) + " column " +
                                columnar::columnName(c) + " malformed");
        }
        if (cols[columnar::kColCycle].front() != b.firstCycle ||
                cols[columnar::kColCycle].back() != b.lastCycle)
            return fail(TraceStatus::Corrupt,
                        "block " + std::to_string(bi) +
                            " cycle range does not match its records");
        for (std::size_t i = 0; i < b.records; ++i) {
            pebs::PebsRecord rec;
            rec.pc = cols[columnar::kColPc][i];
            rec.dataAddr = cols[columnar::kColAddr][i];
            rec.core = static_cast<int>(static_cast<std::int64_t>(
                cols[columnar::kColCore][i]));
            rec.cycle = cols[columnar::kColCycle][i];
            if (rec_idx > 0 && rec.cycle < prev_cycle)
                return fail(
                    TraceStatus::NonMonotonic,
                    "record " + std::to_string(rec_idx) + " cycle " +
                        std::to_string(rec.cycle) +
                        " precedes previous record's cycle " +
                        std::to_string(prev_cycle));
            trace_.records.push_back(rec);
            prev_cycle = rec.cycle;
            ++rec_idx;
        }
    }
    return TraceStatus::Ok;
}

TraceStatus
TraceReader::parse(const std::uint8_t *data, std::size_t size)
{
    trace_ = {};
    version_ = 0;
    error_.clear();

    if (size < kTraceHeaderSize + kTraceTrailerSize)
        return fail(TraceStatus::Truncated,
                    "file shorter than header + trailer (" +
                        std::to_string(size) + " bytes)");
    detail::HeaderInfo header;
    std::string header_err;
    const TraceStatus header_status =
        detail::parseTraceHeader(data, size, &header, &header_err);
    if (header_status != TraceStatus::Ok)
        return fail(header_status, std::move(header_err));

    if (header.payloadSize > size - kTraceHeaderSize - kTraceTrailerSize)
        return fail(TraceStatus::Truncated,
                    "payload declares " +
                        std::to_string(header.payloadSize) +
                        " bytes but only " +
                        std::to_string(size - kTraceHeaderSize -
                                       kTraceTrailerSize) +
                        " present");
    if (header.payloadSize < size - kTraceHeaderSize - kTraceTrailerSize)
        return fail(TraceStatus::Corrupt,
                    "trailing bytes after payload + checksum");

    const std::uint8_t *payload = data + kTraceHeaderSize;
    const std::size_t payload_size =
        static_cast<std::size_t>(header.payloadSize);
    ByteReader trailer(payload + payload_size, kTraceTrailerSize);
    const std::uint64_t stored_sum = trailer.u64();
    if (stored_sum != fnv1a(payload, payload_size))
        return fail(TraceStatus::Corrupt, "payload checksum mismatch");

    std::size_t meta_size = 0;
    std::string meta_err;
    const TraceStatus meta_status = detail::parseMetaSections(
        payload, payload_size, header.version, &trace_.meta, &meta_size,
        &meta_err);
    if (meta_status != TraceStatus::Ok)
        return fail(meta_status, std::move(meta_err));

    const TraceStatus records_status =
        header.version >= 3
            ? parseColumnarRecords(payload, payload_size, meta_size)
            : parseLegacyRecords(payload, payload_size, meta_size,
                                 header.version);
    if (records_status != TraceStatus::Ok)
        return records_status;

    if (configHashForVersion(trace_.meta, header.version) !=
            header.configHash)
        return fail(TraceStatus::Corrupt,
                    "header config hash does not match config section");
    version_ = header.version;
    return TraceStatus::Ok;
}

TraceStatus
TraceReader::parse(const std::vector<std::uint8_t> &bytes)
{
    return parse(bytes.data(), bytes.size());
}

TraceStatus
TraceReader::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        trace_ = {};
        error_ = "cannot open " + path;
        return TraceStatus::IoError;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        trace_ = {};
        error_ = "read error on " + path;
        return TraceStatus::IoError;
    }
    return parse(bytes);
}

} // namespace laser::trace
