/**
 * @file
 * Trace replay: re-run LASERDETECT over a captured record stream at any
 * detector configuration, without re-simulating the machine.
 *
 * The replayer rebuilds the capture's program from the workload registry
 * (workload builders are deterministic for fixed BuildOptions) and its
 * address-space layout, then feeds the stored records through a fresh
 * Detector. Replays are independent and const, so one replayer can serve
 * many threshold points concurrently.
 */

#ifndef LASER_TRACE_REPLAY_H
#define LASER_TRACE_REPLAY_H

#include <memory>
#include <string>

#include "detect/detector.h"
#include "isa/program.h"
#include "mem/address_space.h"
#include "trace/trace.h"

namespace laser::trace {

/**
 * Rebuilt replay environment for one trace. The trace must outlive the
 * replayer (it is read on every replay() call).
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(const Trace &trace);

    /** False when the trace's workload is unknown to this build. */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /** Re-run the detector over the records at @p cfg. */
    detect::DetectionReport replay(const detect::DetectorConfig &cfg) const;

    /**
     * Replay at a given rate threshold with every other detector knob at
     * its default and the SAV taken from the capture configuration —
     * the offline-threshold-adjustment use case of Section 4.
     */
    detect::DetectionReport replayAtThreshold(double rate_threshold) const;

    const isa::Program &program() const { return program_; }
    const mem::AddressSpace &space() const { return *space_; }

  private:
    const Trace *trace_;
    isa::Program program_;
    std::unique_ptr<mem::AddressSpace> space_;
    std::string error_;
};

} // namespace laser::trace

#endif // LASER_TRACE_REPLAY_H
