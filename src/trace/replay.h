/**
 * @file
 * Trace replay: re-run an analysis over a captured record stream at any
 * configuration, without re-simulating the machine.
 *
 * The replayer rebuilds the capture's program from the workload registry
 * (workload builders are deterministic for fixed BuildOptions) and its
 * address-space layout, then drives the record stream through an
 * analysis::RecordSink — a fresh DetectorPipeline for the LASER scheme,
 * the VTune offline aggregation, or the Sheriff sync-stream decoder.
 * The rebuilt environment (program, address space, parsed maps,
 * load/store sets) is shared and immutable, so one replayer can serve
 * many configurations and many shard pipelines concurrently.
 *
 * The record stream is pull-based: a replayer wraps any RecordSource —
 * a materialized Trace (the classic ctor) or a seekable trace::TraceFile
 * that decodes one columnar block at a time — and detection replay
 * never materializes more than the source's cursor buffering. Only the
 * VTune/Sheriff baseline replays (different, much shorter stream
 * schemes) materialize the stream when file-backed.
 */

#ifndef LASER_TRACE_REPLAY_H
#define LASER_TRACE_REPLAY_H

#include <memory>
#include <string>

#include "analysis/sink.h"
#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "detect/detector.h"
#include "detect/pipeline.h"
#include "isa/program.h"
#include "mem/address_space.h"
#include "trace/source.h"
#include "trace/trace.h"

namespace laser::trace {

/** Offline Sheriff re-analysis of a captured sync stream. */
struct SheriffReplay
{
    baselines::SheriffReport report;
    /** Commit cycles the capture run charged (its own config). */
    std::uint64_t capturedChargedCycles = 0;
    /**
     * Modeled wall-clock runtime under the replayed config: the
     * captured runtime with capture-time commit costs (spread evenly
     * over the cores) swapped for replayed ones. An additive estimate —
     * cost charging perturbs interleaving in a full simulation — exact
     * when the replayed config equals the capture's.
     */
    std::uint64_t estimatedRuntimeCycles = 0;
};

/**
 * Rebuilt replay environment for one trace. The backing trace or
 * source must outlive the replayer (it is read on every replay() call).
 */
class TraceReplayer
{
  public:
    /**
     * Replay a materialized trace. Hand-built in-memory traces need not
     * be cycle-sorted; an unsorted stream is copied and sorted once
     * here (stored streams are canonical, so the copy never happens for
     * traces that came from files).
     */
    explicit TraceReplayer(const Trace &trace);

    /**
     * Replay an arbitrary record source (typically an open
     * trace::TraceFile) under @p meta. The source's stream must already
     * be canonical — every Ok-opened trace file's is.
     */
    TraceReplayer(const TraceMeta &meta, const RecordSource &source);

    /** False when the trace's workload is unknown to this build. */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /**
     * Stream every record through @p sink in canonical order. Throws
     * std::runtime_error if the source fails mid-stream (a corrupt
     * block discovered lazily by a file-backed source).
     */
    void drive(analysis::RecordSink &sink) const;

    /** Re-run the detector over the records at @p cfg. */
    detect::DetectionReport replay(const detect::DetectorConfig &cfg) const;

    /**
     * Replay at a given rate threshold with every other detector knob at
     * its default and the SAV taken from the capture configuration —
     * the offline-threshold-adjustment use case of Section 4.
     */
    detect::DetectionReport replayAtThreshold(double rate_threshold) const;

    /** Offline VTune aggregation over a captured "vtune" stream. */
    baselines::VTuneReport
    replayVTune(const baselines::VTuneConfig &cfg) const;
    /** ...at the capture-time VTune configuration. */
    baselines::VTuneReport replayVTune() const;

    /** Offline Sheriff re-analysis of a captured sheriff stream. */
    SheriffReplay replaySheriff(const baselines::SheriffConfig &cfg) const;
    /** ...at the capture-time Sheriff configuration. */
    SheriffReplay replaySheriff() const;

    /** Capture metadata (valid for both ctors). */
    const TraceMeta &meta() const { return *meta_; }
    /** The record stream being replayed. */
    const RecordSource &source() const { return *source_; }
    std::uint64_t recordCount() const { return source_->recordCount(); }

    /**
     * The backing materialized trace. Only valid for replayers built
     * with the Trace ctor (source-backed replayers have none).
     */
    const Trace &trace() const { return *trace_; }
    /** True when trace() is valid. */
    bool hasTrace() const { return trace_ != nullptr; }

    const isa::Program &program() const { return program_; }
    const mem::AddressSpace &space() const { return *space_; }
    /** Shared immutable detector environment (maps, load/store sets). */
    const detect::DetectorContext &context() const { return *ctx_; }

  private:
    void buildEnvironment();
    /** The stream as a vector (copies when source-backed). */
    std::vector<pebs::PebsRecord> materializeRecords() const;
    SheriffReplay
    replaySheriffOver(const std::vector<pebs::PebsRecord> &records,
                      const baselines::SheriffConfig &cfg) const;

    const Trace *trace_ = nullptr;
    const TraceMeta *meta_ = nullptr;
    const RecordSource *source_ = nullptr;
    /** Sorted copy backing ownedSource_ for unsorted in-memory traces. */
    std::vector<pebs::PebsRecord> ownedSorted_;
    std::unique_ptr<MemoryRecordSource> ownedSource_;
    isa::Program program_;
    std::unique_ptr<mem::AddressSpace> space_;
    std::unique_ptr<detect::DetectorContext> ctx_;
    std::string error_;
};

} // namespace laser::trace

#endif // LASER_TRACE_REPLAY_H
