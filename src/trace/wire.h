/**
 * @file
 * Shared wire-format primitives for the LSRT trace format: the
 * little-endian/varint byte encoder and its strict bounds-checked
 * decoder, FNV-1a, and zigzag mapping.
 *
 * Extracted from the trace reader/writer so the columnar codec layer
 * (trace/columnar.*) and the seekable file reader (trace/trace_file.*)
 * encode and reject bytes with exactly the same rules. Canonicality
 * matters for the byte-exact round-trip guarantee: the varint decoder
 * rejects a tenth byte carrying bits beyond the 64th and non-terminal
 * zero continuation bytes, both of which would decode "Ok" into a value
 * that re-encodes to different bytes.
 */

#ifndef LASER_TRACE_WIRE_H
#define LASER_TRACE_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace laser::trace::wire {

inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size,
      std::uint64_t h = 1469598103934665603ull)
{
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append-only little-endian/varint encoder over a caller's buffer. */
struct ByteWriter
{
    std::vector<std::uint8_t> &buf;

    explicit ByteWriter(std::vector<std::uint8_t> &b) : buf(b) {}

    void u8(std::uint8_t v) { buf.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    var(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf.push_back(static_cast<std::uint8_t>(v));
    }

    void zig(std::int64_t v) { var(zigzagEncode(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        var(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    }
};

/** Bounds-checked decoder: any overrun latches ok=false, reads yield 0. */
struct ByteReader
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool ok = true;

    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

    void
    skip(std::size_t n)
    {
        if (n > remaining()) {
            ok = false;
            p = end;
            return;
        }
        p += n;
    }

    std::uint8_t
    u8()
    {
        if (p >= end) {
            ok = false;
            return 0;
        }
        return *p++;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        if (remaining() < 4) {
            ok = false;
            p = end;
            return 0;
        }
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (remaining() < 8) {
            ok = false;
            p = end;
            return 0;
        }
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return v;
    }

    std::uint64_t
    var()
    {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (p >= end) {
                ok = false;
                return 0;
            }
            const std::uint8_t byte = *p++;
            // Reject the tenth byte carrying bits beyond the 64th, and
            // non-canonical zero continuation bytes: both would parse
            // "Ok" into a value that re-encodes to different bytes.
            if ((shift == 63 && (byte & 0xfe)) ||
                    (byte == 0 && shift > 0)) {
                ok = false;
                return 0;
            }
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        ok = false; // > 10 bytes: malformed varint
        return 0;
    }

    std::int64_t zig() { return zigzagDecode(var()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string
    str()
    {
        const std::uint64_t n = var();
        if (!ok || n > remaining()) {
            ok = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p),
                      static_cast<std::size_t>(n));
        p += n;
        return s;
    }
};

} // namespace laser::trace::wire

#endif // LASER_TRACE_WIRE_H
