#include "trace/source.h"

#include <algorithm>
#include <atomic>

namespace laser::trace {

namespace {

std::atomic<std::size_t> g_bufferedLive{0};
std::atomic<std::size_t> g_bufferedPeak{0};

/** Cursor over a slice of a materialized record vector. */
class MemoryCursor : public RecordCursor
{
  public:
    MemoryCursor(const pebs::PebsRecord *begin, const pebs::PebsRecord *end)
        : p_(begin), end_(end)
    {
    }

    bool
    next(pebs::PebsRecord *rec) override
    {
        if (p_ >= end_)
            return false;
        *rec = *p_++;
        return true;
    }

  private:
    const pebs::PebsRecord *p_;
    const pebs::PebsRecord *end_;
};

} // namespace

std::size_t
bufferedRecordsLive()
{
    return g_bufferedLive.load(std::memory_order_relaxed);
}

std::size_t
bufferedRecordsPeak()
{
    return g_bufferedPeak.load(std::memory_order_relaxed);
}

void
resetBufferedRecordsPeak()
{
    g_bufferedPeak.store(g_bufferedLive.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

namespace detail {

void
addBufferedRecords(std::size_t n)
{
    const std::size_t live =
        g_bufferedLive.fetch_add(n, std::memory_order_relaxed) + n;
    std::size_t peak = g_bufferedPeak.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_bufferedPeak.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

void
subBufferedRecords(std::size_t n)
{
    g_bufferedLive.fetch_sub(n, std::memory_order_relaxed);
}

} // namespace detail

std::uint64_t
RecordCursor::drain(analysis::RecordSink &sink)
{
    std::uint64_t n = 0;
    pebs::PebsRecord rec;
    while (next(&rec)) {
        sink.onRecord(rec);
        ++n;
    }
    return n;
}

std::unique_ptr<RecordCursor>
MemoryRecordSource::cursorForRecords(std::uint64_t first,
                                     std::uint64_t end) const
{
    const std::uint64_t n = records_->size();
    first = std::min(first, n);
    end = std::clamp(end, first, n);
    return std::make_unique<MemoryCursor>(records_->data() + first,
                                          records_->data() + end);
}

std::unique_ptr<RecordCursor>
MemoryRecordSource::cursorForCycles(std::uint64_t begin,
                                    std::uint64_t end) const
{
    const auto cycle_less = [](const pebs::PebsRecord &rec,
                               std::uint64_t cycle) {
        return rec.cycle < cycle;
    };
    const pebs::PebsRecord *lo =
        begin == 0 ? records_->data()
                   : std::lower_bound(records_->data(),
                                      records_->data() + records_->size(),
                                      begin, cycle_less);
    const pebs::PebsRecord *hi = std::lower_bound(
        lo, records_->data() + records_->size(), end, cycle_less);
    return std::make_unique<MemoryCursor>(lo, hi);
}

} // namespace laser::trace
