#include "trace/parallel_replay.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "analysis/sink.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace {

/** Registry handles for the replay metrics (resolved once). */
struct ReplayMetrics
{
    laser::obs::Counter &digests;
    laser::obs::Counter &recordsDigested;
    laser::obs::Counter &reports;
    laser::obs::Histogram &shardSeconds;
    laser::obs::Histogram &mergeSeconds;
    laser::obs::Histogram &shardSkewSeconds;

    static ReplayMetrics &
    get()
    {
        using laser::obs::Registry;
        static ReplayMetrics m{
            Registry::global().counter("replay.digests"),
            Registry::global().counter("replay.records_digested"),
            Registry::global().counter("replay.reports"),
            Registry::global().histogram("replay.shard_seconds"),
            Registry::global().histogram("replay.merge_seconds"),
            Registry::global().histogram("replay.shard_skew_seconds"),
        };
        return m;
    }
};

} // namespace

namespace laser::trace {

ParallelReplayer::ParallelReplayer(const TraceReplayer &env)
    : ParallelReplayer(env, Options())
{
}

ParallelReplayer::ParallelReplayer(const TraceReplayer &env, Options opt)
    : env_(&env)
{
    // The replayer's source is already canonical (the Trace ctor sorts
    // hand-built streams; file sources are canonical by construction).
    const std::uint64_t n = env.source().recordCount();
    shards_ = std::max(1, opt.shards);
    if (n > 0 && static_cast<std::uint64_t>(shards_) > n)
        shards_ = static_cast<int>(n);

    // Digest each contiguous time window independently through its own
    // cursor, so a file-backed replay holds one decoded block per shard
    // rather than the materialized trace. Shard pipelines share the
    // replayer's immutable context; each owns only its state.
    //
    // Deliberately lock-free: shard s writes only states[s],
    // shard_seconds[s] and shard_status[s] — disjoint elements of
    // vectors sized before the fan-out — and the merge below reads them
    // only after parallelFor returns, whose batch-completion handshake
    // (util/thread_pool.h) is the synchronization point. There is no
    // shared mutable state to GUARDED_BY here; adding any requires a
    // util::Mutex and an annotation (see CONTRIBUTING.md).
    ReplayMetrics &metrics = ReplayMetrics::get();
    metrics.digests.inc();
    std::vector<detect::DetectorState> states(shards_);
    std::vector<double> shard_seconds(
        static_cast<std::size_t>(shards_), 0.0);
    std::vector<TraceStatus> shard_status(
        static_cast<std::size_t>(shards_), TraceStatus::Ok);
    const auto digest_shard = [&](std::size_t s) {
        LASER_SPAN("replay.shard");
        const auto start = std::chrono::steady_clock::now();
        // Index-based split: the same records land in the same shards
        // as a materialized split would, preserving bit-identity.
        const std::uint64_t begin = n * s / shards_;
        const std::uint64_t end = n * (s + 1) / shards_;
        detect::DetectorPipeline pipeline(
            env.context(), {}, detect::DetectorPipeline::Mode::Shard);
        const std::unique_ptr<RecordCursor> cur =
            env.source().cursorForRecords(begin, end);
        const std::uint64_t digested = cur->drain(pipeline);
        shard_status[s] = cur->status();
        states[s] = pipeline.takeState();
        metrics.recordsDigested.inc(digested);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        shard_seconds[s] = seconds;
        metrics.shardSeconds.record(seconds);
    };
    if (opt.pool) {
        opt.pool->parallelFor(static_cast<std::size_t>(shards_),
                              digest_shard);
    } else if (shards_ > 1) {
        util::ThreadPool local(shards_);
        local.parallelFor(static_cast<std::size_t>(shards_),
                          digest_shard);
    } else {
        digest_shard(0);
    }
    for (int s = 0; s < shards_; ++s)
        if (shard_status[static_cast<std::size_t>(s)] != TraceStatus::Ok)
            throw std::runtime_error(
                std::string("sharded replay: shard ") +
                std::to_string(s) + " record stream failed: " +
                traceStatusName(
                    shard_status[static_cast<std::size_t>(s)]));
    // Shard skew — slowest minus fastest window — is the load-balance
    // signal for choosing shard counts (a time-skewed trace digests no
    // faster than its hottest window).
    if (shards_ > 1) {
        const auto [min_it, max_it] = std::minmax_element(
            shard_seconds.begin(), shard_seconds.end());
        metrics.shardSkewSeconds.record(*max_it - *min_it);
    }

    // Window-order merge: concatenating the shards' event streams in
    // this order reproduces the serial processing order exactly.
    {
        LASER_SPAN("replay.merge");
        const auto merge_start = std::chrono::steady_clock::now();
        merged_ = std::move(states[0]);
        for (int s = 1; s < shards_; ++s)
            merged_.mergeFrom(std::move(states[s]));
        metrics.mergeSeconds.record(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - merge_start)
                .count());
    }
}

detect::DetectionReport
ParallelReplayer::replay(const detect::DetectorConfig &cfg) const
{
    LASER_SPAN("replay.report");
    ReplayMetrics::get().reports.inc();
    const detect::RateScanState scan =
        detect::scanRateEvents(merged_.rateEvents, cfg);
    return detect::buildReport(env_->context(), cfg, merged_, scan,
                               env_->meta().runtimeCycles);
}

ShardedReplayCheck
checkShardedReplay(const TraceReplayer &env,
                   const std::vector<double> &thresholds, int shards,
                   util::ThreadPool *pool)
{
    using clock = std::chrono::steady_clock;
    const auto seconds_since = [](clock::time_point start) {
        return std::chrono::duration<double>(clock::now() - start)
            .count();
    };
    ShardedReplayCheck check;

    const auto serial_start = clock::now();
    for (double threshold : thresholds)
        check.serialReports.push_back(env.replayAtThreshold(threshold));
    check.serialSeconds = seconds_since(serial_start);

    const auto sharded_start = clock::now();
    ParallelReplayer::Options opt;
    opt.shards = shards;
    opt.pool = pool;
    ParallelReplayer parallel(env, opt);
    check.shards = parallel.shards();
    check.identical = true;
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        detect::DetectorConfig cfg;
        cfg.rateThreshold = thresholds[i];
        cfg.sav = env.meta().pebs.sav;
        if (check.identical &&
                !detect::reportsIdentical(check.serialReports[i],
                                          parallel.replay(cfg))) {
            check.identical = false;
            check.mismatchThreshold = thresholds[i];
        }
    }
    check.shardedSeconds = seconds_since(sharded_start);
    return check;
}

detect::DetectionReport
replayDetection(const Trace &trace, int shards, util::ThreadPool *pool)
{
    TraceReplayer env(trace);
    if (!env.ok())
        throw std::runtime_error("replayDetection: " + env.error());
    ParallelReplayer::Options opt;
    opt.shards = shards;
    opt.pool = pool;
    ParallelReplayer digest(env, opt);
    detect::DetectorConfig cfg;
    cfg.sav = trace.meta.pebs.sav;
    return digest.replay(cfg);
}

} // namespace laser::trace
