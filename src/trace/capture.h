/**
 * @file
 * Trace capture: run one monitored simulation (the expensive part) and
 * package the analysis-record stream + run metadata as a Trace.
 *
 * Capture is scheme-aware: the same machinery records the LASER PEBS
 * stream ("laser-detect"), the VTune interrupt-per-event stream
 * ("vtune"), the Sheriff sync-commit stream ("sheriff-detect" /
 * "sheriff-protect") or an unmonitored native run ("native", empty
 * stream). Every captured stream is stored in canonical cycle order, so
 * any AnalysisSink — serial or sharded — can replay it without
 * re-simulating.
 *
 * The defaults reproduce the monitored phase of the experiment harness's
 * schemes exactly (SAV 19, the fork/attach heap shift, the default
 * machine seed for LASER; no heap shift for the baselines), so a
 * captured trace replayed through the matching analyzer yields the same
 * report as the in-process pipeline.
 */

#ifndef LASER_TRACE_CAPTURE_H
#define LASER_TRACE_CAPTURE_H

#include <cstdint>
#include <string>

#include "baselines/sheriff.h"
#include "baselines/vtune.h"
#include "sim/protocol.h"
#include "sim/timing.h"
#include "trace/trace.h"
#include "workloads/workload.h"

namespace laser::trace {

/** Knobs of one capture run (everything else at system defaults). */
struct CaptureOptions
{
    /** Sample-after value; 0 captures an unmonitored (native) run. */
    std::uint32_t sav = 19;
    std::uint64_t machineSeed = 0x1a5e2;
    /** Heap shift of the LASER fork/attach; 0 for native baselines. */
    std::uint64_t heapShift = 48;
    int numThreads = 4;
    std::uint64_t inputSeed = 0x5eed;
    double scale = 1.0;
    bool manualFix = false;
    sim::TimingModel timing{};
    /** Coherence backend of the simulated machine. */
    sim::ProtocolKind protocol = sim::ProtocolKind::Mesi;
    /** Simulated cache geometry (line size; optional capacity). */
    sim::CacheGeometry geometry{};
    /** Scheme label; selects what the capture records (see file doc). */
    std::string scheme = "laser-detect";
    /** Baseline-model configurations (used by their schemes only). */
    baselines::VTuneConfig vtune{};
    baselines::SheriffConfig sheriff{};

    /**
     * Canonical options for a scheme: "laser-detect" keeps the
     * fork/attach heap shift; the baselines and native runs drop it;
     * the sheriff schemes set detect mode accordingly.
     */
    static CaptureOptions forScheme(const std::string &scheme);
};

/**
 * Build the capture configuration section of a TraceMeta without
 * running anything; configHash() of the result is the cache key.
 */
TraceMeta makeCaptureMeta(const workloads::WorkloadDef &workload,
                          const CaptureOptions &opt);

/** Run the simulation under @p opt's scheme and return the trace. */
Trace captureTrace(const workloads::WorkloadDef &workload,
                   const CaptureOptions &opt = {});

} // namespace laser::trace

#endif // LASER_TRACE_CAPTURE_H
