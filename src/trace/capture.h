/**
 * @file
 * Trace capture: run one monitored simulation (the expensive part) and
 * package the PEBS record stream + run metadata as a Trace.
 *
 * The defaults reproduce the monitored phase of the experiment harness's
 * Laser schemes exactly (SAV 19, the fork/attach heap shift, the default
 * machine seed), so a captured trace replayed through the detector yields
 * the same DetectionReport as the in-process pipeline.
 */

#ifndef LASER_TRACE_CAPTURE_H
#define LASER_TRACE_CAPTURE_H

#include <cstdint>
#include <string>

#include "sim/timing.h"
#include "trace/trace.h"
#include "workloads/workload.h"

namespace laser::trace {

/** Knobs of one capture run (everything else at system defaults). */
struct CaptureOptions
{
    /** Sample-after value; 0 captures an unmonitored (native) run. */
    std::uint32_t sav = 19;
    std::uint64_t machineSeed = 0x1a5e2;
    /** Heap shift of the LASER fork/attach; 0 for native baselines. */
    std::uint64_t heapShift = 48;
    int numThreads = 4;
    std::uint64_t inputSeed = 0x5eed;
    double scale = 1.0;
    sim::TimingModel timing{};
    /** Scheme label stored in the trace metadata. */
    std::string scheme = "laser-detect";
};

/**
 * Build the capture configuration section of a TraceMeta without
 * running anything; configHash() of the result is the cache key.
 */
TraceMeta makeCaptureMeta(const workloads::WorkloadDef &workload,
                          const CaptureOptions &opt);

/** Run the monitored simulation and return the complete trace. */
Trace captureTrace(const workloads::WorkloadDef &workload,
                   const CaptureOptions &opt = {});

} // namespace laser::trace

#endif // LASER_TRACE_CAPTURE_H
