#include "trace/cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace laser::trace {

namespace fs = std::filesystem;

TraceStatus
readTraceHeader(const std::string &path, std::uint64_t *config_hash)
{
    *config_hash = 0;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return TraceStatus::IoError;
    std::uint8_t header[20]; // magic + version + endian + config hash
    const std::size_t n = std::fread(header, 1, sizeof header, f);
    std::fclose(f);
    if (n < sizeof header)
        return TraceStatus::Truncated;
    if (std::memcmp(header, kTraceMagic, 4) != 0)
        return TraceStatus::BadMagic;
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    if (version != kTraceVersion)
        return TraceStatus::BadVersion;
    std::uint32_t endian = 0;
    for (int i = 0; i < 4; ++i)
        endian |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
    if (endian != kTraceEndianMarker)
        return TraceStatus::BadEndianness;
    std::uint64_t hash = 0;
    for (int i = 0; i < 8; ++i)
        hash |= static_cast<std::uint64_t>(header[12 + i]) << (8 * i);
    *config_hash = hash;
    return TraceStatus::Ok;
}

std::vector<CacheEntry>
listTraceCache(const std::string &dir)
{
    std::vector<CacheEntry> entries;
    std::error_code ec;
    for (const fs::directory_entry &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        if (de.path().extension() != kTraceExtension)
            continue;
        CacheEntry entry;
        entry.path = de.path().string();
        entry.bytes = de.file_size(ec);
        entry.mtime = de.last_write_time(ec);
        entry.status = readTraceHeader(entry.path, &entry.configHash);
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const CacheEntry &a, const CacheEntry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path; // deterministic tie-break
              });
    return entries;
}

CacheGcResult
gcTraceCache(const std::string &dir, std::uint64_t max_bytes)
{
    CacheGcResult result;
    const std::vector<CacheEntry> entries = listTraceCache(dir);
    result.scanned = entries.size();
    for (const CacheEntry &entry : entries)
        result.bytesBefore += entry.bytes;
    result.bytesAfter = result.bytesBefore;

    // Oldest-first (the list is already in eviction order): delete until
    // the budget holds.
    static obs::Counter &evictions =
        obs::Registry::global().counter("trace.cache.gc_evictions");
    static obs::Counter &evicted_bytes =
        obs::Registry::global().counter("trace.cache.gc_bytes_evicted");
    for (const CacheEntry &entry : entries) {
        if (result.bytesAfter <= max_bytes)
            break;
        std::error_code ec;
        if (fs::remove(entry.path, ec) && !ec) {
            ++result.evicted;
            result.bytesAfter -= entry.bytes;
            evictions.inc();
            evicted_bytes.inc(entry.bytes);
        }
    }
    return result;
}

} // namespace laser::trace
