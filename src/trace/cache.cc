#include "trace/cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace laser::trace {

namespace fs = std::filesystem;

namespace {

/** The sweep cache's filename stem for a config hash. */
std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
    return buf;
}

} // namespace

TraceStatus
readTraceHeader(const std::string &path, std::uint64_t *config_hash,
                std::uint32_t *version)
{
    *config_hash = 0;
    if (version)
        *version = 0;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return TraceStatus::IoError;
    std::uint8_t header[kTraceHeaderSize];
    const std::size_t n = std::fread(header, 1, sizeof header, f);
    std::fclose(f);
    detail::HeaderInfo info;
    std::string err;
    const TraceStatus status =
        detail::parseTraceHeader(header, n, &info, &err);
    if (status != TraceStatus::Ok)
        return status;
    *config_hash = info.configHash;
    if (version)
        *version = info.version;
    return TraceStatus::Ok;
}

std::vector<CacheEntry>
listTraceCache(const std::string &dir)
{
    std::vector<CacheEntry> entries;
    std::error_code ec;
    for (const fs::directory_entry &de : fs::directory_iterator(dir, ec)) {
        std::error_code entry_ec;
        if (!de.is_regular_file(entry_ec) || entry_ec)
            continue;
        if (de.path().extension() != kTraceExtension)
            continue;
        CacheEntry entry;
        entry.path = de.path().string();
        // A concurrent gc may delete the file between iteration and
        // stat; skip vanished entries rather than record garbage sizes
        // (file_size reports uintmax_t(-1) on error).
        entry.bytes = de.file_size(entry_ec);
        if (entry_ec)
            continue;
        entry.mtime = de.last_write_time(entry_ec);
        if (entry_ec)
            continue;
        entry.status =
            readTraceHeader(entry.path, &entry.configHash, &entry.version);
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const CacheEntry &a, const CacheEntry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path; // deterministic tie-break
              });
    return entries;
}

CacheGcResult
gcTraceCacheFrom(const std::vector<CacheEntry> &entries,
                 std::uint64_t max_bytes)
{
    CacheGcResult result;
    result.scanned = entries.size();
    for (const CacheEntry &entry : entries)
        result.bytesBefore += entry.bytes;
    result.bytesAfter = result.bytesBefore;

    // Oldest-first (the list is already in eviction order): delete until
    // the budget holds.
    static obs::Counter &evictions =
        obs::Registry::global().counter("trace.cache.gc_evictions");
    static obs::Counter &evicted_bytes =
        obs::Registry::global().counter("trace.cache.gc_bytes_evicted");
    for (const CacheEntry &entry : entries) {
        if (result.bytesAfter <= max_bytes)
            break;
        std::error_code ec;
        // Disk-hit race: a sweep refreshes mtime on every cache hit. If
        // this entry's mtime moved since the listing, it was just used
        // and is no longer the LRU victim the listing claimed — spare
        // it and keep its bytes on the books.
        const fs::file_time_type now_mtime =
            fs::last_write_time(entry.path, ec);
        if (ec) {
            // Already gone (concurrent gc or cache wipe): its bytes no
            // longer occupy the directory, but nothing was evicted here.
            ++result.vanished;
            result.bytesAfter -= entry.bytes;
            continue;
        }
        if (now_mtime != entry.mtime) {
            ++result.spared;
            continue;
        }
        if (fs::remove(entry.path, ec) && !ec) {
            ++result.evicted;
            result.bytesAfter -= entry.bytes;
            evictions.inc();
            evicted_bytes.inc(entry.bytes);
        } else if (!fs::exists(entry.path)) {
            // Removed by someone else between the mtime check and ours.
            ++result.vanished;
            result.bytesAfter -= entry.bytes;
        }
    }
    return result;
}

CacheGcResult
gcTraceCache(const std::string &dir, std::uint64_t max_bytes)
{
    return gcTraceCacheFrom(listTraceCache(dir), max_bytes);
}

MigrateFileResult
migrateTraceFile(const std::string &path)
{
    MigrateFileResult result;
    result.newPath = path;

    TraceReader reader;
    result.status = reader.readFile(path);
    if (result.status != TraceStatus::Ok) {
        result.error = reader.error();
        return result;
    }
    const std::uint32_t old_version = reader.version();
    if (old_version == kTraceVersion)
        return result; // already current

    const Trace trace = reader.takeTrace();
    const std::uint64_t old_hash =
        configHashForVersion(trace.meta, old_version);
    const std::uint64_t new_hash = configHash(trace.meta);

    // Sweep-cache files are named by their (version-scoped) config
    // hash; re-key those so a post-migration sweep finds them. Anything
    // else is rewritten under its own name.
    const fs::path old_path(path);
    std::string target = path;
    if (old_path.stem().string() == hexKey(old_hash))
        target = (old_path.parent_path() /
                  (hexKey(new_hash) + kTraceExtension))
                     .string();

    result.status = writeTraceFile(trace, target);
    if (result.status != TraceStatus::Ok) {
        result.error = "cannot write " + target;
        return result;
    }
    if (target != path) {
        std::error_code ec;
        fs::remove(path, ec); // best-effort; stale v1/v2 keys are inert
    }
    result.upgraded = true;
    result.newPath = target;
    return result;
}

CacheMigrateResult
migrateTraceCache(const std::string &dir)
{
    CacheMigrateResult result;
    for (const CacheEntry &entry : listTraceCache(dir)) {
        ++result.scanned;
        result.bytesBefore += entry.bytes;
        if (entry.status == TraceStatus::Ok &&
                entry.version == kTraceVersion) {
            ++result.alreadyCurrent;
            result.bytesAfter += entry.bytes;
            continue;
        }
        const MigrateFileResult file = migrateTraceFile(entry.path);
        if (file.status == TraceStatus::Ok && file.upgraded) {
            ++result.upgraded;
            std::error_code ec;
            const std::uintmax_t n = fs::file_size(file.newPath, ec);
            result.bytesAfter += ec ? 0 : static_cast<std::uint64_t>(n);
        } else if (file.status == TraceStatus::Ok) {
            ++result.alreadyCurrent;
            result.bytesAfter += entry.bytes;
        } else {
            ++result.failed;
            result.bytesAfter += entry.bytes;
        }
    }
    return result;
}

} // namespace laser::trace
