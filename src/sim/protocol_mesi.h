/**
 * @file
 * Directory-MESI behind the CoherenceProtocol interface.
 *
 * Transition-for-transition identical to the original
 * CoherenceDirectory (sim/coherence.h) at the default geometry — the
 * cross-protocol identity test replays every workload and requires a
 * bit-identical HITM event stream against goldens captured from the
 * pre-refactor directory. On top of that it adds optional capacity
 * modeling: with a bounded CacheGeometry each core tracks its resident
 * lines per set in LRU order, and an overflowing fill silently evicts
 * the victim (dropping the core from the line's sharer set; an M/E
 * owner's eviction is a writeback to memory). Eviction latency is not
 * charged — contention behaviour, not capacity misses, drives the
 * paper's signal — but the state transitions make re-references misses
 * again, so geometry sweeps see realistic re-fetch traffic.
 *
 * Invariant audit (Illinois clean-sharing rules): the original
 * directory's checkInvariants verified E/M => exactly one sharer equal
 * to the owner and never M && E; the audit found no transition
 * violating those, and added the stricter converse — a line that is
 * neither M nor E must have no owner (owner == -1) — which all
 * transitions also maintain. Both protocols' invariants are fuzzed
 * over random interleavings by the property tests.
 */

#ifndef LASER_SIM_PROTOCOL_MESI_H
#define LASER_SIM_PROTOCOL_MESI_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/protocol.h"

namespace laser::sim {

/** Directory-based MESI model, one entry per touched line. */
class MesiDirectory final : public CoherenceProtocol
{
  public:
    /** Per-line directory state (same layout as the pre-refactor
     *  CoherenceDirectory::LineInfo). */
    struct LineInfo
    {
        std::uint32_t sharers = 0; ///< bitmask of cores with a copy
        std::int8_t owner = -1;    ///< owning core when modified/exclusive
        bool modified = false;
        bool exclusive = false;
    };

    MesiDirectory(int num_cores, const CacheGeometry &geometry = {});

    ProtocolKind kind() const override { return ProtocolKind::Mesi; }

    AccessOutcome access(int core, std::uint64_t addr, bool is_write,
                         bool is_load_class) override;

    bool checkInvariants() const override;

    std::size_t linesTouched() const override { return lines_.size(); }

    /** Directory entry for a line address (nullptr if not resident). */
    const LineInfo *probe(std::uint64_t line_addr) const;

    /** Lines evicted by capacity (0 with unbounded geometry). */
    std::uint64_t evictions() const { return evictions_; }

  private:
    /** Touch @p line in @p core's LRU set, evicting on overflow. */
    void touchLru(int core, std::uint64_t line);
    void evictLine(int core, std::uint64_t line);

    std::unordered_map<std::uint64_t, LineInfo> lines_;
    /** Per-core, per-set resident lines, MRU first (bounded geometry
     *  only; empty when unbounded). */
    std::vector<std::vector<std::list<std::uint64_t>>> lru_;
    std::uint64_t evictions_ = 0;
};

} // namespace laser::sim

#endif // LASER_SIM_PROTOCOL_MESI_H
