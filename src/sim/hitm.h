/**
 * @file
 * HITM event payload and the PMU sink interface the machine raises events
 * through.
 *
 * The machine is policy-free: it reports every HITM coherence event (plus
 * per-memory-op and per-sync-op callbacks used by the baseline models) to
 * a PmuSink and charges whatever cost the sink returns to the triggering
 * core. The LASER PEBS model, the VTune model and the Sheriff model are
 * all implemented as sinks.
 */

#ifndef LASER_SIM_HITM_H
#define LASER_SIM_HITM_H

#include <cstdint>

#include "isa/types.h"

namespace laser::sim {

/** Ground-truth description of one HITM coherence event. */
struct HitmEvent
{
    int core = 0;
    /** Instruction index of the access (the true PC). */
    std::uint32_t pcIndex = 0;
    /** True data (byte) address of the access. */
    std::uint64_t vaddr = 0;
    /** Access size in bytes. */
    std::uint8_t accessSize = 0;
    /**
     * True when the access contains a load uop (loads, RMW, atomics).
     * Haswell's PEBS HITM event is a load event; records for pure stores
     * exist but are imprecise (Section 3.1).
     */
    bool isLoadUop = false;
    /** True when the access writes the line. */
    bool isStore = false;
    /** Core-local cycle count at the event. */
    std::uint64_t cycle = 0;
};

/**
 * Observer interface for performance-monitoring models.
 *
 * Each callback returns extra cycles to charge to the triggering core
 * (e.g. a PEBS microcode assist, a profiling interrupt, or a Sheriff page
 * diff at a synchronization point).
 */
class PmuSink
{
  public:
    virtual ~PmuSink() = default;

    /** A HITM coherence event occurred. */
    virtual std::uint64_t
    onHitm(const HitmEvent &event)
    {
        (void)event;
        return 0;
    }

    /** A (non-SSB) memory operation executed. */
    virtual std::uint64_t
    onMemop(int core, std::uint32_t pc_index, bool is_write,
            std::uint64_t cycle)
    {
        (void)core; (void)pc_index; (void)is_write; (void)cycle;
        return 0;
    }

    /**
     * A synchronization operation completed (successful lock acquire,
     * lock release, or barrier arrival). @p dirty_pages is the number of
     * pages the thread dirtied since its previous sync point (only
     * tracked when MachineConfig::trackDirtyPages is set); @p cycle is
     * the core-local clock, so sinks can emit capturable, time-ordered
     * sync streams.
     */
    virtual std::uint64_t
    onSync(int core, isa::SyncKind kind, std::uint64_t dirty_pages,
           std::uint64_t cycle)
    {
        (void)core; (void)kind; (void)dirty_pages; (void)cycle;
        return 0;
    }
};

} // namespace laser::sim

#endif // LASER_SIM_HITM_H
