#include "sim/coherence.h"

#include <bit>

namespace laser::sim {

const char *
accessOutcomeName(AccessOutcome outcome)
{
    switch (outcome) {
      case AccessOutcome::L1Hit:     return "l1-hit";
      case AccessOutcome::LlcHit:    return "llc-hit";
      case AccessOutcome::MemMiss:   return "mem-miss";
      case AccessOutcome::HitmLoad:  return "hitm-load";
      case AccessOutcome::HitmStore: return "hitm-store";
      case AccessOutcome::Upgrade:   return "upgrade";
      case AccessOutcome::RfoShared: return "rfo-shared";
    }
    return "???";
}

AccessOutcome
CoherenceDirectory::access(int core, std::uint64_t addr, bool is_write,
                           bool is_load_class)
{
    LineInfo &li = lines_[lineOf(addr)];
    const std::uint32_t me = 1u << core;
    const bool mine = (li.sharers & me) != 0;

    if (!is_write) {
        if (mine)
            return AccessOutcome::L1Hit;
        if (li.modified) {
            // Remote Modified: HITM. Owner writes back and both end Shared.
            li.modified = false;
            li.exclusive = false;
            li.owner = -1;
            li.sharers |= me;
            return AccessOutcome::HitmLoad;
        }
        if (li.sharers != 0) {
            li.exclusive = false;
            li.owner = -1;
            li.sharers |= me;
            return AccessOutcome::LlcHit;
        }
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.exclusive = true;
        return AccessOutcome::MemMiss;
    }

    // Write path.
    if (mine && (li.modified || li.exclusive) && li.owner == core) {
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::L1Hit;
    }
    if (mine) {
        // Local Shared copy: upgrade, invalidating remote sharers.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::Upgrade;
    }
    if (li.modified) {
        // Remote Modified: the HITM case. Ownership migrates.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return is_load_class ? AccessOutcome::HitmLoad
                             : AccessOutcome::HitmStore;
    }
    if (li.sharers != 0) {
        // Remote clean copies (E or S): invalidate them; not a HITM.
        li.sharers = me;
        li.owner = static_cast<std::int8_t>(core);
        li.modified = true;
        li.exclusive = false;
        return AccessOutcome::RfoShared;
    }
    li.sharers = me;
    li.owner = static_cast<std::int8_t>(core);
    li.modified = true;
    li.exclusive = false;
    return AccessOutcome::MemMiss;
}

const CoherenceDirectory::LineInfo *
CoherenceDirectory::probe(std::uint64_t line_addr) const
{
    auto it = lines_.find(line_addr);
    return it == lines_.end() ? nullptr : &it->second;
}

bool
CoherenceDirectory::checkInvariants() const
{
    for (const auto &[line, li] : lines_) {
        if (li.sharers == 0)
            return false;
        if (li.modified && li.exclusive)
            return false;
        if (li.modified || li.exclusive) {
            if (std::popcount(li.sharers) != 1)
                return false;
            if (li.owner < 0 || li.owner >= numCores_)
                return false;
            if (li.sharers != (1u << li.owner))
                return false;
        }
        if (li.sharers >= (1u << numCores_))
            return false;
    }
    return true;
}

} // namespace laser::sim
