#include "sim/protocol.h"

#include <bit>

#include "sim/protocol_dragon.h"
#include "sim/protocol_mesi.h"

namespace laser::sim {

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Mesi:   return "mesi";
      case ProtocolKind::Dragon: return "dragon";
    }
    return "???";
}

bool
parseProtocol(const std::string &name, ProtocolKind *out)
{
    if (name == "mesi") {
        *out = ProtocolKind::Mesi;
        return true;
    }
    if (name == "dragon") {
        *out = ProtocolKind::Dragon;
        return true;
    }
    return false;
}

CoherenceProtocol::CoherenceProtocol(int num_cores,
                                     const CacheGeometry &geometry)
    : numCores_(num_cores),
      geometry_(geometry.valid() ? geometry : CacheGeometry{}),
      lineShift_(static_cast<std::uint32_t>(
          std::countr_zero(geometry_.lineBytes)))
{
}

std::unique_ptr<CoherenceProtocol>
makeProtocol(ProtocolKind kind, int num_cores,
             const CacheGeometry &geometry)
{
    switch (kind) {
      case ProtocolKind::Mesi:
        return std::make_unique<MesiDirectory>(num_cores, geometry);
      case ProtocolKind::Dragon:
        return std::make_unique<DragonBus>(num_cores, geometry);
    }
    return std::make_unique<MesiDirectory>(num_cores, geometry);
}

} // namespace laser::sim
